//! Criterion benchmarks of the analytic hardware models: full-network
//! evaluation cost for the GPU roofline, recursive-FPGA and pipelined-FPGA
//! models, plus the implementation tuners. These run inside the search's
//! inner loop, so their cost matters.

use criterion::{criterion_group, criterion_main, Criterion};
use edd_hw::gpu::GpuPrecision;
use edd_hw::{
    eval_gpu, eval_pipelined, eval_recursive, tune_pipelined, tune_recursive, FpgaDevice, GpuDevice,
};
use std::hint::black_box;

fn bench_gpu_eval(c: &mut Criterion) {
    let net = edd_zoo::edd_net_1();
    let device = GpuDevice::titan_rtx();
    c.bench_function("gpu_roofline_eval_eddnet1", |b| {
        b.iter(|| black_box(eval_gpu(&net, GpuPrecision::Fp16, &device)));
    });
}

fn bench_recursive_eval(c: &mut Criterion) {
    let net = edd_zoo::edd_net_2();
    let device = FpgaDevice::zcu102();
    let imp = tune_recursive(&net, 16, &device);
    c.bench_function("fpga_recursive_eval_eddnet2", |b| {
        b.iter(|| black_box(eval_recursive(&net, &imp, &device).unwrap()));
    });
}

fn bench_pipelined_eval(c: &mut Criterion) {
    let net = edd_zoo::edd_net_3();
    let device = FpgaDevice::zc706();
    let imp = tune_pipelined(&net, 16, &device);
    c.bench_function("fpga_pipelined_eval_eddnet3", |b| {
        b.iter(|| black_box(eval_pipelined(&net, &imp, &device).unwrap()));
    });
}

fn bench_tuners(c: &mut Criterion) {
    let rec_net = edd_zoo::mobilenet_v2();
    let pipe_net = edd_zoo::vgg16();
    let zcu = FpgaDevice::zcu102();
    let zc7 = FpgaDevice::zc706();
    c.bench_function("tune_recursive_mobilenetv2", |b| {
        b.iter(|| black_box(tune_recursive(&rec_net, 16, &zcu)));
    });
    c.bench_function("tune_pipelined_vgg16", |b| {
        b.iter(|| black_box(tune_pipelined(&pipe_net, 16, &zc7)));
    });
}

criterion_group!(
    benches,
    bench_gpu_eval,
    bench_recursive_eval,
    bench_pipelined_eval,
    bench_tuners
);
criterion_main!(benches);
