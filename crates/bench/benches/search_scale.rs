//! Criterion benchmark: cost of the differentiable performance estimate
//! (Eq. 2-10 graph construction + backward) as the number of supernet
//! blocks N grows — the search-side scalability the paper's 12-GPU-hour
//! budget rests on. Expected: linear in N·M·Q.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edd_core::{estimate, ArchParams, DeviceTarget, PerfTables, SearchSpace};
use edd_hw::FpgaDevice;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_estimate_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_estimate_vs_blocks");
    group.sample_size(20);
    for n in [5usize, 10, 20] {
        let mut rng = StdRng::seed_from_u64(1);
        let space = SearchSpace::tiny(n, 16, 4, vec![4, 8, 16]);
        let target = DeviceTarget::FpgaPipelined(FpgaDevice::zc706());
        let arch = ArchParams::init(&space, &target, &mut rng);
        let tables = PerfTables::build(&space, &target).expect("tables");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let est =
                    estimate(&arch, &tables, &space, &target, 1.0, &mut rng).expect("estimate");
                let total = est.perf.add(&est.res).expect("scalars");
                total.backward();
                black_box(total.item())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimate_scaling);
criterion_main!(benches);
