//! Criterion benchmarks of the co-search inner loops: the single-path
//! sampled supernet forward/backward (the weight step) and the
//! differentiable performance estimate (the implementation side of the
//! architecture step). Demonstrates the paper's efficiency claim for hard
//! Gumbel-Softmax sampling: cost is one path, not `M` paths.

use criterion::{criterion_group, Criterion};
use edd_core::{estimate, ArchParams, DeviceTarget, PerfTables, SearchSpace, SuperNet};
use edd_hw::FpgaDevice;
use edd_tensor::{Array, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn setup() -> (SearchSpace, SuperNet, ArchParams, PerfTables, DeviceTarget) {
    let mut rng = StdRng::seed_from_u64(10);
    let space = SearchSpace::tiny(4, 16, 8, vec![4, 8, 16]);
    let target = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
    let net = SuperNet::new(&space, &mut rng);
    let arch = ArchParams::init(&space, &target, &mut rng);
    let tables = PerfTables::build(&space, &target).expect("fpga tables");
    (space, net, arch, tables, target)
}

fn bench_sampled_forward(c: &mut Criterion) {
    let (_, net, arch, _, _) = setup();
    let mut rng = StdRng::seed_from_u64(11);
    let x = Tensor::constant(Array::randn(&[4, 3, 16, 16], 1.0, &mut rng));
    c.bench_function("supernet_sampled_forward", |b| {
        b.iter(|| black_box(net.forward_sampled(&x, &arch, 1.0, &mut rng).unwrap()));
    });
}

fn bench_sampled_forward_batch8(c: &mut Criterion) {
    // Larger batch: the conv paths thread over images, so this is the case
    // that scales with EDD_NUM_THREADS on multi-core hosts.
    let (_, net, arch, _, _) = setup();
    let mut rng = StdRng::seed_from_u64(11);
    let x = Tensor::constant(Array::randn(&[8, 3, 16, 16], 1.0, &mut rng));
    c.bench_function("supernet_sampled_forward_b8", |b| {
        b.iter(|| black_box(net.forward_sampled(&x, &arch, 1.0, &mut rng).unwrap()));
    });
}

fn bench_weight_step(c: &mut Criterion) {
    let (_, net, arch, _, _) = setup();
    let mut rng = StdRng::seed_from_u64(12);
    let x = Tensor::constant(Array::randn(&[4, 3, 16, 16], 1.0, &mut rng));
    let labels = vec![0usize, 1, 2, 3];
    c.bench_function("supernet_weight_step", |b| {
        b.iter(|| {
            let (logits, _) = net.forward_sampled(&x, &arch, 1.0, &mut rng).unwrap();
            let loss = logits.cross_entropy(&labels).unwrap();
            loss.backward();
            black_box(loss.item())
        });
    });
}

fn bench_perf_estimate(c: &mut Criterion) {
    let (space, _, arch, tables, target) = setup();
    let mut rng = StdRng::seed_from_u64(13);
    c.bench_function("perf_estimate_recursive", |b| {
        b.iter(|| black_box(estimate(&arch, &tables, &space, &target, 1.0, &mut rng).unwrap()));
    });
}

fn bench_arch_step(c: &mut Criterion) {
    let (space, net, arch, tables, target) = setup();
    let mut rng = StdRng::seed_from_u64(14);
    let x = Tensor::constant(Array::randn(&[4, 3, 16, 16], 1.0, &mut rng));
    let labels = vec![0usize, 1, 2, 3];
    c.bench_function("arch_step_full_loss", |b| {
        b.iter(|| {
            let (logits, _) = net.forward_sampled(&x, &arch, 1.0, &mut rng).unwrap();
            let acc_loss = logits.cross_entropy(&labels).unwrap();
            let est = estimate(&arch, &tables, &space, &target, 1.0, &mut rng).unwrap();
            let total = edd_core::edd_loss(
                &acc_loss,
                &est.perf,
                &est.res,
                target.resource_bound(),
                &edd_core::LossConfig::default(),
            )
            .unwrap();
            total.backward();
            black_box(total.item())
        });
    });
}

criterion_group!(
    benches,
    bench_sampled_forward,
    bench_sampled_forward_batch8,
    bench_weight_step,
    bench_perf_estimate,
    bench_arch_step
);

fn main() {
    // Zero the kernel counters so the record below reflects only this
    // bench run, then snapshot them next to the timing records.
    edd_tensor::stats::reset();
    benches();
    edd_bench::write_kernel_counters_record();
}
