//! Criterion micro-benchmarks of the autodiff substrate: the dense kernels
//! (GEMM, im2col convolution, depthwise convolution, batch norm) that
//! dominate supernet training time, in both forward and backward modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edd_tensor::{Array, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(1);
    for n in [32usize, 64, 128] {
        let a = Array::randn(&[n, n], 1.0, &mut rng);
        let b = Array::randn(&[n, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b).unwrap()));
        });
    }
    group.finish();
}

fn bench_matmul_naive(c: &mut Criterion) {
    // The scalar reference oracle, kept as the "before" baseline so the
    // blocked kernel's win stays measurable from the same bench run.
    let mut group = c.benchmark_group("matmul_naive");
    let mut rng = StdRng::seed_from_u64(1);
    for n in [32usize, 64, 128] {
        let a = Array::randn(&[n, n], 1.0, &mut rng);
        let b = Array::randn(&[n, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_naive(&b).unwrap()));
        });
    }
    group.finish();
}

fn bench_conv_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_forward");
    let mut rng = StdRng::seed_from_u64(2);
    for (cin, hw) in [(16usize, 16usize), (32, 16), (32, 32)] {
        let x = Tensor::constant(Array::randn(&[4, cin, hw, hw], 1.0, &mut rng));
        let w = Tensor::constant(Array::randn(&[cin, cin, 3, 3], 0.1, &mut rng));
        let label = format!("c{cin}_hw{hw}");
        group.bench_function(BenchmarkId::from_parameter(label), |bench| {
            bench.iter(|| black_box(x.conv2d(&w, None, 1, 1).unwrap()));
        });
    }
    group.finish();
}

fn bench_conv_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_train_step");
    let mut rng = StdRng::seed_from_u64(3);
    let x = Tensor::constant(Array::randn(&[4, 16, 16, 16], 1.0, &mut rng));
    let w = Tensor::param(Array::randn(&[16, 16, 3, 3], 0.1, &mut rng));
    group.bench_function("fwd_bwd", |bench| {
        bench.iter(|| {
            w.zero_grad();
            let y = x.conv2d(&w, None, 1, 1).unwrap();
            let loss = y.square().sum();
            loss.backward();
            black_box(w.grad())
        });
    });
    group.finish();
}

fn bench_dwconv(c: &mut Criterion) {
    let mut group = c.benchmark_group("dwconv2d_forward");
    let mut rng = StdRng::seed_from_u64(4);
    for k in [3usize, 5, 7] {
        let x = Tensor::constant(Array::randn(&[4, 32, 16, 16], 1.0, &mut rng));
        let w = Tensor::constant(Array::randn(&[32, k, k], 0.1, &mut rng));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| black_box(x.dwconv2d(&w, None, 1, k / 2).unwrap()));
        });
    }
    group.finish();
}

fn bench_batchnorm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let x = Tensor::param(Array::randn(&[8, 32, 16, 16], 1.0, &mut rng));
    let gamma = Tensor::param(Array::ones(&[32]));
    let beta = Tensor::param(Array::zeros(&[32]));
    c.bench_function("batchnorm_train_fwd", |bench| {
        bench.iter(|| black_box(x.batch_norm2d_train(&gamma, &beta, 1e-5).unwrap().output));
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_naive,
    bench_conv_forward,
    bench_conv_backward,
    bench_dwconv,
    bench_batchnorm
);
criterion_main!(benches);
