//! Ablation for the resource penalty of Eq. 1: optimizing the
//! implementation variables (`pf`, `Φ`) alone under the fused loss with
//! different penalty weights `β`, and measuring where the expected DSP
//! usage settles relative to the budget.
//!
//! With `β = 0` nothing restrains parallelism: minimizing latency inflates
//! `pf` without bound. With growing `β` the exponential penalty pins the
//! expected resource at (then below) `RES_ub` — the mechanism that lets
//! EDD treat the resource bound as a soft constraint during search.
//!
//! Run: `cargo run --release -p edd-bench --bin ablation_beta`

use edd_bench::print_header;
use edd_core::{edd_loss, estimate, ArchParams, DeviceTarget, LossConfig, PerfTables, SearchSpace};
use edd_hw::FpgaDevice;
use edd_tensor::optim::{Adam, Optimizer};
use edd_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Optimizes the implementation variables for `steps` under weight `beta`
/// and returns `(final expected resource, final expected latency)`.
fn optimize_impl(beta: f32, steps: usize, seed: u64) -> (f32, f32) {
    let mut rng = StdRng::seed_from_u64(seed);
    let device = FpgaDevice::zcu102();
    let budget = device.dsp_budget;
    let space = SearchSpace::tiny(4, 16, 4, vec![4, 8, 16]);
    let target = DeviceTarget::FpgaRecursive(device);
    let arch = ArchParams::init(&space, &target, &mut rng);
    let tables = PerfTables::build(&space, &target).expect("tables");
    let mut opt = Adam::new(arch.all_params(), 0.05);
    let cfg = LossConfig {
        alpha: 1.0,
        beta,
        penalty_sharpness: 8.0,
    };
    let mut last = (0.0, 0.0);
    for _ in 0..steps {
        opt.zero_grad();
        let est = estimate(&arch, &tables, &space, &target, 1.0, &mut rng).expect("estimate");
        // Accuracy loss held at a constant 1.0: isolates the perf/resource
        // tradeoff.
        let loss = edd_loss(&Tensor::scalar(1.0), &est.perf, &est.res, budget, &cfg).expect("loss");
        loss.backward();
        opt.step();
        last = (est.res.item(), est.perf.item());
    }
    last
}

fn main() {
    let budget = FpgaDevice::zcu102().dsp_budget;
    print_header(&format!(
        "Ablation: resource-penalty weight beta (ZCU102 budget {budget:.0} DSPs, recursive)"
    ));
    println!(
        "{:>8} | {:>12} {:>14} {:>14}",
        "beta", "E[res] final", "res / budget", "E[latency] ms"
    );
    println!("{}", "-".repeat(58));

    let steps = 300;
    let mut finals = Vec::new();
    for beta in [0.0f32, 0.1, 1.0, 10.0] {
        let (res, perf) = optimize_impl(beta, steps, 0xBE7A);
        println!(
            "{beta:>8.1} | {res:>12.0} {:>14.2} {perf:>14.4}",
            f64::from(res) / budget
        );
        finals.push((beta, res, perf));
    }

    print_header("Shape checks");
    let unconstrained = finals[0].1;
    println!(
        "[{}] with beta = 0 the optimizer blows through the budget ({:.0} DSPs = {:.1}x budget)",
        if f64::from(unconstrained) > budget {
            "PASS"
        } else {
            "FAIL"
        },
        unconstrained,
        f64::from(unconstrained) / budget
    );
    let constrained = finals.last().expect("swept").1;
    println!(
        "[{}] with beta = 10 the expected resource settles near/below the budget ({:.0} DSPs = {:.2}x)",
        if f64::from(constrained) <= budget * 1.1 { "PASS" } else { "FAIL" },
        constrained,
        f64::from(constrained) / budget
    );
    let res_monotone = finals.windows(2).all(|w| w[1].1 <= w[0].1 * 1.05);
    println!(
        "[{}] expected resource decreases monotonically in beta",
        if res_monotone { "PASS" } else { "FAIL" }
    );
    let lat_tradeoff = finals.last().expect("swept").2 >= finals[0].2;
    println!(
        "[{}] the constraint costs latency (beta = 10 latency >= beta = 0 latency)",
        if lat_tradeoff { "PASS" } else { "FAIL" }
    );
}
