//! Ablation for the bilevel optimization scheme (paper §5): updating the
//! architecture variables on the *validation* split (DARTS-style bilevel)
//! vs updating them on the training split (single-level).
//!
//! Runs the same co-search twice with identical seeds and budgets,
//! differing only in the `bilevel` flag, and compares the derived
//! architectures' from-scratch generalization.
//!
//! Run: `cargo run --release -p edd-bench --bin ablation_bilevel [--quick]`

use edd_bench::print_header;
use edd_core::{CoSearch, CoSearchConfig, DerivedArch, DeviceTarget, SearchSpace};
use edd_data::{SynthConfig, SynthDataset};
use edd_hw::FpgaDevice;
use edd_nn::{evaluate, train_epoch, Batch, Module};
use edd_tensor::optim::Sgd;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(bilevel: bool, epochs: usize, train: &[Batch], val: &[Batch]) -> (DerivedArch, f32) {
    let mut rng = StdRng::seed_from_u64(0xB17E7);
    let space = SearchSpace::tiny(4, 16, 6, vec![4, 8, 16]);
    let target = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
    let config = CoSearchConfig {
        epochs,
        warmup_epochs: 1,
        bilevel,
        ..CoSearchConfig::default()
    };
    let mut search = CoSearch::new(space, target, config, &mut rng).expect("valid");
    let outcome = search.run(train, val, &mut rng).expect("runs");
    let final_val = outcome.history.last().expect("history").val_acc;
    (outcome.derived, final_val)
}

fn retrain(arch: &DerivedArch, train: &[Batch], test: &[Batch], epochs: usize) -> f32 {
    let mut rng = StdRng::seed_from_u64(500);
    let model = arch.build_model(&mut rng);
    let mut opt = Sgd::new(model.parameters(), 0.05, 0.9, 1e-4);
    for _ in 0..epochs {
        train_epoch(&model, &mut opt, train).expect("training");
    }
    evaluate(&model, test).expect("eval").top1
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (search_epochs, retrain_epochs, tb, vb) = if quick { (3, 2, 3, 2) } else { (10, 8, 8, 4) };

    let data = SynthDataset::new(SynthConfig {
        num_classes: 6,
        image_size: 16,
        ..SynthConfig::default()
    });
    let train = data.split(tb, 16, 1);
    let val = data.split(vb, 16, 2);
    let test = data.split(vb, 16, 3);

    print_header("Ablation: bilevel (arch step on validation) vs single-level (on train)");

    let (arch_bi, val_bi) = run(true, search_epochs, &train, &val);
    let (arch_si, val_si) = run(false, search_epochs, &train, &val);

    println!("bilevel      — search val acc {val_bi:.3}");
    print!("{}", arch_bi.summary());
    println!("\nsingle-level — search val acc {val_si:.3}");
    print!("{}", arch_si.summary());

    let acc_bi = retrain(&arch_bi, &train, &test, retrain_epochs);
    let acc_si = retrain(&arch_si, &train, &test, retrain_epochs);
    println!("\nfrom-scratch test accuracy: bilevel {acc_bi:.3} vs single-level {acc_si:.3}");

    print_header("Shape checks");
    println!(
        "[{}] both schemes produce trainable architectures (> chance 0.167)",
        if acc_bi > 0.167 && acc_si > 0.167 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "[INFO] bilevel - single-level test-accuracy gap: {:+.3} (the paper adopts\n       bilevel following DARTS; at this scale the gap is noisy but the\n       mechanism — arch gradients from held-out data — is exercised)",
        acc_bi - acc_si
    );
}
