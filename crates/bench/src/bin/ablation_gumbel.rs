//! Ablation for the sampling scheme (paper §3.1): Gumbel-Softmax hard
//! sampling vs the DARTS-style plain Softmax mixture.
//!
//! The paper chooses Gumbel-Softmax "to sample only one operation out of M
//! during feedforward propagation, since \[it\] can convert the discrete
//! non-differentiable sampling to continuous differentiable sampling.
//! This greatly reduces the memory requirement and speeds up the
//! feedforward propagation."
//!
//! This harness quantifies both halves of that claim at laptop scale:
//!
//! 1. *Cost*: wall-clock of a supernet forward with single-path hard
//!    sampling vs executing and mixing all `M` branches.
//! 2. *Fidelity*: empirical selection frequencies of hard Gumbel-Softmax
//!    track softmax(θ) (unbiasedness), while temperature controls the
//!    sharpness of the soft relaxation.
//!
//! Run: `cargo run --release -p edd-bench --bin ablation_gumbel`

use edd_bench::print_header;
use edd_core::{ArchParams, DeviceTarget, SearchSpace, SuperNet};
use edd_hw::FpgaDevice;
use edd_tensor::{gumbel_softmax, Array, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(123);
    let space = SearchSpace::tiny(4, 16, 6, vec![4, 8, 16]);
    let target = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
    let net = SuperNet::new(&space, &mut rng);
    let arch = ArchParams::init(&space, &target, &mut rng);
    let x = Tensor::constant(Array::randn(&[8, 3, 16, 16], 1.0, &mut rng));

    print_header("Ablation: single-path Gumbel-Softmax vs all-branch Softmax mixture");

    // 1. Cost comparison.
    let reps = 20;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = net
            .forward_sampled(&x, &arch, 1.0, &mut rng)
            .expect("forward");
    }
    let single_path = t0.elapsed().as_secs_f64() / f64::from(reps);

    // All-branch mixture: run every candidate of every block and mix by
    // softmax weights (DARTS-style), via the library's forward_mixture.
    let t1 = Instant::now();
    for _ in 0..reps {
        let _ = net
            .forward_mixture(&x, &arch, 1.0)
            .expect("mixture forward");
    }
    let all_branch = t1.elapsed().as_secs_f64() / f64::from(reps);

    println!(
        "single-path (hard GS) forward: {:7.1} ms\nall-branch (softmax)  forward: {:7.1} ms\nspeedup: {:.1}x (M = {})",
        single_path * 1e3,
        all_branch * 1e3,
        all_branch / single_path,
        space.num_ops()
    );

    // 2. Fidelity: empirical frequency vs softmax(theta).
    print_header("Hard Gumbel-Softmax selection frequencies vs softmax(theta)");
    let logits = Tensor::param(Array::from_vec(vec![1.5, 0.5, 0.0, -0.5], &[4]).expect("sized"));
    let probs = edd_tensor::softmax_last_axis(&logits.value_clone());
    let trials = 4000;
    let mut counts = [0usize; 4];
    for _ in 0..trials {
        let y = gumbel_softmax(&logits, 1.0, true, &mut rng).expect("sample");
        counts[y.value_clone().argmax().expect("non-empty")] += 1;
    }
    let mut max_gap: f64 = 0.0;
    for (i, &c) in counts.iter().enumerate() {
        let f = c as f64 / f64::from(trials);
        let p = f64::from(probs.data()[i]);
        max_gap = max_gap.max((f - p).abs());
        println!("  op {i}: empirical {f:.3} vs softmax {p:.3}");
    }

    print_header("Shape checks");
    println!(
        "[{}] single-path sampling is at least 3x cheaper than the all-branch mixture",
        if all_branch / single_path >= 3.0 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "[{}] hard-sample frequencies match softmax(theta) within 0.03 (max gap {max_gap:.3})",
        if max_gap < 0.03 { "PASS" } else { "FAIL" }
    );

    // 3. Temperature sweep: entropy of the soft sample.
    print_header("Soft-sample concentration vs temperature");
    for tau in [4.0f32, 2.0, 1.0, 0.5, 0.25] {
        let mut max_elem_sum = 0.0;
        let draws = 200;
        for _ in 0..draws {
            let y = gumbel_softmax(&logits, tau, false, &mut rng).expect("sample");
            max_elem_sum += y.value_clone().max();
        }
        println!(
            "  tau {tau:>4.2}: mean max element {:.3} (1.0 = one-hot)",
            max_elem_sum / draws as f32
        );
    }
    println!("\nLower temperature -> closer to discrete selection, as the annealing\nschedule in the co-search exploits.");
}
