//! Ablation for paper **Eq. 7**: the Log-Sum-Exp smooth maximum used for
//! throughput objectives.
//!
//! Verifies the sandwich `max ≤ LSE ≤ max + ln N` on real per-block
//! latency vectors, shows how the LSE gradient concentrates on the
//! bottleneck block (the property that makes throughput search work), and
//! contrasts with the sum objective (Eq. 6) which spreads gradient across
//! all blocks.
//!
//! Run: `cargo run -p edd-bench --bin ablation_objective`

use edd_bench::print_header;
use edd_tensor::{Array, Tensor};

fn main() {
    print_header("Ablation: LSE smooth max (Eq. 7) vs sum (Eq. 6) vs hard max");

    // A realistic per-block latency profile with one bottleneck stage.
    let lat = vec![0.8f32, 1.1, 0.9, 3.5, 1.0, 0.7];
    let n = lat.len();
    let t = Tensor::param(Array::from_vec(lat.clone(), &[n]).expect("sized"));

    let lse = t.logsumexp();
    let sum = t.sum();
    let hard_max = lat.iter().copied().fold(f32::NEG_INFINITY, f32::max);

    println!("block latencies (ms): {lat:?}");
    println!("hard max            : {hard_max:.3}");
    println!("LSE smooth max      : {:.3}", lse.item());
    println!("sum                 : {:.3}", sum.item());

    // Gradient structure.
    lse.backward();
    let g_lse = t.grad().expect("grad");
    t.zero_grad();
    let t2 = Tensor::param(Array::from_vec(lat.clone(), &[n]).expect("sized"));
    t2.sum().backward();
    let g_sum = t2.grad().expect("grad");

    println!("\nGradient of LSE per block: {:?}", g_lse.data());
    println!("Gradient of sum per block: {:?}", g_sum.data());

    print_header("Shape checks");
    let sandwich = f64::from(lse.item()) >= f64::from(hard_max) - 1e-6
        && f64::from(lse.item()) <= f64::from(hard_max) + (n as f64).ln() + 1e-6;
    println!(
        "[{}] max <= LSE <= max + ln(N) sandwich holds",
        if sandwich { "PASS" } else { "FAIL" }
    );

    let bottleneck = 3usize;
    let concentrated =
        (0..n).all(|i| i == bottleneck || g_lse.data()[i] < g_lse.data()[bottleneck]);
    println!(
        "[{}] LSE gradient concentrates on the bottleneck block ({}: {:.3} of total 1.0)",
        if concentrated { "PASS" } else { "FAIL" },
        bottleneck,
        g_lse.data()[bottleneck]
    );
    let uniform = g_sum.data().iter().all(|&v| (v - 1.0).abs() < 1e-6);
    println!(
        "[{}] sum gradient is uniform across blocks (latency objective, Eq. 6)",
        if uniform { "PASS" } else { "FAIL" }
    );

    // Temperature behaviour: scaling latencies scales how tight LSE is.
    print_header("LSE tightness vs latency scale (LSE - max, lower = tighter)");
    for scale in [0.25f32, 0.5, 1.0, 2.0, 4.0] {
        let scaled: Vec<f32> = lat.iter().map(|v| v * scale).collect();
        let ts = Tensor::constant(Array::from_vec(scaled.clone(), &[n]).expect("sized"));
        let l = ts.logsumexp().item();
        let m = scaled.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        println!("  scale {scale:>4.2}: LSE - max = {:.4}", l - m);
    }
    println!(
        "\nLarger-magnitude latencies make LSE tighter to the true max — the paper's\n\
         α rescaling (Eq. 7) thus also controls the smooth-max approximation error."
    );
}
