//! Ablation for paper **Fig. 3 / Eq. 9–10**: the `tanh` resource-sharing
//! suppression in the recursive-FPGA resource estimate.
//!
//! Compares the differentiable resource estimate of the same architecture
//! parameters under (a) shared counting (Eq. 9–10, recursive) and
//! (b) duplicated counting (Eq. 8, pipelined-style), while sweeping how
//! concentrated the operator distribution `Θ` is, and verifies the two
//! key properties: an op class selected by many blocks is counted ~once,
//! and a never-selected class contributes only its vanishing sampling
//! mass.
//!
//! Run: `cargo run -p edd-bench --bin ablation_sharing`

use edd_bench::print_header;
use edd_core::{estimate, ArchParams, DeviceTarget, PerfTables, SearchSpace};
use edd_hw::FpgaDevice;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sets every block's theta to prefer op `m_star` with the given logit gap.
fn concentrate(arch: &ArchParams, m_star: usize, gap: f32) {
    for t in &arch.theta {
        t.update_value(|a| {
            for (i, v) in a.data_mut().iter_mut().enumerate() {
                *v = if i == m_star { gap } else { 0.0 };
            }
        });
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(33);
    let space = SearchSpace::tiny(6, 16, 4, vec![4, 8, 16]);
    let shared_target = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
    let dup_target = DeviceTarget::FpgaPipelined(FpgaDevice::zcu102());

    print_header("Ablation: tanh resource sharing (Eq. 9-10) vs duplicated counting (Eq. 8)");
    println!(
        "{:>10} | {:>16} {:>16} {:>8}",
        "theta gap", "RES shared", "RES duplicated", "ratio"
    );
    println!("{}", "-".repeat(60));

    let mut last_ratio = 0.0;
    for gap in [0.0f32, 1.0, 2.0, 4.0, 8.0] {
        let shared_arch = ArchParams::init(&space, &shared_target, &mut rng);
        let dup_arch = ArchParams::init(&space, &dup_target, &mut rng);
        concentrate(&shared_arch, 0, gap);
        concentrate(&dup_arch, 0, gap);
        let shared_tables = PerfTables::build(&space, &shared_target).expect("fpga tables");
        let dup_tables = PerfTables::build(&space, &dup_target).expect("fpga tables");
        let mut r1 = StdRng::seed_from_u64(100);
        let mut r2 = StdRng::seed_from_u64(100);
        let s = estimate(
            &shared_arch,
            &shared_tables,
            &space,
            &shared_target,
            0.5,
            &mut r1,
        )
        .expect("estimate");
        let d =
            estimate(&dup_arch, &dup_tables, &space, &dup_target, 0.5, &mut r2).expect("estimate");
        let ratio = d.res.item() / s.res.item();
        println!(
            "{:>10.1} | {:>16.1} {:>16.1} {:>8.2}",
            gap,
            s.res.item(),
            d.res.item(),
            ratio
        );
        last_ratio = f64::from(ratio);
    }

    print_header("Shape checks");
    // With 6 blocks all selecting the same op, duplicated counting pays ~6
    // IPs while shared counting pays ~1/tanh-suppressed.
    println!(
        "[{}] at high concentration, duplicated counting costs several times the shared count \
         (ratio {last_ratio:.1}, expected > 2)",
        if last_ratio > 2.0 { "PASS" } else { "FAIL" }
    );

    // Never-selected op classes contribute only vanishing mass under
    // sharing: drive theta away from class 8 and compare.
    let arch = ArchParams::init(&space, &shared_target, &mut rng);
    concentrate(&arch, 0, 12.0);
    let tables = PerfTables::build(&space, &shared_target).expect("tables");
    let mut r = StdRng::seed_from_u64(7);
    let est = estimate(&arch, &tables, &space, &shared_target, 0.2, &mut r).expect("estimate");
    // Upper bound if only class 0 were counted: psi(16) * 2^pf0 * 1.0 plus
    // epsilon from the other 8 classes' sampling mass.
    let pf0 = (2520.0f32 / 9.0).log2();
    let one_class = 2.0f32.powf(pf0); // psi(16) = 1
    let ok = est.res.item() < one_class * 2.5;
    println!(
        "[{}] concentrated selection counts ~one shared IP: RES {:.0} vs one-IP cost {:.0}",
        if ok { "PASS" } else { "FAIL" },
        est.res.item(),
        one_class
    );
}
