//! Ablation for the Gumbel-Softmax temperature schedule: fixed-high,
//! fixed-low and annealed temperature co-searches with identical budgets.
//!
//! High temperature keeps sampling near-uniform (exploration, diffuse
//! architecture weights); low temperature commits early (exploitation,
//! possibly to a bad op); annealing — the schedule the co-search uses —
//! transitions from the first regime to the second. The harness reports
//! the entropy of the final operator distributions under each schedule.
//!
//! Run: `cargo run --release -p edd-bench --bin ablation_tau [--quick]`

use edd_bench::print_header;
use edd_core::{CoSearch, CoSearchConfig, DeviceTarget, SearchSpace};
use edd_data::{SynthConfig, SynthDataset};
use edd_hw::FpgaDevice;
use edd_tensor::softmax_last_axis;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mean entropy (nats) of the per-block operator distributions.
fn theta_entropy(search: &CoSearch) -> f32 {
    let mut total = 0.0;
    let mut n = 0;
    for t in &search.arch().theta {
        let p = softmax_last_axis(&t.value_clone());
        total += -p
            .data()
            .iter()
            .map(|&v| if v > 0.0 { v * v.ln() } else { 0.0 })
            .sum::<f32>();
        n += 1;
    }
    total / n as f32
}

fn run(tau_start: f32, tau_end: f32, epochs: usize) -> (f32, f32) {
    let mut rng = StdRng::seed_from_u64(0x7A0);
    let space = SearchSpace::tiny(4, 16, 4, vec![4, 8, 16]);
    let target = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
    let config = CoSearchConfig {
        epochs,
        warmup_epochs: 1,
        tau_start,
        tau_end,
        // Aggressive architecture learning rate so schedule differences are
        // visible within the short budget.
        arch_lr: 0.15,
        ..CoSearchConfig::default()
    };
    let data = SynthDataset::new(SynthConfig::tiny());
    let train = data.split(3, 16, 1);
    let val = data.split(2, 16, 2);
    let mut search = CoSearch::new(space, target, config, &mut rng).expect("valid");
    let outcome = search.run(&train, &val, &mut rng).expect("runs");
    let final_val = outcome.history.last().expect("history").val_acc;
    (theta_entropy(&search), final_val)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let epochs = if quick { 3 } else { 8 };
    let max_entropy = (9.0f32).ln();

    print_header("Ablation: Gumbel-Softmax temperature schedule");
    println!(
        "{:<22} {:>14} {:>10}  (max entropy = ln 9 = {:.2})",
        "schedule", "theta entropy", "val acc", max_entropy
    );
    println!("{}", "-".repeat(60));

    let (e_high, v_high) = run(5.0, 5.0, epochs);
    println!(
        "{:<22} {:>14.3} {:>10.2}",
        "fixed high (tau=5)", e_high, v_high
    );
    let (e_low, v_low) = run(0.1, 0.1, epochs);
    println!(
        "{:<22} {:>14.3} {:>10.2}",
        "fixed low (tau=0.1)", e_low, v_low
    );
    let (e_ann, v_ann) = run(5.0, 0.1, epochs);
    println!(
        "{:<22} {:>14.3} {:>10.2}",
        "annealed (5 -> 0.1)", e_ann, v_ann
    );

    print_header("Shape checks");
    println!(
        "[{}] all schedules leave the logits learnable (entropy below the uniform maximum)",
        if e_high <= max_entropy + 1e-3 && e_low <= max_entropy + 1e-3 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "[INFO] final theta entropies: high {e_high:.3} / low {e_low:.3} / annealed {e_ann:.3}"
    );
    // Annealing should not underperform the worse of the two fixed
    // schedules — the robust version of "explore then commit wins".
    let worst_fixed = v_high.min(v_low);
    println!(
        "[{}] annealed schedule matches or beats the weaker fixed schedule \
         (annealed {v_ann:.2} vs worst fixed {worst_fixed:.2})",
        if v_ann >= worst_fixed - 0.05 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "[INFO] val acc across schedules: high {v_high:.2} / low {v_low:.2} / annealed {v_ann:.2}\n\
         (at laptop scale differences are noisy; the paper inherits annealing from\n\
         the Gumbel-Softmax literature)"
    );
}
