//! Calibration probe: prints modeled vs published latencies for every
//! Table 1 network so the device constants in `edd-hw` can be tuned.

use edd_bench::{compare_line, fpga_recursive_latency_ms, gpu_latency_ms, print_header};
use edd_hw::gpu::GpuPrecision;
use edd_hw::{FpgaDevice, GpuDevice};
use edd_zoo as zoo;

fn main() {
    let rtx = GpuDevice::titan_rtx();
    let zcu = FpgaDevice::zcu102();
    let nets: Vec<(edd_hw::NetworkShape, GpuPrecision)> = vec![
        (zoo::googlenet(), GpuPrecision::Fp32),
        (zoo::mobilenet_v2(), GpuPrecision::Fp32),
        (zoo::shufflenet_v2(), GpuPrecision::Fp32),
        (zoo::resnet18(), GpuPrecision::Fp32),
        (zoo::mnasnet_a1(), GpuPrecision::Fp32),
        (zoo::fbnet_c(), GpuPrecision::Fp32),
        (zoo::proxyless_cpu(), GpuPrecision::Fp32),
        (zoo::proxyless_mobile(), GpuPrecision::Fp32),
        (zoo::proxyless_gpu(), GpuPrecision::Fp32),
        (zoo::edd_net_1(), GpuPrecision::Fp16),
        (zoo::edd_net_2(), GpuPrecision::Fp16),
    ];
    print_header("GPU (Titan RTX)");
    for ((net, prec), row) in nets.iter().zip(zoo::TABLE_1.iter()) {
        let modeled = gpu_latency_ms(net, *prec, &rtx);
        println!(
            "{}  ops={} mmacs={:.0}",
            compare_line(row.name, modeled, row.gpu_ms.unwrap() as f64),
            net.ops.len(),
            net.total_work() / 1e6
        );
    }
    print_header("FPGA recursive (ZCU102, 16-bit)");
    for ((net, _), row) in nets.iter().zip(zoo::TABLE_1.iter()) {
        if let Some(pub_ms) = row.fpga_ms {
            let modeled = fpga_recursive_latency_ms(net, 16, &zcu);
            println!(
                "{}  classes={}",
                compare_line(row.name, modeled, pub_ms as f64),
                net.ip_classes().len()
            );
        }
    }
}
