//! The measurable analogue of Table 1's accuracy story: train the
//! EDD-searched architecture and a hand-crafted MobileNet-V2-style
//! baseline under identical budgets on SynthImageNet, and compare
//! (test accuracy, modeled latency).
//!
//! The paper's claim shape — "similar accuracy as the best existing DNNs
//! ... but with superior performance" — translates here to: the searched
//! net reaches accuracy within a few points of the hand-crafted baseline
//! while posting a better modeled latency on its target device.
//!
//! Run: `cargo run --release -p edd-bench --bin exp_accuracy [--quick]`

use edd_bench::print_header;
use edd_core::{CoSearch, CoSearchConfig, DeviceTarget, SearchSpace};
use edd_data::{SynthConfig, SynthDataset};
use edd_hw::{eval_recursive, tune_recursive, FpgaDevice, NetworkShape};
use edd_nn::{evaluate, train_epoch, Batch, Module, Sequential};
use edd_tensor::optim::{cosine_lr, Optimizer, Sgd};
use edd_zoo::tiny_mobilenet_v2;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn train(model: &Sequential, train: &[Batch], test: &[Batch], epochs: usize) -> f32 {
    let mut opt = Sgd::new(model.parameters(), 0.05, 0.9, 1e-4);
    for e in 0..epochs {
        opt.set_lr(cosine_lr(0.05, 0.003, e, epochs));
        train_epoch(model, &mut opt, train).expect("training");
    }
    evaluate(model, test).expect("eval").top1
}

/// Shape description of the tiny MobileNet-V2 baseline, mirroring
/// `edd_zoo::tiny_mobilenet_v2`, for latency evaluation under the same
/// model as the searched net.
fn tiny_mnv2_shape() -> NetworkShape {
    edd_zoo::ShapeBuilder::new("tiny-mnv2", 16, 3)
        .conv("stem", 3, 16, 1)
        .mbconv(3, 1, 16, 1)
        .mbconv(3, 6, 24, 2)
        .mbconv(3, 6, 24, 1)
        .mbconv(3, 6, 32, 2)
        .mbconv(3, 6, 32, 1)
        .conv("head", 1, 64, 1)
        .linear("fc", 6)
        .build()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (search_epochs, train_epochs, tb, vb) = if quick { (3, 3, 3, 2) } else { (10, 10, 8, 4) };

    let device = FpgaDevice::zcu102();
    let target = DeviceTarget::FpgaRecursive(device.clone());
    let space = SearchSpace::tiny(5, 16, 6, vec![4, 8, 16]);
    let data = SynthDataset::new(SynthConfig {
        num_classes: 6,
        image_size: 16,
        ..SynthConfig::default()
    });
    let train_set = data.split(tb, 16, 1);
    let val_set = data.split(vb, 16, 2);
    let test_set = data.split(vb, 16, 3);

    print_header("Accuracy proxy: EDD-searched net vs hand-crafted MobileNet-V2-tiny");

    // 1. Search.
    let mut rng = StdRng::seed_from_u64(0xACC);
    let config = CoSearchConfig {
        epochs: search_epochs,
        warmup_epochs: 1,
        ..CoSearchConfig::default()
    };
    let mut search = CoSearch::new(space, target, config, &mut rng).expect("valid target");
    let outcome = search
        .run(&train_set, &val_set, &mut rng)
        .expect("search runs");
    println!("{}", outcome.derived.summary());

    // 2. Train both from scratch with the same budget.
    let mut rng_a = StdRng::seed_from_u64(1);
    let searched_model = outcome.derived.build_model(&mut rng_a);
    let searched_acc = train(&searched_model, &train_set, &test_set, train_epochs);

    let mut rng_b = StdRng::seed_from_u64(1);
    let baseline_model = tiny_mobilenet_v2(16, 6, &mut rng_b);
    let baseline_acc = train(&baseline_model, &train_set, &test_set, train_epochs);

    // 3. Latency on the target device model.
    let searched_net = outcome.derived.to_network_shape();
    let searched_lat = eval_recursive(
        &searched_net,
        &tune_recursive(&searched_net, 16, &device),
        &device,
    )
    .expect("classes covered")
    .latency_ms;
    let baseline_net = tiny_mnv2_shape();
    let baseline_lat = eval_recursive(
        &baseline_net,
        &tune_recursive(&baseline_net, 16, &device),
        &device,
    )
    .expect("classes covered")
    .latency_ms;

    println!(
        "\n{:<22} {:>10} {:>16}",
        "model", "test acc", "ZCU102 latency"
    );
    println!("{}", "-".repeat(52));
    println!(
        "{:<22} {:>10.3} {:>14.3}ms",
        "EDD-searched", searched_acc, searched_lat
    );
    println!(
        "{:<22} {:>10.3} {:>14.3}ms",
        "MobileNetV2-tiny", baseline_acc, baseline_lat
    );

    print_header("Shape checks");
    let acc_close = searched_acc >= baseline_acc - 0.10;
    println!(
        "[{}] searched accuracy within 10 points of the hand-crafted baseline \
         ({searched_acc:.3} vs {baseline_acc:.3})",
        if acc_close {
            "PASS"
        } else if quick {
            "SKIP (quick mode undertrains; run without --quick)"
        } else {
            "FAIL"
        }
    );
    println!(
        "[INFO] latency ratio searched/baseline: {:.2} (searched net optimizes the\n       *modeled* device it was searched for; see exp_search for the\n       random-architecture Pareto control)",
        searched_lat / baseline_lat
    );
    let both_learn = searched_acc > 0.4 && baseline_acc > 0.4;
    println!(
        "[{}] both models train well above the 16.7% chance level",
        if both_learn {
            "PASS"
        } else if quick {
            "SKIP (quick mode undertrains; run without --quick)"
        } else {
            "FAIL"
        }
    );
}
