//! The paper's §4.3 future-work experiment, implemented: EDD co-search
//! targeting a dedicated bit-flexible accelerator (Stripes/Loom/Bit-Fusion
//! class), where latency scales with the weight-precision of each layer
//! and per-layer **mixed precision** is the primary implementation
//! variable.
//!
//! Demonstrates that the searched network uses non-uniform per-block
//! precisions (unlike the GPU target, which is constrained to one global
//! precision), and reports the latency/energy of the derived net on the
//! accelerator model.
//!
//! Run: `cargo run --release -p edd-bench --bin exp_dedicated [--quick]`

use edd_bench::print_header;
use edd_core::{CoSearch, CoSearchConfig, DeviceTarget, SearchSpace};
use edd_data::{SynthConfig, SynthDataset};
use edd_hw::{eval_accel, AccelDevice};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (epochs, tb, vb) = if quick { (3, 2, 1) } else { (10, 6, 3) };

    let device = AccelDevice::loom_like();
    let target = DeviceTarget::Dedicated(device.clone());
    let space = SearchSpace::tiny(4, 16, 6, target.default_quant_bits());
    let data = SynthDataset::new(SynthConfig {
        num_classes: 6,
        image_size: 16,
        ..SynthConfig::default()
    });
    let train = data.split(tb, 16, 1);
    let val = data.split(vb, 16, 2);

    print_header(&format!(
        "EDD co-search for a dedicated accelerator ({}) — paper §4.3",
        device.name
    ));
    println!(
        "quantization menu: {:?}-bit weights, {}-bit activations, per-op mixed precision\n",
        space.quant_bits, device.activation_bits
    );

    let mut rng = StdRng::seed_from_u64(0xACCE1);
    let config = CoSearchConfig {
        epochs,
        warmup_epochs: 1,
        ..CoSearchConfig::default()
    };
    let mut search = CoSearch::new(space, target, config, &mut rng).expect("valid target");
    let outcome = search.run(&train, &val, &mut rng).expect("search runs");

    for h in &outcome.history {
        println!(
            "epoch {}: train acc {:.2}, val acc {:.2}, E[latency] {:.4} ms",
            h.epoch, h.train_acc, h.val_acc, h.expected_perf
        );
    }
    println!("\n{}", outcome.derived.summary());

    // Evaluate the derived net: blocks at their searched precisions,
    // stem/head at 16-bit.
    let net = outcome.derived.to_network_shape();
    let mut q_per_op = vec![16u32; net.ops.len()];
    // net ops: [stem, blocks..., head] — map block precisions in.
    for (i, b) in outcome.derived.blocks.iter().enumerate() {
        q_per_op[i + 1] = b.quant_bits;
    }
    let searched = eval_accel(&net, &q_per_op, &device);
    let uniform16 = eval_accel(&net, &vec![16u32; net.ops.len()], &device);
    println!(
        "derived net on {}: {:.4} ms / {:.1} uJ (searched mixed precision)\n\
         same net uniform 16-bit:   {:.4} ms / {:.1} uJ",
        device.name,
        searched.latency_ms,
        searched.energy_uj,
        uniform16.latency_ms,
        uniform16.energy_uj
    );

    print_header("Shape checks");
    let bits: Vec<u32> = outcome
        .derived
        .blocks
        .iter()
        .map(|b| b.quant_bits)
        .collect();
    let distinct = {
        let mut b = bits.clone();
        b.sort_unstable();
        b.dedup();
        b.len()
    };
    let mean_bits = bits.iter().map(|&b| f32::from(b as u16)).sum::<f32>() / bits.len() as f32;
    println!(
        "[{}] searched precisions are low-bit-leaning (mean {mean_bits:.1} bits < 16)",
        if mean_bits < 16.0 { "PASS" } else { "FAIL" }
    );
    println!(
        "[INFO] distinct per-block precisions: {distinct} (mixed precision exercised: {})",
        distinct > 1
    );
    let faster = searched.latency_ms <= uniform16.latency_ms * 1.0001;
    println!(
        "[{}] searched mixed precision is no slower than uniform 16-bit",
        if faster { "PASS" } else { "FAIL" }
    );
}
