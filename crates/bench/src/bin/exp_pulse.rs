//! Steady-state cost of pulsed (streaming) inference.
//!
//! Each tiny-zoo integer engine is lifted into the IR
//! (`QuantizedModel::to_graph`), converted into a pulsed model
//! ([`edd_ir::PulsedModel`]), and fed a long synthetic signal one
//! row-slice at a time after the rings are primed and the sliding-window
//! coordinator has reached steady state. Reported per model:
//!
//! * **µs/pulse** — mean wall-clock per pushed row over the measured
//!   stream (the streaming throughput figure: a device can sustain any
//!   row rate below `1e6 / µs_per_pulse` rows/s);
//! * per-push latency percentiles (rows that complete a window do a full
//!   classifier tail and dominate the p99);
//! * **state bytes** — the peak carried state, which is bounded by the
//!   window geometry and must not depend on stream length.
//!
//! Before measuring, the first emitted window is checked bitwise against
//! the batch engine on the identical rows, so a red pulse bench can never
//! be "fast but wrong". Appends one JSONL record per model to the file
//! named by `EDD_BENCH_JSON` — `scripts/bench_pulse.sh` folds that into
//! `BENCH_pulse.json` and gates µs/pulse and state bytes against the
//! previous snapshot.
//!
//! Run: `cargo run --release -p edd-bench --bin exp_pulse [--quick]`

use edd_bench::print_header;
use edd_ir::{CompiledModel, PulsedModel};
use edd_runtime::telemetry::Histogram;
use edd_runtime::StreamSession;
use edd_tensor::Array;
use edd_zoo::{compile_tiny_zoo, signal_row, signal_window, synthetic_signal};
use std::io::Write;
use std::time::Instant;

const SIGNAL_SEED: u64 = 0x5EED;

/// One model's measured figures.
struct PulseResult {
    name: String,
    rows: usize,
    window: usize,
    hop: usize,
    us_per_pulse: f64,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    state_bytes: usize,
    windows: u64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows: usize = if quick { 256 } else { 1024 };

    print_header("Pulsed streaming inference: steady-state cost per pushed row");
    println!("measuring {rows} pushed rows per model after warmup (rings primed)\n");

    let mut results = Vec::new();
    for (name, q) in compile_tiny_zoo(0x0DD5EED) {
        let g = q.to_graph(&name).expect("to_graph");
        let [c, h, w] = g.meta.input_shape;
        let hop = (h / 2).max(1);

        // Correctness first: the first emitted window must equal the batch
        // engine bitwise on the same rows, under this process's exact
        // EDD_NUM_THREADS / EDD_SIMD / EDD_GEMM environment.
        let check_rows = synthetic_signal(c, w, h, SIGNAL_SEED);
        let mut check = StreamSession::new(PulsedModel::from_graph(&g, hop).expect("pulse"));
        let mut first = None;
        for row in &check_rows {
            if let Some(win) = check.push(row).expect("push") {
                first = Some(win);
            }
        }
        let first = first.expect("one full window emits one result");
        let oracle = CompiledModel::from_graph(g.clone()).expect("compile");
        let buf = signal_window(&check_rows, 0, h, c, w);
        let want = oracle
            .forward(&Array::from_vec(buf, &[1, c, h, w]).expect("shape"))
            .expect("batch forward");
        assert!(
            want.data()
                .iter()
                .zip(&first.logits)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "{name}: pulsed output diverges from the batch engine"
        );

        // Warmup: one window plus one hop, so every ring is primed and the
        // coordinator is cycling windows, then measure `rows` pushes.
        let warm = h + hop;
        let pulsed = PulsedModel::from_graph(&g, hop).expect("pulse");
        let mut session = StreamSession::new(pulsed);
        for r in 0..warm {
            session
                .push(&signal_row(c, w, SIGNAL_SEED, r))
                .expect("push");
        }
        let signal: Vec<Vec<f32>> = (warm..warm + rows)
            .map(|r| signal_row(c, w, SIGNAL_SEED, r))
            .collect();
        let hist = Histogram::new();
        let start = Instant::now();
        for row in &signal {
            let t0 = Instant::now();
            session.push(row).expect("push");
            hist.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        let elapsed = start.elapsed();
        let stats = session.stats();
        results.push(PulseResult {
            name,
            rows,
            window: h,
            hop,
            us_per_pulse: elapsed.as_secs_f64() * 1e6 / rows as f64,
            p50_ns: hist.percentile(50.0),
            p99_ns: hist.percentile(99.0),
            max_ns: hist.max(),
            state_bytes: stats.peak_state_bytes,
            windows: stats.windows,
        });
    }

    println!(
        "{:<22} {:>6} {:>4} {:>11} {:>9} {:>9} {:>9} {:>10} {:>8}",
        "model", "window", "hop", "us/pulse", "p50us", "p99us", "maxus", "state B", "windows"
    );
    for r in &results {
        println!(
            "{:<22} {:>6} {:>4} {:>11.2} {:>9.2} {:>9.2} {:>9.2} {:>10} {:>8}",
            r.name,
            r.window,
            r.hop,
            r.us_per_pulse,
            r.p50_ns as f64 / 1e3,
            r.p99_ns as f64 / 1e3,
            r.max_ns as f64 / 1e3,
            r.state_bytes,
            r.windows
        );
    }

    if let Ok(path) = std::env::var("EDD_BENCH_JSON") {
        if !path.is_empty() {
            write_records(&path, &results);
        }
    }

    // Machine-readable summary line (grep-able from CI logs).
    let worst_us = results.iter().map(|r| r.us_per_pulse).fold(0.0, f64::max);
    let peak_state = results.iter().map(|r| r.state_bytes).max().unwrap_or(0);
    let windows: u64 = results.iter().map(|r| r.windows).sum();
    println!(
        "\nPULSE_RESULT: models={} worst_us_per_pulse={worst_us:.2} \
         peak_state_bytes={peak_state} windows={windows} bitwise=ok",
        results.len()
    );
}

/// Appends one `pulse_<model>` JSONL record per model to `path`.
fn write_records(path: &str, results: &[PulseResult]) {
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    for r in results {
        let _ = writeln!(
            f,
            "{{\"name\":\"pulse_{}\",\"rows\":{},\"window\":{},\"hop\":{},\
             \"us_per_pulse\":{:.3},\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{},\
             \"state_bytes\":{},\"windows\":{}}}",
            r.name,
            r.rows,
            r.window,
            r.hop,
            r.us_per_pulse,
            r.p50_ns,
            r.p99_ns,
            r.max_ns,
            r.state_bytes,
            r.windows,
        );
    }
}
