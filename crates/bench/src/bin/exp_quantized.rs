//! Measured integer-engine throughput vs the Stage-1 `Perf^q(op)`
//! prediction.
//!
//! Compiles the demo derived architecture ([`edd_zoo::tiny_derived_arch`],
//! mixed Φ = 4/8/8-bit) into the true integer inference engine twice —
//! once at its searched mixed precisions and once at uniform int8 — and
//! measures batched throughput through `edd_runtime::InferServer` against
//! the f32 fake-quant reference. The same architecture is then priced by
//! the Stage-1 dedicated-accelerator model (`edd_hw::accel`), and the
//! measured speedup ratios are compared against the predicted ones.
//!
//! The absolute numbers are not comparable (a 2 TMAC/s bit-serial ASIC
//! model vs this machine's CPU), so the cross-check is on *ratios*: the
//! Stage-1 model predicts int4 weights double an op's throughput on
//! bit-flexible silicon, while the CPU engine unpacks int4 to int8 before
//! the GEMM and only banks the 2× weight-storage saving. EXPERIMENTS.md
//! records both sides.
//!
//! Run: `cargo run --release -p edd-bench --bin exp_quantized [--quick]`

use edd_bench::print_header;
use edd_core::{calibrate, DerivedArch, QatModel, QuantizedModel};
use edd_hw::{predicted_throughput_fps, AccelDevice};
use edd_nn::Module;
use edd_runtime::InferServer;
use edd_tensor::{Array, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// `[stem, blocks..., head]` per-op weight precisions for the Stage-1
/// model, with stem/head at the engine's 8-bit ceiling.
fn q_per_op(arch: &DerivedArch, block_bits: &[u32]) -> Vec<u32> {
    let mut q = Vec::with_capacity(arch.blocks.len() + 2);
    q.push(8);
    q.extend_from_slice(block_bits);
    q.push(8);
    q
}

/// Measured images/s serving `iters` batches through an [`InferServer`].
fn measure_engine(model: QuantizedModel, images: &[f32], batch: usize, iters: usize) -> f64 {
    let server = InferServer::new(model);
    server.infer(images, batch).expect("warmup batch");
    let start = Instant::now();
    for _ in 0..iters {
        server.infer(images, batch).expect("batch");
    }
    batch as f64 * iters as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (batch, iters) = if quick { (4, 8) } else { (16, 40) };

    let arch = edd_zoo::tiny_derived_arch();
    let mut rng = StdRng::seed_from_u64(0x0DD5EED);
    let model = QatModel::new(&arch, &mut rng);
    model.set_training(false);

    // Uniform-int8 twin: same layer construction order, so the same RNG
    // stream yields identical weights — only Φ differs.
    let mut arch8 = arch.clone();
    for b in &mut arch8.blocks {
        b.quant_bits = 8;
    }
    let model8 = QatModel::new(&arch8, &mut StdRng::seed_from_u64(0x0DD5EED));
    model8.set_training(false);

    let calib_data: Vec<Array> = (0..4)
        .map(|i| {
            Array::randn(
                &[batch, 3, 16, 16],
                1.0,
                &mut StdRng::seed_from_u64(100 + i),
            )
        })
        .collect();
    let calib = calibrate(&model, &calib_data).expect("calibration");
    let calib8 = calibrate(&model8, &calib_data).expect("calibration");
    let qmixed = QuantizedModel::compile(&model, &arch, &calib);
    let q8 = QuantizedModel::compile(&model8, &arch8, &calib8);

    print_header("Integer engine throughput vs Stage-1 Perf^q prediction");
    println!(
        "arch {} ({} blocks, Φ = {:?}), batch {batch}, {iters} timed batches\n",
        arch.name,
        arch.blocks.len(),
        qmixed.block_bits()
    );

    let images = calib_data[0].data().to_vec();
    // f32 reference: the QAT model's own eval forward.
    let xt = Tensor::constant(calib_data[0].clone());
    model.forward(&xt).expect("warmup");
    let start = Instant::now();
    for _ in 0..iters {
        model.forward(&xt).expect("f32 forward");
    }
    let f32_fps = batch as f64 * iters as f64 / start.elapsed().as_secs_f64();

    let bytes_mixed = qmixed.weight_bytes();
    let bytes8 = q8.weight_bytes();
    let int8_fps = measure_engine(q8, &images, batch, iters);
    let mixed_fps = measure_engine(qmixed, &images, batch, iters);

    let device = AccelDevice::loom_like();
    let net = arch.to_network_shape();
    let pred8 = predicted_throughput_fps(&net, &q_per_op(&arch, &[8, 8, 8]), &device);
    let pred_mixed = predicted_throughput_fps(&net, &q_per_op(&arch, &[4, 8, 8]), &device);
    let pred16 = predicted_throughput_fps(&net, &vec![16; net.ops.len()], &device);

    println!("measured on this CPU (images/s):");
    println!("  f32 fake-quant reference  {f32_fps:10.1}");
    println!(
        "  int8 engine (uniform 8b)  {int8_fps:10.1}   ({:.2}x vs f32)",
        int8_fps / f32_fps
    );
    println!(
        "  mixed engine (4/8/8b)     {mixed_fps:10.1}   ({:.2}x vs int8, {} vs {} weight bytes)",
        mixed_fps / int8_fps,
        bytes_mixed,
        bytes8
    );
    println!("\nStage-1 prediction on {} (images/s):", device.name);
    println!("  uniform 16b               {pred16:10.1}");
    println!(
        "  uniform 8b                {pred8:10.1}   ({:.2}x vs 16b)",
        pred8 / pred16
    );
    println!(
        "  mixed 4/8/8b              {pred_mixed:10.1}   ({:.2}x vs 8b)",
        pred_mixed / pred8
    );
    println!("\ncross-check (speedup ratios, measured vs predicted):");
    println!(
        "  int8-vs-f32:  measured {:.2}x   (prediction n/a: Stage-1 has no f32 point)",
        int8_fps / f32_fps
    );
    println!(
        "  mixed-vs-int8: measured {:.2}x  predicted {:.2}x — the engine unpacks int4\n\
         \x20  to int8 MACs, so the predicted bit-serial win shows up as the {:.2}x\n\
         \x20  weight-storage ratio instead",
        mixed_fps / int8_fps,
        pred_mixed / pred8,
        bytes8 as f64 / bytes_mixed as f64
    );

    // Machine-readable summary line (grep-able from CI logs).
    println!(
        "\nQUANT_RESULT: f32_fps={f32_fps:.1} int8_fps={int8_fps:.1} mixed_fps={mixed_fps:.1} \
         pred8_fps={pred8:.1} pred_mixed_fps={pred_mixed:.1} bytes8={bytes8} bytes_mixed={bytes_mixed}"
    );
}
