//! The §6 co-search experiment at laptop scale: runs the full EDD
//! co-search on SynthImageNet against the recursive-FPGA target, prints
//! the epoch history (the "12 GPU-hour search" analogue), trains the
//! derived architecture from scratch (the paper's final-training stage),
//! and compares it against uniformly random architectures from the same
//! space on the (accuracy, modeled latency) plane — the search must
//! dominate or tie the random baseline.
//!
//! Run: `cargo run -p edd-bench --bin exp_search [--quick]`

use edd_bench::print_header;
use edd_core::{CoSearch, CoSearchConfig, DerivedArch, DeviceTarget, QatModel, SearchSpace};
use edd_data::{SynthConfig, SynthDataset};
use edd_hw::{eval_recursive, tune_recursive, FpgaDevice};
use edd_nn::{evaluate, train_epoch, Batch, Module};
use edd_tensor::optim::{cosine_lr, Optimizer, Sgd};
use edd_zoo::random_arch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Trains `arch` from scratch — quantization-aware, with each block's
/// weights on its searched bit-width grid (the paper's §5 final stage) —
/// and returns its test accuracy.
fn train_from_scratch(
    arch: &DerivedArch,
    train: &[Batch],
    test: &[Batch],
    epochs: usize,
    seed: u64,
) -> f32 {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = QatModel::new(arch, &mut rng);
    let mut opt = Sgd::new(model.parameters(), 0.05, 0.9, 1e-4);
    for e in 0..epochs {
        opt.set_lr(cosine_lr(0.05, 0.005, e, epochs));
        train_epoch(&model, &mut opt, train).expect("training");
    }
    evaluate(&model, test).expect("eval").top1
}

/// Modeled recursive-FPGA latency of a derived architecture at its
/// searched (majority) precision.
fn modeled_latency(arch: &DerivedArch, device: &FpgaDevice) -> f64 {
    let net = arch.to_network_shape();
    // Majority vote over per-block searched bit-widths.
    let mut counts = std::collections::BTreeMap::new();
    for b in &arch.blocks {
        *counts.entry(b.quant_bits).or_insert(0usize) += 1;
    }
    let bits = counts
        .into_iter()
        .max_by_key(|&(_, c)| c)
        .map_or(16, |(b, _)| b);
    let imp = tune_recursive(&net, bits.max(8), device);
    eval_recursive(&net, &imp, device)
        .expect("classes covered")
        .latency_ms
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_blocks, search_epochs, train_epochs, tb, vb, n_random) = if quick {
        (3, 3, 2, 3, 2, 1)
    } else {
        (5, 10, 8, 8, 4, 3)
    };

    let device = FpgaDevice::zcu102();
    let target = DeviceTarget::FpgaRecursive(device.clone());
    let space = SearchSpace::tiny(n_blocks, 16, 6, vec![4, 8, 16]);
    let data = SynthDataset::new(SynthConfig {
        num_classes: 6,
        image_size: 16,
        ..SynthConfig::default()
    });
    let train = data.split(tb, 16, 1);
    let val = data.split(vb, 16, 2);
    let test = data.split(vb, 16, 3);

    print_header("EDD co-search on SynthImageNet (recursive FPGA target)");
    let mut rng = StdRng::seed_from_u64(0xEDD);
    let config = CoSearchConfig {
        epochs: search_epochs,
        warmup_epochs: 1,
        ..CoSearchConfig::default()
    };
    let start = Instant::now();
    let mut search =
        CoSearch::new(space.clone(), target.clone(), config, &mut rng).expect("valid target");
    let outcome = search.run(&train, &val, &mut rng).expect("search runs");
    let search_time = start.elapsed();

    println!(
        "{:>6} {:>10} {:>10} {:>9} {:>12} {:>10} {:>6}",
        "epoch", "train loss", "train acc", "val acc", "E[perf] ms", "E[res]", "tau"
    );
    for h in &outcome.history {
        println!(
            "{:>6} {:>10.3} {:>10.2} {:>9.2} {:>12.4} {:>10.0} {:>6.2}",
            h.epoch, h.train_loss, h.train_acc, h.val_acc, h.expected_perf, h.expected_res, h.tau
        );
    }
    println!(
        "\nsearch wall time: {:.1}s (the paper reports 12 GPU-hours at ImageNet scale)",
        search_time.as_secs_f32()
    );
    // Optional CSV export of the search curves.
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        if let Some(path) = args.get(i + 1) {
            std::fs::write(path, outcome.history_csv()).expect("csv writable");
            println!("wrote search history to {path}");
        }
    }
    println!("\nDerived architecture:\n{}", outcome.derived.summary());

    print_header("Final training from scratch (paper §5 last step)");
    let searched_acc = train_from_scratch(&outcome.derived, &train, &test, train_epochs, 1);
    let searched_lat = modeled_latency(&outcome.derived, &device);
    println!("searched:  test acc {searched_acc:.3}, modeled ZCU102 latency {searched_lat:.3} ms");

    let mut rand_results = Vec::new();
    let mut rrng = StdRng::seed_from_u64(555);
    for i in 0..n_random {
        let arch = random_arch(&space, &target, &mut rrng);
        let acc = train_from_scratch(&arch, &train, &test, train_epochs, 100 + i as u64);
        let lat = modeled_latency(&arch, &device);
        println!("random #{i}: test acc {acc:.3}, modeled ZCU102 latency {lat:.3} ms");
        rand_results.push((acc, lat));
    }

    print_header("Shape checks");
    // Resource feasibility of the search's expectation.
    let final_res = outcome.history.last().expect("history").expected_res;
    println!(
        "[{}] expected resource stays within the 2520-DSP ZCU102 budget ({final_res:.0})",
        if f64::from(final_res) <= 2520.0 * 1.1 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    // Pareto check: no random arch both more accurate and faster.
    let dominated = rand_results
        .iter()
        .any(|&(acc, lat)| acc > searched_acc + 0.02 && lat < searched_lat * 0.98);
    println!(
        "[{}] no random architecture strictly dominates the searched one on (acc, latency)",
        if dominated { "FAIL" } else { "PASS" }
    );
    // Learning happened.
    let first = outcome.history.first().expect("history");
    let last = outcome.history.last().expect("history");
    println!(
        "[{}] supernet training loss decreased over the search ({:.3} -> {:.3})",
        if last.train_loss < first.train_loss {
            "PASS"
        } else {
            "FAIL"
        },
        first.train_loss,
        last.train_loss
    );
}
