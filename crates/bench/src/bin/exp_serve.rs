//! Closed-loop load generation against the multi-tenant dynamic-batching
//! serving front end (`edd_runtime::serve`).
//!
//! Two legs, both driven by the same closed-loop harness (several
//! producer threads, each keeping a bounded window of in-flight requests
//! spread round-robin across the served models):
//!
//! 1. **zoo** — the three compiled tiny-zoo engines
//!    ([`edd_zoo::compile_tiny_zoo`]: mixed 4/8/8-bit, uniform int8,
//!    uniform int4) served concurrently from one [`Server`]. End-to-end
//!    numbers; on a small host these are bound by the integer engine's
//!    own images/s ceiling (compare `exp_quantized`), not the front end.
//! 2. **frontend** — three zero-cost stand-in models with
//!    `tiny_derived_arch`'s exact I/O shape (768-value images, 4 logits),
//!    isolating the serving path itself: queue admission, batching,
//!    shard wakeup, ticket fulfilment, and latency accounting. This is
//!    the leg the ≥10k req/s capacity criterion is checked against.
//!
//! Reports sustained request throughput, per-model p50/p95/p99 latency,
//! batch occupancy, and queue depth, and appends one JSON record per
//! model plus a total record per leg to the file named by
//! `EDD_BENCH_JSON` — `scripts/bench_serve.sh` folds that into
//! `BENCH_serve.json`.
//!
//! Run: `cargo run --release -p edd-bench --bin exp_serve [--quick]`

use edd_bench::print_header;
use edd_runtime::telemetry::Histogram;
use edd_runtime::{BatchModel, BatcherConfig, ModelServeStats, ServeConfig, Server, Ticket};
use edd_tensor::Array;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// In-flight window per producer thread. The aggregate outstanding count
/// (`PRODUCERS · WINDOW`) stays far below the queue depth, so a closed
/// loop never trips admission control and every request completes.
const WINDOW: usize = 32;
const PRODUCERS: usize = 4;

/// `tiny_derived_arch`'s I/O shape: 3·16·16 input values, 4 classes.
const IMAGE_LEN: usize = 3 * 16 * 16;
const CLASSES: usize = 4;

/// Zero-cost stand-in with the tiny zoo's exact request shape: one
/// strided partial sum per logit, so the work per request is a few
/// hundred adds — negligible next to the serving path being measured.
struct ShapeOnlyModel;

impl BatchModel for ShapeOnlyModel {
    type Error = String;

    fn image_len(&self) -> usize {
        IMAGE_LEN
    }

    fn num_classes(&self) -> usize {
        CLASSES
    }

    fn infer_batch(&self, images: &[f32], batch: usize) -> Result<Vec<f32>, String> {
        let mut out = Vec::with_capacity(batch * CLASSES);
        for img in images.chunks_exact(IMAGE_LEN).take(batch) {
            for c in 0..CLASSES {
                out.push(img.iter().skip(c).step_by(CLASSES).sum());
            }
        }
        Ok(out)
    }
}

/// Drives `requests_per_producer · PRODUCERS` closed-loop requests through
/// `server` and returns (reqs_per_sec, elapsed_s, per-model stats).
fn drive<M: BatchModel + Send + Sync + 'static>(
    server: Server<M>,
    num_models: usize,
    pool: &[Vec<f32>],
    requests_per_producer: usize,
) -> (f64, f64, Vec<ModelServeStats>) {
    server
        .infer_one(0, pool[0].clone())
        .expect("warmup request");
    let start = Instant::now();
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let server = &server;
            scope.spawn(move || {
                let mut inflight: VecDeque<Ticket> = VecDeque::with_capacity(WINDOW);
                for i in 0..requests_per_producer {
                    let model = (p + i) % num_models;
                    let img = pool[(p * 31 + i) % pool.len()].clone();
                    let ticket = server.submit(model, img).expect("queue sized for load");
                    inflight.push_back(ticket);
                    if inflight.len() == WINDOW {
                        inflight
                            .pop_front()
                            .expect("window nonempty")
                            .wait()
                            .expect("request completes");
                    }
                }
                for ticket in inflight {
                    ticket.wait().expect("request completes");
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let stats = server.shutdown();
    let submitted = (PRODUCERS * requests_per_producer) as u64 + 1; // + warmup
    let completed: u64 = stats.iter().map(|s| s.completed).sum();
    assert_eq!(completed, submitted, "closed loop must complete all");
    let reqs_per_sec = (PRODUCERS * requests_per_producer) as f64 / elapsed;
    (reqs_per_sec, elapsed, stats)
}

fn print_stats(stats: &[ModelServeStats]) {
    println!(
        "{:<22} {:>9} {:>8} {:>8} {:>8} {:>8} {:>7} {:>6}",
        "model", "completed", "p50us", "p95us", "p99us", "maxus", "occup", "qpeak"
    );
    for s in stats {
        println!(
            "{:<22} {:>9} {:>8} {:>8} {:>8} {:>8} {:>7.2} {:>6}",
            s.name,
            s.completed,
            s.latency.p50_us,
            s.latency.p95_us,
            s.latency.p99_us,
            s.latency.max_us,
            s.mean_occupancy(),
            s.queue_peak,
        );
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = ServeConfig {
        batcher: BatcherConfig {
            max_batch: 32,
            max_delay_us: 500,
            queue_depth: 4096,
        },
        shards: 1,
    };

    // ---- Leg 1: the real compiled zoo, end to end. ----
    let zoo: Vec<(String, Arc<edd_core::QuantizedModel>)> = edd_zoo::compile_tiny_zoo(0x0DD5EED)
        .into_iter()
        .map(|(name, model)| (name, Arc::new(model)))
        .collect();
    let num_models = zoo.len();
    assert_eq!(zoo[0].1.image_len(), IMAGE_LEN, "zoo serves 16x16 RGB");
    // Keep handles past Server::start so the engine leg can call the same
    // compiled models directly, without the serving front end in between.
    let engines: Vec<(String, Arc<edd_core::QuantizedModel>)> = zoo.clone();

    // A small pool of fixed random images, cycled by every producer, so
    // input generation stays off the measured path.
    let mut rng = StdRng::seed_from_u64(7);
    let pool: Vec<Vec<f32>> = (0..16)
        .map(|_| Array::randn(&[1, 3, 16, 16], 1.0, &mut rng).data().to_vec())
        .collect();

    print_header("Multi-tenant dynamic-batching serve throughput");
    let per_producer_zoo: usize = if quick { 500 } else { 2_500 };
    println!(
        "leg 1 (zoo, engine-bound): {num_models} models ({}), {PRODUCERS} producers x \
         {per_producer_zoo} requests, window {WINDOW}, max_batch {}, max_delay {} us, \
         {} shard(s)/model\n",
        zoo.iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
            .join(", "),
        config.batcher.max_batch,
        config.batcher.max_delay_us,
        config.shards,
    );
    let server = Server::start(zoo, config);
    let (zoo_rps, zoo_elapsed, zoo_stats) = drive(server, num_models, &pool, per_producer_zoo);
    print_stats(&zoo_stats);
    println!(
        "\nzoo total: {:.0} req/s over {zoo_elapsed:.2} s (bounded by the integer \
         engine's images/s on this host — see exp_quantized)\n",
        zoo_rps
    );

    // ---- Leg 2: front-end capacity with zero-cost models. ----
    let per_producer_fe: usize = if quick { 10_000 } else { 50_000 };
    println!(
        "leg 2 (frontend, serving-path capacity): {num_models} zero-cost models with \
         the same request shape, {PRODUCERS} producers x {per_producer_fe} requests\n"
    );
    let stubs: Vec<(String, Arc<ShapeOnlyModel>)> = (0..num_models)
        .map(|i| (format!("shape-only-{i}"), Arc::new(ShapeOnlyModel)))
        .collect();
    let server = Server::start(stubs, config);
    let (fe_rps, fe_elapsed, fe_stats) = drive(server, num_models, &pool, per_producer_fe);
    print_stats(&fe_stats);
    println!("\nfrontend total: {fe_rps:.0} req/s over {fe_elapsed:.2} s");

    // ---- Leg 3: raw engine latency, one request at a time. ----
    // Direct `infer_batch` calls on the compiled models, no queue or
    // batcher in the loop: this is the per-model engine cost that bounds
    // the zoo leg above. Comparing `serve_engine_*` p50 against
    // `serve_zoo_*` p50 separates engine time from serving overhead.
    let engine_iters: usize = if quick { 100 } else { 400 };
    println!("\nleg 3 (engine, direct calls): {num_models} models x {engine_iters} single-image requests\n");
    let engine_stats = drive_engines(&engines, &pool, engine_iters);
    print_engine_stats(&engine_stats);

    if let Ok(path) = std::env::var("EDD_BENCH_JSON") {
        if !path.is_empty() {
            write_records(&path, "zoo", &zoo_stats, zoo_rps, zoo_elapsed);
            write_records(&path, "frontend", &fe_stats, fe_rps, fe_elapsed);
            write_engine_records(&path, &engine_stats, engine_iters);
        }
    }

    // Machine-readable summary line (grep-able from CI logs).
    let zoo_p99 = zoo_stats
        .iter()
        .map(|s| s.latency.p99_us)
        .max()
        .unwrap_or(0);
    let fe_p99 = fe_stats.iter().map(|s| s.latency.p99_us).max().unwrap_or(0);
    let engine_p50 = engine_stats.iter().map(|s| s.p50_us).max().unwrap_or(0);
    println!(
        "SERVE_RESULT: zoo_reqs_per_sec={zoo_rps:.0} zoo_worst_p99_us={zoo_p99} \
         frontend_reqs_per_sec={fe_rps:.0} frontend_worst_p99_us={fe_p99} \
         engine_worst_p50_us={engine_p50}"
    );
}

/// Per-model percentile summary from the direct-call engine leg.
struct EngineLatency {
    name: String,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    max_us: u64,
}

/// Times `iters` single-image `infer_batch` calls per model (after one
/// untimed warmup each) and summarizes the latency distribution with the
/// same [`Histogram`] percentile convention the serving stats use.
fn drive_engines(
    engines: &[(String, Arc<edd_core::QuantizedModel>)],
    pool: &[Vec<f32>],
    iters: usize,
) -> Vec<EngineLatency> {
    engines
        .iter()
        .map(|(name, model)| {
            model.infer_batch(&pool[0], 1).expect("engine warmup");
            let hist = Histogram::new();
            for i in 0..iters {
                let img = &pool[i % pool.len()];
                let start = Instant::now();
                model.infer_batch(img, 1).expect("engine forward");
                let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                hist.record(us);
            }
            EngineLatency {
                name: name.clone(),
                p50_us: hist.percentile(50.0),
                p95_us: hist.percentile(95.0),
                p99_us: hist.percentile(99.0),
                max_us: hist.max(),
            }
        })
        .collect()
}

fn print_engine_stats(stats: &[EngineLatency]) {
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8}",
        "model", "p50us", "p95us", "p99us", "maxus"
    );
    for s in stats {
        println!(
            "{:<22} {:>8} {:>8} {:>8} {:>8}",
            s.name, s.p50_us, s.p95_us, s.p99_us, s.max_us
        );
    }
}

/// Appends one `serve_engine_<model>` JSONL record per model to `path`.
fn write_engine_records(path: &str, stats: &[EngineLatency], iters: usize) {
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    for s in stats {
        let _ = writeln!(
            f,
            "{{\"name\":\"serve_engine_{}\",\"iters\":{iters},\"p50_us\":{},\
             \"p95_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            s.name, s.p50_us, s.p95_us, s.p99_us, s.max_us,
        );
    }
}

/// Appends one JSONL record per model plus a per-leg total to `path`.
fn write_records(
    path: &str,
    leg: &str,
    stats: &[ModelServeStats],
    reqs_per_sec: f64,
    elapsed: f64,
) {
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    for s in stats {
        let _ = writeln!(
            f,
            "{{\"name\":\"serve_{leg}_{}\",\"completed\":{},\"failed\":{},\
             \"rejected_full\":{},\"batches\":{},\"mean_occupancy\":{:.2},\
             \"full_flushes\":{},\"deadline_flushes\":{},\"queue_peak\":{},\
             \"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            s.name,
            s.completed,
            s.failed,
            s.rejected_full,
            s.batches,
            s.mean_occupancy(),
            s.full_flushes,
            s.deadline_flushes,
            s.queue_peak,
            s.latency.p50_us,
            s.latency.p95_us,
            s.latency.p99_us,
            s.latency.max_us,
        );
    }
    let _ = writeln!(
        f,
        "{{\"name\":\"serve_{leg}_total\",\"reqs_per_sec\":{reqs_per_sec:.0},\
         \"elapsed_s\":{elapsed:.3},\"producers\":{PRODUCERS},\"window\":{WINDOW}}}"
    );
}
