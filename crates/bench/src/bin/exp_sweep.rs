//! Amortization measurement for the multi-target sweep
//! (`edd_core::SweepSearch`).
//!
//! The sweep's claim is that one shared weight phase serves all `T`
//! targets: a `T`-target sweep spends the same weight-step wall clock as a
//! single-target run (a `T`× amortization versus `T` sequential
//! searches), paying only the per-target arch steps — which fan out over
//! the worker pool — on top. This harness checks the claim directly:
//!
//! 1. **T=1** — single-target sweep (gpu), recording per-epoch
//!    `sweep.epoch` telemetry; the weight-phase median is the baseline.
//! 2. **T=3** — the paper's three targets (gpu, fpga-recursive,
//!    fpga-pipelined) over the identical space, data, and epoch count.
//!    The amortization ratio `median weight_ms(T=3) / median
//!    weight_ms(T=1)` must stay ≤ 1.5 (acceptance bound; ~1.0 expected —
//!    the phase runs the same batches either way, round-robined across
//!    targets instead of dedicated to one). Per-target `sweep.target`
//!    events yield the parallel arch-step medians.
//!
//! Appends one JSON record per leg plus per-target arch-step records to
//! the file named by `EDD_BENCH_JSON` — `scripts/bench_sweep.sh` folds
//! that into `BENCH_sweep.json` and gates regressions.
//!
//! Run: `cargo run --release -p edd-bench --bin exp_sweep [--quick]`

use edd_bench::print_header;
use edd_core::{CoSearchConfig, DeviceTarget, SearchSpace, SweepSearch};
use edd_data::{SynthConfig, SynthDataset};
use edd_hw::{FpgaDevice, GpuDevice};
use edd_runtime::telemetry::{self, Event, EventKind, Sink, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Captures `sweep.epoch` / `sweep.target` events in memory so the bench
/// can read the sweep's own phase timings instead of re-measuring around
/// the call (which would fold checkpoint and bookkeeping time in).
#[derive(Default)]
struct CaptureSink {
    /// Per-epoch shared weight-phase milliseconds.
    weight_ms: Mutex<Vec<f64>>,
    /// Per-target arch-phase milliseconds, keyed by target.
    arch_ms: Mutex<BTreeMap<String, Vec<f64>>>,
}

fn field_f64(fields: &[(&str, Value)], key: &str) -> Option<f64> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Value::F64(x) => Some(*x),
            _ => None,
        })
}

fn field_str(fields: &[(&str, Value)], key: &str) -> Option<String> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Value::Str(s) => Some(s.clone()),
            _ => None,
        })
}

impl Sink for CaptureSink {
    fn emit(&self, event: &Event<'_>) {
        if event.kind != EventKind::Event {
            return;
        }
        match event.name {
            "sweep.epoch" => {
                if let Some(ms) = field_f64(event.fields, "weight_ms") {
                    self.weight_ms.lock().expect("capture").push(ms);
                }
            }
            "sweep.target" => {
                if let (Some(target), Some(ms)) = (
                    field_str(event.fields, "target"),
                    field_f64(event.fields, "arch_ms"),
                ) {
                    self.arch_ms
                        .lock()
                        .expect("capture")
                        .entry(target)
                        .or_default()
                        .push(ms);
                }
            }
            _ => {}
        }
    }
}

fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "no samples captured");
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

/// Runs one sweep over `targets` and returns (median weight-phase ms,
/// per-target median arch-phase ms).
fn run_leg(targets: Vec<DeviceTarget>, blocks: usize, epochs: usize) -> (f64, Vec<(String, f64)>) {
    let sink = Arc::new(CaptureSink::default());
    telemetry::set_global(sink.clone());

    let mut rng = StdRng::seed_from_u64(0x5EED);
    // Quant menu shared by the gpu and fpga families.
    let space = SearchSpace::tiny(blocks, 16, 4, vec![8, 16]);
    let config = CoSearchConfig {
        epochs,
        warmup_epochs: 1,
        ..CoSearchConfig::default()
    };
    let mut sweep = SweepSearch::new(space, targets, config, &mut rng).expect("sweep setup");
    let data = SynthDataset::new(SynthConfig::tiny());
    let train = data.split(6, 16, 1);
    let val = data.split(3, 16, 2);
    sweep.run(&train, &val, &mut rng).expect("sweep run");
    telemetry::clear_global();

    let weight = median(&sink.weight_ms.lock().expect("capture"));
    let arch: Vec<(String, f64)> = sink
        .arch_ms
        .lock()
        .expect("capture")
        .iter()
        .map(|(k, v)| (k.clone(), median(v)))
        .collect();
    (weight, arch)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (blocks, epochs) = if quick { (3, 4) } else { (4, 8) };

    print_header("Multi-target sweep weight-step amortization");
    println!(
        "space: {blocks} blocks, quant {{8,16}}; {epochs} epochs, 6x16 train / 3x16 val batches\n"
    );

    println!("leg 1 (T=1, gpu): single-target baseline...");
    let (weight_1, _) = run_leg(
        vec![DeviceTarget::Gpu(GpuDevice::titan_rtx())],
        blocks,
        epochs,
    );
    println!("  median weight phase: {weight_1:.1} ms/epoch\n");

    println!("leg 2 (T=3, gpu + fpga-recursive + fpga-pipelined): amortized sweep...");
    let (weight_3, arch_3) = run_leg(
        vec![
            DeviceTarget::Gpu(GpuDevice::titan_rtx()),
            DeviceTarget::FpgaRecursive(FpgaDevice::zcu102()),
            DeviceTarget::FpgaPipelined(FpgaDevice::zc706()),
        ],
        blocks,
        epochs,
    );
    let ratio = weight_3 / weight_1;
    println!("  median weight phase: {weight_3:.1} ms/epoch");
    println!("  amortization ratio (T=3 / T=1): {ratio:.3}  (3 sequential searches would be ~3.0)");
    for (target, ms) in &arch_3 {
        println!("  arch phase [{target}]: median {ms:.1} ms/epoch (parallel across targets)");
    }

    // Acceptance: sharing the weight phase across 3 targets must not cost
    // more than 1.5x a single-target weight phase.
    let pass = ratio <= 1.5;
    if !pass {
        eprintln!("FAIL: amortization ratio {ratio:.3} exceeds the 1.5 acceptance bound");
    }

    if let Ok(path) = std::env::var("EDD_BENCH_JSON") {
        if !path.is_empty() {
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(
                    f,
                    "{{\"name\":\"sweep_weight_phase_t1\",\"targets\":1,\"blocks\":{blocks},\
                     \"epochs\":{epochs},\"median_weight_ms\":{weight_1:.3}}}"
                );
                let _ = writeln!(
                    f,
                    "{{\"name\":\"sweep_weight_phase_t3\",\"targets\":3,\"blocks\":{blocks},\
                     \"epochs\":{epochs},\"median_weight_ms\":{weight_3:.3},\
                     \"amortization_ratio\":{ratio:.4}}}"
                );
                for (target, ms) in &arch_3 {
                    let _ = writeln!(
                        f,
                        "{{\"name\":\"sweep_arch_step_{target}\",\"targets\":3,\
                         \"median_arch_ms\":{ms:.3}}}"
                    );
                }
            }
        }
    }

    // Machine-readable summary line (grep-able from CI logs).
    let worst_arch = arch_3.iter().map(|(_, ms)| *ms).fold(0.0f64, f64::max);
    println!(
        "SWEEP_RESULT: weight_ms_t1={weight_1:.1} weight_ms_t3={weight_3:.1} \
         amortization_ratio={ratio:.3} worst_arch_ms={worst_arch:.1} pass={pass}"
    );
    assert!(pass, "amortization acceptance bound violated");
}
