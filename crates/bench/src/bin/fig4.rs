//! Regenerates paper **Fig. 4**: the architectures of the three EDD-Net
//! models, printed block-by-block in the figure's `MB e k×k` notation —
//! and then *reproduces the search itself* at laptop scale: one co-search
//! per device target on SynthImageNet, printing the three searched
//! architectures next to the transcribed published ones.
//!
//! Run: `cargo run -p edd-bench --bin fig4 [--quick]`

use edd_bench::print_header;
use edd_core::{CoSearch, CoSearchConfig, DeviceTarget, SearchSpace};
use edd_data::{SynthConfig, SynthDataset};
use edd_hw::{FpgaDevice, GpuDevice};
use edd_zoo::edd_nets::{EDD_NET_1_BLOCKS, EDD_NET_2_BLOCKS, EDD_NET_3_BLOCKS};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn print_published(name: &str, blocks: &[(usize, usize, usize, usize)]) {
    println!("\n{name} (transcribed from paper Fig. 4):");
    let mut line = String::from("  ");
    for (i, &(e, k, c, s)) in blocks.iter().enumerate() {
        line.push_str(&format!(
            "MB{e} {k}x{k}/{c}{}",
            if s == 2 { "*" } else { "" }
        ));
        if (i + 1) % 5 == 0 {
            println!("{line}");
            line = String::from("  ");
        } else {
            line.push_str("  ");
        }
    }
    if line.trim().is_empty() {
        return;
    }
    println!("{line}");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    print_header("Fig. 4 (a): published EDD-Net architectures (* = stride 2)");
    print_published("EDD-Net-1 [GPU]", &EDD_NET_1_BLOCKS);
    print_published("EDD-Net-2 [recursive FPGA]", &EDD_NET_2_BLOCKS);
    print_published("EDD-Net-3 [pipelined FPGA]", &EDD_NET_3_BLOCKS);

    print_header("Fig. 4 (b): laptop-scale co-search reproduction (SynthImageNet)");
    let (blocks_n, epochs, tbatches, vbatches) = if quick { (3, 3, 2, 1) } else { (5, 8, 6, 3) };
    let data = SynthDataset::new(SynthConfig {
        num_classes: 6,
        image_size: 16,
        ..SynthConfig::default()
    });
    let train = data.split(tbatches, 16, 1);
    let val = data.split(vbatches, 16, 2);

    let targets: Vec<(&str, DeviceTarget, Vec<u32>)> = vec![
        (
            "EDD-Tiny-1 [GPU]",
            DeviceTarget::Gpu(GpuDevice::titan_rtx()),
            vec![8, 16, 32],
        ),
        (
            "EDD-Tiny-2 [recursive FPGA]",
            DeviceTarget::FpgaRecursive(FpgaDevice::zcu102()),
            vec![4, 8, 16],
        ),
        (
            "EDD-Tiny-3 [pipelined FPGA]",
            DeviceTarget::FpgaPipelined(FpgaDevice::zc706()),
            vec![4, 8, 16],
        ),
    ];

    for (label, target, quants) in targets {
        let mut rng = StdRng::seed_from_u64(0xF16);
        let space = SearchSpace::tiny(blocks_n, 16, 6, quants);
        let config = CoSearchConfig {
            epochs,
            warmup_epochs: 1,
            ..CoSearchConfig::default()
        };
        let mut search =
            CoSearch::new(space, target, config, &mut rng).expect("quant menu fits target");
        let outcome = search.run(&train, &val, &mut rng).expect("search runs");
        println!("\n{label}:");
        print!("{}", outcome.derived.summary());
        let last = outcome.history.last().expect("at least one epoch");
        println!(
            "  search: {} epochs, final train acc {:.2}, val acc {:.2}, E[perf] {:.3} ms, E[res] {:.0}",
            outcome.history.len(),
            last.train_acc,
            last.val_acc,
            last.expected_perf,
            last.expected_res
        );
    }

    print_header("Shape note");
    println!(
        "The paper observes EDD-Net-3 (pipelined target) is shallower with larger\n\
         kernels/channels, and EDD-Net-2 (recursive target) concentrates on few op\n\
         types. At laptop scale the analogous signal is the per-target divergence of\n\
         the searched kernel/expansion/quantization histograms above."
    );
}
