//! Regenerates paper **Table 1**: "Comparisons with existing NAS solutions"
//! — test error, GPU latency (Titan RTX) and FPGA latency (ZCU102,
//! CHaiDNN-style recursive accelerator, 16-bit) for four baselines, five
//! hardware-aware NAS models and the two EDD-Nets.
//!
//! Test errors are the paper's published ImageNet numbers (ImageNet is not
//! available offline; see DESIGN.md §2). Latencies are *modeled*: the GPU
//! roofline and the recursive-FPGA analytic model (Eq. 11–13) with
//! post-search-tuned parallel factors. EDD nets run the GPU at their
//! searched 16-bit precision; all other models run fp32 on GPU and every
//! model runs 16-bit on FPGA, as in the paper.
//!
//! Run: `cargo run -p edd-bench --bin table1`

use edd_bench::{fpga_recursive_latency_ms, gpu_latency_ms, print_header, ranking_agreement};
use edd_hw::gpu::GpuPrecision;
use edd_hw::{FpgaDevice, GpuDevice, NetworkShape};
use edd_zoo::{self as zoo, TABLE_1};

fn models() -> Vec<(NetworkShape, GpuPrecision)> {
    vec![
        (zoo::googlenet(), GpuPrecision::Fp32),
        (zoo::mobilenet_v2(), GpuPrecision::Fp32),
        (zoo::shufflenet_v2(), GpuPrecision::Fp32),
        (zoo::resnet18(), GpuPrecision::Fp32),
        (zoo::mnasnet_a1(), GpuPrecision::Fp32),
        (zoo::fbnet_c(), GpuPrecision::Fp32),
        (zoo::proxyless_cpu(), GpuPrecision::Fp32),
        (zoo::proxyless_mobile(), GpuPrecision::Fp32),
        (zoo::proxyless_gpu(), GpuPrecision::Fp32),
        (zoo::edd_net_1(), GpuPrecision::Fp16),
        (zoo::edd_net_2(), GpuPrecision::Fp16),
    ]
}

fn main() {
    let rtx = GpuDevice::titan_rtx();
    let zcu = FpgaDevice::zcu102();
    let models = models();

    print_header("Table 1: Comparisons with existing NAS solutions (modeled vs published)");
    println!(
        "{:<18} {:>6} {:>6} | {:>9} {:>9} | {:>9} {:>9}",
        "Model", "Top-1", "Top-5", "GPU model", "GPU paper", "FPGA modl", "FPGA papr"
    );
    println!("{}", "-".repeat(78));

    let mut gpu_modeled = Vec::new();
    let mut gpu_published = Vec::new();
    let mut fpga_modeled = Vec::new();
    let mut fpga_published = Vec::new();

    for ((net, prec), row) in models.iter().zip(TABLE_1.iter()) {
        let gpu = gpu_latency_ms(net, *prec, &rtx);
        let fpga = row
            .fpga_ms
            .map(|_| fpga_recursive_latency_ms(net, 16, &zcu));
        println!(
            "{:<18} {:>6.1} {:>6} | {:>7.2}ms {:>7.2}ms | {:>9} {:>9}",
            row.name,
            row.top1_err,
            row.top5_err.map_or("NA".into(), |v| format!("{v:.1}")),
            gpu,
            row.gpu_ms.unwrap_or(f32::NAN),
            fpga.map_or("NA".into(), |v| format!("{v:7.2}ms")),
            row.fpga_ms.map_or("NA".into(), |v| format!("{v:7.2}ms")),
        );
        if let Some(p) = row.gpu_ms {
            gpu_modeled.push(gpu);
            gpu_published.push(f64::from(p));
        }
        if let (Some(m), Some(p)) = (fpga, row.fpga_ms) {
            fpga_modeled.push(m);
            fpga_published.push(f64::from(p));
        }
    }

    print_header("Shape checks");
    // 1. EDD-Net-1 is faster on GPU than every *existing* (non-EDD)
    //    hardware-aware NAS model — the paper's headline comparison.
    let edd1_gpu = gpu_latency_ms(&models[9].0, models[9].1, &rtx);
    let mut fastest = true;
    for (i, row) in TABLE_1.iter().enumerate() {
        if row.is_nas && !row.name.starts_with("EDD") {
            let l = gpu_latency_ms(&models[i].0, models[i].1, &rtx);
            if l < edd1_gpu {
                fastest = false;
            }
        }
    }
    println!(
        "[{}] EDD-Net-1 is faster on GPU than every existing hardware-aware NAS model",
        if fastest { "PASS" } else { "FAIL" }
    );

    // 2. Speedup vs Proxyless-gpu ~1.40x (paper claim).
    let pg_gpu = gpu_latency_ms(&models[8].0, models[8].1, &rtx);
    let speedup = pg_gpu / edd1_gpu;
    println!(
        "[{}] EDD-Net-1 vs Proxyless-gpu speedup: modeled {:.2}x, paper {:.2}x",
        if (1.2..=1.7).contains(&speedup) {
            "PASS"
        } else {
            "FAIL"
        },
        speedup,
        zoo::published::claims::GPU_SPEEDUP
    );

    // 3. EDD-Net-2 beats every Proxyless variant and FBNet on FPGA.
    let edd2_fpga = fpga_recursive_latency_ms(&models[10].0, 16, &zcu);
    let mut beats_all = true;
    for i in [5usize, 6, 7, 8] {
        let l = fpga_recursive_latency_ms(&models[i].0, 16, &zcu);
        if l < edd2_fpga {
            beats_all = false;
        }
    }
    let pg_fpga = fpga_recursive_latency_ms(&models[8].0, 16, &zcu);
    println!(
        "[{}] EDD-Net-2 beats FBNet-C and all Proxyless variants on recursive FPGA",
        if beats_all { "PASS" } else { "FAIL" }
    );
    println!(
        "       EDD-Net-2 vs Proxyless-gpu: modeled {:.2}x, paper {:.2}x",
        pg_fpga / edd2_fpga,
        zoo::published::claims::FPGA_LATENCY_GAIN
    );

    // 4. Ranking agreement.
    let gpu_tau = ranking_agreement(&gpu_modeled, &gpu_published);
    let fpga_tau = ranking_agreement(&fpga_modeled, &fpga_published);
    println!(
        "[{}] GPU latency ranking agreement with paper: {:.2} (>= 0.75)",
        if gpu_tau >= 0.75 { "PASS" } else { "FAIL" },
        gpu_tau
    );
    println!(
        "[INFO] FPGA latency ranking agreement with paper: {fpga_tau:.2} (board-level effects\n       on CHaiDNN are outside the analytic Eq. 11-13 model; see EXPERIMENTS.md)"
    );
}
