//! Regenerates paper **Table 2**: "EDD-Net-1 accuracy and latency on
//! 1080 Ti" under 32-bit floating, 16-bit floating and 8-bit integer
//! TensorRT precisions.
//!
//! The latency column is the GPU roofline model of EDD-Net-1 on the GTX
//! 1080 Ti descriptor. The accuracy column pairs the paper's published
//! ImageNet errors with a *measured* SynthImageNet proxy: a small
//! EDD-style network is trained at each weight precision
//! (straight-through fake quantization) and its test error is reported —
//! checking the paper's shape claim that 16-bit matches 32-bit while 8-bit
//! loses accuracy.
//!
//! Run: `cargo run -p edd-bench --bin table2 [--quick]`

use edd_bench::print_header;
use edd_core::{DerivedArch, DeviceTarget, SearchSpace};
use edd_data::{SynthConfig, SynthDataset};
use edd_hw::gpu::GpuPrecision;
use edd_hw::{eval_gpu, GpuDevice};
use edd_nn::{evaluate, Batch, Module, QuantSpec};
use edd_tensor::optim::{Optimizer, Sgd};
use edd_tensor::Tensor;
use edd_zoo::{edd_net_1, TABLE_2};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trains a tiny EDD-style net with fake-quantized weights at `bits` and
/// returns its test error (%).
fn quantized_proxy_error(bits: u32, train: &[Batch], test: &[Batch], epochs: usize) -> f32 {
    let mut rng = StdRng::seed_from_u64(2024);
    let space = SearchSpace::tiny(3, 16, 16, vec![bits]);
    let target = DeviceTarget::Gpu(GpuDevice::gtx_1080_ti());
    // A fixed mid-menu architecture (k=3, e=4 everywhere) trained per
    // precision so only the quantization differs.
    let arch = {
        use edd_core::ArchParams;
        let params = ArchParams::init(&space, &target, &mut rng);
        DerivedArch::from_params(&space, &target, &params)
    };
    let model = arch.build_model(&mut rng);
    let mut opt = Sgd::new(model.parameters(), 0.05, 0.9, 1e-4);
    let spec = (bits < 32).then(|| QuantSpec::bits(bits));
    // Train at full precision, then quantize post-training — the TensorRT
    // flow Table 2 describes ("after re-training and fine-tuning using
    // TensorRT under different data precisions").
    for _ in 0..epochs {
        model.set_training(true);
        for batch in train {
            opt.zero_grad();
            let x = Tensor::constant(batch.images.clone());
            let logits = model.forward(&x).expect("shapes");
            let loss = logits.cross_entropy(&batch.labels).expect("shapes");
            loss.backward();
            opt.step();
        }
    }
    let stats = evaluate_quantized(&model, test, spec);
    (1.0 - stats) * 100.0
}

/// Evaluates with weights snapped to the quantization grid (post-training
/// quantization, mirroring TensorRT calibration).
fn evaluate_quantized(model: &edd_nn::Sequential, test: &[Batch], spec: Option<QuantSpec>) -> f32 {
    // Snap a copy of every parameter to the grid, evaluate, then restore.
    let params = model.parameters();
    let originals: Vec<_> = params.iter().map(edd_tensor::Tensor::value_clone).collect();
    if let Some(q) = spec {
        for p in &params {
            let range = edd_nn::resolve_range(p, q);
            let levels = (1u64 << (q.bits.clamp(1, 31) - 1)) as f32;
            let step = range / levels;
            p.update_value(|a| a.map_inplace(|v| (v.clamp(-range, range) / step).round() * step));
        }
    }
    model.set_training(false);
    let stats = evaluate(model, test).expect("shapes");
    for (p, orig) in params.iter().zip(originals) {
        p.set_value(orig);
    }
    stats.top1
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let net = edd_net_1();
    let ti = GpuDevice::gtx_1080_ti();

    print_header("Table 2: EDD-Net-1 accuracy and latency on 1080 Ti");

    // Latency side (modeled roofline).
    let mut modeled_ms = Vec::new();
    for entry in &TABLE_2 {
        let prec = GpuPrecision::from_bits(entry.bits).expect("table bits supported");
        modeled_ms.push(eval_gpu(&net, prec, &ti).latency_ms);
    }

    // Accuracy side (SynthImageNet proxy, post-training quantization). A
    // hard configuration (many classes, strong noise) keeps the task off
    // the 0%-error ceiling so precision effects are visible.
    let data = SynthDataset::new(SynthConfig {
        num_classes: 16,
        image_size: 16,
        noise_std: 0.9,
        ..SynthConfig::default()
    });
    let (batches, epochs) = if quick { (4, 2) } else { (12, 8) };
    let train = data.split(batches, 16, 1);
    let test = data.split(6, 16, 2);
    let mut proxy_err = Vec::new();
    for entry in &TABLE_2 {
        proxy_err.push(quantized_proxy_error(entry.bits, &train, &test, epochs));
    }

    println!(
        "{:<18} {:>10} {:>10} {:>12} {:>12}",
        "Precision", "err paper", "err proxy", "lat modeled", "lat paper"
    );
    println!("{}", "-".repeat(68));
    for (i, entry) in TABLE_2.iter().enumerate() {
        println!(
            "{:<18} {:>9.1}% {:>9.1}% {:>10.2}ms {:>10.2}ms",
            entry.precision, entry.test_err, proxy_err[i], modeled_ms[i], entry.latency_ms
        );
    }

    // Extended precision sweep: the paper stops at 8-bit (TensorRT's
    // floor); sweeping further down locates the accuracy cliff the
    // quantization search variable Φ is navigating.
    print_header("Extended precision sweep (beyond Table 2's TensorRT floor)");
    let mut sweep_err = Vec::new();
    for bits in [6u32, 4, 3, 2] {
        let e = quantized_proxy_error(bits, &train, &test, epochs);
        println!("  {bits:>2}-bit weights: proxy test error {e:.1}%");
        sweep_err.push(e);
    }

    print_header("Shape checks");
    let monotone = modeled_ms[0] > modeled_ms[1] && modeled_ms[1] > modeled_ms[2];
    println!(
        "[{}] latency decreases monotonically 32 -> 16 -> 8 bit",
        if monotone { "PASS" } else { "FAIL" }
    );
    let ratios_ok = (modeled_ms[0] / modeled_ms[1]
        - f64::from(TABLE_2[0].latency_ms / TABLE_2[1].latency_ms))
    .abs()
        < 0.4
        && (modeled_ms[1] / modeled_ms[2]
            - f64::from(TABLE_2[1].latency_ms / TABLE_2[2].latency_ms))
        .abs()
            < 0.4;
    println!(
        "[{}] precision-speedup ratios within 0.4 of paper's",
        if ratios_ok { "PASS" } else { "FAIL" }
    );
    let acc_shape = proxy_err[2] >= proxy_err[1] - 1.0;
    println!(
        "[{}] 8-bit proxy error >= 16-bit proxy error (quantization hurts accuracy)",
        if acc_shape { "PASS" } else { "FAIL" }
    );
    let cliff = sweep_err.last().copied().unwrap_or(0.0) > proxy_err[0] + 5.0;
    println!(
        "[{}] aggressive quantization (2-bit) degrades accuracy well past full precision",
        if cliff { "PASS" } else { "FAIL" }
    );
}
