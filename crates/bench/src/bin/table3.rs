//! Regenerates paper **Table 3**: "Comparison of EDD-Net-3 with
//! DNNBuilder" — throughput of VGG16 vs EDD-Net-3 on a pipelined
//! accelerator on the ZC706 (900 DSPs, 16-bit fixed point).
//!
//! Throughput is the pipelined analytic model (Eq. 7/8 aggregation over
//! Eq. 11–13 stages) with work-proportional stage tuning; errors are the
//! paper's published ImageNet numbers.
//!
//! Run: `cargo run -p edd-bench --bin table3`

use edd_bench::print_header;
use edd_hw::{eval_pipelined, tune_pipelined, FpgaDevice};
use edd_zoo::{edd_net_3, published::claims, vgg16, TABLE_3};

fn main() {
    let zc706 = FpgaDevice::zc706();
    let nets = [vgg16(), edd_net_3()];

    print_header("Table 3: EDD-Net-3 vs DNNBuilder VGG16 on ZC706 (900 DSPs, 16-bit)");
    println!(
        "{:<12} {:>8} {:>8} {:>14} {:>14} {:>8}",
        "Model", "Top-1", "Top-5", "fps modeled", "fps paper", "DSPs"
    );
    println!("{}", "-".repeat(70));

    let mut modeled = Vec::new();
    for (net, row) in nets.iter().zip(TABLE_3.iter()) {
        let imp = tune_pipelined(net, 16, &zc706);
        let report = eval_pipelined(net, &imp, &zc706).expect("stage counts match");
        println!(
            "{:<12} {:>7.1}% {:>7.1}% {:>12.1}fps {:>12.1}fps {:>8.0}",
            row.name,
            row.top1_err,
            row.top5_err,
            report.throughput_fps,
            row.throughput_fps,
            report.dsps
        );
        modeled.push(report);
    }

    print_header("Shape checks");
    let gain = modeled[1].throughput_fps / modeled[0].throughput_fps;
    println!(
        "[{}] EDD-Net-3 throughput gain over VGG16: modeled {:.2}x, paper {:.2}x (band 1.2-1.7)",
        if (1.2..=1.7).contains(&gain) {
            "PASS"
        } else {
            "FAIL"
        },
        gain,
        claims::FPGA_THROUGHPUT_GAIN
    );
    let within_budget = modeled.iter().all(|r| r.dsps <= zc706.dsp_budget * 1.01);
    println!(
        "[{}] both implementations fit the 900-DSP budget (+1% slack)",
        if within_budget { "PASS" } else { "FAIL" }
    );
    // Per the paper: EDD-Net-3 also has much better accuracy (25.6 vs 29.5
    // top-1 error) — echoed from the published table.
    println!(
        "[PASS] accuracy advantage (published): {:.1}% vs {:.1}% top-1 error",
        TABLE_3[1].top1_err, TABLE_3[0].top1_err
    );
}
