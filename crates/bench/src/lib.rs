//! # edd-bench
//!
//! Benchmark harness for the EDD reproduction: one binary per table/figure
//! of the paper's evaluation (`table1`, `table2`, `table3`, `fig4`, plus
//! ablations), each printing modeled values next to the paper's published
//! numbers. This library crate holds the shared report-formatting and
//! model-evaluation helpers.

#![warn(missing_docs)]

use edd_hw::gpu::GpuPrecision;
use edd_hw::{eval_gpu, eval_recursive, tune_recursive, FpgaDevice, GpuDevice, NetworkShape};

/// Evaluates a network's GPU latency (ms) with the roofline model.
#[must_use]
pub fn gpu_latency_ms(net: &NetworkShape, precision: GpuPrecision, device: &GpuDevice) -> f64 {
    eval_gpu(net, precision, device).latency_ms
}

/// Evaluates a network's recursive-FPGA latency (ms) at uniform `bits`
/// precision with post-search-tuned parallel factors.
#[must_use]
pub fn fpga_recursive_latency_ms(net: &NetworkShape, bits: u32, device: &FpgaDevice) -> f64 {
    let imp = tune_recursive(net, bits, device);
    eval_recursive(net, &imp, device)
        .expect("tuned impl covers all classes")
        .latency_ms
}

/// Formats a ratio comparison line: `label: modeled X vs published Y
/// (ratio R)`.
#[must_use]
pub fn compare_line(label: &str, modeled: f64, published: f64) -> String {
    format!(
        "{label:<22} modeled {modeled:8.2}   published {published:8.2}   (model/paper {:.2}x)",
        modeled / published
    )
}

/// Kendall-tau-style ranking agreement between two score vectors: the
/// fraction of concordant pairs (1.0 = identical ranking).
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than 2 entries.
#[must_use]
pub fn ranking_agreement(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    assert!(a.len() >= 2, "need at least two entries to rank");
    let mut concordant = 0usize;
    let mut total = 0usize;
    for i in 0..a.len() {
        for j in (i + 1)..a.len() {
            total += 1;
            if ((a[i] - a[j]) * (b[i] - b[j])) >= 0.0 {
                concordant += 1;
            }
        }
    }
    concordant as f64 / total as f64
}

/// Prints the kernel-runtime counters accumulated so far and, when
/// `EDD_BENCH_JSON` names a file, appends them as one JSONL record named
/// `kernel_runtime_counters` — the same file the vendored criterion shim
/// writes its timing records to, so `scripts/bench.sh` folds both into
/// `BENCH_supernet.json`.
pub fn write_kernel_counters_record() {
    let stats = edd_tensor::stats::snapshot();
    let util = stats.pool_utilization().unwrap_or(0.0);
    let nproc = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let threads = edd_tensor::kernel::pool::num_threads();
    let simd = edd_tensor::kernel::simd_label();
    println!(
        "kernel counters: {} parallel / {} inline jobs (utilization {util:.2}), \
         {} tasks, {} workers, scratch high-water {} bytes",
        stats.pool_parallel_jobs,
        stats.pool_inline_jobs,
        stats.pool_tasks,
        stats.pool_workers_spawned,
        stats.scratch_high_water_bytes
    );
    println!(
        "bench context: nproc {nproc}, threads {threads}, simd {simd}; \
         buffer pool {} hits / {} misses, {} fresh / {} recycled bytes",
        stats.buffer_pool_hits,
        stats.buffer_pool_misses,
        stats.buffer_fresh_bytes,
        stats.buffer_recycled_bytes
    );
    let gemm = edd_tensor::kernel::select::gemm_label();
    println!(
        "gemm selection ({gemm}): {} vecmat / {} skinny-n / {} square / {} conv \
         / {} generic; panels {} built, {} hits / {} misses",
        stats.select_vecmat,
        stats.select_skinny_n,
        stats.select_square,
        stats.select_conv,
        stats.select_generic,
        stats.pack_panels_built,
        stats.pack_panel_hits,
        stats.pack_panel_misses
    );
    let Ok(path) = std::env::var("EDD_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"name\":\"kernel_runtime_counters\",\"pool_parallel_jobs\":{},\
         \"pool_inline_jobs\":{},\"pool_tasks\":{},\"pool_workers_spawned\":{},\
         \"pool_utilization\":{util:.4},\"scratch_high_water_bytes\":{},\
         \"nproc\":{nproc},\"num_threads\":{threads},\"simd\":\"{simd}\",\
         \"gemm\":\"{gemm}\",\
         \"buffer_fresh_bytes\":{},\"buffer_recycled_bytes\":{},\
         \"buffer_pool_hits\":{},\"buffer_pool_misses\":{},\
         \"select_vecmat\":{},\"select_skinny_n\":{},\"select_square\":{},\
         \"select_conv\":{},\"select_generic\":{},\"pack_panels_built\":{},\
         \"pack_panel_hits\":{},\"pack_panel_misses\":{}}}\n",
        stats.pool_parallel_jobs,
        stats.pool_inline_jobs,
        stats.pool_tasks,
        stats.pool_workers_spawned,
        stats.scratch_high_water_bytes,
        stats.buffer_fresh_bytes,
        stats.buffer_recycled_bytes,
        stats.buffer_pool_hits,
        stats.buffer_pool_misses,
        stats.select_vecmat,
        stats.select_skinny_n,
        stats.select_square,
        stats.select_conv,
        stats.select_generic,
        stats.pack_panels_built,
        stats.pack_panel_hits,
        stats.pack_panel_misses
    );
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// Prints a horizontal rule + title for table output.
pub fn print_header(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_agreement_perfect_and_inverted() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(ranking_agreement(&a, &[10.0, 20.0, 30.0]), 1.0);
        assert_eq!(ranking_agreement(&a, &[3.0, 2.0, 1.0]), 0.0);
    }

    #[test]
    fn compare_line_contains_numbers() {
        let s = compare_line("X", 2.0, 4.0);
        assert!(s.contains("0.50x"));
    }

    #[test]
    fn fpga_helper_runs() {
        let net = edd_zoo::mobilenet_v2();
        let ms = fpga_recursive_latency_ms(&net, 16, &FpgaDevice::zcu102());
        assert!(ms > 0.0 && ms.is_finite());
    }

    #[test]
    fn gpu_helper_runs() {
        let net = edd_zoo::resnet18();
        let ms = gpu_latency_ms(&net, GpuPrecision::Fp32, &GpuDevice::titan_rtx());
        assert!(ms > 0.0 && ms.is_finite());
    }
}
