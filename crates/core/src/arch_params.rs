//! The searched variables of the fused space `{A, I}`: operator logits `Θ`,
//! quantization logits `Φ` and parallel factors `pf` (paper §3.1–3.2,
//! Fig. 2).
//!
//! The *structure* of `Φ` and `pf` depends on the device target:
//!
//! * pipelined FPGA — per-(block, op) `Φ` (`N×M×Q`) and `pf` (`N×M`);
//! * recursive FPGA — shared per op class (`M×Q` and `M`), enforcing the
//!   sharing constraint `Iᵢᵐ = Iⱼᵐ`;
//! * GPU — one global `Φ` (`Q`) for uniform network precision, no `pf`.

use crate::space::SearchSpace;
use crate::target::DeviceTarget;
use edd_hw::{initial_pf_pipelined, initial_pf_recursive};
use edd_tensor::{Array, Tensor};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Plain-data snapshot of [`ArchParams`] for checkpointing a search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchCheckpoint {
    /// Per-block operator logits.
    pub theta: Vec<Vec<f32>>,
    /// Quantization logits in the layout's natural order (per-op row-major,
    /// per-class, or the single global vector).
    pub phi: Vec<Vec<f32>>,
    /// Parallel factors in the layout's natural order (empty when the
    /// target has none).
    pub pf: Vec<f32>,
}

/// Quantization-logit layout per target.
#[derive(Debug)]
pub enum PhiParams {
    /// `N×M` vectors of `Q` logits (pipelined FPGA).
    PerOp(Vec<Vec<Tensor>>),
    /// `M` vectors of `Q` logits shared across blocks (recursive FPGA).
    PerClass(Vec<Tensor>),
    /// One global vector of `Q` logits (GPU uniform precision).
    Global(Tensor),
}

/// Parallel-factor layout per target.
#[derive(Debug)]
pub enum PfParams {
    /// `N×M` scalars (pipelined FPGA).
    PerOp(Vec<Vec<Tensor>>),
    /// `M` scalars shared across blocks (recursive FPGA).
    PerClass(Vec<Tensor>),
    /// No parallel factors (GPU).
    None,
}

/// All differentiable architecture/implementation variables of one search.
#[derive(Debug)]
pub struct ArchParams {
    /// Per-block operator logits `θᵢ` (each of length `M`).
    pub theta: Vec<Tensor>,
    /// Quantization logits `Φ`.
    pub phi: PhiParams,
    /// Parallel factors `pf` (log₂ of parallelism).
    pub pf: PfParams,
}

impl ArchParams {
    /// Initializes the variables for `space` under `target`:
    /// logits near zero (uniform sampling) with small symmetry-breaking
    /// noise, and `pf` at the paper's §5 budget-splitting values.
    #[must_use]
    pub fn init<R: Rng + ?Sized>(space: &SearchSpace, target: &DeviceTarget, rng: &mut R) -> Self {
        let n = space.num_blocks();
        let m = space.num_ops();
        let q = space.num_quant();
        let noise = 0.01;
        let theta = (0..n)
            .map(|_| Tensor::param(Array::randn(&[m], noise, rng)))
            .collect();
        let phi = match target {
            DeviceTarget::Gpu(_) => {
                PhiParams::Global(Tensor::param(Array::randn(&[q], noise, rng)))
            }
            DeviceTarget::Dedicated(_) => PhiParams::PerOp(
                (0..n)
                    .map(|_| {
                        (0..m)
                            .map(|_| Tensor::param(Array::randn(&[q], noise, rng)))
                            .collect()
                    })
                    .collect(),
            ),
            DeviceTarget::FpgaRecursive(_) => PhiParams::PerClass(
                (0..m)
                    .map(|_| Tensor::param(Array::randn(&[q], noise, rng)))
                    .collect(),
            ),
            DeviceTarget::FpgaPipelined(_) => PhiParams::PerOp(
                (0..n)
                    .map(|_| {
                        (0..m)
                            .map(|_| Tensor::param(Array::randn(&[q], noise, rng)))
                            .collect()
                    })
                    .collect(),
            ),
        };
        let pf = match target {
            DeviceTarget::Gpu(_) | DeviceTarget::Dedicated(_) => PfParams::None,
            DeviceTarget::FpgaRecursive(d) => {
                let pf0 = initial_pf_recursive(d.dsp_budget, m);
                PfParams::PerClass(
                    (0..m)
                        .map(|_| Tensor::param(Array::scalar(pf0 as f32)))
                        .collect(),
                )
            }
            DeviceTarget::FpgaPipelined(d) => {
                let pf0 = initial_pf_pipelined(d.dsp_budget, m, n);
                PfParams::PerOp(
                    (0..n)
                        .map(|_| {
                            (0..m)
                                .map(|_| Tensor::param(Array::scalar(pf0 as f32)))
                                .collect()
                        })
                        .collect(),
                )
            }
        };
        ArchParams { theta, phi, pf }
    }

    /// The quantization logits governing op `m` of block `i`.
    #[must_use]
    pub fn phi_logits(&self, i: usize, m: usize) -> &Tensor {
        match &self.phi {
            PhiParams::PerOp(v) => &v[i][m],
            PhiParams::PerClass(v) => &v[m],
            PhiParams::Global(t) => t,
        }
    }

    /// The parallel factor governing op `m` of block `i`, if the target has
    /// parallel factors.
    #[must_use]
    pub fn pf(&self, i: usize, m: usize) -> Option<&Tensor> {
        match &self.pf {
            PfParams::PerOp(v) => Some(&v[i][m]),
            PfParams::PerClass(v) => Some(&v[m]),
            PfParams::None => None,
        }
    }

    /// Every trainable architecture/implementation tensor, for the
    /// architecture optimizer.
    #[must_use]
    pub fn all_params(&self) -> Vec<Tensor> {
        let mut out: Vec<Tensor> = self.theta.clone();
        match &self.phi {
            PhiParams::PerOp(v) => out.extend(v.iter().flatten().cloned()),
            PhiParams::PerClass(v) => out.extend(v.iter().cloned()),
            PhiParams::Global(t) => out.push(t.clone()),
        }
        match &self.pf {
            PfParams::PerOp(v) => out.extend(v.iter().flatten().cloned()),
            PfParams::PerClass(v) => out.extend(v.iter().cloned()),
            PfParams::None => {}
        }
        out
    }

    /// Captures the current variable values as a serializable checkpoint.
    #[must_use]
    pub fn checkpoint(&self) -> ArchCheckpoint {
        let theta = self
            .theta
            .iter()
            .map(|t| t.value().data().to_vec())
            .collect();
        let phi = match &self.phi {
            PhiParams::PerOp(v) => v
                .iter()
                .flatten()
                .map(|t| t.value().data().to_vec())
                .collect(),
            PhiParams::PerClass(v) => v.iter().map(|t| t.value().data().to_vec()).collect(),
            PhiParams::Global(t) => vec![t.value().data().to_vec()],
        };
        let pf = match &self.pf {
            PfParams::PerOp(v) => v.iter().flatten().map(Tensor::item).collect(),
            PfParams::PerClass(v) => v.iter().map(Tensor::item).collect(),
            PfParams::None => Vec::new(),
        };
        ArchCheckpoint { theta, phi, pf }
    }

    /// Restores variable values from a checkpoint taken on an identically
    /// structured `ArchParams`.
    ///
    /// # Errors
    ///
    /// Returns an error when the checkpoint's layout does not match.
    pub fn restore(&self, ckpt: &ArchCheckpoint) -> edd_tensor::Result<()> {
        use edd_tensor::TensorError;
        let mismatch = |what: &str| {
            TensorError::InvalidArgument(format!("checkpoint layout mismatch: {what}"))
        };
        if ckpt.theta.len() != self.theta.len() {
            return Err(mismatch("theta count"));
        }
        for (t, v) in self.theta.iter().zip(&ckpt.theta) {
            if t.value().len() != v.len() {
                return Err(mismatch("theta length"));
            }
            t.set_value(Array::from_vec(v.clone(), &[v.len()])?);
        }
        let phi_tensors: Vec<&Tensor> = match &self.phi {
            PhiParams::PerOp(v) => v.iter().flatten().collect(),
            PhiParams::PerClass(v) => v.iter().collect(),
            PhiParams::Global(t) => vec![t],
        };
        if phi_tensors.len() != ckpt.phi.len() {
            return Err(mismatch("phi count"));
        }
        for (t, v) in phi_tensors.into_iter().zip(&ckpt.phi) {
            if t.value().len() != v.len() {
                return Err(mismatch("phi length"));
            }
            t.set_value(Array::from_vec(v.clone(), &[v.len()])?);
        }
        let pf_tensors: Vec<&Tensor> = match &self.pf {
            PfParams::PerOp(v) => v.iter().flatten().collect(),
            PfParams::PerClass(v) => v.iter().collect(),
            PfParams::None => Vec::new(),
        };
        if pf_tensors.len() != ckpt.pf.len() {
            return Err(mismatch("pf count"));
        }
        for (t, &v) in pf_tensors.into_iter().zip(&ckpt.pf) {
            t.set_value(Array::scalar(v));
        }
        Ok(())
    }

    /// Argmax operator choice per block.
    #[must_use]
    pub fn argmax_ops(&self) -> Vec<usize> {
        self.theta
            .iter()
            .map(|t| t.value().argmax().expect("non-empty logits"))
            .collect()
    }

    /// Argmax quantization index for op `m` of block `i`.
    #[must_use]
    pub fn argmax_quant(&self, i: usize, m: usize) -> usize {
        self.phi_logits(i, m)
            .value()
            .argmax()
            .expect("non-empty logits")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edd_hw::{FpgaDevice, GpuDevice};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::tiny(4, 16, 4, vec![4, 8, 16])
    }

    #[test]
    fn gpu_layout() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = ArchParams::init(
            &space(),
            &DeviceTarget::Gpu(GpuDevice::titan_rtx()),
            &mut rng,
        );
        assert_eq!(p.theta.len(), 4);
        assert!(matches!(p.phi, PhiParams::Global(_)));
        assert!(matches!(p.pf, PfParams::None));
        assert!(p.pf(0, 0).is_none());
        // theta (4) + phi (1) = 5 parameter tensors.
        assert_eq!(p.all_params().len(), 5);
        // Global phi: same tensor for every (i, m).
        let a = p.phi_logits(0, 0) as *const Tensor;
        let b = p.phi_logits(3, 8) as *const Tensor;
        assert_eq!(a, b);
    }

    #[test]
    fn recursive_layout_shares_per_class() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = ArchParams::init(
            &space(),
            &DeviceTarget::FpgaRecursive(FpgaDevice::zcu102()),
            &mut rng,
        );
        assert!(matches!(p.phi, PhiParams::PerClass(_)));
        assert!(matches!(p.pf, PfParams::PerClass(_)));
        // 4 theta + 9 phi + 9 pf
        assert_eq!(p.all_params().len(), 4 + 9 + 9);
        // Blocks 0 and 3 share the class-m phi.
        let a = p.phi_logits(0, 5) as *const Tensor;
        let b = p.phi_logits(3, 5) as *const Tensor;
        assert_eq!(a, b);
    }

    #[test]
    fn pipelined_layout_per_op() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = ArchParams::init(
            &space(),
            &DeviceTarget::FpgaPipelined(FpgaDevice::zc706()),
            &mut rng,
        );
        assert!(matches!(p.phi, PhiParams::PerOp(_)));
        // 4 theta + 36 phi + 36 pf
        assert_eq!(p.all_params().len(), 4 + 36 + 36);
        let a = p.phi_logits(0, 5) as *const Tensor;
        let b = p.phi_logits(3, 5) as *const Tensor;
        assert_ne!(a, b);
    }

    #[test]
    fn pf_initialized_to_paper_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = FpgaDevice::zcu102();
        let p = ArchParams::init(&space(), &DeviceTarget::FpgaRecursive(d.clone()), &mut rng);
        let expect = (d.dsp_budget / 9.0).log2() as f32;
        let got = p.pf(0, 0).unwrap().item();
        assert!((got - expect).abs() < 1e-5);
    }

    #[test]
    fn argmax_helpers() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = ArchParams::init(
            &space(),
            &DeviceTarget::FpgaPipelined(FpgaDevice::zc706()),
            &mut rng,
        );
        let ops = p.argmax_ops();
        assert_eq!(ops.len(), 4);
        assert!(ops.iter().all(|&m| m < 9));
        assert!(p.argmax_quant(0, 0) < 3);
    }

    #[test]
    fn checkpoint_roundtrip_restores_values() {
        let mut rng = StdRng::seed_from_u64(10);
        let target = DeviceTarget::FpgaPipelined(FpgaDevice::zc706());
        let a = ArchParams::init(&space(), &target, &mut rng);
        let b = ArchParams::init(&space(), &target, &mut rng);
        let ckpt = a.checkpoint();
        // JSON round trip.
        let json = serde_json::to_string(&ckpt).unwrap();
        let back: ArchCheckpoint = serde_json::from_str(&json).unwrap();
        b.restore(&back).unwrap();
        for (x, y) in a.all_params().iter().zip(b.all_params()) {
            assert_eq!(x.value().data(), y.value().data());
        }
    }

    #[test]
    fn restore_rejects_wrong_layout() {
        let mut rng = StdRng::seed_from_u64(11);
        let rec = ArchParams::init(
            &space(),
            &DeviceTarget::FpgaRecursive(FpgaDevice::zcu102()),
            &mut rng,
        );
        let pipe = ArchParams::init(
            &space(),
            &DeviceTarget::FpgaPipelined(FpgaDevice::zc706()),
            &mut rng,
        );
        let ckpt = rec.checkpoint();
        assert!(pipe.restore(&ckpt).is_err());
    }

    #[test]
    fn all_params_require_grad() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = ArchParams::init(
            &space(),
            &DeviceTarget::FpgaRecursive(FpgaDevice::zcu102()),
            &mut rng,
        );
        assert!(p.all_params().iter().all(Tensor::requires_grad));
    }
}
