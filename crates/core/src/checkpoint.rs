//! Full-state search snapshots: everything [`crate::CoSearch`] needs to
//! resume an interrupted run bit-identically.
//!
//! A [`SearchSnapshot`] captures, after a completed epoch:
//!
//! * every supernet weight tensor (in `weight_params()` order) and every
//!   batch-norm running statistic (in `batch_norms()` order);
//! * the architecture variables `Θ`, `Φ`, `pf` (via [`ArchCheckpoint`]);
//! * both optimizers' moments (SGD velocity, Adam `t`/`m`/`v`);
//! * the RNG state (so Gumbel draws continue mid-stream) and the epoch
//!   counter (which pins the temperature-schedule position);
//! * the metric history and the best-so-far derived architecture.
//!
//! All `f32` data is stored as IEEE-754 bit patterns inside an
//! `edd-runtime` snapshot container (magic, version, CRC-32, atomic
//! writes), and a **fingerprint** of the search configuration is embedded
//! so a snapshot cannot be silently applied to a differently-shaped search.
//! Combined with the kernel layer's bitwise thread-count invariance, resume
//! equality holds across `EDD_NUM_THREADS` settings too.

use crate::arch_params::ArchCheckpoint;
use crate::pareto::ParetoPoint;
use crate::search::{CoSearchConfig, EpochRecord};
use crate::space::SearchSpace;
use crate::target::DeviceTarget;
use edd_runtime::snapshot::{self, ByteReader, ByteWriter, SectionWriter, Sections};
use edd_tensor::optim::AdamState;
use edd_tensor::{Array, Result, TensorError};
use rand::rngs::StdRng;
use rand::Rng;
use std::path::Path;

/// Schema version of the search-snapshot payload (inside the container's
/// own format version). Version 2 added the `target` label to each
/// history record.
pub const SEARCH_SNAPSHOT_SCHEMA: u32 = 2;

/// File-name prefix of search snapshots (`search-00000012.edds`).
pub const SNAPSHOT_PREFIX: &str = "search-";

/// Schema version of the sweep-snapshot payload: shared supernet state
/// plus all per-target architecture/optimizer/RNG states of one
/// multi-target sweep.
pub const SWEEP_SNAPSHOT_SCHEMA: u32 = 1;

/// File-name prefix of sweep snapshots (`sweep-00000012.edds`). Distinct
/// from [`SNAPSHOT_PREFIX`] so sweeps and single-target searches can share
/// a checkpoint directory.
pub const SWEEP_PREFIX: &str = "sweep-";

/// RNGs a resumable search can run with: random draws plus full state
/// capture/restore. The vendored [`StdRng`] (xoshiro256++) implements it;
/// any custom generator with serializable state can too.
pub trait SearchRng: Rng {
    /// The generator's complete state.
    fn state_words(&self) -> [u64; 4];
    /// Restores state captured by [`SearchRng::state_words`].
    fn restore_state_words(&mut self, words: [u64; 4]);
}

impl SearchRng for StdRng {
    fn state_words(&self) -> [u64; 4] {
        self.state()
    }

    fn restore_state_words(&mut self, words: [u64; 4]) {
        self.set_state(words);
    }
}

fn snap_err(e: snapshot::SnapshotError) -> TensorError {
    TensorError::InvalidArgument(format!("search snapshot: {e}"))
}

fn io_err(what: &str, e: &std::io::Error) -> TensorError {
    TensorError::InvalidArgument(format!("search snapshot {what}: {e}"))
}

/// The configuration fingerprint embedded in every snapshot. Two searches
/// with equal fingerprints have identically-shaped state, so a snapshot
/// from one can be applied to the other.
#[must_use]
pub fn fingerprint(space: &SearchSpace, target: &DeviceTarget, config: &CoSearchConfig) -> String {
    format!(
        "space={};N={};M={};Q={};bits={:?};target={};epochs={};weight_lr={};\
         weight_momentum={};arch_lr={};tau_start={};tau_end={};warmup={};bilevel={};\
         clip={:?};alpha={};beta={};kappa={}",
        space.name,
        space.num_blocks(),
        space.num_ops(),
        space.num_quant(),
        space.quant_bits,
        target.label(),
        config.epochs,
        config.weight_lr,
        config.weight_momentum,
        config.arch_lr,
        config.tau_start,
        config.tau_end,
        config.warmup_epochs,
        config.bilevel,
        config.clip_grad_norm,
        config.loss.alpha,
        config.loss.beta,
        config.loss.penalty_sharpness,
    )
}

/// Complete serializable state of a search after some epoch.
#[derive(Debug, Clone)]
pub struct SearchSnapshot {
    /// Configuration fingerprint (checked on apply).
    pub fingerprint: String,
    /// Last *completed* epoch; resume starts at `epoch + 1`.
    pub epoch: usize,
    /// RNG state after the completed epoch's draws.
    pub rng: [u64; 4],
    /// Supernet weights in `weight_params()` order.
    pub weights: Vec<Array>,
    /// Batch-norm `(running_mean, running_var)` pairs in `batch_norms()`
    /// order.
    pub bn_stats: Vec<(Array, Array)>,
    /// Architecture variables.
    pub arch: ArchCheckpoint,
    /// SGD momentum buffers.
    pub sgd_velocity: Vec<Option<Array>>,
    /// Adam step count and moments.
    pub adam: AdamState,
    /// Epoch history up to and including `epoch`.
    pub history: Vec<EpochRecord>,
    /// Best validation epoch so far: `(epoch, val_acc, derived-arch JSON)`.
    pub best: Option<(usize, f32, String)>,
}

fn put_array(w: &mut ByteWriter, a: &Array) {
    let shape = a.shape();
    w.put_u64(shape.len() as u64);
    for &d in shape {
        w.put_u64(d as u64);
    }
    w.put_f32_slice(a.data());
}

fn get_array(r: &mut ByteReader<'_>) -> Result<Array> {
    let ndim = r.get_count(8).map_err(snap_err)?;
    let mut shape = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        shape.push(r.get_u64().map_err(snap_err)? as usize);
    }
    let data = r.get_f32_vec().map_err(snap_err)?;
    Array::from_vec(data, &shape)
}

fn put_opt_arrays(w: &mut ByteWriter, items: &[Option<Array>]) {
    w.put_u64(items.len() as u64);
    for item in items {
        match item {
            Some(a) => {
                w.put_u8(1);
                put_array(w, a);
            }
            None => w.put_u8(0),
        }
    }
}

fn get_opt_arrays(r: &mut ByteReader<'_>) -> Result<Vec<Option<Array>>> {
    let n = r.get_count(1).map_err(snap_err)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let present = r.get_u8().map_err(snap_err)?;
        out.push(match present {
            0 => None,
            1 => Some(get_array(r)?),
            other => {
                return Err(TensorError::InvalidArgument(format!(
                    "search snapshot: invalid presence byte {other}"
                )))
            }
        });
    }
    Ok(out)
}

fn put_f64_bits(w: &mut ByteWriter, v: f64) {
    w.put_u64(v.to_bits());
}

fn get_f64_bits(r: &mut ByteReader<'_>) -> Result<f64> {
    Ok(f64::from_bits(r.get_u64().map_err(snap_err)?))
}

pub(crate) fn put_history(w: &mut ByteWriter, history: &[EpochRecord]) {
    w.put_u64(history.len() as u64);
    for h in history {
        w.put_u64(h.epoch as u64);
        w.put_f32(h.train_loss);
        w.put_f32(h.train_acc);
        w.put_f32(h.val_acc);
        w.put_f32(h.expected_perf);
        w.put_f32(h.expected_res);
        w.put_f32(h.tau);
        w.put_str(&h.target);
    }
}

pub(crate) fn get_history(r: &mut ByteReader<'_>) -> Result<Vec<EpochRecord>> {
    let n = r.get_count(8).map_err(snap_err)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let epoch = r.get_u64().map_err(snap_err)? as usize;
        let train_loss = r.get_f32().map_err(snap_err)?;
        let train_acc = r.get_f32().map_err(snap_err)?;
        let val_acc = r.get_f32().map_err(snap_err)?;
        let expected_perf = r.get_f32().map_err(snap_err)?;
        let expected_res = r.get_f32().map_err(snap_err)?;
        let tau = r.get_f32().map_err(snap_err)?;
        let target = r.get_str().map_err(snap_err)?;
        out.push(EpochRecord {
            target,
            epoch,
            train_loss,
            train_acc,
            val_acc,
            expected_perf,
            expected_res,
            tau,
        });
    }
    Ok(out)
}

pub(crate) fn put_points(w: &mut ByteWriter, points: &[ParetoPoint]) {
    w.put_u64(points.len() as u64);
    for p in points {
        w.put_str(&p.target);
        w.put_u64(p.epoch as u64);
        w.put_f32(p.val_acc);
        put_f64_bits(w, p.perf_ms);
        put_f64_bits(w, p.resource);
        w.put_str(&p.arch_json);
    }
}

pub(crate) fn get_points(r: &mut ByteReader<'_>) -> Result<Vec<ParetoPoint>> {
    let n = r.get_count(8).map_err(snap_err)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let target = r.get_str().map_err(snap_err)?;
        let epoch = r.get_u64().map_err(snap_err)? as usize;
        let val_acc = r.get_f32().map_err(snap_err)?;
        let perf_ms = get_f64_bits(r)?;
        let resource = get_f64_bits(r)?;
        let arch_json = r.get_str().map_err(snap_err)?;
        out.push(ParetoPoint {
            target,
            epoch,
            val_acc,
            perf_ms,
            resource,
            arch_json,
        });
    }
    Ok(out)
}

fn put_f32_nested(w: &mut ByteWriter, rows: &[Vec<f32>]) {
    w.put_u64(rows.len() as u64);
    for row in rows {
        w.put_f32_slice(row);
    }
}

fn get_f32_nested(r: &mut ByteReader<'_>) -> Result<Vec<Vec<f32>>> {
    let n = r.get_count(8).map_err(snap_err)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.get_f32_vec().map_err(snap_err)?);
    }
    Ok(out)
}

impl SearchSnapshot {
    /// Serializes into an `edd-runtime` snapshot payload.
    #[must_use]
    pub fn to_payload(&self) -> Vec<u8> {
        let mut meta = ByteWriter::new();
        meta.put_u32(SEARCH_SNAPSHOT_SCHEMA);
        meta.put_str(&self.fingerprint);
        meta.put_u64(self.epoch as u64);
        for w in self.rng {
            meta.put_u64(w);
        }

        let mut weights = ByteWriter::new();
        weights.put_u64(self.weights.len() as u64);
        for a in &self.weights {
            put_array(&mut weights, a);
        }

        let mut bn = ByteWriter::new();
        bn.put_u64(self.bn_stats.len() as u64);
        for (mean, var) in &self.bn_stats {
            put_array(&mut bn, mean);
            put_array(&mut bn, var);
        }

        let mut arch = ByteWriter::new();
        put_f32_nested(&mut arch, &self.arch.theta);
        put_f32_nested(&mut arch, &self.arch.phi);
        arch.put_f32_slice(&self.arch.pf);

        let mut sgd = ByteWriter::new();
        put_opt_arrays(&mut sgd, &self.sgd_velocity);

        let mut adam = ByteWriter::new();
        adam.put_u64(self.adam.t);
        put_opt_arrays(&mut adam, &self.adam.m);
        put_opt_arrays(&mut adam, &self.adam.v);

        let mut history = ByteWriter::new();
        put_history(&mut history, &self.history);

        let mut best = ByteWriter::new();
        match &self.best {
            Some((epoch, acc, json)) => {
                best.put_u8(1);
                best.put_u64(*epoch as u64);
                best.put_f32(*acc);
                best.put_str(json);
            }
            None => best.put_u8(0),
        }

        let mut sections = SectionWriter::new();
        sections.add("meta", &meta.into_bytes());
        sections.add("weights", &weights.into_bytes());
        sections.add("bn", &bn.into_bytes());
        sections.add("arch", &arch.into_bytes());
        sections.add("sgd", &sgd.into_bytes());
        sections.add("adam", &adam.into_bytes());
        sections.add("history", &history.into_bytes());
        sections.add("best", &best.into_bytes());
        sections.into_payload()
    }

    /// Parses a payload produced by [`SearchSnapshot::to_payload`].
    ///
    /// # Errors
    ///
    /// Returns an error on any structural mismatch; never panics on
    /// corrupt input.
    pub fn from_payload(payload: &[u8]) -> Result<Self> {
        let sections = Sections::parse(payload).map_err(snap_err)?;

        let mut meta = ByteReader::new(sections.require("meta").map_err(snap_err)?);
        let schema = meta.get_u32().map_err(snap_err)?;
        if schema != SEARCH_SNAPSHOT_SCHEMA {
            return Err(TensorError::InvalidArgument(format!(
                "search snapshot: unsupported schema version {schema}"
            )));
        }
        let fingerprint = meta.get_str().map_err(snap_err)?;
        let epoch = meta.get_u64().map_err(snap_err)? as usize;
        let mut rng = [0u64; 4];
        for w in &mut rng {
            *w = meta.get_u64().map_err(snap_err)?;
        }

        let mut wr = ByteReader::new(sections.require("weights").map_err(snap_err)?);
        let n = wr.get_count(8).map_err(snap_err)?;
        let mut weights = Vec::with_capacity(n);
        for _ in 0..n {
            weights.push(get_array(&mut wr)?);
        }

        let mut br = ByteReader::new(sections.require("bn").map_err(snap_err)?);
        let n = br.get_count(8).map_err(snap_err)?;
        let mut bn_stats = Vec::with_capacity(n);
        for _ in 0..n {
            let mean = get_array(&mut br)?;
            let var = get_array(&mut br)?;
            bn_stats.push((mean, var));
        }

        let mut ar = ByteReader::new(sections.require("arch").map_err(snap_err)?);
        let arch = ArchCheckpoint {
            theta: get_f32_nested(&mut ar)?,
            phi: get_f32_nested(&mut ar)?,
            pf: ar.get_f32_vec().map_err(snap_err)?,
        };

        let mut sr = ByteReader::new(sections.require("sgd").map_err(snap_err)?);
        let sgd_velocity = get_opt_arrays(&mut sr)?;

        let mut adr = ByteReader::new(sections.require("adam").map_err(snap_err)?);
        let adam = AdamState {
            t: adr.get_u64().map_err(snap_err)?,
            m: get_opt_arrays(&mut adr)?,
            v: get_opt_arrays(&mut adr)?,
        };

        let mut hr = ByteReader::new(sections.require("history").map_err(snap_err)?);
        let history = get_history(&mut hr)?;

        let mut ber = ByteReader::new(sections.require("best").map_err(snap_err)?);
        let best = match ber.get_u8().map_err(snap_err)? {
            0 => None,
            1 => {
                let epoch = ber.get_u64().map_err(snap_err)? as usize;
                let acc = ber.get_f32().map_err(snap_err)?;
                let json = ber.get_str().map_err(snap_err)?;
                Some((epoch, acc, json))
            }
            other => {
                return Err(TensorError::InvalidArgument(format!(
                    "search snapshot: invalid best-presence byte {other}"
                )))
            }
        };

        Ok(SearchSnapshot {
            fingerprint,
            epoch,
            rng,
            weights,
            bn_stats,
            arch,
            sgd_velocity,
            adam,
            history,
            best,
        })
    }

    /// Writes this snapshot atomically to `path` (container format with
    /// CRC; temp file + fsync + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> Result<()> {
        snapshot::write_atomic(path, &self.to_payload()).map_err(snap_err)
    }

    /// Loads and verifies a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, corruption (bad magic / truncation
    /// / CRC mismatch), or schema mismatch.
    pub fn load(path: &Path) -> Result<Self> {
        let payload = snapshot::read(path).map_err(snap_err)?;
        Self::from_payload(&payload)
    }

    /// The canonical file name for the snapshot of `epoch`
    /// (zero-padded so lexicographic order is epoch order).
    #[must_use]
    pub fn file_name(epoch: usize) -> String {
        format!("{SNAPSHOT_PREFIX}{epoch:08}.{}", snapshot::SNAPSHOT_EXT)
    }

    /// The file name for a *labeled* run's snapshot of `epoch`:
    /// `search-<label>-<epoch>.edds`. An empty label falls back to the
    /// historical unlabeled [`SearchSnapshot::file_name`], so labeled and
    /// unlabeled runs (and differently-labeled runs) can share one
    /// checkpoint directory without overwriting each other.
    #[must_use]
    pub fn labeled_file_name(label: &str, epoch: usize) -> String {
        if label.is_empty() {
            Self::file_name(epoch)
        } else {
            format!(
                "{SNAPSHOT_PREFIX}{label}-{epoch:08}.{}",
                snapshot::SNAPSHOT_EXT
            )
        }
    }
}

/// Whether `name` is exactly a snapshot of the run identified by
/// (`prefix`, `label`): `<prefix>[<label>-]<8 digits>.edds`. Prefix
/// matching alone is not enough — the unlabeled prefix `search-` is a
/// prefix of every labeled name, so retention pruning and resume must
/// match the digits strictly to avoid eating a sibling run's files.
fn snapshot_name_matches(name: &str, prefix: &str, label: &str) -> bool {
    let Some(rest) = name.strip_prefix(prefix) else {
        return false;
    };
    let rest = if label.is_empty() {
        rest
    } else {
        let Some(rest) = rest.strip_prefix(label).and_then(|r| r.strip_prefix('-')) else {
            return false;
        };
        rest
    };
    let Some(digits) = rest.strip_suffix(&format!(".{}", snapshot::SNAPSHOT_EXT)) else {
        return false;
    };
    digits.len() == 8 && digits.bytes().all(|b| b.is_ascii_digit())
}

/// Deletes all but the newest `keep` snapshots of the run identified by
/// `label` (empty = the unlabeled run) in `dir`, leaving other runs'
/// files untouched. Returns the surviving paths, newest last.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn prune_labeled_snapshots(
    dir: &Path,
    label: &str,
    keep: usize,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    snapshot::prune_snapshots_matching(dir, keep, &|name| {
        snapshot_name_matches(name, SNAPSHOT_PREFIX, label)
    })
}

/// Resolves a `--resume` argument for the run identified by `label`: a
/// snapshot file is used as-is, a directory resolves to that run's newest
/// snapshot (other labels' files are ignored).
///
/// # Errors
///
/// Returns an error when the path does not exist or the directory holds no
/// snapshots of this run.
pub fn resolve_labeled_resume_path(path: &Path, label: &str) -> Result<std::path::PathBuf> {
    if path.is_dir() {
        let mut found = snapshot::list_snapshots_matching(path, &|name| {
            snapshot_name_matches(name, SNAPSHOT_PREFIX, label)
        })
        .map_err(|e| io_err("dir scan", &e))?;
        found.pop().ok_or_else(|| {
            TensorError::InvalidArgument(format!(
                "no {} snapshots in {}",
                SearchSnapshot::labeled_file_name(label, 0).replace("00000000", "*"),
                path.display()
            ))
        })
    } else if path.exists() {
        Ok(path.to_path_buf())
    } else {
        Err(TensorError::InvalidArgument(format!(
            "resume path {} does not exist",
            path.display()
        )))
    }
}

/// Resolves a `--resume` argument for an unlabeled run: a snapshot file is
/// used as-is, a directory resolves to its newest `search-<epoch>.edds`
/// (labeled runs' files are ignored; see
/// [`resolve_labeled_resume_path`]).
///
/// # Errors
///
/// Returns an error when the path does not exist or the directory holds no
/// snapshots.
pub fn resolve_resume_path(path: &Path) -> Result<std::path::PathBuf> {
    resolve_labeled_resume_path(path, "")
}

/// The sweep-level configuration fingerprint: the per-target search
/// fingerprints joined in target order, so a sweep snapshot can only be
/// applied to a sweep with the same space, config, and exact target list.
#[must_use]
pub fn sweep_fingerprint(per_target: &[String]) -> String {
    format!(
        "sweep:v{SWEEP_SNAPSHOT_SCHEMA};T={};{}",
        per_target.len(),
        per_target.join("||")
    )
}

/// The per-target slice of a [`SweepSnapshot`]: everything that differs
/// between targets sharing one supernet — arch variables, the arch
/// optimizer, the per-target RNG stream, history, Pareto front, and the
/// best derived architecture.
#[derive(Debug, Clone)]
pub struct SweepTargetSnapshot {
    /// Stable target key (`DeviceTarget::key()`).
    pub key: String,
    /// Per-target arch-step RNG state.
    pub rng: [u64; 4],
    /// Architecture variables.
    pub arch: ArchCheckpoint,
    /// Adam step count and moments.
    pub adam: AdamState,
    /// Per-target epoch history.
    pub history: Vec<EpochRecord>,
    /// Current Pareto front of (accuracy, perf, resource) points.
    pub front: Vec<ParetoPoint>,
    /// Best validation epoch so far: `(epoch, val_acc, derived-arch JSON)`.
    pub best: Option<(usize, f32, String)>,
}

fn put_target_state(w: &mut ByteWriter, t: &SweepTargetSnapshot) {
    w.put_str(&t.key);
    for word in t.rng {
        w.put_u64(word);
    }
    put_f32_nested(w, &t.arch.theta);
    put_f32_nested(w, &t.arch.phi);
    w.put_f32_slice(&t.arch.pf);
    w.put_u64(t.adam.t);
    put_opt_arrays(w, &t.adam.m);
    put_opt_arrays(w, &t.adam.v);
    put_history(w, &t.history);
    put_points(w, &t.front);
    match &t.best {
        Some((epoch, acc, json)) => {
            w.put_u8(1);
            w.put_u64(*epoch as u64);
            w.put_f32(*acc);
            w.put_str(json);
        }
        None => w.put_u8(0),
    }
}

fn get_target_state(r: &mut ByteReader<'_>) -> Result<SweepTargetSnapshot> {
    let key = r.get_str().map_err(snap_err)?;
    let mut rng = [0u64; 4];
    for word in &mut rng {
        *word = r.get_u64().map_err(snap_err)?;
    }
    let arch = ArchCheckpoint {
        theta: get_f32_nested(r)?,
        phi: get_f32_nested(r)?,
        pf: r.get_f32_vec().map_err(snap_err)?,
    };
    let adam = AdamState {
        t: r.get_u64().map_err(snap_err)?,
        m: get_opt_arrays(r)?,
        v: get_opt_arrays(r)?,
    };
    let history = get_history(r)?;
    let front = get_points(r)?;
    let best = match r.get_u8().map_err(snap_err)? {
        0 => None,
        1 => {
            let epoch = r.get_u64().map_err(snap_err)? as usize;
            let acc = r.get_f32().map_err(snap_err)?;
            let json = r.get_str().map_err(snap_err)?;
            Some((epoch, acc, json))
        }
        other => {
            return Err(TensorError::InvalidArgument(format!(
                "sweep snapshot: invalid best-presence byte {other}"
            )))
        }
    };
    Ok(SweepTargetSnapshot {
        key,
        rng,
        arch,
        adam,
        history,
        front,
        best,
    })
}

/// Complete serializable state of a multi-target sweep after some epoch:
/// the shared supernet (weights, BN stats, SGD momentum, weight-phase RNG)
/// once, plus one [`SweepTargetSnapshot`] per target. One file resumes the
/// whole sweep bit-identically.
#[derive(Debug, Clone)]
pub struct SweepSnapshot {
    /// Sweep-level fingerprint ([`sweep_fingerprint`]), checked on apply.
    pub fingerprint: String,
    /// Last *completed* epoch; resume starts at `epoch + 1`.
    pub epoch: usize,
    /// Shared weight-phase RNG state.
    pub rng: [u64; 4],
    /// Supernet weights in `weight_params()` order.
    pub weights: Vec<Array>,
    /// Batch-norm `(running_mean, running_var)` pairs.
    pub bn_stats: Vec<(Array, Array)>,
    /// SGD momentum buffers of the shared weight optimizer.
    pub sgd_velocity: Vec<Option<Array>>,
    /// Per-target states, in sweep target order.
    pub targets: Vec<SweepTargetSnapshot>,
}

impl SweepSnapshot {
    /// Serializes into an `edd-runtime` snapshot payload.
    #[must_use]
    pub fn to_payload(&self) -> Vec<u8> {
        let mut meta = ByteWriter::new();
        meta.put_u32(SWEEP_SNAPSHOT_SCHEMA);
        meta.put_str(&self.fingerprint);
        meta.put_u64(self.epoch as u64);
        for w in self.rng {
            meta.put_u64(w);
        }

        let mut weights = ByteWriter::new();
        weights.put_u64(self.weights.len() as u64);
        for a in &self.weights {
            put_array(&mut weights, a);
        }

        let mut bn = ByteWriter::new();
        bn.put_u64(self.bn_stats.len() as u64);
        for (mean, var) in &self.bn_stats {
            put_array(&mut bn, mean);
            put_array(&mut bn, var);
        }

        let mut sgd = ByteWriter::new();
        put_opt_arrays(&mut sgd, &self.sgd_velocity);

        let mut targets = ByteWriter::new();
        targets.put_u64(self.targets.len() as u64);
        for t in &self.targets {
            put_target_state(&mut targets, t);
        }

        let mut sections = SectionWriter::new();
        sections.add("meta", &meta.into_bytes());
        sections.add("weights", &weights.into_bytes());
        sections.add("bn", &bn.into_bytes());
        sections.add("sgd", &sgd.into_bytes());
        sections.add("targets", &targets.into_bytes());
        sections.into_payload()
    }

    /// Parses a payload produced by [`SweepSnapshot::to_payload`].
    ///
    /// # Errors
    ///
    /// Returns an error on any structural mismatch; never panics on
    /// corrupt input.
    pub fn from_payload(payload: &[u8]) -> Result<Self> {
        let sections = Sections::parse(payload).map_err(snap_err)?;

        let mut meta = ByteReader::new(sections.require("meta").map_err(snap_err)?);
        let schema = meta.get_u32().map_err(snap_err)?;
        if schema != SWEEP_SNAPSHOT_SCHEMA {
            return Err(TensorError::InvalidArgument(format!(
                "sweep snapshot: unsupported schema version {schema}"
            )));
        }
        let fingerprint = meta.get_str().map_err(snap_err)?;
        let epoch = meta.get_u64().map_err(snap_err)? as usize;
        let mut rng = [0u64; 4];
        for w in &mut rng {
            *w = meta.get_u64().map_err(snap_err)?;
        }

        let mut wr = ByteReader::new(sections.require("weights").map_err(snap_err)?);
        let n = wr.get_count(8).map_err(snap_err)?;
        let mut weights = Vec::with_capacity(n);
        for _ in 0..n {
            weights.push(get_array(&mut wr)?);
        }

        let mut br = ByteReader::new(sections.require("bn").map_err(snap_err)?);
        let n = br.get_count(8).map_err(snap_err)?;
        let mut bn_stats = Vec::with_capacity(n);
        for _ in 0..n {
            let mean = get_array(&mut br)?;
            let var = get_array(&mut br)?;
            bn_stats.push((mean, var));
        }

        let mut sr = ByteReader::new(sections.require("sgd").map_err(snap_err)?);
        let sgd_velocity = get_opt_arrays(&mut sr)?;

        let mut tr = ByteReader::new(sections.require("targets").map_err(snap_err)?);
        let n = tr.get_count(1).map_err(snap_err)?;
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            targets.push(get_target_state(&mut tr)?);
        }

        Ok(SweepSnapshot {
            fingerprint,
            epoch,
            rng,
            weights,
            bn_stats,
            sgd_velocity,
            targets,
        })
    }

    /// Writes this snapshot atomically to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> Result<()> {
        snapshot::write_atomic(path, &self.to_payload()).map_err(snap_err)
    }

    /// Loads and verifies a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, corruption, or schema mismatch.
    pub fn load(path: &Path) -> Result<Self> {
        let payload = snapshot::read(path).map_err(snap_err)?;
        Self::from_payload(&payload)
    }

    /// The canonical file name for the sweep snapshot of `epoch`.
    #[must_use]
    pub fn file_name(epoch: usize) -> String {
        format!("{SWEEP_PREFIX}{epoch:08}.{}", snapshot::SNAPSHOT_EXT)
    }
}

/// Deletes all but the newest `keep` sweep snapshots in `dir`, leaving
/// single-target (`search-*`) files untouched. Returns survivors, newest
/// last.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn prune_sweep_snapshots(dir: &Path, keep: usize) -> std::io::Result<Vec<std::path::PathBuf>> {
    snapshot::prune_snapshots_matching(dir, keep, &|name| {
        snapshot_name_matches(name, SWEEP_PREFIX, "")
    })
}

/// Resolves a sweep `--resume` argument: a snapshot file is used as-is, a
/// directory resolves to its newest `sweep-<epoch>.edds`.
///
/// # Errors
///
/// Returns an error when the path does not exist or the directory holds no
/// sweep snapshots.
pub fn resolve_sweep_resume_path(path: &Path) -> Result<std::path::PathBuf> {
    if path.is_dir() {
        let mut found = snapshot::list_snapshots_matching(path, &|name| {
            snapshot_name_matches(name, SWEEP_PREFIX, "")
        })
        .map_err(|e| io_err("dir scan", &e))?;
        found.pop().ok_or_else(|| {
            TensorError::InvalidArgument(format!(
                "no {SWEEP_PREFIX}*.{} snapshots in {}",
                snapshot::SNAPSHOT_EXT,
                path.display()
            ))
        })
    } else if path.exists() {
        Ok(path.to_path_buf())
    } else {
        Err(TensorError::InvalidArgument(format!(
            "resume path {} does not exist",
            path.display()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_snapshot() -> SearchSnapshot {
        SearchSnapshot {
            fingerprint: "space=tiny;N=3".into(),
            epoch: 7,
            rng: [1, u64::MAX, 3, 0x0123_4567_89AB_CDEF],
            weights: vec![
                Array::from_vec(vec![0.1, -0.2, f32::MIN_POSITIVE], &[3]).unwrap(),
                Array::from_vec(vec![1.0; 12], &[2, 2, 3]).unwrap(),
            ],
            bn_stats: vec![(
                Array::from_vec(vec![0.5, 0.25], &[2]).unwrap(),
                Array::from_vec(vec![1.5, 2.25], &[2]).unwrap(),
            )],
            arch: ArchCheckpoint {
                theta: vec![vec![0.1, 0.2], vec![-0.3, 0.4]],
                phi: vec![vec![1.0, 2.0, 3.0]],
                pf: vec![6.5],
            },
            sgd_velocity: vec![
                None,
                Some(Array::from_vec(vec![0.0; 12], &[2, 2, 3]).unwrap()),
            ],
            adam: AdamState {
                t: 42,
                m: vec![Some(Array::from_vec(vec![0.125], &[1]).unwrap())],
                v: vec![None],
            },
            history: vec![EpochRecord {
                target: "fpga-recursive".into(),
                epoch: 0,
                train_loss: 1.5,
                train_acc: 0.25,
                val_acc: 0.5,
                expected_perf: 3.25,
                expected_res: 100.0,
                tau: 5.0,
            }],
            best: Some((0, 0.5, "{\"blocks\":[]}".into())),
        }
    }

    fn sample_sweep_snapshot() -> SweepSnapshot {
        let base = sample_snapshot();
        let mk_target = |key: &str, seed: u64| SweepTargetSnapshot {
            key: key.into(),
            rng: [seed, seed + 1, seed + 2, seed + 3],
            arch: base.arch.clone(),
            adam: AdamState {
                t: seed,
                m: vec![Some(Array::from_vec(vec![0.5], &[1]).unwrap())],
                v: vec![None],
            },
            history: base
                .history
                .iter()
                .cloned()
                .map(|mut h| {
                    h.target = key.into();
                    h
                })
                .collect(),
            front: vec![ParetoPoint {
                target: key.into(),
                epoch: 0,
                val_acc: 0.5,
                perf_ms: 3.141_592_653_589_793,
                resource: 128.0,
                arch_json: "{\"blocks\":[]}".into(),
            }],
            best: Some((0, 0.5, "{\"blocks\":[]}".into())),
        };
        SweepSnapshot {
            fingerprint: sweep_fingerprint(&["a".into(), "b".into()]),
            epoch: 3,
            rng: base.rng,
            weights: base.weights.clone(),
            bn_stats: base.bn_stats.clone(),
            sgd_velocity: base.sgd_velocity.clone(),
            targets: vec![mk_target("gpu", 10), mk_target("fpga-pipelined", 20)],
        }
    }

    fn assert_snapshots_equal(a: &SearchSnapshot, b: &SearchSnapshot) {
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.rng, b.rng);
        assert_eq!(a.weights.len(), b.weights.len());
        for (x, y) in a.weights.iter().zip(&b.weights) {
            assert_eq!(x.shape(), y.shape());
            assert_eq!(x.data(), y.data());
        }
        assert_eq!(a.bn_stats.len(), b.bn_stats.len());
        for ((m1, v1), (m2, v2)) in a.bn_stats.iter().zip(&b.bn_stats) {
            assert_eq!(m1.data(), m2.data());
            assert_eq!(v1.data(), v2.data());
        }
        assert_eq!(a.arch, b.arch);
        assert_eq!(a.sgd_velocity.len(), b.sgd_velocity.len());
        assert_eq!(a.adam.t, b.adam.t);
        assert_eq!(a.history, b.history);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn payload_roundtrip() {
        let snap = sample_snapshot();
        let back = SearchSnapshot::from_payload(&snap.to_payload()).unwrap();
        assert_snapshots_equal(&snap, &back);
    }

    #[test]
    fn file_roundtrip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("edd-core-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SearchSnapshot::file_name(7));
        let snap = sample_snapshot();
        snap.save(&path).unwrap();
        let back = SearchSnapshot::load(&path).unwrap();
        assert_snapshots_equal(&snap, &back);

        // Flip one byte in the middle of the file: load must error (CRC),
        // not panic or return garbage.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(SearchSnapshot::load(&path).is_err());

        // Truncation must error too.
        bytes[mid] ^= 0x10; // restore
        bytes.truncate(bytes.len() - 7);
        std::fs::write(&path, &bytes).unwrap();
        assert!(SearchSnapshot::load(&path).is_err());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resolve_resume_path_semantics() {
        let dir = std::env::temp_dir().join(format!("edd-core-resolve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Empty dir: error.
        assert!(resolve_resume_path(&dir).is_err());
        // Missing path: error.
        assert!(resolve_resume_path(&dir.join("nope.edds")).is_err());
        // Two snapshots: dir resolves to the newest.
        let s = sample_snapshot();
        s.save(&dir.join(SearchSnapshot::file_name(3))).unwrap();
        s.save(&dir.join(SearchSnapshot::file_name(11))).unwrap();
        let resolved = resolve_resume_path(&dir).unwrap();
        assert_eq!(resolved, dir.join(SearchSnapshot::file_name(11)));
        // A file resolves to itself.
        let file = dir.join(SearchSnapshot::file_name(3));
        assert_eq!(resolve_resume_path(&file).unwrap(), file);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn labeled_file_names_and_strict_matching() {
        assert_eq!(
            SearchSnapshot::labeled_file_name("", 7),
            SearchSnapshot::file_name(7)
        );
        assert_eq!(
            SearchSnapshot::labeled_file_name("gpu", 7),
            "search-gpu-00000007.edds"
        );
        // Unlabeled matcher must not see labeled files, and vice versa.
        assert!(snapshot_name_matches(
            "search-00000007.edds",
            SNAPSHOT_PREFIX,
            ""
        ));
        assert!(!snapshot_name_matches(
            "search-gpu-00000007.edds",
            SNAPSHOT_PREFIX,
            ""
        ));
        assert!(snapshot_name_matches(
            "search-gpu-00000007.edds",
            SNAPSHOT_PREFIX,
            "gpu"
        ));
        assert!(!snapshot_name_matches(
            "search-00000007.edds",
            SNAPSHOT_PREFIX,
            "gpu"
        ));
        // A label that prefixes another label must not cross-match.
        assert!(!snapshot_name_matches(
            "search-gpu2-00000007.edds",
            SNAPSHOT_PREFIX,
            "gpu"
        ));
        // Digit count and extension are strict.
        assert!(!snapshot_name_matches(
            "search-007.edds",
            SNAPSHOT_PREFIX,
            ""
        ));
        assert!(!snapshot_name_matches(
            "search-00000007.tmp",
            SNAPSHOT_PREFIX,
            ""
        ));
        assert!(!snapshot_name_matches(
            "sweep-00000007.edds",
            SNAPSHOT_PREFIX,
            ""
        ));
        assert!(snapshot_name_matches(
            "sweep-00000007.edds",
            SWEEP_PREFIX,
            ""
        ));
    }

    #[test]
    fn labeled_prune_and_resolve_ignore_sibling_runs() {
        let dir = std::env::temp_dir().join(format!("edd-core-labeled-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s = sample_snapshot();
        for epoch in [1, 2, 3] {
            s.save(&dir.join(SearchSnapshot::labeled_file_name("gpu", epoch)))
                .unwrap();
        }
        s.save(&dir.join(SearchSnapshot::labeled_file_name("", 9)))
            .unwrap();
        s.save(&dir.join(SearchSnapshot::labeled_file_name("fpga", 1)))
            .unwrap();

        // Prune "gpu" to one file: unlabeled and "fpga" files survive.
        let removed = prune_labeled_snapshots(&dir, "gpu", 1).unwrap();
        assert_eq!(
            removed,
            vec![
                dir.join(SearchSnapshot::labeled_file_name("gpu", 1)),
                dir.join(SearchSnapshot::labeled_file_name("gpu", 2)),
            ]
        );
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "search-00000009.edds".to_string(),
                "search-fpga-00000001.edds".to_string(),
                "search-gpu-00000003.edds".to_string(),
            ]
        );

        // Labeled resolve picks this run's newest file; unlabeled resolve
        // ignores labeled files entirely.
        assert_eq!(
            resolve_labeled_resume_path(&dir, "gpu").unwrap(),
            dir.join(SearchSnapshot::labeled_file_name("gpu", 3))
        );
        assert_eq!(
            resolve_resume_path(&dir).unwrap(),
            dir.join(SearchSnapshot::file_name(9))
        );
        assert!(resolve_labeled_resume_path(&dir, "missing").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_payload_roundtrip() {
        let snap = sample_sweep_snapshot();
        let back = SweepSnapshot::from_payload(&snap.to_payload()).unwrap();
        assert_eq!(back.fingerprint, snap.fingerprint);
        assert_eq!(back.epoch, snap.epoch);
        assert_eq!(back.rng, snap.rng);
        assert_eq!(back.weights.len(), snap.weights.len());
        for (x, y) in snap.weights.iter().zip(&back.weights) {
            assert_eq!(x.data(), y.data());
        }
        assert_eq!(back.targets.len(), 2);
        for (a, b) in snap.targets.iter().zip(&back.targets) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.rng, b.rng);
            assert_eq!(a.arch, b.arch);
            assert_eq!(a.adam.t, b.adam.t);
            assert_eq!(a.history, b.history);
            assert_eq!(a.front.len(), b.front.len());
            for (p, q) in a.front.iter().zip(&b.front) {
                assert_eq!(p.target, q.target);
                assert_eq!(p.epoch, q.epoch);
                assert_eq!(p.val_acc.to_bits(), q.val_acc.to_bits());
                assert_eq!(p.perf_ms.to_bits(), q.perf_ms.to_bits());
                assert_eq!(p.resource.to_bits(), q.resource.to_bits());
                assert_eq!(p.arch_json, q.arch_json);
            }
            assert_eq!(a.best, b.best);
        }
    }

    #[test]
    fn sweep_file_roundtrip_resolve_and_prune() {
        let dir = std::env::temp_dir().join(format!("edd-core-sweep-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = sample_sweep_snapshot();
        snap.save(&dir.join(SweepSnapshot::file_name(1))).unwrap();
        snap.save(&dir.join(SweepSnapshot::file_name(4))).unwrap();
        // A single-target file in the same dir is invisible to the sweep.
        sample_snapshot()
            .save(&dir.join(SearchSnapshot::file_name(9)))
            .unwrap();

        assert_eq!(
            resolve_sweep_resume_path(&dir).unwrap(),
            dir.join(SweepSnapshot::file_name(4))
        );
        let back = SweepSnapshot::load(&dir.join(SweepSnapshot::file_name(4))).unwrap();
        assert_eq!(back.targets.len(), snap.targets.len());

        let removed = prune_sweep_snapshots(&dir, 1).unwrap();
        assert_eq!(removed, vec![dir.join(SweepSnapshot::file_name(1))]);
        assert!(dir.join(SweepSnapshot::file_name(4)).exists());
        assert!(dir.join(SearchSnapshot::file_name(9)).exists());

        // Loading a search snapshot as a sweep snapshot must fail cleanly.
        assert!(SweepSnapshot::load(&dir.join(SearchSnapshot::file_name(9))).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn search_rng_roundtrip() {
        use rand::SeedableRng;
        let mut a = StdRng::seed_from_u64(9);
        a.gen::<u64>();
        let words = a.state_words();
        let expect: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let mut b = StdRng::seed_from_u64(0);
        b.restore_state_words(words);
        let got: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(expect, got);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn payload_roundtrip_arbitrary_fields(
            epoch in 0usize..1_000_000,
            rng_bits in (0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX),
            weight_bits in prop::collection::vec(0u32..=u32::MAX, 1..32),
            t in 0u64..=u64::MAX,
            acc_bits in 0u32..=u32::MAX,
        ) {
            // Arbitrary f32 bit patterns (NaNs included) must round-trip
            // bit-exactly through the snapshot payload.
            let weights: Vec<f32> = weight_bits.iter().map(|&b| f32::from_bits(b)).collect();
            let snap = SearchSnapshot {
                fingerprint: format!("fp-{epoch}"),
                epoch,
                rng: [rng_bits.0, rng_bits.1, rng_bits.2, rng_bits.3],
                weights: vec![Array::from_vec(weights.clone(), &[weights.len()]).unwrap()],
                bn_stats: vec![],
                arch: ArchCheckpoint { theta: vec![], phi: vec![], pf: vec![] },
                sgd_velocity: vec![None],
                adam: AdamState { t, m: vec![], v: vec![] },
                history: vec![],
                best: Some((epoch, f32::from_bits(acc_bits), "{}".into())),
            };
            let back = SearchSnapshot::from_payload(&snap.to_payload()).unwrap();
            prop_assert_eq!(back.epoch, epoch);
            prop_assert_eq!(back.rng, snap.rng);
            prop_assert_eq!(back.adam.t, t);
            let w = &back.weights[0];
            for (g, &bits) in w.data().iter().zip(&weight_bits) {
                prop_assert_eq!(g.to_bits(), bits);
            }
            let (be, ba, bj) = back.best.unwrap();
            prop_assert_eq!(be, epoch);
            prop_assert_eq!(ba.to_bits(), acc_bits);
            prop_assert_eq!(bj, "{}");
        }

        #[test]
        fn from_payload_never_panics_on_garbage(
            bytes in prop::collection::vec(0u8..=255, 0..256),
        ) {
            let _ = SearchSnapshot::from_payload(&bytes);
            prop_assert!(true);
        }
    }
}
