//! Full-state search snapshots: everything [`crate::CoSearch`] needs to
//! resume an interrupted run bit-identically.
//!
//! A [`SearchSnapshot`] captures, after a completed epoch:
//!
//! * every supernet weight tensor (in `weight_params()` order) and every
//!   batch-norm running statistic (in `batch_norms()` order);
//! * the architecture variables `Θ`, `Φ`, `pf` (via [`ArchCheckpoint`]);
//! * both optimizers' moments (SGD velocity, Adam `t`/`m`/`v`);
//! * the RNG state (so Gumbel draws continue mid-stream) and the epoch
//!   counter (which pins the temperature-schedule position);
//! * the metric history and the best-so-far derived architecture.
//!
//! All `f32` data is stored as IEEE-754 bit patterns inside an
//! `edd-runtime` snapshot container (magic, version, CRC-32, atomic
//! writes), and a **fingerprint** of the search configuration is embedded
//! so a snapshot cannot be silently applied to a differently-shaped search.
//! Combined with the kernel layer's bitwise thread-count invariance, resume
//! equality holds across `EDD_NUM_THREADS` settings too.

use crate::arch_params::ArchCheckpoint;
use crate::search::{CoSearchConfig, EpochRecord};
use crate::space::SearchSpace;
use crate::target::DeviceTarget;
use edd_runtime::snapshot::{self, ByteReader, ByteWriter, SectionWriter, Sections};
use edd_tensor::optim::AdamState;
use edd_tensor::{Array, Result, TensorError};
use rand::rngs::StdRng;
use rand::Rng;
use std::path::Path;

/// Schema version of the search-snapshot payload (inside the container's
/// own format version).
pub const SEARCH_SNAPSHOT_SCHEMA: u32 = 1;

/// File-name prefix of search snapshots (`search-00000012.edds`).
pub const SNAPSHOT_PREFIX: &str = "search-";

/// RNGs a resumable search can run with: random draws plus full state
/// capture/restore. The vendored [`StdRng`] (xoshiro256++) implements it;
/// any custom generator with serializable state can too.
pub trait SearchRng: Rng {
    /// The generator's complete state.
    fn state_words(&self) -> [u64; 4];
    /// Restores state captured by [`SearchRng::state_words`].
    fn restore_state_words(&mut self, words: [u64; 4]);
}

impl SearchRng for StdRng {
    fn state_words(&self) -> [u64; 4] {
        self.state()
    }

    fn restore_state_words(&mut self, words: [u64; 4]) {
        self.set_state(words);
    }
}

fn snap_err(e: snapshot::SnapshotError) -> TensorError {
    TensorError::InvalidArgument(format!("search snapshot: {e}"))
}

fn io_err(what: &str, e: &std::io::Error) -> TensorError {
    TensorError::InvalidArgument(format!("search snapshot {what}: {e}"))
}

/// The configuration fingerprint embedded in every snapshot. Two searches
/// with equal fingerprints have identically-shaped state, so a snapshot
/// from one can be applied to the other.
#[must_use]
pub fn fingerprint(space: &SearchSpace, target: &DeviceTarget, config: &CoSearchConfig) -> String {
    format!(
        "space={};N={};M={};Q={};bits={:?};target={};epochs={};weight_lr={};\
         weight_momentum={};arch_lr={};tau_start={};tau_end={};warmup={};bilevel={};\
         clip={:?};alpha={};beta={};kappa={}",
        space.name,
        space.num_blocks(),
        space.num_ops(),
        space.num_quant(),
        space.quant_bits,
        target.label(),
        config.epochs,
        config.weight_lr,
        config.weight_momentum,
        config.arch_lr,
        config.tau_start,
        config.tau_end,
        config.warmup_epochs,
        config.bilevel,
        config.clip_grad_norm,
        config.loss.alpha,
        config.loss.beta,
        config.loss.penalty_sharpness,
    )
}

/// Complete serializable state of a search after some epoch.
#[derive(Debug, Clone)]
pub struct SearchSnapshot {
    /// Configuration fingerprint (checked on apply).
    pub fingerprint: String,
    /// Last *completed* epoch; resume starts at `epoch + 1`.
    pub epoch: usize,
    /// RNG state after the completed epoch's draws.
    pub rng: [u64; 4],
    /// Supernet weights in `weight_params()` order.
    pub weights: Vec<Array>,
    /// Batch-norm `(running_mean, running_var)` pairs in `batch_norms()`
    /// order.
    pub bn_stats: Vec<(Array, Array)>,
    /// Architecture variables.
    pub arch: ArchCheckpoint,
    /// SGD momentum buffers.
    pub sgd_velocity: Vec<Option<Array>>,
    /// Adam step count and moments.
    pub adam: AdamState,
    /// Epoch history up to and including `epoch`.
    pub history: Vec<EpochRecord>,
    /// Best validation epoch so far: `(epoch, val_acc, derived-arch JSON)`.
    pub best: Option<(usize, f32, String)>,
}

fn put_array(w: &mut ByteWriter, a: &Array) {
    let shape = a.shape();
    w.put_u64(shape.len() as u64);
    for &d in shape {
        w.put_u64(d as u64);
    }
    w.put_f32_slice(a.data());
}

fn get_array(r: &mut ByteReader<'_>) -> Result<Array> {
    let ndim = r.get_count(8).map_err(snap_err)?;
    let mut shape = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        shape.push(r.get_u64().map_err(snap_err)? as usize);
    }
    let data = r.get_f32_vec().map_err(snap_err)?;
    Array::from_vec(data, &shape)
}

fn put_opt_arrays(w: &mut ByteWriter, items: &[Option<Array>]) {
    w.put_u64(items.len() as u64);
    for item in items {
        match item {
            Some(a) => {
                w.put_u8(1);
                put_array(w, a);
            }
            None => w.put_u8(0),
        }
    }
}

fn get_opt_arrays(r: &mut ByteReader<'_>) -> Result<Vec<Option<Array>>> {
    let n = r.get_count(1).map_err(snap_err)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let present = r.get_u8().map_err(snap_err)?;
        out.push(match present {
            0 => None,
            1 => Some(get_array(r)?),
            other => {
                return Err(TensorError::InvalidArgument(format!(
                    "search snapshot: invalid presence byte {other}"
                )))
            }
        });
    }
    Ok(out)
}

fn put_f32_nested(w: &mut ByteWriter, rows: &[Vec<f32>]) {
    w.put_u64(rows.len() as u64);
    for row in rows {
        w.put_f32_slice(row);
    }
}

fn get_f32_nested(r: &mut ByteReader<'_>) -> Result<Vec<Vec<f32>>> {
    let n = r.get_count(8).map_err(snap_err)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.get_f32_vec().map_err(snap_err)?);
    }
    Ok(out)
}

impl SearchSnapshot {
    /// Serializes into an `edd-runtime` snapshot payload.
    #[must_use]
    pub fn to_payload(&self) -> Vec<u8> {
        let mut meta = ByteWriter::new();
        meta.put_u32(SEARCH_SNAPSHOT_SCHEMA);
        meta.put_str(&self.fingerprint);
        meta.put_u64(self.epoch as u64);
        for w in self.rng {
            meta.put_u64(w);
        }

        let mut weights = ByteWriter::new();
        weights.put_u64(self.weights.len() as u64);
        for a in &self.weights {
            put_array(&mut weights, a);
        }

        let mut bn = ByteWriter::new();
        bn.put_u64(self.bn_stats.len() as u64);
        for (mean, var) in &self.bn_stats {
            put_array(&mut bn, mean);
            put_array(&mut bn, var);
        }

        let mut arch = ByteWriter::new();
        put_f32_nested(&mut arch, &self.arch.theta);
        put_f32_nested(&mut arch, &self.arch.phi);
        arch.put_f32_slice(&self.arch.pf);

        let mut sgd = ByteWriter::new();
        put_opt_arrays(&mut sgd, &self.sgd_velocity);

        let mut adam = ByteWriter::new();
        adam.put_u64(self.adam.t);
        put_opt_arrays(&mut adam, &self.adam.m);
        put_opt_arrays(&mut adam, &self.adam.v);

        let mut history = ByteWriter::new();
        history.put_u64(self.history.len() as u64);
        for h in &self.history {
            history.put_u64(h.epoch as u64);
            history.put_f32(h.train_loss);
            history.put_f32(h.train_acc);
            history.put_f32(h.val_acc);
            history.put_f32(h.expected_perf);
            history.put_f32(h.expected_res);
            history.put_f32(h.tau);
        }

        let mut best = ByteWriter::new();
        match &self.best {
            Some((epoch, acc, json)) => {
                best.put_u8(1);
                best.put_u64(*epoch as u64);
                best.put_f32(*acc);
                best.put_str(json);
            }
            None => best.put_u8(0),
        }

        let mut sections = SectionWriter::new();
        sections.add("meta", &meta.into_bytes());
        sections.add("weights", &weights.into_bytes());
        sections.add("bn", &bn.into_bytes());
        sections.add("arch", &arch.into_bytes());
        sections.add("sgd", &sgd.into_bytes());
        sections.add("adam", &adam.into_bytes());
        sections.add("history", &history.into_bytes());
        sections.add("best", &best.into_bytes());
        sections.into_payload()
    }

    /// Parses a payload produced by [`SearchSnapshot::to_payload`].
    ///
    /// # Errors
    ///
    /// Returns an error on any structural mismatch; never panics on
    /// corrupt input.
    pub fn from_payload(payload: &[u8]) -> Result<Self> {
        let sections = Sections::parse(payload).map_err(snap_err)?;

        let mut meta = ByteReader::new(sections.require("meta").map_err(snap_err)?);
        let schema = meta.get_u32().map_err(snap_err)?;
        if schema != SEARCH_SNAPSHOT_SCHEMA {
            return Err(TensorError::InvalidArgument(format!(
                "search snapshot: unsupported schema version {schema}"
            )));
        }
        let fingerprint = meta.get_str().map_err(snap_err)?;
        let epoch = meta.get_u64().map_err(snap_err)? as usize;
        let mut rng = [0u64; 4];
        for w in &mut rng {
            *w = meta.get_u64().map_err(snap_err)?;
        }

        let mut wr = ByteReader::new(sections.require("weights").map_err(snap_err)?);
        let n = wr.get_count(8).map_err(snap_err)?;
        let mut weights = Vec::with_capacity(n);
        for _ in 0..n {
            weights.push(get_array(&mut wr)?);
        }

        let mut br = ByteReader::new(sections.require("bn").map_err(snap_err)?);
        let n = br.get_count(8).map_err(snap_err)?;
        let mut bn_stats = Vec::with_capacity(n);
        for _ in 0..n {
            let mean = get_array(&mut br)?;
            let var = get_array(&mut br)?;
            bn_stats.push((mean, var));
        }

        let mut ar = ByteReader::new(sections.require("arch").map_err(snap_err)?);
        let arch = ArchCheckpoint {
            theta: get_f32_nested(&mut ar)?,
            phi: get_f32_nested(&mut ar)?,
            pf: ar.get_f32_vec().map_err(snap_err)?,
        };

        let mut sr = ByteReader::new(sections.require("sgd").map_err(snap_err)?);
        let sgd_velocity = get_opt_arrays(&mut sr)?;

        let mut adr = ByteReader::new(sections.require("adam").map_err(snap_err)?);
        let adam = AdamState {
            t: adr.get_u64().map_err(snap_err)?,
            m: get_opt_arrays(&mut adr)?,
            v: get_opt_arrays(&mut adr)?,
        };

        let mut hr = ByteReader::new(sections.require("history").map_err(snap_err)?);
        let n = hr.get_count(8).map_err(snap_err)?;
        let mut history = Vec::with_capacity(n);
        for _ in 0..n {
            history.push(EpochRecord {
                epoch: hr.get_u64().map_err(snap_err)? as usize,
                train_loss: hr.get_f32().map_err(snap_err)?,
                train_acc: hr.get_f32().map_err(snap_err)?,
                val_acc: hr.get_f32().map_err(snap_err)?,
                expected_perf: hr.get_f32().map_err(snap_err)?,
                expected_res: hr.get_f32().map_err(snap_err)?,
                tau: hr.get_f32().map_err(snap_err)?,
            });
        }

        let mut ber = ByteReader::new(sections.require("best").map_err(snap_err)?);
        let best = match ber.get_u8().map_err(snap_err)? {
            0 => None,
            1 => {
                let epoch = ber.get_u64().map_err(snap_err)? as usize;
                let acc = ber.get_f32().map_err(snap_err)?;
                let json = ber.get_str().map_err(snap_err)?;
                Some((epoch, acc, json))
            }
            other => {
                return Err(TensorError::InvalidArgument(format!(
                    "search snapshot: invalid best-presence byte {other}"
                )))
            }
        };

        Ok(SearchSnapshot {
            fingerprint,
            epoch,
            rng,
            weights,
            bn_stats,
            arch,
            sgd_velocity,
            adam,
            history,
            best,
        })
    }

    /// Writes this snapshot atomically to `path` (container format with
    /// CRC; temp file + fsync + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> Result<()> {
        snapshot::write_atomic(path, &self.to_payload()).map_err(snap_err)
    }

    /// Loads and verifies a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, corruption (bad magic / truncation
    /// / CRC mismatch), or schema mismatch.
    pub fn load(path: &Path) -> Result<Self> {
        let payload = snapshot::read(path).map_err(snap_err)?;
        Self::from_payload(&payload)
    }

    /// The canonical file name for the snapshot of `epoch`
    /// (zero-padded so lexicographic order is epoch order).
    #[must_use]
    pub fn file_name(epoch: usize) -> String {
        format!("{SNAPSHOT_PREFIX}{epoch:08}.{}", snapshot::SNAPSHOT_EXT)
    }
}

/// Resolves a `--resume` argument: a snapshot file is used as-is, a
/// directory resolves to its newest `search-*.edds`.
///
/// # Errors
///
/// Returns an error when the path does not exist or the directory holds no
/// snapshots.
pub fn resolve_resume_path(path: &Path) -> Result<std::path::PathBuf> {
    if path.is_dir() {
        snapshot::latest_snapshot(path, SNAPSHOT_PREFIX)
            .map_err(|e| io_err("dir scan", &e))?
            .ok_or_else(|| {
                TensorError::InvalidArgument(format!(
                    "no {SNAPSHOT_PREFIX}*.{} snapshots in {}",
                    snapshot::SNAPSHOT_EXT,
                    path.display()
                ))
            })
    } else if path.exists() {
        Ok(path.to_path_buf())
    } else {
        Err(TensorError::InvalidArgument(format!(
            "resume path {} does not exist",
            path.display()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_snapshot() -> SearchSnapshot {
        SearchSnapshot {
            fingerprint: "space=tiny;N=3".into(),
            epoch: 7,
            rng: [1, u64::MAX, 3, 0x0123_4567_89AB_CDEF],
            weights: vec![
                Array::from_vec(vec![0.1, -0.2, f32::MIN_POSITIVE], &[3]).unwrap(),
                Array::from_vec(vec![1.0; 12], &[2, 2, 3]).unwrap(),
            ],
            bn_stats: vec![(
                Array::from_vec(vec![0.5, 0.25], &[2]).unwrap(),
                Array::from_vec(vec![1.5, 2.25], &[2]).unwrap(),
            )],
            arch: ArchCheckpoint {
                theta: vec![vec![0.1, 0.2], vec![-0.3, 0.4]],
                phi: vec![vec![1.0, 2.0, 3.0]],
                pf: vec![6.5],
            },
            sgd_velocity: vec![
                None,
                Some(Array::from_vec(vec![0.0; 12], &[2, 2, 3]).unwrap()),
            ],
            adam: AdamState {
                t: 42,
                m: vec![Some(Array::from_vec(vec![0.125], &[1]).unwrap())],
                v: vec![None],
            },
            history: vec![EpochRecord {
                epoch: 0,
                train_loss: 1.5,
                train_acc: 0.25,
                val_acc: 0.5,
                expected_perf: 3.25,
                expected_res: 100.0,
                tau: 5.0,
            }],
            best: Some((0, 0.5, "{\"blocks\":[]}".into())),
        }
    }

    fn assert_snapshots_equal(a: &SearchSnapshot, b: &SearchSnapshot) {
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.rng, b.rng);
        assert_eq!(a.weights.len(), b.weights.len());
        for (x, y) in a.weights.iter().zip(&b.weights) {
            assert_eq!(x.shape(), y.shape());
            assert_eq!(x.data(), y.data());
        }
        assert_eq!(a.bn_stats.len(), b.bn_stats.len());
        for ((m1, v1), (m2, v2)) in a.bn_stats.iter().zip(&b.bn_stats) {
            assert_eq!(m1.data(), m2.data());
            assert_eq!(v1.data(), v2.data());
        }
        assert_eq!(a.arch, b.arch);
        assert_eq!(a.sgd_velocity.len(), b.sgd_velocity.len());
        assert_eq!(a.adam.t, b.adam.t);
        assert_eq!(a.history, b.history);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn payload_roundtrip() {
        let snap = sample_snapshot();
        let back = SearchSnapshot::from_payload(&snap.to_payload()).unwrap();
        assert_snapshots_equal(&snap, &back);
    }

    #[test]
    fn file_roundtrip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("edd-core-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SearchSnapshot::file_name(7));
        let snap = sample_snapshot();
        snap.save(&path).unwrap();
        let back = SearchSnapshot::load(&path).unwrap();
        assert_snapshots_equal(&snap, &back);

        // Flip one byte in the middle of the file: load must error (CRC),
        // not panic or return garbage.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(SearchSnapshot::load(&path).is_err());

        // Truncation must error too.
        bytes[mid] ^= 0x10; // restore
        bytes.truncate(bytes.len() - 7);
        std::fs::write(&path, &bytes).unwrap();
        assert!(SearchSnapshot::load(&path).is_err());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resolve_resume_path_semantics() {
        let dir = std::env::temp_dir().join(format!("edd-core-resolve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Empty dir: error.
        assert!(resolve_resume_path(&dir).is_err());
        // Missing path: error.
        assert!(resolve_resume_path(&dir.join("nope.edds")).is_err());
        // Two snapshots: dir resolves to the newest.
        let s = sample_snapshot();
        s.save(&dir.join(SearchSnapshot::file_name(3))).unwrap();
        s.save(&dir.join(SearchSnapshot::file_name(11))).unwrap();
        let resolved = resolve_resume_path(&dir).unwrap();
        assert_eq!(resolved, dir.join(SearchSnapshot::file_name(11)));
        // A file resolves to itself.
        let file = dir.join(SearchSnapshot::file_name(3));
        assert_eq!(resolve_resume_path(&file).unwrap(), file);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn search_rng_roundtrip() {
        use rand::SeedableRng;
        let mut a = StdRng::seed_from_u64(9);
        a.gen::<u64>();
        let words = a.state_words();
        let expect: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let mut b = StdRng::seed_from_u64(0);
        b.restore_state_words(words);
        let got: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(expect, got);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn payload_roundtrip_arbitrary_fields(
            epoch in 0usize..1_000_000,
            rng_bits in (0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX),
            weight_bits in prop::collection::vec(0u32..=u32::MAX, 1..32),
            t in 0u64..=u64::MAX,
            acc_bits in 0u32..=u32::MAX,
        ) {
            // Arbitrary f32 bit patterns (NaNs included) must round-trip
            // bit-exactly through the snapshot payload.
            let weights: Vec<f32> = weight_bits.iter().map(|&b| f32::from_bits(b)).collect();
            let snap = SearchSnapshot {
                fingerprint: format!("fp-{epoch}"),
                epoch,
                rng: [rng_bits.0, rng_bits.1, rng_bits.2, rng_bits.3],
                weights: vec![Array::from_vec(weights.clone(), &[weights.len()]).unwrap()],
                bn_stats: vec![],
                arch: ArchCheckpoint { theta: vec![], phi: vec![], pf: vec![] },
                sgd_velocity: vec![None],
                adam: AdamState { t, m: vec![], v: vec![] },
                history: vec![],
                best: Some((epoch, f32::from_bits(acc_bits), "{}".into())),
            };
            let back = SearchSnapshot::from_payload(&snap.to_payload()).unwrap();
            prop_assert_eq!(back.epoch, epoch);
            prop_assert_eq!(back.rng, snap.rng);
            prop_assert_eq!(back.adam.t, t);
            let w = &back.weights[0];
            for (g, &bits) in w.data().iter().zip(&weight_bits) {
                prop_assert_eq!(g.to_bits(), bits);
            }
            let (be, ba, bj) = back.best.unwrap();
            prop_assert_eq!(be, epoch);
            prop_assert_eq!(ba.to_bits(), acc_bits);
            prop_assert_eq!(bj, "{}");
        }

        #[test]
        fn from_payload_never_panics_on_garbage(
            bytes in prop::collection::vec(0u8..=255, 0..256),
        ) {
            let _ = SearchSnapshot::from_payload(&bytes);
            prop_assert!(true);
        }
    }
}
