//! Deriving a concrete architecture from trained search variables
//! (paper §5: keep the branches with the largest architecture weights).

use crate::arch_params::ArchParams;
use crate::space::SearchSpace;
use crate::target::DeviceTarget;
use edd_hw::shapes::{LayerKind, LayerShape, NetworkShape, OpShape};
use edd_nn::{Activation, Conv2d, Flatten, GlobalAvgPool, Linear, MbConv, Sequential};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The choice made for one block of the derived network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockChoice {
    /// Depthwise kernel size.
    pub kernel: usize,
    /// Channel expansion ratio.
    pub expansion: usize,
    /// Output channels (from the fixed plan).
    pub out_channels: usize,
    /// Stride (from the fixed plan).
    pub stride: usize,
    /// Chosen weight bit-width.
    pub quant_bits: u32,
    /// Chosen parallel factor (`log₂` parallelism), if the target has one.
    pub parallel_factor: Option<f32>,
}

/// A searched architecture: the output artifact of an EDD run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DerivedArch {
    /// Name (derived from the space and target).
    pub name: String,
    /// Target label the architecture was searched for.
    pub target: String,
    /// Per-block choices.
    pub blocks: Vec<BlockChoice>,
    /// The search space skeleton (channels, stem/head, classes).
    pub space: SearchSpace,
}

impl DerivedArch {
    /// Extracts the argmax architecture from `arch` (paper §5: keep the
    /// branch with the largest architecture weight, and its quantization).
    #[must_use]
    pub fn from_params(
        space: &SearchSpace,
        target: &DeviceTarget,
        arch: &ArchParams,
    ) -> DerivedArch {
        let ops = arch.argmax_ops();
        let blocks = ops
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let (kernel, expansion) = space.op_choice(m);
                let qi = arch.argmax_quant(i, m);
                BlockChoice {
                    kernel,
                    expansion,
                    out_channels: space.blocks[i].out_channels,
                    stride: space.blocks[i].stride,
                    quant_bits: space.quant_bits[qi],
                    parallel_factor: arch.pf(i, m).map(edd_tensor::Tensor::item),
                }
            })
            .collect();
        DerivedArch {
            name: format!("edd-derived-{}", space.name),
            target: target.label(),
            blocks,
            space: space.clone(),
        }
    }

    /// Converts to the hardware-model network description (stem and head
    /// included) for latency/throughput/resource evaluation.
    #[must_use]
    pub fn to_network_shape(&self) -> NetworkShape {
        let s = &self.space;
        let mut ops = Vec::with_capacity(self.blocks.len() + 2);
        // Stem 3×3 convolution.
        let stem_hw = s.image_size.div_ceil(s.stem_stride);
        ops.push(OpShape {
            name: "stem_conv3x3".into(),
            ip_class: "stem".into(),
            layers: vec![
                LayerShape {
                    kind: LayerKind::Conv {
                        k: 3,
                        cin: s.input_channels,
                        cout: s.stem_channels,
                    },
                    h: stem_hw,
                    w: stem_hw,
                },
                LayerShape {
                    kind: LayerKind::Other { c: s.stem_channels },
                    h: stem_hw,
                    w: stem_hw,
                },
            ],
        });
        for (i, b) in self.blocks.iter().enumerate() {
            let cin = s.block_in_channels(i);
            let hw = s.spatial_at_block(i);
            ops.push(OpShape::mbconv(
                cin,
                b.out_channels,
                b.kernel,
                b.expansion,
                hw,
                hw,
                b.stride,
            ));
        }
        // Head: 1×1 conv + classifier.
        let last_c = s.blocks.last().map_or(s.stem_channels, |b| b.out_channels);
        let final_hw = s.spatial_at_block(s.num_blocks());
        ops.push(OpShape {
            name: "head".into(),
            ip_class: "head".into(),
            layers: vec![
                LayerShape {
                    kind: LayerKind::Conv {
                        k: 1,
                        cin: last_c,
                        cout: s.head_channels,
                    },
                    h: final_hw,
                    w: final_hw,
                },
                LayerShape {
                    kind: LayerKind::Linear {
                        cin: s.head_channels,
                        cout: s.num_classes,
                    },
                    h: 1,
                    w: 1,
                },
            ],
        });
        NetworkShape {
            name: self.name.clone(),
            ops,
        }
    }

    /// Builds a trainable model of this architecture (for the paper's
    /// train-from-scratch final stage).
    #[must_use]
    pub fn build_model<R: Rng + ?Sized>(&self, rng: &mut R) -> Sequential {
        let s = &self.space;
        let mut net = Sequential::new()
            .push(Conv2d::same(
                s.input_channels,
                s.stem_channels,
                3,
                s.stem_stride,
                rng,
            ))
            .push(edd_nn::BatchNorm2d::new(s.stem_channels))
            .push(Activation::Relu6);
        for (i, b) in self.blocks.iter().enumerate() {
            let cin = s.block_in_channels(i);
            net = net.push(MbConv::new(
                cin,
                b.out_channels,
                b.kernel,
                b.expansion,
                b.stride,
                rng,
            ));
        }
        let last_c = s.blocks.last().map_or(s.stem_channels, |b| b.out_channels);
        net.push(Conv2d::new(last_c, s.head_channels, 1, 1, 0, false, rng))
            .push(edd_nn::BatchNorm2d::new(s.head_channels))
            .push(Activation::Relu6)
            .push(GlobalAvgPool)
            .push(Flatten)
            .push(Linear::new(s.head_channels, s.num_classes, rng))
    }

    /// One-line-per-block description in the style of paper Fig. 4
    /// (`MB e4 k5x5 c80 s2 @16b`).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = format!("{} [{}]\n", self.name, self.target);
        for (i, b) in self.blocks.iter().enumerate() {
            out.push_str(&format!(
                "  block{:<2} MB e{} k{}x{} c{:<4} s{} @{}b",
                i, b.expansion, b.kernel, b.kernel, b.out_channels, b.stride, b.quant_bits
            ));
            if let Some(pf) = b.parallel_factor {
                out.push_str(&format!(" pf={pf:.2}"));
            }
            out.push('\n');
        }
        out
    }

    /// Serializes to pretty JSON (the exchange artifact of a search run).
    ///
    /// # Errors
    ///
    /// Returns a `serde_json` error if serialization fails (practically
    /// impossible for this type).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json` error for malformed input.
    pub fn from_json(s: &str) -> serde_json::Result<DerivedArch> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch_params::ArchParams;
    use edd_hw::FpgaDevice;
    use edd_nn::Module;
    use edd_tensor::{Array, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn derived() -> DerivedArch {
        let mut rng = StdRng::seed_from_u64(9);
        let space = SearchSpace::tiny(4, 16, 4, vec![4, 8, 16]);
        let target = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
        let arch = ArchParams::init(&space, &target, &mut rng);
        DerivedArch::from_params(&space, &target, &arch)
    }

    #[test]
    fn block_choices_within_menus() {
        let d = derived();
        assert_eq!(d.blocks.len(), 4);
        for b in &d.blocks {
            assert!([3, 5, 7].contains(&b.kernel));
            assert!([4, 5, 6].contains(&b.expansion));
            assert!([4u32, 8, 16].contains(&b.quant_bits));
            assert!(b.parallel_factor.is_some());
        }
    }

    #[test]
    fn network_shape_has_stem_blocks_head() {
        let d = derived();
        let net = d.to_network_shape();
        assert_eq!(net.ops.len(), 4 + 2);
        assert_eq!(net.ops[0].ip_class, "stem");
        assert_eq!(net.ops.last().unwrap().ip_class, "head");
        assert!(net.total_work() > 0.0);
    }

    #[test]
    fn built_model_runs_and_trains() {
        let d = derived();
        let mut rng = StdRng::seed_from_u64(10);
        let model = d.build_model(&mut rng);
        let x = Tensor::constant(Array::randn(&[2, 3, 16, 16], 1.0, &mut rng));
        let y = model.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![2, 4]);
        let loss = y.cross_entropy(&[0, 1]).unwrap();
        loss.backward();
        assert!(model.parameters()[0].grad().is_some());
    }

    #[test]
    fn summary_mentions_every_block() {
        let d = derived();
        let s = d.summary();
        for i in 0..4 {
            assert!(s.contains(&format!("block{i}")), "missing block{i} in {s}");
        }
        assert!(s.contains("@"));
        assert!(s.contains("pf="));
    }

    #[test]
    fn json_roundtrip() {
        let d = derived();
        let j = d.to_json().unwrap();
        let back = DerivedArch::from_json(&j).unwrap();
        assert_eq!(d, back);
    }
}
