//! # edd-core
//!
//! The primary contribution of the reproduced paper — **EDD: Efficient
//! Differentiable DNN Architecture and Implementation Co-search** (DAC
//! 2020) — as a Rust library:
//!
//! * [`space`] — the fused search space: `N` blocks × `M` MBConv candidate
//!   operations × `Q` quantizations (paper §3.1, Fig. 1–2);
//! * [`arch_params`] — the searched variables `Θ`, `Φ`, `pf` with
//!   device-dependent sharing structure;
//! * [`supernet`] — the weight-sharing supernet with single-path hard
//!   Gumbel-Softmax sampling;
//! * [`perf_model`] — the differentiable Stage-1→4 performance/resource
//!   formulation (Eq. 2–10), including the Log-Sum-Exp smooth max (Eq. 7)
//!   and the `tanh` resource-sharing suppression (Eq. 9);
//! * [`loss`] — the fused objective of Eq. 1;
//! * [`search`] — the bilevel co-search loop (paper §5), with optional
//!   crash-safe checkpointing and structured telemetry;
//! * [`checkpoint`] — full-state search snapshots (weights, `Θ`/`Φ`/`pf`,
//!   optimizer moments, RNG, history) for bit-identical resume;
//! * `derive` — argmax architecture extraction, trainable-model
//!   construction, hardware-shape export and JSON serialization.
//!
//! # Example
//!
//! ```
//! use edd_core::{CoSearch, CoSearchConfig, DeviceTarget, SearchSpace};
//! use edd_data::{SynthConfig, SynthDataset};
//! use edd_hw::FpgaDevice;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let space = SearchSpace::tiny(2, 16, 4, vec![4, 8, 16]);
//! let target = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
//! let config = CoSearchConfig { epochs: 2, warmup_epochs: 1, ..Default::default() };
//! let mut search = CoSearch::new(space, target, config, &mut rng).unwrap();
//! let data = SynthDataset::new(SynthConfig::tiny());
//! let outcome = search
//!     .run(&data.split(2, 8, 1), &data.split(1, 8, 2), &mut rng)
//!     .unwrap();
//! println!("{}", outcome.derived.summary());
//! ```

#![warn(missing_docs)]

pub mod arch_params;
pub mod checkpoint;
pub mod derive;
pub mod loss;
pub mod lower;
pub mod pareto;
pub mod perf_model;
pub mod qat;
pub mod quantize;
pub mod search;
pub mod space;
pub mod supernet;
pub mod sweep;
pub mod target;

pub use arch_params::{ArchCheckpoint, ArchParams, PfParams, PhiParams};
pub use checkpoint::{
    resolve_labeled_resume_path, resolve_resume_path, resolve_sweep_resume_path, SearchRng,
    SearchSnapshot, SweepSnapshot, SNAPSHOT_PREFIX, SWEEP_PREFIX,
};
pub use derive::{BlockChoice, DerivedArch};
pub use loss::{edd_loss, LossConfig};
pub use lower::lower_to_graph;
pub use pareto::ParetoPoint;
pub use perf_model::{estimate, PerfEstimate, PerfTables};
pub use qat::QatModel;
pub use quantize::{calibrate, Calibration, QuantizedModel, ENGINE_MAX_BITS};
pub use search::{CoSearch, CoSearchConfig, EpochRecord, SearchOutcome};
pub use space::{BlockPlan, SearchSpace};
pub use supernet::{SampledPath, SuperNet};
pub use sweep::{hw_point, SweepOutcome, SweepSearch, SweepTargetOutcome};
pub use target::{DeviceTarget, PerfObjective};
