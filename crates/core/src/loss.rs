//! The fused objective of paper Eq. 1:
//!
//! ```text
//! L = Acc_loss(A, I) · Perf_loss(I) + β · C^(RES(I) − RES_ub)
//! ```
//!
//! `α` (inside `Perf_loss`, Eq. 6–7) scales the performance term to the
//! magnitude of the accuracy loss; `β` and the base `C` control the
//! resource-violation penalty. For numerical stability the exponent is
//! computed on the *normalized* overshoot `(RES − RES_ub)/RES_ub` scaled by
//! a sharpness `κ` (documented deviation: the paper's raw DSP-count
//! exponent overflows `f32` for C > 1 at realistic budgets; the normalized
//! form preserves the "large penalty when violated" semantics).

use edd_tensor::{Result, Tensor};

/// Hyperparameters of the fused loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossConfig {
    /// Scale of the performance term (`α` in Eq. 6–7).
    pub alpha: f32,
    /// Weight of the resource penalty (`β` in Eq. 1).
    pub beta: f32,
    /// Sharpness `κ` of the exponential penalty on normalized overshoot.
    pub penalty_sharpness: f32,
}

impl Default for LossConfig {
    fn default() -> Self {
        LossConfig {
            alpha: 1.0,
            beta: 1.0,
            penalty_sharpness: 8.0,
        }
    }
}

/// Assembles the total loss from the accuracy loss, the Stage-4 performance
/// term, the Stage-4 resource usage and the bound `res_ub`.
///
/// When `res_ub` is infinite (GPU targets) the penalty vanishes.
///
/// # Errors
///
/// Propagates tensor shape errors (all inputs must be scalars).
pub fn edd_loss(
    acc_loss: &Tensor,
    perf: &Tensor,
    res: &Tensor,
    res_ub: f64,
    cfg: &LossConfig,
) -> Result<Tensor> {
    let perf_loss = perf.mul_scalar(cfg.alpha);
    let product = acc_loss.mul(&perf_loss)?;
    if !res_ub.is_finite() {
        return Ok(product);
    }
    // exp(κ·(RES/RES_ub − 1)). For stability the exponential is linearized
    // past a knee: exp(min(e, K)) + exp(K)·max(e − K, 0). A hard clamp
    // would zero the gradient exactly when the budget is most violated —
    // the linear tail keeps pushing resources down.
    const KNEE: f32 = 20.0;
    let overshoot = res
        .mul_scalar(1.0 / res_ub as f32)
        .add_scalar(-1.0)
        .mul_scalar(cfg.penalty_sharpness);
    let capped = overshoot.clamp(-KNEE, KNEE).exp();
    let tail = overshoot.add_scalar(-KNEE).relu().mul_scalar(KNEE.exp());
    let penalty = capped.add(&tail)?.mul_scalar(cfg.beta);
    product.add(&penalty)
}

/// Scalar replica of the resource-penalty term of [`edd_loss`]
/// (`β · penalty(RES)`), for telemetry: the search loop reports the penalty
/// component per epoch without building a tensor graph.
#[must_use]
pub fn res_penalty_scalar(res: f32, res_ub: f64, cfg: &LossConfig) -> f32 {
    if !res_ub.is_finite() {
        return 0.0;
    }
    const KNEE: f32 = 20.0;
    let overshoot = (res / res_ub as f32 - 1.0) * cfg.penalty_sharpness;
    let capped = overshoot.clamp(-KNEE, KNEE).exp();
    let tail = (overshoot - KNEE).max(0.0) * KNEE.exp();
    cfg.beta * (capped + tail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_penalty_matches_tensor_form() {
        let cfg = LossConfig {
            alpha: 1.0,
            beta: 2.5,
            penalty_sharpness: 8.0,
        };
        for res in [0.0f32, 50.0, 100.0, 200.0, 1e12] {
            // acc = 1, perf = 0 isolates the penalty term in edd_loss.
            let tensor = edd_loss(
                &Tensor::scalar(1.0),
                &Tensor::scalar(0.0),
                &Tensor::scalar(res),
                100.0,
                &cfg,
            )
            .unwrap()
            .item();
            let scalar = res_penalty_scalar(res, 100.0, &cfg);
            assert!(
                (tensor - scalar).abs() <= 1e-6 * scalar.abs().max(1.0),
                "res={res}: tensor {tensor} vs scalar {scalar}"
            );
        }
        assert_eq!(res_penalty_scalar(1e9, f64::INFINITY, &cfg), 0.0);
    }

    #[test]
    fn multiplicative_form() {
        let acc = Tensor::scalar(2.0);
        let perf = Tensor::scalar(3.0);
        let res = Tensor::scalar(0.0);
        let cfg = LossConfig {
            alpha: 0.5,
            beta: 0.0,
            penalty_sharpness: 8.0,
        };
        let l = edd_loss(&acc, &perf, &res, 100.0, &cfg).unwrap();
        // 2 * (3 * 0.5) + 0
        assert!((l.item() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn penalty_small_under_budget_large_over() {
        let acc = Tensor::scalar(1.0);
        let perf = Tensor::scalar(1.0);
        let cfg = LossConfig::default();
        let under = edd_loss(&acc, &perf, &Tensor::scalar(50.0), 100.0, &cfg)
            .unwrap()
            .item();
        let over = edd_loss(&acc, &perf, &Tensor::scalar(200.0), 100.0, &cfg)
            .unwrap()
            .item();
        assert!(under < 1.1, "under-budget penalty should be tiny: {under}");
        assert!(over > 100.0, "over-budget penalty should dominate: {over}");
    }

    #[test]
    fn penalty_at_budget_equals_beta() {
        let acc = Tensor::scalar(0.0);
        let perf = Tensor::scalar(0.0);
        let cfg = LossConfig {
            alpha: 1.0,
            beta: 3.0,
            penalty_sharpness: 8.0,
        };
        let l = edd_loss(&acc, &perf, &Tensor::scalar(100.0), 100.0, &cfg).unwrap();
        assert!((l.item() - 3.0).abs() < 1e-5);
    }

    #[test]
    fn infinite_budget_drops_penalty() {
        let acc = Tensor::scalar(1.0);
        let perf = Tensor::scalar(1.0);
        let l = edd_loss(
            &acc,
            &perf,
            &Tensor::scalar(1e9),
            f64::INFINITY,
            &LossConfig::default(),
        )
        .unwrap();
        assert!((l.item() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_flows_to_all_inputs() {
        use edd_tensor::Array;
        let acc = Tensor::param(Array::scalar(1.0));
        let perf = Tensor::param(Array::scalar(2.0));
        let res = Tensor::param(Array::scalar(150.0));
        let l = edd_loss(&acc, &perf, &res, 100.0, &LossConfig::default()).unwrap();
        l.backward();
        assert!(acc.grad().is_some());
        assert!(perf.grad().is_some());
        let rg = res.grad().unwrap().item();
        assert!(
            rg > 0.0,
            "over budget: pressure to reduce resources, got {rg}"
        );
    }

    #[test]
    fn extreme_overshoot_does_not_overflow() {
        let acc = Tensor::scalar(1.0);
        let perf = Tensor::scalar(1.0);
        let l = edd_loss(
            &acc,
            &perf,
            &Tensor::scalar(1e12),
            100.0,
            &LossConfig::default(),
        )
        .unwrap();
        assert!(l.item().is_finite());
    }
}
