//! Lowering a trained, calibrated model into the `edd-ir` graph.
//!
//! This is the frontend of the IR pipeline: it walks a [`QatModel`] in the
//! same stem → blocks → head → pool → classifier order that
//! [`QuantizedModel::compile`](crate::QuantizedModel::compile) hard-codes, but emits *annotated float
//! graph nodes* instead of compiled layers. Each quantization boundary
//! carries its calibrated activation scale and each parameterized op its
//! Φ-searched weight precision, so `edd_ir::passes::lower` can reproduce
//! the direct compilation bit-for-bit — the equivalence suite in
//! `crates/zoo/tests` holds the two paths to exact output equality.
//!
//! Keeping this in `edd-core` (not `edd-ir`) preserves the layering: the
//! IR crate knows nothing about search, QAT, or calibration; this module
//! knows nothing about passes or artifacts.

use crate::derive::DerivedArch;
use crate::qat::QatModel;
use crate::quantize::{Calibration, ENGINE_MAX_BITS};
use edd_ir::{BatchNormOp, ConvOp, DwConvOp, Graph, GraphMeta, LinearOp, Node, Op};
use edd_nn::{bn_fold_factors, BatchNorm2d, Conv2d, DwConv2d};
use edd_tensor::{Result, TensorError};

fn node(name: String, op: Op, inputs: Vec<usize>, scale: f32, bits: Option<u32>) -> Node {
    Node {
        name,
        op,
        inputs,
        scale: Some(scale),
        bits,
    }
}

/// Adds a conv + BN (+ optional ReLU6) stage, all annotated with the
/// stage's calibrated output scale, returning the last node id.
fn conv_stage(
    g: &mut Graph,
    name: &str,
    (conv, bn): (&Conv2d, &BatchNorm2d),
    input: usize,
    out_scale: f32,
    bits: u32,
    relu6: bool,
) -> Result<usize> {
    let w = conv.weight().value();
    let shape = w.shape().to_vec();
    let c = g.add(node(
        format!("{name}.conv"),
        Op::Conv2d(Box::new(ConvOp {
            w: w.data().to_vec(),
            out_channels: shape[0],
            in_channels: shape[1],
            kernel: shape[2],
            stride: conv.stride(),
            padding: conv.padding(),
            bias: conv.bias().map(|b| b.value().data().to_vec()),
            relu6: false,
        })),
        vec![input],
        out_scale,
        Some(bits),
    ))?;
    let (mul, add) = bn_fold_factors(bn);
    let b = g.add(node(
        format!("{name}.bn"),
        Op::BatchNorm(Box::new(BatchNormOp {
            mul,
            add,
            relu6: false,
        })),
        vec![c],
        out_scale,
        None,
    ))?;
    if !relu6 {
        return Ok(b);
    }
    g.add(node(
        format!("{name}.relu6"),
        Op::Relu6,
        vec![b],
        out_scale,
        None,
    ))
}

/// Depthwise analogue of [`conv_stage`].
fn dw_stage(
    g: &mut Graph,
    name: &str,
    dw: &DwConv2d,
    bn: &BatchNorm2d,
    input: usize,
    out_scale: f32,
    bits: u32,
) -> Result<usize> {
    let w = dw.weight().value();
    let shape = w.shape().to_vec();
    let c = g.add(node(
        format!("{name}.conv"),
        Op::DwConv2d(Box::new(DwConvOp {
            w: w.data().to_vec(),
            channels: shape[0],
            kernel: shape[1],
            stride: dw.stride(),
            padding: dw.padding(),
            bias: dw.bias().map(|b| b.value().data().to_vec()),
            relu6: false,
        })),
        vec![input],
        out_scale,
        Some(bits),
    ))?;
    let (mul, add) = bn_fold_factors(bn);
    let b = g.add(node(
        format!("{name}.bn"),
        Op::BatchNorm(Box::new(BatchNormOp {
            mul,
            add,
            relu6: false,
        })),
        vec![c],
        out_scale,
        None,
    ))?;
    g.add(node(
        format!("{name}.relu6"),
        Op::Relu6,
        vec![b],
        out_scale,
        None,
    ))
}

/// Lowers a trained [`QatModel`] into an annotated float [`Graph`]: the
/// IR-pipeline equivalent of handing the model to
/// [`QuantizedModel::compile`]. Weights are copied out of the model,
/// activation scales come from `calib`, and per-block weight precisions
/// from the arch's searched Φ (clamped to [`ENGINE_MAX_BITS`], exactly as
/// the direct compiler does).
///
/// # Errors
///
/// Errors when `calib` has a different block count than the model, or
/// when a block that expands is missing its expand-stage scale.
///
/// [`QuantizedModel::compile`]: crate::quantize::QuantizedModel::compile
pub fn lower_to_graph(model: &QatModel, arch: &DerivedArch, calib: &Calibration) -> Result<Graph> {
    if calib.blocks.len() != model.blocks().len() {
        return Err(TensorError::InvalidArgument(format!(
            "lower_to_graph: calibration covers {} blocks, model has {}",
            calib.blocks.len(),
            model.blocks().len()
        )));
    }
    let s = &arch.space;
    let mut g = Graph::new(GraphMeta {
        name: arch.name.clone(),
        input_shape: [s.input_channels, s.image_size, s.image_size],
        num_classes: s.num_classes,
    });
    let input = g.add(node("input".into(), Op::Input, vec![], calib.input, None))?;
    let mut prev = conv_stage(
        &mut g,
        "stem",
        (model.stem(), model.stem_bn()),
        input,
        calib.stem_out,
        ENGINE_MAX_BITS,
        true,
    )?;
    for (i, ((mb, spec), scales)) in model.blocks().iter().zip(&calib.blocks).enumerate() {
        let bits = spec.map_or(ENGINE_MAX_BITS, |sp| sp.bits.min(ENGINE_MAX_BITS));
        let block_in = prev;
        let mut h = block_in;
        if let Some((conv, bn)) = mb.expand() {
            let expand_out = scales.expand_out.ok_or_else(|| {
                TensorError::InvalidArgument(format!(
                    "lower_to_graph: block {i} expands but has no expand-stage scale"
                ))
            })?;
            h = conv_stage(
                &mut g,
                &format!("block{i}.expand"),
                (conv, bn),
                h,
                expand_out,
                bits,
                true,
            )?;
        }
        h = dw_stage(
            &mut g,
            &format!("block{i}.dw"),
            mb.depthwise(),
            mb.dw_bn(),
            h,
            scales.dw_out,
            bits,
        )?;
        h = conv_stage(
            &mut g,
            &format!("block{i}.project"),
            (mb.project(), mb.proj_bn()),
            h,
            scales.block_out,
            bits,
            false,
        )?;
        if mb.has_residual() {
            // Operand order matters for exactness: the projection output
            // already lives on the block-output grid (passes through raw),
            // the block input is requantized — matching QMbConv's loop.
            h = g.add(node(
                format!("block{i}.residual"),
                Op::Add,
                vec![h, block_in],
                scales.block_out,
                None,
            ))?;
        }
        prev = h;
    }
    let head = conv_stage(
        &mut g,
        "head",
        (model.head(), model.head_bn()),
        prev,
        calib.head_out,
        ENGINE_MAX_BITS,
        true,
    )?;
    let pool = g.add(node(
        "gap".into(),
        Op::GlobalAvgPool,
        vec![head],
        calib.head_out,
        None,
    ))?;
    let lin = model.classifier();
    let w = lin.weight().value();
    let shape = w.shape().to_vec();
    let fc = g.add(node(
        "classifier".into(),
        Op::Linear(Box::new(LinearOp {
            w: w.data().to_vec(),
            in_features: shape[0],
            out_features: shape[1],
            bias: lin.bias().value().data().to_vec(),
        })),
        vec![pool],
        calib.head_out,
        Some(ENGINE_MAX_BITS),
    ))?;
    g.set_output(fc)?;
    Ok(g)
}
