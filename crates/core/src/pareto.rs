//! Pareto-front extraction for multi-objective search results.
//!
//! A sweep scores each derived architecture as a [`ParetoPoint`] with
//! three objectives: validation accuracy (maximize), measured or modeled
//! performance in milliseconds per frame (minimize), and resource use in
//! DSP slices (minimize; `0` for targets with fixed silicon). The front is
//! the set of non-dominated points, computed with a plain `O(n²)`
//! dominance filter over a canonically-sorted input — no float `Ord`
//! shortcuts, `total_cmp` throughout — so the result is a deterministic
//! function of the input *set*: permuting or duplicating inputs cannot
//! change the output (property-tested below).
//!
//! Incremental maintenance is exact: because dominance is transitive,
//! `front(old_front ∪ new_points)` equals the front of every point ever
//! seen, so a sweep only needs to checkpoint the current front.

/// One candidate architecture's position in objective space.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Stable target key (`DeviceTarget::key()`).
    pub target: String,
    /// Epoch whose derived architecture produced this point.
    pub epoch: usize,
    /// Validation accuracy in `[0, 1]` — maximized.
    pub val_acc: f32,
    /// Milliseconds per frame (latency, or `1000 / fps` for throughput
    /// targets) — minimized.
    pub perf_ms: f64,
    /// Resource use (DSP slices; `0` when the target has no searchable
    /// resource dimension) — minimized.
    pub resource: f64,
    /// Derived architecture as JSON (tie-break key and report payload).
    pub arch_json: String,
}

impl ParetoPoint {
    /// Whether `self` dominates `other`: at least as good in every
    /// objective and strictly better in at least one. NaN compares via
    /// IEEE `total_cmp` order, so corrupt inputs degrade deterministically
    /// instead of poisoning the filter.
    #[must_use]
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        use std::cmp::Ordering::*;
        let acc = self.val_acc.total_cmp(&other.val_acc);
        let perf = self.perf_ms.total_cmp(&other.perf_ms);
        let res = self.resource.total_cmp(&other.resource);
        let no_worse = acc != Less && perf != Greater && res != Greater;
        let better = acc == Greater || perf == Less || res == Less;
        no_worse && better
    }

    fn same_metrics(&self, other: &ParetoPoint) -> bool {
        self.val_acc.to_bits() == other.val_acc.to_bits()
            && self.perf_ms.to_bits() == other.perf_ms.to_bits()
            && self.resource.to_bits() == other.resource.to_bits()
    }

    /// Canonical ordering: accuracy descending, then performance and
    /// resource ascending, then epoch / JSON / target as deterministic
    /// tie-breakers. Total, even for NaN metrics.
    fn canonical_cmp(&self, other: &ParetoPoint) -> std::cmp::Ordering {
        other
            .val_acc
            .total_cmp(&self.val_acc)
            .then_with(|| self.perf_ms.total_cmp(&other.perf_ms))
            .then_with(|| self.resource.total_cmp(&other.resource))
            .then_with(|| self.epoch.cmp(&other.epoch))
            .then_with(|| self.arch_json.cmp(&other.arch_json))
            .then_with(|| self.target.cmp(&other.target))
    }
}

/// Extracts the Pareto front of `points`: canonical sort, collapse exact
/// metric duplicates (keeping the canonically-first witness, i.e. the
/// earliest epoch), then drop every dominated point. The output is sorted
/// by descending accuracy and is invariant under permutation and
/// duplication of the input.
#[must_use]
pub fn front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut sorted: Vec<ParetoPoint> = points.to_vec();
    sorted.sort_by(ParetoPoint::canonical_cmp);
    sorted.dedup_by(|b, a| a.same_metrics(b));
    let survivors: Vec<ParetoPoint> = sorted
        .iter()
        .filter(|p| !sorted.iter().any(|q| q.dominates(p)))
        .cloned()
        .collect();
    survivors
}

/// Merges newly-scored points into an existing front. Exact because
/// dominance is transitive: anything dominated by a discarded point was
/// also dominated by a kept one.
#[must_use]
pub fn merge(existing: &[ParetoPoint], fresh: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut all = existing.to_vec();
    all.extend_from_slice(fresh);
    front(&all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pt(acc: f32, perf: f64, res: f64) -> ParetoPoint {
        ParetoPoint {
            target: "gpu".into(),
            epoch: 0,
            val_acc: acc,
            perf_ms: perf,
            resource: res,
            arch_json: String::new(),
        }
    }

    #[test]
    fn dominance_basics() {
        assert!(pt(0.9, 1.0, 10.0).dominates(&pt(0.8, 2.0, 20.0)));
        assert!(pt(0.9, 1.0, 10.0).dominates(&pt(0.9, 1.0, 20.0)));
        // Equal points do not dominate each other.
        assert!(!pt(0.9, 1.0, 10.0).dominates(&pt(0.9, 1.0, 10.0)));
        // Trade-offs are incomparable.
        assert!(!pt(0.9, 2.0, 10.0).dominates(&pt(0.8, 1.0, 10.0)));
        assert!(!pt(0.8, 1.0, 10.0).dominates(&pt(0.9, 2.0, 10.0)));
    }

    #[test]
    fn front_drops_dominated_and_keeps_tradeoffs() {
        let f = front(&[
            pt(0.9, 2.0, 10.0),
            pt(0.8, 1.0, 10.0),
            pt(0.7, 3.0, 30.0), // dominated by both
        ]);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].val_acc, 0.9);
        assert_eq!(f[1].val_acc, 0.8);
    }

    #[test]
    fn exact_duplicates_collapse_to_earliest_epoch() {
        let mut a = pt(0.9, 1.0, 10.0);
        a.epoch = 5;
        let mut b = pt(0.9, 1.0, 10.0);
        b.epoch = 2;
        let f = front(&[a, b]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].epoch, 2);
    }

    #[test]
    fn merge_equals_front_of_union() {
        let old = [pt(0.9, 2.0, 10.0), pt(0.8, 1.0, 10.0)];
        let fresh = [pt(0.95, 3.0, 10.0), pt(0.7, 0.5, 5.0)];
        let mut all = old.to_vec();
        all.extend_from_slice(&fresh);
        assert_eq!(merge(&front(&old), &fresh), front(&all));
    }

    // A coarse metric grid maximizes duplicate/tie collisions, which is
    // where naive filters go wrong.
    fn arb_point() -> impl Strategy<Value = ParetoPoint> {
        (0u8..=4, 0u8..=4, 0u8..=4, 0usize..8).prop_map(|(acc, perf, res, epoch)| ParetoPoint {
            target: "gpu".into(),
            epoch,
            val_acc: f32::from(acc) * 0.25,
            perf_ms: f64::from(perf) * 0.5,
            resource: f64::from(res) * 10.0,
            arch_json: String::new(),
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn no_survivor_is_dominated(points in prop::collection::vec(arb_point(), 0..24)) {
            let f = front(&points);
            for s in &f {
                for p in &points {
                    prop_assert!(!p.dominates(s), "front point dominated by an input");
                }
            }
        }

        #[test]
        fn every_input_is_covered(points in prop::collection::vec(arb_point(), 0..24)) {
            // Completeness: each input is on the front, dominated by a
            // front point, or an exact metric duplicate of a front point.
            let f = front(&points);
            for p in &points {
                let covered = f.iter().any(|s| s.dominates(p) || s.same_metrics(p));
                prop_assert!(covered, "input point neither kept nor dominated");
            }
        }

        #[test]
        fn permutation_invariant(
            points in prop::collection::vec(arb_point(), 0..16),
            seed in 0u64..1024,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut shuffled = points.clone();
            for i in (1..shuffled.len()).rev() {
                let j = rng.gen_range(0..=i);
                shuffled.swap(i, j);
            }
            prop_assert_eq!(front(&points), front(&shuffled));
        }

        #[test]
        fn duplication_invariant(points in prop::collection::vec(arb_point(), 0..16)) {
            let mut doubled = points.clone();
            doubled.extend_from_slice(&points);
            prop_assert_eq!(front(&points), front(&doubled));
        }

        #[test]
        fn incremental_merge_is_exact(
            old in prop::collection::vec(arb_point(), 0..12),
            fresh in prop::collection::vec(arb_point(), 0..12),
        ) {
            let mut all = old.clone();
            all.extend_from_slice(&fresh);
            prop_assert_eq!(merge(&front(&old), &fresh), front(&all));
        }
    }
}
