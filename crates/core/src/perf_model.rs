//! Differentiable performance/resource formulation — Stages 1–4 of paper
//! §3.2 (Eq. 2–10), built as autodiff expressions over the architecture
//! parameters.
//!
//! Stage-1 per-`(op, q)` coefficients come from the analytic `edd-hw`
//! models ([`PerfTables`]); the parallel factor enters the graph as
//! `2^{±pf} = exp(±pf·ln 2)` so it stays continuous and differentiable.
//! Stage-2/3 are Gumbel-Softmax expectations over `Φ` and `Θ`; Stage-4
//! aggregates with a sum (latency, Eq. 6) or Log-Sum-Exp smooth max
//! (throughput, Eq. 7), and counts resources with (Eq. 8) or without
//! (Eq. 9–10, `tanh` sharing suppression) duplication.

use crate::arch_params::ArchParams;
use crate::space::SearchSpace;
use crate::target::{DeviceTarget, PerfObjective};
use edd_hw::accel::op_latency_ms as accel_op_latency;
use edd_hw::calib::{phi as phi_cal, psi as psi_cal};
use edd_hw::gpu::{op_latency_ms as gpu_op_latency, GpuPrecision};
use edd_tensor::{gumbel_softmax, Array, Result, Tensor, TensorError};
use rand::Rng;

const LN2: f32 = std::f32::consts::LN_2;

/// Φ normalization so 16-bit is the reference precision — must match
/// `edd_hw::fpga`.
const PHI_NORM: f64 = 16.0;

/// Precomputed Stage-1 coefficient tables for a `(space, target)` pair.
///
/// * FPGA targets: `lat[i][m][qi]` is the op latency (ms) at parallelism 1;
///   the differentiable expression multiplies by `2^{-pf}`. `psi_q[qi]`
///   gives DSPs per unit parallelism; resource multiplies by `2^{pf}`.
/// * GPU targets: `lat[i][m][qi]` is the absolute roofline latency (ms) and
///   there are no parallel factors or resource terms.
#[derive(Debug, Clone)]
pub struct PerfTables {
    /// Per-(block, op, quant) latency coefficients (ms).
    pub lat: Vec<Vec<Vec<f32>>>,
    /// DSP cost per unit parallelism per quant index (empty for GPU).
    pub psi_q: Vec<f32>,
    /// Whether parallel factors scale latency/resource.
    pub uses_pf: bool,
}

impl PerfTables {
    /// Builds the coefficient tables.
    ///
    /// # Errors
    ///
    /// Returns an error if a GPU target is paired with a bit-width outside
    /// `{8, 16, 32}` (TensorRT support, paper §4.2).
    pub fn build(space: &SearchSpace, target: &DeviceTarget) -> Result<Self> {
        let n = space.num_blocks();
        let m = space.num_ops();
        let mut lat = vec![vec![vec![0.0f32; space.num_quant()]; m]; n];
        match target {
            DeviceTarget::Gpu(device) => {
                for (i, row) in lat.iter_mut().enumerate() {
                    for (mm, cell) in row.iter_mut().enumerate() {
                        let op = space.op_shape(i, mm);
                        for (qi, &bits) in space.quant_bits.iter().enumerate() {
                            let prec = GpuPrecision::from_bits(bits).ok_or_else(|| {
                                TensorError::InvalidArgument(format!(
                                    "GPU target does not support {bits}-bit"
                                ))
                            })?;
                            cell[qi] = gpu_op_latency(&op, prec, device) as f32;
                        }
                    }
                }
                Ok(PerfTables {
                    lat,
                    psi_q: Vec::new(),
                    uses_pf: false,
                })
            }
            DeviceTarget::Dedicated(device) => {
                for (i, row) in lat.iter_mut().enumerate() {
                    for (mm, cell) in row.iter_mut().enumerate() {
                        let op = space.op_shape(i, mm);
                        for (qi, &bits) in space.quant_bits.iter().enumerate() {
                            cell[qi] = accel_op_latency(&op, bits, device) as f32;
                        }
                    }
                }
                Ok(PerfTables {
                    lat,
                    psi_q: Vec::new(),
                    uses_pf: false,
                })
            }
            DeviceTarget::FpgaRecursive(device) | DeviceTarget::FpgaPipelined(device) => {
                for (i, row) in lat.iter_mut().enumerate() {
                    for (mm, cell) in row.iter_mut().enumerate() {
                        let op = space.op_shape(i, mm);
                        for (qi, &bits) in space.quant_bits.iter().enumerate() {
                            cell[qi] = (phi_cal(bits) / PHI_NORM * op.work()
                                / device.cycles_per_ms())
                                as f32;
                        }
                    }
                }
                let psi_q = space
                    .quant_bits
                    .iter()
                    .map(|&b| psi_cal(b) as f32)
                    .collect();
                Ok(PerfTables {
                    lat,
                    psi_q,
                    uses_pf: true,
                })
            }
        }
    }
}

impl PerfTables {
    /// Builds Stage-1 coefficients for the **model-size** objective that
    /// Eq. 6 also admits ("end-to-end latency, total energy or model
    /// size"): the per-`(op, q)` coefficient is the op's weight storage in
    /// megabytes at `q`-bit precision. Device-independent, no parallel
    /// factors; pair with any latency-objective target when calling
    /// [`estimate`].
    #[must_use]
    pub fn model_size(space: &SearchSpace) -> Self {
        let n = space.num_blocks();
        let m = space.num_ops();
        let mut lat = vec![vec![vec![0.0f32; space.num_quant()]; m]; n];
        for (i, row) in lat.iter_mut().enumerate() {
            for (mm, cell) in row.iter_mut().enumerate() {
                let op = space.op_shape(i, mm);
                for (qi, &bits) in space.quant_bits.iter().enumerate() {
                    cell[qi] = (op.params() * f64::from(bits) / 8.0 / 1e6) as f32;
                }
            }
        }
        PerfTables {
            lat,
            psi_q: Vec::new(),
            uses_pf: false,
        }
    }
}

/// The differentiable Stage-4 outputs plus scalar snapshots for logging.
#[derive(Debug)]
pub struct PerfEstimate {
    /// Stage-4 performance term (ms for latency targets; smooth-max block
    /// latency for throughput targets). Differentiable w.r.t. `Θ`, `Φ`,
    /// `pf`.
    pub perf: Tensor,
    /// Stage-4 resource usage (DSPs). Differentiable; constant 0 for GPU.
    pub res: Tensor,
    /// Per-block expected latency values (ms), for logging.
    pub block_latency_ms: Vec<f32>,
}

/// Builds the differentiable performance/resource estimate for the current
/// architecture parameters.
///
/// `tau` is the Gumbel-Softmax temperature; sampling is *soft* here (the
/// expectation form of Eq. 2–5).
///
/// # Errors
///
/// Propagates shape errors (internal invariants; should not occur for
/// well-formed inputs).
pub fn estimate<R: Rng + ?Sized>(
    arch: &ArchParams,
    tables: &PerfTables,
    space: &SearchSpace,
    target: &DeviceTarget,
    tau: f32,
    rng: &mut R,
) -> Result<PerfEstimate> {
    let n = space.num_blocks();
    let m = space.num_ops();
    let q = space.num_quant();

    // Soft Θ samples per block (Stage-3 weights).
    let gs_theta: Vec<Tensor> = arch
        .theta
        .iter()
        .map(|t| gumbel_softmax(t, tau, false, rng))
        .collect::<Result<_>>()?;

    // Soft Φ samples. Key by the tensor identity so shared layouts
    // (recursive per-class, GPU global) sample exactly once.
    let mut phi_cache: Vec<(usize, Tensor)> = Vec::new();
    let mut phi_sample = |logits: &Tensor, rng: &mut R| -> Result<Tensor> {
        let key = logits.node_id();
        if let Some((_, t)) = phi_cache.iter().find(|(k, _)| *k == key) {
            return Ok(t.clone());
        }
        let s = gumbel_softmax(logits, tau, false, rng)?;
        phi_cache.push((key, s.clone()));
        Ok(s)
    };

    // 2^{±pf} helper.
    let two_pow = |pf: &Tensor, sign: f32| pf.mul_scalar(sign * LN2).exp();

    // Stage-2: per-(i, m) expected perf and res over quantizations.
    let mut op_perf: Vec<Vec<Tensor>> = Vec::with_capacity(n);
    let mut op_res: Vec<Vec<Option<Tensor>>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut row_perf = Vec::with_capacity(m);
        let mut row_res = Vec::with_capacity(m);
        for mm in 0..m {
            let gs_phi = phi_sample(arch.phi_logits(i, mm), rng)?;
            let lat_const = Tensor::constant(
                Array::from_vec(tables.lat[i][mm].clone(), &[q]).expect("table sized"),
            );
            // Perf^q · GS(φ) summed over q (Eq. 2).
            let mut perf = gs_phi.mul(&lat_const)?.sum();
            if tables.uses_pf {
                let pf = arch.pf(i, mm).expect("FPGA targets have pf");
                perf = perf.mul(&two_pow(pf, -1.0))?;
                // Res^q · GS(φ) summed over q (Eq. 3), times 2^{pf}.
                let psi_const = Tensor::constant(
                    Array::from_vec(tables.psi_q.clone(), &[q]).expect("table sized"),
                );
                let res = gs_phi.mul(&psi_const)?.sum().mul(&two_pow(pf, 1.0))?;
                row_res.push(Some(res));
            } else {
                row_res.push(None);
            }
            row_perf.push(perf);
        }
        op_perf.push(row_perf);
        op_res.push(row_res);
    }

    // Stage-3: per-block expected perf over ops (Eq. 4).
    let mut block_perf = Vec::with_capacity(n);
    for i in 0..n {
        let stacked = Tensor::stack_scalars(&op_perf[i])?;
        block_perf.push(gs_theta[i].mul(&stacked)?.sum());
    }
    let block_latency_ms: Vec<f32> = block_perf.iter().map(Tensor::item).collect();

    // Stage-4 performance (Eq. 6 / Eq. 7).
    let perf = match target.objective() {
        PerfObjective::Latency => {
            let stacked = Tensor::stack_scalars(&block_perf)?;
            stacked.sum()
        }
        PerfObjective::Throughput => {
            let stacked = Tensor::stack_scalars(&block_perf)?;
            stacked.logsumexp()
        }
    };

    // Stage-4 resource (Eq. 8 / Eq. 9–10).
    let res = if !tables.uses_pf {
        Tensor::scalar(0.0)
    } else if target.shares_resource() {
        // Recursive: for each op class m, usage share tanh(Σᵢ GS(θᵢ)ₘ)
        // suppresses duplicate counting; the class resource uses the shared
        // pf/φ (any block index works; use block 0).
        let mut class_terms = Vec::with_capacity(m);
        #[allow(clippy::needless_range_loop)] // lockstep multi-array indexing
        for mm in 0..m {
            let mut selects = Vec::with_capacity(n);
            for gs in gs_theta.iter().take(n) {
                selects.push(gs.select(mm)?);
            }
            let share = Tensor::stack_scalars(&selects)?.sum().tanh();
            let res_m = op_res[0][mm].clone().expect("FPGA has res");
            class_terms.push(share.mul(&res_m)?);
        }
        Tensor::stack_scalars(&class_terms)?.sum()
    } else {
        // Pipelined: weighted sum over every (i, m) (Eq. 5 + Eq. 8).
        let mut terms = Vec::with_capacity(n);
        for i in 0..n {
            let ress: Vec<Tensor> = op_res[i]
                .iter()
                .map(|r| r.clone().expect("FPGA has res"))
                .collect();
            let stacked = Tensor::stack_scalars(&ress)?;
            terms.push(gs_theta[i].mul(&stacked)?.sum());
        }
        Tensor::stack_scalars(&terms)?.sum()
    };

    Ok(PerfEstimate {
        perf,
        res,
        block_latency_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edd_hw::{FpgaDevice, GpuDevice};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::tiny(3, 16, 4, vec![4, 8, 16])
    }

    fn gpu_space() -> SearchSpace {
        SearchSpace::tiny(3, 16, 4, vec![8, 16, 32])
    }

    #[test]
    fn tables_build_for_all_targets() {
        let s = space();
        let rec =
            PerfTables::build(&s, &DeviceTarget::FpgaRecursive(FpgaDevice::zcu102())).unwrap();
        assert!(rec.uses_pf);
        assert_eq!(rec.psi_q, vec![0.0, 0.5, 1.0]);
        let gpu =
            PerfTables::build(&gpu_space(), &DeviceTarget::Gpu(GpuDevice::titan_rtx())).unwrap();
        assert!(!gpu.uses_pf);
        assert!(gpu.psi_q.is_empty());
    }

    #[test]
    fn gpu_rejects_unsupported_bits() {
        let s = space(); // has 4-bit
        assert!(PerfTables::build(&s, &DeviceTarget::Gpu(GpuDevice::titan_rtx())).is_err());
    }

    #[test]
    fn fpga_latency_table_scales_with_bits() {
        let s = space();
        let t = PerfTables::build(&s, &DeviceTarget::FpgaPipelined(FpgaDevice::zc706())).unwrap();
        // Φ(q) = q: 16-bit coefficient is 4x the 4-bit one.
        let c4 = t.lat[0][0][0];
        let c16 = t.lat[0][0][2];
        assert!((c16 / c4 - 4.0).abs() < 1e-4);
    }

    #[test]
    fn estimate_differentiable_wrt_all_vars() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = space();
        let target = DeviceTarget::FpgaPipelined(FpgaDevice::zc706());
        let arch = ArchParams::init(&s, &target, &mut rng);
        let tables = PerfTables::build(&s, &target).unwrap();
        let est = estimate(&arch, &tables, &s, &target, 1.0, &mut rng).unwrap();
        let total = est.perf.add(&est.res).unwrap();
        total.backward();
        for p in arch.all_params() {
            assert!(p.grad().is_some(), "missing grad on an arch param");
        }
    }

    #[test]
    fn latency_objective_sums_blocks() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = space();
        let target = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
        let arch = ArchParams::init(&s, &target, &mut rng);
        let tables = PerfTables::build(&s, &target).unwrap();
        let est = estimate(&arch, &tables, &s, &target, 1.0, &mut rng).unwrap();
        let sum: f32 = est.block_latency_ms.iter().sum();
        assert!((est.perf.item() - sum).abs() < 1e-5);
    }

    #[test]
    fn throughput_objective_is_smooth_max() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = space();
        let target = DeviceTarget::FpgaPipelined(FpgaDevice::zc706());
        let arch = ArchParams::init(&s, &target, &mut rng);
        let tables = PerfTables::build(&s, &target).unwrap();
        let est = estimate(&arch, &tables, &s, &target, 1.0, &mut rng).unwrap();
        let max = est
            .block_latency_ms
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        let n = est.block_latency_ms.len() as f32;
        assert!(est.perf.item() >= max - 1e-5);
        assert!(est.perf.item() <= max + n.ln() + 1e-5);
    }

    #[test]
    fn recursive_res_counts_classes_once() {
        // With uniform theta the share factor tanh(Σ GS) saturates near
        // tanh(1)=0.76 per class; resource must be far below the pipelined
        // (per-block) count.
        let mut rng = StdRng::seed_from_u64(4);
        let s = space();
        let rec_t = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
        let rec_arch = ArchParams::init(&s, &rec_t, &mut rng);
        let rec_tables = PerfTables::build(&s, &rec_t).unwrap();
        let rec_est = estimate(&rec_arch, &rec_tables, &s, &rec_t, 1.0, &mut rng).unwrap();
        // Upper bound: M classes × psi(16) × 2^pf0 where 2^pf0 = budget/M.
        let budget = 2520.0f32;
        assert!(
            rec_est.res.item() <= budget * 1.05,
            "res {}",
            rec_est.res.item()
        );
        assert!(rec_est.res.item() > 0.0);
    }

    #[test]
    fn gpu_res_is_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = gpu_space();
        let target = DeviceTarget::Gpu(GpuDevice::titan_rtx());
        let arch = ArchParams::init(&s, &target, &mut rng);
        let tables = PerfTables::build(&s, &target).unwrap();
        let est = estimate(&arch, &tables, &s, &target, 1.0, &mut rng).unwrap();
        assert_eq!(est.res.item(), 0.0);
    }

    #[test]
    fn dedicated_tables_scale_with_weight_bits() {
        use edd_hw::AccelDevice;
        let s = SearchSpace::tiny(2, 16, 4, vec![2, 4, 8, 16]);
        let target = DeviceTarget::Dedicated(AccelDevice::loom_like());
        let t = PerfTables::build(&s, &target).unwrap();
        assert!(!t.uses_pf);
        // Loom property: latency proportional to weight bits.
        let l2 = t.lat[0][0][0];
        let l16 = t.lat[0][0][3];
        assert!((l16 / l2 - 8.0).abs() < 1e-4, "{l16} vs {l2}");
    }

    #[test]
    fn dedicated_estimate_differentiable_and_resource_free() {
        use edd_hw::AccelDevice;
        let mut rng = StdRng::seed_from_u64(9);
        let s = SearchSpace::tiny(2, 16, 4, vec![2, 4, 8, 16]);
        let target = DeviceTarget::Dedicated(AccelDevice::loom_like());
        let arch = ArchParams::init(&s, &target, &mut rng);
        let tables = PerfTables::build(&s, &target).unwrap();
        let est = estimate(&arch, &tables, &s, &target, 1.0, &mut rng).unwrap();
        assert_eq!(est.res.item(), 0.0);
        est.perf.backward();
        for t in &arch.theta {
            assert!(t.grad().is_some());
        }
        assert!(arch.phi_logits(0, 0).grad().is_some());
    }

    #[test]
    fn model_size_tables_scale_with_bits_and_params() {
        let s = space();
        let t = PerfTables::model_size(&s);
        assert!(!t.uses_pf);
        // 16-bit weights take 4x the storage of 4-bit.
        assert!((t.lat[0][0][2] / t.lat[0][0][0] - 4.0).abs() < 1e-4);
        // e6 candidates store more than e4 at equal kernel (indices 2 vs 0
        // share kernel 3 with expansions 6 vs 4).
        assert!(t.lat[0][2][1] > t.lat[0][0][1]);
    }

    #[test]
    fn model_size_estimate_prefers_low_bits() {
        // Under the model-size objective, the gradient on phi favors fewer
        // bits: d perf / d phi_low < 0 relative to phi_high.
        let mut rng = StdRng::seed_from_u64(17);
        let s = space();
        let target = DeviceTarget::Gpu(edd_hw::GpuDevice::titan_rtx());
        // GPU target shapes phi as a single global vector over Q = 3.
        let arch = ArchParams::init(&s, &target, &mut rng);
        let tables = PerfTables::model_size(&s);
        let est = estimate(&arch, &tables, &s, &target, 1.0, &mut rng).unwrap();
        est.perf.backward();
        let g = arch.phi_logits(0, 0).grad().expect("phi grad");
        // Raising the low-bit logit lowers expected size; raising the
        // high-bit logit raises it.
        assert!(
            g.data()[0] < g.data()[2],
            "low-bit grad {} should be below high-bit grad {}",
            g.data()[0],
            g.data()[2]
        );
    }

    #[test]
    fn increasing_pf_decreases_latency_increases_res() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = space();
        let target = DeviceTarget::FpgaPipelined(FpgaDevice::zc706());
        let arch = ArchParams::init(&s, &target, &mut rng);
        let tables = PerfTables::build(&s, &target).unwrap();
        let mut rng_a = StdRng::seed_from_u64(99);
        let before = estimate(&arch, &tables, &s, &target, 1.0, &mut rng_a).unwrap();
        // Bump every pf by +1 (double parallelism).
        for i in 0..s.num_blocks() {
            for m in 0..s.num_ops() {
                let pf = arch.pf(i, m).unwrap();
                let v = pf.item();
                pf.update_value(|a| a.data_mut()[0] = v + 1.0);
            }
        }
        let mut rng_b = StdRng::seed_from_u64(99);
        let after = estimate(&arch, &tables, &s, &target, 1.0, &mut rng_b).unwrap();
        assert!(after.perf.item() < before.perf.item());
        assert!(after.res.item() > before.res.item());
        // Exactly 2x with identical noise.
        assert!((after.res.item() / before.res.item() - 2.0).abs() < 1e-3);
    }
}
