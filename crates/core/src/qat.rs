//! Quantization-aware final training of a derived architecture.
//!
//! The paper's §5 final step trains the searched DNN from scratch with its
//! searched implementation — including the per-block weight bit-widths the
//! co-search chose. [`QatModel`] builds the derived network with each
//! block's convolutions running through the straight-through fake
//! quantizer at its searched precision, so the trained weights adapt to
//! their quantization grids (true QAT, versus the post-training
//! quantization a plain [`DerivedArch::build_model`] would need).

use crate::derive::DerivedArch;
use edd_nn::{BatchNorm2d, Conv2d, Linear, MbConv, Module, QuantSpec, QuantizableModule};
use edd_tensor::{Result, Tensor};
use rand::Rng;

/// A derived network whose blocks train under their searched per-block
/// weight precisions (stem, head and classifier stay full precision, as is
/// standard for first/last layers).
pub struct QatModel {
    stem: Conv2d,
    stem_bn: BatchNorm2d,
    blocks: Vec<(MbConv, Option<QuantSpec>)>,
    head: Conv2d,
    head_bn: BatchNorm2d,
    classifier: Linear,
}

impl std::fmt::Debug for QatModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QatModel")
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

impl QatModel {
    /// Builds the QAT model for `arch` with fresh weights. Blocks whose
    /// searched precision is 32-bit (or wider) run full precision.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(arch: &DerivedArch, rng: &mut R) -> Self {
        let s = &arch.space;
        let stem = Conv2d::same(s.input_channels, s.stem_channels, 3, s.stem_stride, rng);
        let stem_bn = BatchNorm2d::new(s.stem_channels);
        let mut blocks = Vec::with_capacity(arch.blocks.len());
        for (i, b) in arch.blocks.iter().enumerate() {
            let cin = s.block_in_channels(i);
            let mb = MbConv::new(cin, b.out_channels, b.kernel, b.expansion, b.stride, rng);
            let spec = (b.quant_bits < 32).then(|| QuantSpec::bits(b.quant_bits));
            blocks.push((mb, spec));
        }
        let last_c = s.blocks.last().map_or(s.stem_channels, |b| b.out_channels);
        QatModel {
            stem,
            stem_bn,
            blocks,
            head: Conv2d::new(last_c, s.head_channels, 1, 1, 0, false, rng),
            head_bn: BatchNorm2d::new(s.head_channels),
            classifier: Linear::new(s.head_channels, s.num_classes, rng),
        }
    }

    /// Per-block quantization specs actually in force.
    #[must_use]
    pub fn block_specs(&self) -> Vec<Option<QuantSpec>> {
        self.blocks.iter().map(|(_, s)| *s).collect()
    }

    /// The stem convolution. Exposed (with the other stage accessors) so
    /// the post-training integer compiler in [`crate::quantize`] can fold
    /// and calibrate the network stage by stage.
    #[must_use]
    pub fn stem(&self) -> &Conv2d {
        &self.stem
    }

    /// Batch norm after the stem.
    #[must_use]
    pub fn stem_bn(&self) -> &BatchNorm2d {
        &self.stem_bn
    }

    /// The MBConv blocks with their searched quantization specs.
    #[must_use]
    pub fn blocks(&self) -> &[(MbConv, Option<QuantSpec>)] {
        &self.blocks
    }

    /// The head 1×1 convolution.
    #[must_use]
    pub fn head(&self) -> &Conv2d {
        &self.head
    }

    /// Batch norm after the head.
    #[must_use]
    pub fn head_bn(&self) -> &BatchNorm2d {
        &self.head_bn
    }

    /// The final classifier.
    #[must_use]
    pub fn classifier(&self) -> &Linear {
        &self.classifier
    }
}

impl Module for QatModel {
    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let mut h = self.stem.forward(x)?;
        h = self.stem_bn.forward(&h)?.relu6();
        for (mb, spec) in &self.blocks {
            h = mb.forward_quantized(&h, *spec)?;
        }
        let h = self.head.forward(&h)?;
        let h = self.head_bn.forward(&h)?.relu6();
        let h = h.global_avg_pool()?;
        self.classifier.forward(&h)
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.stem.parameters();
        p.extend(self.stem_bn.parameters());
        for (mb, _) in &self.blocks {
            p.extend(mb.parameters());
        }
        p.extend(self.head.parameters());
        p.extend(self.head_bn.parameters());
        p.extend(self.classifier.parameters());
        p
    }

    fn set_training(&self, training: bool) {
        self.stem_bn.set_training(training);
        for (mb, _) in &self.blocks {
            mb.set_training(training);
        }
        self.head_bn.set_training(training);
    }

    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.value().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch_params::ArchParams;
    use crate::space::SearchSpace;
    use crate::target::DeviceTarget;
    use edd_hw::FpgaDevice;
    use edd_tensor::Array;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn derived() -> DerivedArch {
        let mut rng = StdRng::seed_from_u64(31);
        let space = SearchSpace::tiny(3, 16, 4, vec![4, 8, 16]);
        let target = DeviceTarget::FpgaPipelined(FpgaDevice::zc706());
        let arch = ArchParams::init(&space, &target, &mut rng);
        DerivedArch::from_params(&space, &target, &arch)
    }

    #[test]
    fn forward_shape_and_specs() {
        let arch = derived();
        let mut rng = StdRng::seed_from_u64(32);
        let model = QatModel::new(&arch, &mut rng);
        assert!(format!("{model:?}").contains("QatModel"));
        let specs = model.block_specs();
        assert_eq!(specs.len(), 3);
        for (spec, b) in specs.iter().zip(&arch.blocks) {
            assert_eq!(spec.expect("< 32-bit menu").bits, b.quant_bits);
        }
        let x = Tensor::constant(Array::randn(&[2, 3, 16, 16], 1.0, &mut rng));
        let y = model.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![2, 4]);
    }

    #[test]
    fn qat_trains_on_synthetic_data() {
        use edd_data::{SynthConfig, SynthDataset};
        use edd_tensor::optim::Sgd;

        let arch = derived();
        let mut rng = StdRng::seed_from_u64(33);
        let model = QatModel::new(&arch, &mut rng);
        let data = SynthDataset::new(SynthConfig::tiny());
        let train = data.split(4, 16, 1);
        let test = data.split(2, 16, 2);
        let mut opt = Sgd::new(model.parameters(), 0.05, 0.9, 1e-4);
        let first = edd_nn::train_epoch(&model, &mut opt, &train).unwrap();
        let mut last = first;
        for _ in 0..5 {
            last = edd_nn::train_epoch(&model, &mut opt, &train).unwrap();
        }
        assert!(
            last.loss < first.loss,
            "QAT loss should fall: {} -> {}",
            first.loss,
            last.loss
        );
        let stats = edd_nn::evaluate(&model, &test).unwrap();
        assert!(stats.top1 > 0.3, "top1 {}", stats.top1);
    }

    #[test]
    fn quantization_actually_applies_during_forward() {
        // A 4-bit block's output must differ from the same weights run at
        // full precision.
        let arch = derived();
        let mut rng = StdRng::seed_from_u64(34);
        let model = QatModel::new(&arch, &mut rng);
        model.set_training(false);
        let x = Tensor::constant(Array::randn(&[1, 3, 16, 16], 1.0, &mut rng));
        let quantized = model.forward(&x).unwrap();
        // Full-precision pass over the same weights.
        let mut h = model.stem.forward(&x).unwrap();
        h = model.stem_bn.forward(&h).unwrap().relu6();
        for (mb, _) in &model.blocks {
            h = mb.forward(&h).unwrap();
        }
        let h = model.head.forward(&h).unwrap();
        let h = model.head_bn.forward(&h).unwrap().relu6();
        let h = h.global_avg_pool().unwrap();
        let full = model.classifier.forward(&h).unwrap();
        let diff: f32 = quantized
            .value()
            .data()
            .iter()
            .zip(full.value().data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-5, "quantization had no effect ({diff})");
    }
}
