//! Post-training compilation of a derived network into a true integer
//! inference engine.
//!
//! The co-search picks a per-block weight precision Φ; [`QatModel`] trains
//! the derived network under those precisions with straight-through fake
//! quantization, but still executes in f32. This module closes the loop:
//! [`calibrate`] replays the float network over sample data to fix every
//! activation scale, and [`QuantizedModel::compile`] folds batch norms,
//! quantizes weights per output channel at each block's searched bits
//! (bit-packing int4 for low-Φ blocks), and assembles the
//! `edd_nn::qlayers` graph so a forward pass runs entirely in int8/int4 ×
//! int8 → i32 arithmetic with fixed-point requantization — the arithmetic
//! the paper's FPGA/GPU implementations actually perform.
//!
//! [`QuantizedModel`] implements [`edd_runtime::BatchModel`], so it drops
//! into an [`edd_runtime::InferServer`] for batched serving with
//! request/latency telemetry.

use crate::derive::DerivedArch;
use crate::qat::QatModel;
use edd_nn::qlayers::{q_global_avg_pool, MbConvScales, QConv2d, QLinear, QMbConv, QTensor};
use edd_nn::{Module, QuantizableModule};
use edd_tensor::qkernel;
use edd_tensor::{Array, Result, Tensor, TensorError};

/// Weight precision ceiling of the integer engine: searched widths above
/// 8 bits execute as int8 (activations are always int8).
pub const ENGINE_MAX_BITS: u32 = 8;

/// Calibrated activation scales for every boundary of a derived network.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Scale of the quantized input image.
    pub input: f32,
    /// Scale after stem conv + BN + ReLU6.
    pub stem_out: f32,
    /// Per-block stage scales.
    pub blocks: Vec<MbConvScales>,
    /// Scale after head conv + BN + ReLU6 (also the pooled feature scale).
    pub head_out: f32,
}

/// Tracks the running max-|x| of one activation boundary.
#[derive(Debug, Clone, Copy, Default)]
struct RangeTracker(f32);

impl RangeTracker {
    fn observe(&mut self, t: &Tensor) {
        self.0 = self.0.max(qkernel::max_abs(t.value().data()));
    }

    fn scale(self) -> f32 {
        qkernel::scale_for(self.0, ENGINE_MAX_BITS)
    }
}

/// Replays the float network (eval mode, fake-quantized weights — the same
/// arithmetic QAT trained under) over `batches` and records the max-|x|
/// activation range at every stage boundary, returning per-stage int8
/// scales.
///
/// # Errors
///
/// Propagates forward-pass errors; rejects an empty batch list.
pub fn calibrate(model: &QatModel, batches: &[Array]) -> Result<Calibration> {
    if batches.is_empty() {
        return Err(TensorError::InvalidArgument(
            "calibrate: need at least one calibration batch".into(),
        ));
    }
    model.set_training(false);
    let nblocks = model.blocks().len();
    let mut r_input = RangeTracker::default();
    let mut r_stem = RangeTracker::default();
    let mut r_expand = vec![RangeTracker::default(); nblocks];
    let mut r_dw = vec![RangeTracker::default(); nblocks];
    let mut r_block = vec![RangeTracker::default(); nblocks];
    let mut r_head = RangeTracker::default();
    for x in batches {
        let xt = Tensor::constant(x.clone());
        r_input.observe(&xt);
        let mut h = model.stem().forward(&xt)?;
        h = model.stem_bn().forward(&h)?.relu6();
        r_stem.observe(&h);
        for (i, (mb, spec)) in model.blocks().iter().enumerate() {
            let block_in = h.clone();
            if let Some((conv, bn)) = mb.expand() {
                h = conv.forward_quantized(&h, *spec)?;
                h = bn.forward_relu6(&h)?;
                r_expand[i].observe(&h);
            }
            h = mb.depthwise().forward_quantized(&h, *spec)?;
            h = mb.dw_bn().forward_relu6(&h)?;
            r_dw[i].observe(&h);
            h = mb.project().forward_quantized(&h, *spec)?;
            h = mb.proj_bn().forward(&h)?;
            if mb.has_residual() {
                h = h.add(&block_in)?;
            }
            r_block[i].observe(&h);
        }
        h = model.head().forward(&h)?;
        h = model.head_bn().forward(&h)?.relu6();
        r_head.observe(&h);
    }
    let blocks = (0..nblocks)
        .map(|i| MbConvScales {
            expand_out: model.blocks()[i].0.expand().map(|_| r_expand[i].scale()),
            dw_out: r_dw[i].scale(),
            block_out: r_block[i].scale(),
        })
        .collect();
    Ok(Calibration {
        input: r_input.scale(),
        stem_out: r_stem.scale(),
        blocks,
        head_out: r_head.scale(),
    })
}

/// A derived network compiled to integer arithmetic: int8 activations
/// throughout, weights at each block's Φ-searched precision (int4
/// bit-packed when ≤ 4 bits), i32 accumulators, fixed-point
/// requantization. Stem, head and classifier run at 8-bit weights,
/// mirroring [`QatModel`]'s full-precision first/last-layer convention.
#[derive(Debug)]
pub struct QuantizedModel {
    stem: QConv2d,
    blocks: Vec<QMbConv>,
    head: QConv2d,
    classifier: QLinear,
    input_scale: f32,
    block_bits: Vec<u32>,
    input_channels: usize,
    image_size: usize,
    num_classes: usize,
}

impl QuantizedModel {
    /// Compiles a trained [`QatModel`] at the precisions searched in
    /// `arch`, with activation scales from `calib`.
    ///
    /// # Panics
    ///
    /// Panics if `calib` has a different block count than the model
    /// (calibrated against a different architecture).
    #[must_use]
    pub fn compile(model: &QatModel, arch: &DerivedArch, calib: &Calibration) -> Self {
        assert_eq!(
            calib.blocks.len(),
            model.blocks().len(),
            "QuantizedModel::compile: calibration/model block count mismatch"
        );
        let stem = QConv2d::compile(
            model.stem(),
            Some(model.stem_bn()),
            ENGINE_MAX_BITS,
            calib.input,
            calib.stem_out,
            true,
        );
        let mut in_scale = calib.stem_out;
        let mut blocks = Vec::with_capacity(model.blocks().len());
        let mut block_bits = Vec::with_capacity(model.blocks().len());
        for ((mb, spec), scales) in model.blocks().iter().zip(&calib.blocks) {
            let bits = spec.map_or(ENGINE_MAX_BITS, |s| s.bits.min(ENGINE_MAX_BITS));
            blocks.push(QMbConv::compile(mb, bits, in_scale, scales));
            block_bits.push(bits);
            in_scale = scales.block_out;
        }
        let head = QConv2d::compile(
            model.head(),
            Some(model.head_bn()),
            ENGINE_MAX_BITS,
            in_scale,
            calib.head_out,
            true,
        );
        let classifier = QLinear::compile(model.classifier(), ENGINE_MAX_BITS, calib.head_out);
        let s = &arch.space;
        QuantizedModel {
            stem,
            blocks,
            head,
            classifier,
            input_scale: calib.input,
            block_bits,
            input_channels: s.input_channels,
            image_size: s.image_size,
            num_classes: s.num_classes,
        }
    }

    /// Runs the integer network on a float NCHW batch, returning f32
    /// logits `[batch, num_classes]`. The input is quantized once at the
    /// calibrated scale; everything between that and the classifier's
    /// final dequantization is int8/int4 × int8 → i32 arithmetic.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the quantized layers.
    pub fn forward(&self, x: &Array) -> Result<Array> {
        let mut h = self.stem.forward(&QTensor::quantize(x, self.input_scale))?;
        for b in &self.blocks {
            h = b.forward(&h)?;
        }
        let h = self.head.forward(&h)?;
        let h = q_global_avg_pool(&h)?;
        self.classifier.forward(&h)
    }

    /// Scale the input image is quantized at.
    #[must_use]
    pub fn input_scale(&self) -> f32 {
        self.input_scale
    }

    /// Effective per-block weight precisions (searched bits clamped to the
    /// engine ceiling).
    #[must_use]
    pub fn block_bits(&self) -> &[u32] {
        &self.block_bits
    }

    /// Rebuilds the compiled engine as a lowered `edd-ir` graph — the
    /// exact specs this model executes, node for node, so downstream
    /// consumers (the pulsed executor, artifacts) run bit-identically to
    /// [`QuantizedModel::forward`] without retracing the float frontend.
    ///
    /// The residual adds follow the engine's operand convention: the
    /// projection output arrives already on the block-output grid
    /// (`rq_a: None`), the block input is rescaled onto it (`rq_b` = the
    /// compiled residual requantizer).
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors (unreachable for a model
    /// compiled by [`QuantizedModel::compile`]).
    pub fn to_graph(&self, name: &str) -> Result<edd_ir::Graph> {
        use edd_ir::{Graph, GraphMeta, Node, Op, QAddOp};
        let mut g = Graph::new(GraphMeta {
            name: name.to_string(),
            input_shape: [self.input_channels, self.image_size, self.image_size],
            num_classes: self.num_classes,
        });
        let node = |name: String, op: Op, inputs: Vec<usize>| Node {
            name,
            op,
            inputs,
            scale: None,
            bits: None,
        };
        let input = g.add(node("input".into(), Op::Input, vec![]))?;
        let q = g.add(node(
            "quantize".into(),
            Op::Quantize {
                scale: self.input_scale,
            },
            vec![input],
        ))?;
        let mut h = g.add(node(
            "stem.conv".into(),
            Op::QConv(Box::new(self.stem.spec().clone())),
            vec![q],
        ))?;
        for (i, b) in self.blocks.iter().enumerate() {
            let block_in = h;
            if let Some(e) = b.expand() {
                h = g.add(node(
                    format!("block{i}.expand"),
                    Op::QConv(Box::new(e.spec().clone())),
                    vec![h],
                ))?;
            }
            h = g.add(node(
                format!("block{i}.dw"),
                Op::QDwConv(Box::new(b.depthwise().spec().clone())),
                vec![h],
            ))?;
            h = g.add(node(
                format!("block{i}.project"),
                Op::QConv(Box::new(b.project().spec().clone())),
                vec![h],
            ))?;
            if let Some(rq) = b.residual() {
                h = g.add(node(
                    format!("block{i}.residual"),
                    Op::QAdd(Box::new(QAddOp {
                        rq_a: None,
                        rq_b: Some(*rq),
                        out_scale: b.out_scale(),
                    })),
                    vec![h, block_in],
                ))?;
            }
        }
        let head = g.add(node(
            "head.conv".into(),
            Op::QConv(Box::new(self.head.spec().clone())),
            vec![h],
        ))?;
        let gap = g.add(node("gap".into(), Op::QGlobalAvgPool, vec![head]))?;
        let fc = g.add(node(
            "classifier".into(),
            Op::QLinear(Box::new(self.classifier.spec().clone())),
            vec![gap],
        ))?;
        g.set_output(fc)?;
        Ok(g)
    }

    /// Total bytes of quantized weight storage (int4 blocks count packed).
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        self.stem.weight_bytes()
            + self.blocks.iter().map(QMbConv::weight_bytes).sum::<usize>()
            + self.head.weight_bytes()
            + self.classifier.weight_bytes()
    }
}

/// The multi-tenant serving front end (`edd_runtime::serve`) shares one
/// compiled engine immutably across worker shards, so `QuantizedModel`
/// must stay `Send + Sync` — plain owned buffers, no interior mutability.
/// This assertion turns any future `Rc`/`RefCell`/raw-pointer regression
/// into a compile error at the crate boundary that relies on it.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QuantizedModel>();
};

impl edd_runtime::BatchModel for QuantizedModel {
    type Error = TensorError;

    fn image_len(&self) -> usize {
        self.input_channels * self.image_size * self.image_size
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn infer_batch(&self, images: &[f32], batch: usize) -> Result<Vec<f32>> {
        let expect = batch * self.image_len();
        if images.len() != expect {
            return Err(TensorError::InvalidArgument(format!(
                "infer_batch: expected {expect} values for batch {batch}, got {}",
                images.len()
            )));
        }
        let x = Array::from_vec(
            images.to_vec(),
            &[batch, self.input_channels, self.image_size, self.image_size],
        )?;
        let logits = self.forward(&x)?.data().to_vec();
        // Mirror the kernel-selection and panel-cache counters into the
        // `infer.*` telemetry namespace so serving traces show which GEMM
        // paths the engine took, next to the latency the server records.
        // The snapshot is cumulative across the process, so gauges (latest
        // value wins) are the right shape — not counters, which would
        // double-add on every request.
        let ks = edd_tensor::stats::snapshot();
        edd_runtime::telemetry::gauge("infer.select_vecmat", ks.select_vecmat);
        edd_runtime::telemetry::gauge("infer.select_skinny_n", ks.select_skinny_n);
        edd_runtime::telemetry::gauge("infer.select_square", ks.select_square);
        edd_runtime::telemetry::gauge("infer.select_conv", ks.select_conv);
        edd_runtime::telemetry::gauge("infer.select_generic", ks.select_generic);
        edd_runtime::telemetry::gauge("infer.pack_panels_built", ks.pack_panels_built);
        edd_runtime::telemetry::gauge("infer.pack_panel_hits", ks.pack_panel_hits);
        edd_runtime::telemetry::gauge("infer.pack_panel_misses", ks.pack_panel_misses);
        Ok(logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch_params::ArchParams;
    use crate::space::SearchSpace;
    use crate::target::DeviceTarget;
    use edd_hw::FpgaDevice;
    use edd_runtime::{BatchModel, InferServer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn derived() -> DerivedArch {
        let mut rng = StdRng::seed_from_u64(61);
        let space = SearchSpace::tiny(3, 16, 4, vec![4, 8, 16]);
        let target = DeviceTarget::FpgaPipelined(FpgaDevice::zc706());
        let arch = ArchParams::init(&space, &target, &mut rng);
        DerivedArch::from_params(&space, &target, &arch)
    }

    fn calib_batches(rng: &mut StdRng, n: usize) -> Vec<Array> {
        (0..n)
            .map(|_| Array::randn(&[2, 3, 16, 16], 1.0, rng))
            .collect()
    }

    /// Float reference: the QAT model's own (fake-quantized) eval forward.
    fn float_logits(model: &QatModel, x: &Array) -> Array {
        model
            .forward(&Tensor::constant(x.clone()))
            .unwrap()
            .value()
            .clone()
    }

    #[test]
    fn compiled_model_tracks_float_network() {
        let arch = derived();
        let mut rng = StdRng::seed_from_u64(62);
        let model = QatModel::new(&arch, &mut rng);
        model.set_training(false);
        let calib = calibrate(&model, &calib_batches(&mut rng, 3)).unwrap();
        let q = QuantizedModel::compile(&model, &arch, &calib);
        let x = Array::randn(&[2, 3, 16, 16], 1.0, &mut rng);
        let got = q.forward(&x).unwrap();
        let want = float_logits(&model, &x);
        assert_eq!(got.shape(), [2, 4]);
        let scale = qkernel::max_abs(want.data()).max(0.1);
        let mut worst = 0.0f32;
        for (g, w) in got.data().iter().zip(want.data()) {
            worst = worst.max((g - w).abs());
        }
        assert!(
            worst <= scale * 0.35,
            "integer engine drifted: worst |Δ| {worst}, float magnitude {scale}"
        );
    }

    #[test]
    fn calibration_is_deterministic_and_positive() {
        let arch = derived();
        let mut rng = StdRng::seed_from_u64(63);
        let model = QatModel::new(&arch, &mut rng);
        let batches = calib_batches(&mut rng, 2);
        let a = calibrate(&model, &batches).unwrap();
        let b = calibrate(&model, &batches).unwrap();
        assert_eq!(a.input, b.input);
        assert_eq!(a.head_out, b.head_out);
        assert!(a.input > 0.0 && a.stem_out > 0.0 && a.head_out > 0.0);
        for s in &a.blocks {
            assert!(s.dw_out > 0.0 && s.block_out > 0.0);
        }
        assert!(calibrate(&model, &[]).is_err());
    }

    #[test]
    fn engine_clamps_searched_bits_to_int8() {
        let mut arch = derived();
        for b in &mut arch.blocks {
            b.quant_bits = 16;
        }
        let mut rng = StdRng::seed_from_u64(64);
        let model = QatModel::new(&arch, &mut rng);
        let calib = calibrate(&model, &calib_batches(&mut rng, 1)).unwrap();
        let q = QuantizedModel::compile(&model, &arch, &calib);
        assert!(q.block_bits().iter().all(|&b| b == 8));
    }

    #[test]
    fn int4_blocks_halve_block_weight_storage() {
        let mut rng = StdRng::seed_from_u64(65);
        let mut arch8 = derived();
        for b in &mut arch8.blocks {
            b.quant_bits = 8;
        }
        let mut arch4 = arch8.clone();
        for b in &mut arch4.blocks {
            b.quant_bits = 4;
        }
        let m8 = QatModel::new(&arch8, &mut StdRng::seed_from_u64(66));
        let m4 = QatModel::new(&arch4, &mut StdRng::seed_from_u64(66));
        let batches = calib_batches(&mut rng, 1);
        let c8 = calibrate(&m8, &batches).unwrap();
        let c4 = calibrate(&m4, &batches).unwrap();
        let q8 = QuantizedModel::compile(&m8, &arch8, &c8);
        let q4 = QuantizedModel::compile(&m4, &arch4, &c4);
        assert_eq!(q4.block_bits(), &[4, 4, 4]);
        // Stem/head/classifier stay int8 in both, so the total shrinks by
        // exactly half the block weight bytes.
        let block8: usize = q8.blocks.iter().map(QMbConv::weight_bytes).sum();
        let block4: usize = q4.blocks.iter().map(QMbConv::weight_bytes).sum();
        assert_eq!(block4 * 2, block8 + block8 % 2);
        assert!(q4.weight_bytes() < q8.weight_bytes());
    }

    #[test]
    fn serves_through_infer_server_with_telemetry_counters() {
        let arch = derived();
        let mut rng = StdRng::seed_from_u64(67);
        let model = QatModel::new(&arch, &mut rng);
        let calib = calibrate(&model, &calib_batches(&mut rng, 1)).unwrap();
        let q = QuantizedModel::compile(&model, &arch, &calib);
        assert_eq!(q.image_len(), 3 * 16 * 16);
        assert_eq!(BatchModel::num_classes(&q), 4);
        let server = InferServer::new(q);
        let images: Vec<f32> = Array::randn(&[2, 3, 16, 16], 1.0, &mut rng).data().to_vec();
        let logits = server.infer(&images, 2).unwrap();
        assert_eq!(logits.len(), 2 * 4);
        // A second, different batch size through the same server.
        server.infer(&images[..3 * 16 * 16], 1).unwrap();
        let stats = server.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.images, 3);
        assert!(server.infer(&images[..10], 1).is_err());
    }
}
