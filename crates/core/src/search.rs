//! The EDD co-search algorithm (paper §5): bilevel stochastic gradient
//! descent over the fused space `{A, I}`.
//!
//! Each epoch alternates:
//!
//! 1. **Weight steps** — fix `Θ, Φ, pf`, update DNN weights `ω` by
//!    minimizing the training cross-entropy along sampled single paths.
//! 2. **Architecture steps** — fix `ω`, update `Θ, Φ, pf` by descending the
//!    fused loss (Eq. 1) on the *validation* split: sampled-path accuracy
//!    loss × differentiable performance loss + resource penalty.
//!
//! The Gumbel-Softmax temperature anneals geometrically from `tau_start` to
//! `tau_end`. After the final epoch the argmax architecture is derived
//! (paper: the searched DNN is then trained from scratch).
//!
//! # Checkpointing and telemetry
//!
//! A search configured with [`CoSearch::checkpoint_into`] writes a full
//! [`SearchSnapshot`] after each epoch
//! (cadence via [`CoSearch::checkpoint_every`], retention via
//! [`CoSearch::checkpoint_keep`]); [`CoSearch::resume_from`] restores one
//! and continues **bit-identically** — the restored RNG stream, optimizer
//! moments and temperature position reproduce the uninterrupted run exactly,
//! at any `EDD_NUM_THREADS` setting (the kernel layer is thread-count
//! invariant). When a global telemetry sink is installed
//! (`edd_runtime::telemetry::set_global`), the loop emits one
//! `search.epoch` event per epoch plus phase spans and kernel-runtime
//! gauges; with the default no-op sink the instrumentation is free.

use crate::arch_params::ArchParams;
use crate::checkpoint::{fingerprint, SearchRng, SearchSnapshot};
use crate::derive::DerivedArch;
use crate::loss::{edd_loss, res_penalty_scalar, LossConfig};
use crate::perf_model::{estimate, PerfTables};
use crate::space::SearchSpace;
use crate::supernet::SuperNet;
use crate::target::DeviceTarget;
use edd_nn::Batch;
use edd_runtime::telemetry::{self, CsvSink, Event, EventKind, Sink, Value};
use edd_tensor::optim::{Adam, Optimizer, Sgd};
use edd_tensor::{accuracy, Result, Tensor, TensorError};
use rand::Rng;
use std::path::{Path, PathBuf};

/// Hyperparameters of a co-search run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoSearchConfig {
    /// Number of search epochs (the paper runs 50).
    pub epochs: usize,
    /// SGD learning rate for DNN weights.
    pub weight_lr: f32,
    /// SGD momentum for DNN weights.
    pub weight_momentum: f32,
    /// Adam learning rate for `Θ, Φ, pf`.
    pub arch_lr: f32,
    /// Initial Gumbel-Softmax temperature.
    pub tau_start: f32,
    /// Final Gumbel-Softmax temperature.
    pub tau_end: f32,
    /// Epochs of weight-only warm-up before architecture updates begin.
    pub warmup_epochs: usize,
    /// If false, architecture steps use the training batches too
    /// (single-level ablation of the bilevel scheme).
    pub bilevel: bool,
    /// Optional global-norm clip applied to the DNN weight gradients each
    /// step (`None` = no clipping).
    pub clip_grad_norm: Option<f32>,
    /// Fused-loss hyperparameters.
    pub loss: LossConfig,
}

impl CoSearchConfig {
    /// The paper's §6 search hyperparameters: 50 epochs of bilevel search
    /// ("We run for fixed 50 epochs during the EDD search"), DARTS-style
    /// learning rates, temperature annealed over the full run. Intended for
    /// the full-scale space; laptop experiments use the shorter default.
    #[must_use]
    pub fn paper() -> Self {
        CoSearchConfig {
            epochs: 50,
            weight_lr: 0.025,
            weight_momentum: 0.9,
            arch_lr: 3e-3,
            tau_start: 5.0,
            tau_end: 0.1,
            warmup_epochs: 5,
            bilevel: true,
            clip_grad_norm: Some(5.0),
            loss: LossConfig::default(),
        }
    }
}

impl Default for CoSearchConfig {
    fn default() -> Self {
        CoSearchConfig {
            epochs: 12,
            weight_lr: 0.05,
            weight_momentum: 0.9,
            arch_lr: 0.02,
            tau_start: 3.0,
            tau_end: 0.3,
            warmup_epochs: 2,
            bilevel: true,
            clip_grad_norm: Some(5.0),
            loss: LossConfig::default(),
        }
    }
}

/// Metrics recorded after each search epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Stable target key ([`DeviceTarget::key`]) the record belongs to.
    /// Distinguishes per-target traces when several searches (or one
    /// multi-target sweep) write into the same history or telemetry
    /// stream.
    pub target: String,
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean sampled-path training loss.
    pub train_loss: f32,
    /// Mean sampled-path training accuracy.
    pub train_acc: f32,
    /// Validation accuracy of the current argmax architecture.
    pub val_acc: f32,
    /// Expected Stage-4 performance term (ms).
    pub expected_perf: f32,
    /// Expected Stage-4 resource usage (DSPs; 0 on GPU).
    pub expected_res: f32,
    /// Temperature used this epoch.
    pub tau: f32,
}

/// Result of a finished co-search.
#[derive(Debug)]
pub struct SearchOutcome {
    /// The derived (argmax) architecture at the end of the run.
    pub derived: DerivedArch,
    /// Per-epoch metric history.
    pub history: Vec<EpochRecord>,
    /// The architecture derived at the epoch with the highest validation
    /// accuracy (early-stopping candidate; equals `derived` when the last
    /// epoch was the best).
    pub best_derived: DerivedArch,
    /// Epoch index of `best_derived`.
    pub best_epoch: usize,
}

/// Name of the per-epoch telemetry event emitted by the search loop.
pub const EPOCH_EVENT: &str = "search.epoch";

/// Column order of [`SearchOutcome::history_csv`]; also the leading fields
/// of every [`EPOCH_EVENT`] telemetry record.
pub const EPOCH_CSV_COLUMNS: [&str; 8] = [
    "epoch",
    "train_loss",
    "train_acc",
    "val_acc",
    "expected_perf",
    "expected_res",
    "tau",
    "target",
];

/// The CSV-visible fields of one epoch record, in [`EPOCH_CSV_COLUMNS`]
/// order. `f32` metrics stay `Value::F32` so their `Display` output is
/// byte-identical to formatting the raw `f32`.
pub(crate) fn epoch_fields(h: &EpochRecord) -> [(&'static str, Value); 8] {
    [
        ("epoch", Value::U64(h.epoch as u64)),
        ("train_loss", Value::F32(h.train_loss)),
        ("train_acc", Value::F32(h.train_acc)),
        ("val_acc", Value::F32(h.val_acc)),
        ("expected_perf", Value::F32(h.expected_perf)),
        ("expected_res", Value::F32(h.expected_res)),
        ("tau", Value::F32(h.tau)),
        ("target", Value::Str(h.target.clone())),
    ]
}

/// FNV-1a (64-bit) of `bytes` as 16 hex digits — a cheap stable digest for
/// spotting when the argmax architecture changes between epochs.
pub(crate) fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    format!("{h:016x}")
}

impl SearchOutcome {
    /// Serializes the epoch history as CSV (header + one row per epoch),
    /// for plotting search curves.
    ///
    /// The history is replayed through a telemetry
    /// [`CsvSink`] so the CSV is, by
    /// construction, the same projection of `search.epoch` events a live
    /// sink observes during the run.
    #[must_use]
    pub fn history_csv(&self) -> String {
        history_to_csv(&self.history)
    }
}

/// Replays `history` through a telemetry [`CsvSink`] so the CSV is, by
/// construction, the same projection of `search.epoch` events a live sink
/// observes. Shared by [`SearchOutcome::history_csv`] and the sweep's
/// flattened multi-target history export.
pub(crate) fn history_to_csv(history: &[EpochRecord]) -> String {
    let sink = CsvSink::new(EPOCH_EVENT, &EPOCH_CSV_COLUMNS);
    for h in history {
        let fields = epoch_fields(h);
        sink.emit(&Event {
            kind: EventKind::Event,
            name: EPOCH_EVENT,
            value: None,
            fields: &fields,
        });
    }
    sink.to_csv()
}

/// A configured co-search: supernet + architecture parameters + coefficient
/// tables + optimizers.
pub struct CoSearch {
    space: SearchSpace,
    target: DeviceTarget,
    config: CoSearchConfig,
    supernet: SuperNet,
    arch: ArchParams,
    tables: PerfTables,
    ckpt_dir: Option<PathBuf>,
    ckpt_every: usize,
    ckpt_keep: usize,
    ckpt_label: String,
    pending_resume: Option<SearchSnapshot>,
}

impl std::fmt::Debug for CoSearch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoSearch")
            .field("space", &self.space.name)
            .field("target", &self.target.label())
            .field("epochs", &self.config.epochs)
            .field("checkpoint_dir", &self.ckpt_dir)
            .finish()
    }
}

impl CoSearch {
    /// Creates a co-search for `space` on `target`.
    ///
    /// # Errors
    ///
    /// Returns an error when the space's quantization menu is unsupported by
    /// the target (e.g. 4-bit on GPU).
    pub fn new<R: Rng + ?Sized>(
        space: SearchSpace,
        target: DeviceTarget,
        config: CoSearchConfig,
        rng: &mut R,
    ) -> Result<Self> {
        let tables = PerfTables::build(&space, &target)?;
        let supernet = SuperNet::new(&space, rng);
        let arch = ArchParams::init(&space, &target, rng);
        Ok(CoSearch {
            space,
            target,
            config,
            supernet,
            arch,
            tables,
            ckpt_dir: None,
            ckpt_every: 1,
            ckpt_keep: 3,
            ckpt_label: String::new(),
            pending_resume: None,
        })
    }

    /// Enables crash-safe checkpointing: after qualifying epochs a full
    /// [`SearchSnapshot`] is written atomically into `dir` as
    /// `search-<epoch>.edds`. The directory is created on first write.
    pub fn checkpoint_into(&mut self, dir: impl Into<PathBuf>) -> &mut Self {
        self.ckpt_dir = Some(dir.into());
        self
    }

    /// Checkpoint cadence: write every `n` epochs (default 1). `0` disables
    /// periodic writes; the final epoch of a run is always snapshotted when
    /// a checkpoint directory is set.
    pub fn checkpoint_every(&mut self, n: usize) -> &mut Self {
        self.ckpt_every = n;
        self
    }

    /// Retention: keep only the newest `k` snapshots (default 3, floor 1).
    pub fn checkpoint_keep(&mut self, k: usize) -> &mut Self {
        self.ckpt_keep = k.max(1);
        self
    }

    /// Labels this run's snapshots: files become
    /// `search-<label>-<epoch>.edds` instead of `search-<epoch>.edds`, and
    /// retention pruning / `resume_from` directory resolution only consider
    /// snapshots carrying the same label. This is what lets several runs
    /// (e.g. one search per device target) share one `--checkpoint-dir`
    /// without overwriting or pruning each other's snapshots.
    ///
    /// The empty label (the default) keeps the historical unlabeled
    /// filenames. Set the label *before* calling
    /// [`CoSearch::resume_from`]; labels must not be purely numeric (that
    /// would collide with the epoch field of unlabeled names).
    pub fn checkpoint_label(&mut self, label: impl Into<String>) -> &mut Self {
        self.ckpt_label = label.into();
        self
    }

    /// Schedules a resume from `path` — a snapshot file, or a checkpoint
    /// directory (resolved to its newest snapshot). The snapshot is loaded
    /// and fingerprint-checked eagerly; the state is applied when the next
    /// `run*` call starts, which then continues from the epoch after the
    /// snapshotted one.
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot is missing, corrupt, or was taken
    /// by a differently-configured search.
    pub fn resume_from(&mut self, path: &Path) -> Result<&mut Self> {
        let file = crate::checkpoint::resolve_labeled_resume_path(path, &self.ckpt_label)?;
        let snap = SearchSnapshot::load(&file)?;
        let want = fingerprint(&self.space, &self.target, &self.config);
        if snap.fingerprint != want {
            return Err(TensorError::InvalidArgument(format!(
                "snapshot {} was taken by a different search configuration\n  \
                 snapshot: {}\n  current:  {want}",
                file.display(),
                snap.fingerprint
            )));
        }
        self.pending_resume = Some(snap);
        Ok(self)
    }

    /// The supernet under search.
    #[must_use]
    pub fn supernet(&self) -> &SuperNet {
        &self.supernet
    }

    /// The current architecture parameters.
    #[must_use]
    pub fn arch(&self) -> &ArchParams {
        &self.arch
    }

    /// The device target.
    #[must_use]
    pub fn target(&self) -> &DeviceTarget {
        &self.target
    }

    /// Temperature at `epoch` (geometric annealing).
    #[must_use]
    pub fn tau_at(&self, epoch: usize) -> f32 {
        let e = self.config.epochs.max(2) - 1;
        let t = (epoch.min(e)) as f32 / e as f32;
        self.config.tau_start * (self.config.tau_end / self.config.tau_start).powf(t)
    }

    /// Captures the complete search state after `epoch` completed.
    fn capture_snapshot(
        &self,
        epoch: usize,
        w_opt: &Sgd,
        a_opt: &Adam,
        rng_state: [u64; 4],
        history: &[EpochRecord],
        best: &Option<(usize, f32, DerivedArch)>,
    ) -> Result<SearchSnapshot> {
        let best = match best {
            Some((e, acc, d)) => {
                let json = d.to_json().map_err(|err| {
                    TensorError::InvalidArgument(format!("serialize best architecture: {err}"))
                })?;
                Some((*e, *acc, json))
            }
            None => None,
        };
        Ok(SearchSnapshot {
            fingerprint: fingerprint(&self.space, &self.target, &self.config),
            epoch,
            rng: rng_state,
            weights: self
                .supernet
                .weight_params()
                .iter()
                .map(Tensor::value_clone)
                .collect(),
            bn_stats: self
                .supernet
                .batch_norms()
                .iter()
                .map(|bn| (bn.running_mean(), bn.running_var()))
                .collect(),
            arch: self.arch.checkpoint(),
            sgd_velocity: w_opt.export_state(),
            adam: a_opt.export_state(),
            history: history.to_vec(),
            best,
        })
    }

    /// Applies a loaded snapshot: supernet weights and batch-norm running
    /// statistics, architecture variables, optimizer moments, RNG stream,
    /// and the accumulated history / best-so-far bookkeeping.
    fn apply_snapshot<R: SearchRng + ?Sized>(
        &mut self,
        snap: &SearchSnapshot,
        w_opt: &mut Sgd,
        a_opt: &mut Adam,
        rng: &mut R,
        history: &mut Vec<EpochRecord>,
        best: &mut Option<(usize, f32, DerivedArch)>,
    ) -> Result<()> {
        let params = self.supernet.weight_params();
        if params.len() != snap.weights.len() {
            return Err(TensorError::InvalidArgument(format!(
                "snapshot has {} weight tensors, supernet has {}",
                snap.weights.len(),
                params.len()
            )));
        }
        for (i, (p, w)) in params.iter().zip(&snap.weights).enumerate() {
            if p.shape() != w.shape() {
                return Err(TensorError::InvalidArgument(format!(
                    "snapshot weight {i} has shape {:?}, supernet expects {:?}",
                    w.shape(),
                    p.shape()
                )));
            }
            p.set_value(w.clone());
        }
        let bns = self.supernet.batch_norms();
        if bns.len() != snap.bn_stats.len() {
            return Err(TensorError::InvalidArgument(format!(
                "snapshot has {} batch-norm layers, supernet has {}",
                snap.bn_stats.len(),
                bns.len()
            )));
        }
        for (bn, (mean, var)) in bns.iter().zip(&snap.bn_stats) {
            bn.set_running_stats(mean.clone(), var.clone())?;
        }
        self.arch.restore(&snap.arch)?;
        w_opt.import_state(snap.sgd_velocity.clone())?;
        a_opt.import_state(snap.adam.clone())?;
        rng.restore_state_words(snap.rng);
        *history = snap.history.clone();
        *best = match &snap.best {
            Some((e, acc, json)) => {
                let derived = DerivedArch::from_json(json).map_err(|err| {
                    TensorError::InvalidArgument(format!(
                        "snapshot best architecture is unparseable: {err}"
                    ))
                })?;
                Some((*e, *acc, derived))
            }
            None => None,
        };
        Ok(())
    }

    /// Writes the epoch snapshot into the checkpoint directory and prunes
    /// old ones down to the retention limit.
    fn write_checkpoint(&self, dir: &Path, snap: &SearchSnapshot) -> Result<()> {
        std::fs::create_dir_all(dir).map_err(|e| {
            TensorError::InvalidArgument(format!("create checkpoint dir {}: {e}", dir.display()))
        })?;
        snap.save(&dir.join(SearchSnapshot::labeled_file_name(
            &self.ckpt_label,
            snap.epoch,
        )))?;
        crate::checkpoint::prune_labeled_snapshots(dir, &self.ckpt_label, self.ckpt_keep)
            .map_err(|e| TensorError::InvalidArgument(format!("prune checkpoints: {e}")))?;
        Ok(())
    }

    /// Emits the per-epoch telemetry record plus kernel-runtime gauges.
    fn emit_epoch_telemetry(&self, record: &EpochRecord) {
        if !telemetry::enabled() {
            return;
        }
        let mut fields: Vec<(&str, Value)> = epoch_fields(record).to_vec();
        fields.push((
            "res_penalty",
            Value::F32(res_penalty_scalar(
                record.expected_res,
                self.target.resource_bound(),
                &self.config.loss,
            )),
        ));
        let derived = DerivedArch::from_params(&self.space, &self.target, &self.arch);
        if let Ok(json) = derived.to_json() {
            fields.push(("arch_digest", Value::Str(fnv1a_hex(json.as_bytes()))));
        }
        telemetry::event(EPOCH_EVENT, &fields);
        let stats = edd_tensor::stats::snapshot();
        if let Some(util) = stats.pool_utilization() {
            telemetry::gauge("kernel.pool_utilization", util);
        }
        telemetry::gauge("kernel.pool_tasks", stats.pool_tasks);
        telemetry::gauge("kernel.pool_parallel_jobs", stats.pool_parallel_jobs);
        telemetry::gauge("kernel.pool_inline_jobs", stats.pool_inline_jobs);
        telemetry::gauge(
            "kernel.scratch_high_water_bytes",
            stats.scratch_high_water_bytes,
        );
    }

    /// Runs the full co-search over the given train/validation splits and
    /// derives the final architecture.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the supernet or the performance model,
    /// and checkpoint I/O errors when checkpointing is enabled.
    pub fn run<R: SearchRng + ?Sized>(
        &mut self,
        train: &[Batch],
        val: &[Batch],
        rng: &mut R,
    ) -> Result<SearchOutcome> {
        self.run_range(train, val, rng, self.config.epochs)
    }

    /// Runs the search but stops after `stop_after` epochs (clamped to the
    /// configured total), deriving from the state at that point. With
    /// checkpointing enabled the last executed epoch is always snapshotted,
    /// so a partial run models a crash-and-resume boundary exactly.
    ///
    /// # Errors
    ///
    /// Same as [`CoSearch::run`].
    pub fn run_until<R: SearchRng + ?Sized>(
        &mut self,
        train: &[Batch],
        val: &[Batch],
        rng: &mut R,
        stop_after: usize,
    ) -> Result<SearchOutcome> {
        self.run_range(train, val, rng, stop_after.min(self.config.epochs))
    }

    fn run_range<R: SearchRng + ?Sized>(
        &mut self,
        train: &[Batch],
        val: &[Batch],
        rng: &mut R,
        end: usize,
    ) -> Result<SearchOutcome> {
        let mut w_opt = Sgd::new(
            self.supernet.weight_params(),
            self.config.weight_lr,
            self.config.weight_momentum,
            1e-4,
        );
        let mut a_opt = Adam::new(self.arch.all_params(), self.config.arch_lr);
        let mut history = Vec::with_capacity(self.config.epochs);
        let mut best: Option<(usize, f32, DerivedArch)> = None;
        // Input tensors are constants shared across every epoch: wrap each
        // batch once here instead of deep-cloning the pixel data per step.
        // Constants never require grad, so graphs only borrow them.
        let train_inputs: Vec<Tensor> = train
            .iter()
            .map(|b| Tensor::constant(b.images.clone()))
            .collect();
        let val_inputs: Vec<Tensor> = val
            .iter()
            .map(|b| Tensor::constant(b.images.clone()))
            .collect();
        let mut start = 0usize;
        if let Some(snap) = self.pending_resume.take() {
            self.apply_snapshot(&snap, &mut w_opt, &mut a_opt, rng, &mut history, &mut best)?;
            start = snap.epoch + 1;
        }
        for epoch in start..end {
            let tau = self.tau_at(epoch);
            self.supernet.set_training(true);
            let mut train_loss = 0.0;
            let mut train_acc = 0.0;
            let mut seen = 0usize;
            let weight_span = telemetry::span("search.weight_phase");
            for (batch, x) in train.iter().zip(&train_inputs) {
                w_opt.zero_grad();
                a_opt.zero_grad();
                let (logits, _) = self.supernet.forward_sampled(x, &self.arch, tau, rng)?;
                let loss = logits.cross_entropy(&batch.labels)?;
                loss.backward();
                if let Some(max_norm) = self.config.clip_grad_norm {
                    edd_tensor::optim::clip_grad_norm(w_opt.params(), max_norm);
                }
                w_opt.step();
                // Scratch buffers are step-scoped; reclaim the arena.
                edd_tensor::scratch::reset();
                let b = batch.labels.len();
                train_loss += loss.item() * b as f32;
                train_acc += accuracy(&logits.value(), &batch.labels) * b as f32;
                seen += b;
            }
            drop(weight_span);
            // Architecture step on the validation split (bilevel) or the
            // training split (single-level ablation).
            let mut expected_perf = 0.0;
            let mut expected_res = 0.0;
            let arch_span = telemetry::span("search.arch_phase");
            if epoch >= self.config.warmup_epochs {
                let (arch_batches, arch_inputs) = if self.config.bilevel {
                    (val, &val_inputs)
                } else {
                    (train, &train_inputs)
                };
                let mut arch_steps = 0usize;
                for (batch, x) in arch_batches.iter().zip(arch_inputs) {
                    w_opt.zero_grad();
                    a_opt.zero_grad();
                    let (logits, _) = self.supernet.forward_sampled(x, &self.arch, tau, rng)?;
                    let acc_loss = logits.cross_entropy(&batch.labels)?;
                    let est = estimate(
                        &self.arch,
                        &self.tables,
                        &self.space,
                        &self.target,
                        tau,
                        rng,
                    )?;
                    let total = edd_loss(
                        &acc_loss,
                        &est.perf,
                        &est.res,
                        self.target.resource_bound(),
                        &self.config.loss,
                    )?;
                    total.backward();
                    a_opt.step();
                    edd_tensor::scratch::reset();
                    expected_perf += est.perf.item();
                    expected_res += est.res.item();
                    arch_steps += 1;
                }
                if arch_steps > 0 {
                    expected_perf /= arch_steps as f32;
                    expected_res /= arch_steps as f32;
                }
            }
            drop(arch_span);
            // Validation accuracy of the current argmax architecture.
            self.supernet.set_training(false);
            let val_span = telemetry::span("search.val_phase");
            let mut val_acc = 0.0;
            let mut val_seen = 0usize;
            for (batch, x) in val.iter().zip(&val_inputs) {
                let logits = self.supernet.forward_argmax(x, &self.arch)?;
                val_acc += accuracy(&logits.value(), &batch.labels) * batch.labels.len() as f32;
                val_seen += batch.labels.len();
            }
            drop(val_span);
            let epoch_val_acc = val_acc / val_seen.max(1) as f32;
            if best.as_ref().is_none_or(|(_, acc, _)| epoch_val_acc > *acc) {
                best = Some((
                    epoch,
                    epoch_val_acc,
                    DerivedArch::from_params(&self.space, &self.target, &self.arch),
                ));
            }
            let record = EpochRecord {
                target: self.target.key().to_owned(),
                epoch,
                train_loss: train_loss / seen.max(1) as f32,
                train_acc: train_acc / seen.max(1) as f32,
                val_acc: epoch_val_acc,
                expected_perf,
                expected_res,
                tau,
            };
            self.emit_epoch_telemetry(&record);
            history.push(record);
            if let Some(dir) = &self.ckpt_dir {
                let periodic = self.ckpt_every > 0 && (epoch + 1).is_multiple_of(self.ckpt_every);
                if periodic || epoch + 1 == end {
                    let snap = self.capture_snapshot(
                        epoch,
                        &w_opt,
                        &a_opt,
                        rng.state_words(),
                        &history,
                        &best,
                    )?;
                    self.write_checkpoint(dir, &snap)?;
                }
            }
        }
        let derived = DerivedArch::from_params(&self.space, &self.target, &self.arch);
        let (best_epoch, _, best_derived) =
            best.unwrap_or((end.saturating_sub(1), 0.0, derived.clone()));
        Ok(SearchOutcome {
            derived,
            history,
            best_derived,
            best_epoch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::SNAPSHOT_PREFIX;
    use edd_data::{SynthConfig, SynthDataset};
    use edd_hw::FpgaDevice;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_search(bilevel: bool) -> (CoSearch, Vec<Batch>, Vec<Batch>, StdRng) {
        let mut rng = StdRng::seed_from_u64(7);
        let space = SearchSpace::tiny(3, 16, 4, vec![4, 8, 16]);
        let target = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
        let config = CoSearchConfig {
            epochs: 3,
            warmup_epochs: 1,
            bilevel,
            ..CoSearchConfig::default()
        };
        let search = CoSearch::new(space, target, config, &mut rng).unwrap();
        let data = SynthDataset::new(SynthConfig::tiny());
        let train = data.split(3, 8, 1);
        let val = data.split(2, 8, 2);
        (search, train, val, rng)
    }

    #[test]
    fn new_rejects_incompatible_quant_menu() {
        // 4-bit weights are not representable on the GPU target (TensorRT
        // floor is 8-bit); construction must fail up front.
        let mut rng = StdRng::seed_from_u64(1);
        let space = SearchSpace::tiny(2, 16, 4, vec![4, 8, 16]);
        let target = crate::target::DeviceTarget::Gpu(edd_hw::GpuDevice::titan_rtx());
        assert!(CoSearch::new(space, target, CoSearchConfig::default(), &mut rng).is_err());
    }

    #[test]
    fn tau_anneals_geometrically() {
        let (search, _, _, _) = tiny_search(true);
        assert!((search.tau_at(0) - 3.0).abs() < 1e-5);
        assert!((search.tau_at(2) - 0.3).abs() < 1e-5);
        assert!(search.tau_at(1) < search.tau_at(0));
        assert!(search.tau_at(1) > search.tau_at(2));
    }

    #[test]
    fn run_produces_history_and_architecture() {
        let (mut search, train, val, mut rng) = tiny_search(true);
        let outcome = search.run(&train, &val, &mut rng).unwrap();
        assert_eq!(outcome.history.len(), 3);
        assert_eq!(outcome.derived.blocks.len(), 3);
        // Warmup epoch must not have arch updates -> zero expected perf.
        assert_eq!(outcome.history[0].expected_perf, 0.0);
        // Post-warmup epochs estimate performance.
        assert!(outcome.history[2].expected_perf > 0.0);
        assert!(outcome.history[2].expected_res > 0.0);
        // Losses should be finite and positive.
        assert!(outcome.history.iter().all(|h| h.train_loss.is_finite()));
    }

    #[test]
    fn best_epoch_tracks_peak_validation() {
        let (mut search, train, val, mut rng) = tiny_search(true);
        let outcome = search.run(&train, &val, &mut rng).unwrap();
        assert!(outcome.best_epoch < outcome.history.len());
        let best_acc = outcome.history[outcome.best_epoch].val_acc;
        for h in &outcome.history {
            assert!(h.val_acc <= best_acc + 1e-6);
        }
        assert_eq!(outcome.best_derived.blocks.len(), 3);
    }

    #[test]
    fn single_level_ablation_runs() {
        let (mut search, train, val, mut rng) = tiny_search(false);
        let outcome = search.run(&train, &val, &mut rng).unwrap();
        assert_eq!(outcome.history.len(), 3);
    }

    #[test]
    fn debug_format_mentions_target() {
        let (search, _, _, _) = tiny_search(true);
        assert!(format!("{search:?}").contains("FPGA-recursive"));
    }

    #[test]
    fn paper_config_matches_section6() {
        let c = CoSearchConfig::paper();
        assert_eq!(c.epochs, 50);
        assert!(c.bilevel);
        assert!(c.tau_start > c.tau_end);
    }

    #[test]
    fn history_exports_as_csv() {
        let (mut search, train, val, mut rng) = tiny_search(true);
        let outcome = search.run(&train, &val, &mut rng).unwrap();
        let csv = outcome.history_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 1 + outcome.history.len());
        assert!(lines[0].starts_with("epoch,train_loss"));
        assert!(lines[0].ends_with(",target"));
        assert_eq!(lines[1].split(',').count(), 8);
        assert!(lines[1].ends_with(",fpga-recursive"));
    }

    #[test]
    fn history_csv_matches_legacy_format() {
        // The CSV is now produced by replaying history through a telemetry
        // CsvSink; the bytes must match the original hand-formatted export.
        let (mut search, train, val, mut rng) = tiny_search(true);
        let outcome = search.run(&train, &val, &mut rng).unwrap();
        let mut expect = String::from(
            "epoch,train_loss,train_acc,val_acc,expected_perf,expected_res,tau,target\n",
        );
        for h in &outcome.history {
            expect.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                h.epoch,
                h.train_loss,
                h.train_acc,
                h.val_acc,
                h.expected_perf,
                h.expected_res,
                h.tau,
                h.target
            ));
        }
        assert_eq!(outcome.history_csv(), expect);
    }

    #[test]
    fn resume_matches_uninterrupted_run() {
        let dir = std::env::temp_dir().join(format!("edd-search-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Reference: uninterrupted 3-epoch run.
        let (mut full, train, val, mut rng) = tiny_search(true);
        let full_out = full.run(&train, &val, &mut rng).unwrap();

        // Interrupted run: checkpoint each epoch, keep only the newest, and
        // stop after 2 of 3 epochs ("crash" boundary).
        let (mut part, train2, val2, mut rng2) = tiny_search(true);
        part.checkpoint_into(&dir).checkpoint_keep(1);
        part.run_until(&train2, &val2, &mut rng2, 2).unwrap();
        let files = edd_runtime::snapshot::list_snapshots(&dir, SNAPSHOT_PREFIX).unwrap();
        assert_eq!(files.len(), 1, "retention should prune to 1: {files:?}");
        assert!(files[0].ends_with(SearchSnapshot::file_name(1)));

        // A fresh search resumes from the directory and must finish with a
        // byte-identical derived architecture and history.
        let (mut resumed, train3, val3, _) = tiny_search(true);
        let mut other_rng = StdRng::seed_from_u64(999); // replaced by the snapshot
        resumed.resume_from(&dir).unwrap();
        let res_out = resumed.run(&train3, &val3, &mut other_rng).unwrap();
        assert_eq!(full_out.history, res_out.history);
        assert_eq!(
            full_out.derived.to_json().unwrap(),
            res_out.derived.to_json().unwrap()
        );
        assert_eq!(
            full_out.best_derived.to_json().unwrap(),
            res_out.best_derived.to_json().unwrap()
        );
        assert_eq!(full_out.best_epoch, res_out.best_epoch);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn labeled_runs_share_a_checkpoint_dir_without_collisions() {
        let dir = std::env::temp_dir().join(format!("edd-search-label-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Two labeled runs plus one unlabeled run, all writing into the
        // same directory with keep=1: each label's retention must only see
        // its own snapshots.
        let (mut a, train, val, mut rng_a) = tiny_search(true);
        a.checkpoint_into(&dir)
            .checkpoint_keep(1)
            .checkpoint_label("alpha");
        a.run_until(&train, &val, &mut rng_a, 2).unwrap();
        let (mut b, train_b, val_b, mut rng_b) = tiny_search(true);
        b.checkpoint_into(&dir)
            .checkpoint_keep(1)
            .checkpoint_label("beta");
        b.run_until(&train_b, &val_b, &mut rng_b, 1).unwrap();
        let (mut c, train_c, val_c, mut rng_c) = tiny_search(true);
        c.checkpoint_into(&dir).checkpoint_keep(1);
        c.run_until(&train_c, &val_c, &mut rng_c, 1).unwrap();

        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                SearchSnapshot::file_name(0),
                SearchSnapshot::labeled_file_name("alpha", 1),
                SearchSnapshot::labeled_file_name("beta", 0),
            ],
            "each label keeps exactly its own newest snapshot"
        );

        // A labeled resume resolves to its own snapshot, and continues to
        // the same result as an uninterrupted labeled run.
        let (mut full, train_f, val_f, mut rng_f) = tiny_search(true);
        let full_out = full.run(&train_f, &val_f, &mut rng_f).unwrap();
        let (mut resumed, train_r, val_r, _) = tiny_search(true);
        let mut other_rng = StdRng::seed_from_u64(123);
        resumed.checkpoint_label("alpha");
        resumed.resume_from(&dir).unwrap();
        let res_out = resumed.run(&train_r, &val_r, &mut other_rng).unwrap();
        assert_eq!(full_out.history, res_out.history);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_mismatched_configuration() {
        let dir = std::env::temp_dir().join(format!("edd-search-fp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut a, train, val, mut rng) = tiny_search(true);
        a.checkpoint_into(&dir);
        a.run_until(&train, &val, &mut rng, 1).unwrap();

        // Same space/target but a different epoch budget: the temperature
        // schedule would diverge, so the fingerprint must reject the resume.
        let mut rng2 = StdRng::seed_from_u64(7);
        let space = SearchSpace::tiny(3, 16, 4, vec![4, 8, 16]);
        let target = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
        let config = CoSearchConfig {
            epochs: 5,
            warmup_epochs: 1,
            ..CoSearchConfig::default()
        };
        let mut b = CoSearch::new(space, target, config, &mut rng2).unwrap();
        let err = b.resume_from(&dir).unwrap_err();
        assert!(
            err.to_string().contains("different search configuration"),
            "{err}"
        );

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn telemetry_records_epochs_and_kernel_gauges() {
        use edd_runtime::telemetry::JsonlSink;
        use std::sync::Arc;

        let path =
            std::env::temp_dir().join(format!("edd-search-trace-{}.jsonl", std::process::id()));
        let sink = Arc::new(JsonlSink::create(&path).unwrap());
        telemetry::set_global(sink);
        let (mut search, train, val, mut rng) = tiny_search(true);
        let outcome = search.run(&train, &val, &mut rng);
        telemetry::global().flush();
        telemetry::clear_global();
        outcome.unwrap();

        let trace = std::fs::read_to_string(&path).unwrap();
        assert!(trace.contains("\"name\":\"search.epoch\""), "{trace}");
        assert!(trace.contains("\"target\":\"fpga-recursive\""), "{trace}");
        assert!(trace.contains("res_penalty"));
        assert!(trace.contains("arch_digest"));
        assert!(trace.contains("kernel.pool_tasks"));
        assert!(trace.contains("search.weight_phase"));
        assert!(trace.contains("search.val_phase"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fnv_digest_is_stable_and_distinct() {
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        assert_ne!(fnv1a_hex(b"a"), fnv1a_hex(b"b"));
        assert_eq!(fnv1a_hex(b"abc"), fnv1a_hex(b"abc"));
    }
}
