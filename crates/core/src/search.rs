//! The EDD co-search algorithm (paper §5): bilevel stochastic gradient
//! descent over the fused space `{A, I}`.
//!
//! Each epoch alternates:
//!
//! 1. **Weight steps** — fix `Θ, Φ, pf`, update DNN weights `ω` by
//!    minimizing the training cross-entropy along sampled single paths.
//! 2. **Architecture steps** — fix `ω`, update `Θ, Φ, pf` by descending the
//!    fused loss (Eq. 1) on the *validation* split: sampled-path accuracy
//!    loss × differentiable performance loss + resource penalty.
//!
//! The Gumbel-Softmax temperature anneals geometrically from `tau_start` to
//! `tau_end`. After the final epoch the argmax architecture is derived
//! (paper: the searched DNN is then trained from scratch).

use crate::arch_params::ArchParams;
use crate::derive::DerivedArch;
use crate::loss::{edd_loss, LossConfig};
use crate::perf_model::{estimate, PerfTables};
use crate::space::SearchSpace;
use crate::supernet::SuperNet;
use crate::target::DeviceTarget;
use edd_nn::Batch;
use edd_tensor::optim::{Adam, Optimizer, Sgd};
use edd_tensor::{accuracy, Result, Tensor};
use rand::Rng;

/// Hyperparameters of a co-search run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoSearchConfig {
    /// Number of search epochs (the paper runs 50).
    pub epochs: usize,
    /// SGD learning rate for DNN weights.
    pub weight_lr: f32,
    /// SGD momentum for DNN weights.
    pub weight_momentum: f32,
    /// Adam learning rate for `Θ, Φ, pf`.
    pub arch_lr: f32,
    /// Initial Gumbel-Softmax temperature.
    pub tau_start: f32,
    /// Final Gumbel-Softmax temperature.
    pub tau_end: f32,
    /// Epochs of weight-only warm-up before architecture updates begin.
    pub warmup_epochs: usize,
    /// If false, architecture steps use the training batches too
    /// (single-level ablation of the bilevel scheme).
    pub bilevel: bool,
    /// Optional global-norm clip applied to the DNN weight gradients each
    /// step (`None` = no clipping).
    pub clip_grad_norm: Option<f32>,
    /// Fused-loss hyperparameters.
    pub loss: LossConfig,
}

impl CoSearchConfig {
    /// The paper's §6 search hyperparameters: 50 epochs of bilevel search
    /// ("We run for fixed 50 epochs during the EDD search"), DARTS-style
    /// learning rates, temperature annealed over the full run. Intended for
    /// the full-scale space; laptop experiments use the shorter default.
    #[must_use]
    pub fn paper() -> Self {
        CoSearchConfig {
            epochs: 50,
            weight_lr: 0.025,
            weight_momentum: 0.9,
            arch_lr: 3e-3,
            tau_start: 5.0,
            tau_end: 0.1,
            warmup_epochs: 5,
            bilevel: true,
            clip_grad_norm: Some(5.0),
            loss: LossConfig::default(),
        }
    }
}

impl Default for CoSearchConfig {
    fn default() -> Self {
        CoSearchConfig {
            epochs: 12,
            weight_lr: 0.05,
            weight_momentum: 0.9,
            arch_lr: 0.02,
            tau_start: 3.0,
            tau_end: 0.3,
            warmup_epochs: 2,
            bilevel: true,
            clip_grad_norm: Some(5.0),
            loss: LossConfig::default(),
        }
    }
}

/// Metrics recorded after each search epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean sampled-path training loss.
    pub train_loss: f32,
    /// Mean sampled-path training accuracy.
    pub train_acc: f32,
    /// Validation accuracy of the current argmax architecture.
    pub val_acc: f32,
    /// Expected Stage-4 performance term (ms).
    pub expected_perf: f32,
    /// Expected Stage-4 resource usage (DSPs; 0 on GPU).
    pub expected_res: f32,
    /// Temperature used this epoch.
    pub tau: f32,
}

/// Result of a finished co-search.
#[derive(Debug)]
pub struct SearchOutcome {
    /// The derived (argmax) architecture at the end of the run.
    pub derived: DerivedArch,
    /// Per-epoch metric history.
    pub history: Vec<EpochRecord>,
    /// The architecture derived at the epoch with the highest validation
    /// accuracy (early-stopping candidate; equals `derived` when the last
    /// epoch was the best).
    pub best_derived: DerivedArch,
    /// Epoch index of `best_derived`.
    pub best_epoch: usize,
}

impl SearchOutcome {
    /// Serializes the epoch history as CSV (header + one row per epoch),
    /// for plotting search curves.
    #[must_use]
    pub fn history_csv(&self) -> String {
        let mut out =
            String::from("epoch,train_loss,train_acc,val_acc,expected_perf,expected_res,tau\n");
        for h in &self.history {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                h.epoch,
                h.train_loss,
                h.train_acc,
                h.val_acc,
                h.expected_perf,
                h.expected_res,
                h.tau
            ));
        }
        out
    }
}

/// A configured co-search: supernet + architecture parameters + coefficient
/// tables + optimizers.
pub struct CoSearch {
    space: SearchSpace,
    target: DeviceTarget,
    config: CoSearchConfig,
    supernet: SuperNet,
    arch: ArchParams,
    tables: PerfTables,
}

impl std::fmt::Debug for CoSearch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoSearch")
            .field("space", &self.space.name)
            .field("target", &self.target.label())
            .field("epochs", &self.config.epochs)
            .finish()
    }
}

impl CoSearch {
    /// Creates a co-search for `space` on `target`.
    ///
    /// # Errors
    ///
    /// Returns an error when the space's quantization menu is unsupported by
    /// the target (e.g. 4-bit on GPU).
    pub fn new<R: Rng + ?Sized>(
        space: SearchSpace,
        target: DeviceTarget,
        config: CoSearchConfig,
        rng: &mut R,
    ) -> Result<Self> {
        let tables = PerfTables::build(&space, &target)?;
        let supernet = SuperNet::new(&space, rng);
        let arch = ArchParams::init(&space, &target, rng);
        Ok(CoSearch {
            space,
            target,
            config,
            supernet,
            arch,
            tables,
        })
    }

    /// The supernet under search.
    #[must_use]
    pub fn supernet(&self) -> &SuperNet {
        &self.supernet
    }

    /// The current architecture parameters.
    #[must_use]
    pub fn arch(&self) -> &ArchParams {
        &self.arch
    }

    /// The device target.
    #[must_use]
    pub fn target(&self) -> &DeviceTarget {
        &self.target
    }

    /// Temperature at `epoch` (geometric annealing).
    #[must_use]
    pub fn tau_at(&self, epoch: usize) -> f32 {
        let e = self.config.epochs.max(2) - 1;
        let t = (epoch.min(e)) as f32 / e as f32;
        self.config.tau_start * (self.config.tau_end / self.config.tau_start).powf(t)
    }

    /// Runs the full co-search over the given train/validation splits and
    /// derives the final architecture.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the supernet or the performance model.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        train: &[Batch],
        val: &[Batch],
        rng: &mut R,
    ) -> Result<SearchOutcome> {
        let mut w_opt = Sgd::new(
            self.supernet.weight_params(),
            self.config.weight_lr,
            self.config.weight_momentum,
            1e-4,
        );
        let mut a_opt = Adam::new(self.arch.all_params(), self.config.arch_lr);
        let mut history = Vec::with_capacity(self.config.epochs);
        let mut best: Option<(usize, f32, DerivedArch)> = None;
        for epoch in 0..self.config.epochs {
            let tau = self.tau_at(epoch);
            self.supernet.set_training(true);
            let mut train_loss = 0.0;
            let mut train_acc = 0.0;
            let mut seen = 0usize;
            for batch in train {
                w_opt.zero_grad();
                a_opt.zero_grad();
                let x = Tensor::constant(batch.images.clone());
                let (logits, _) = self.supernet.forward_sampled(&x, &self.arch, tau, rng)?;
                let loss = logits.cross_entropy(&batch.labels)?;
                loss.backward();
                if let Some(max_norm) = self.config.clip_grad_norm {
                    edd_tensor::optim::clip_grad_norm(w_opt.params(), max_norm);
                }
                w_opt.step();
                // Scratch buffers are step-scoped; reclaim the arena.
                edd_tensor::scratch::reset();
                let b = batch.labels.len();
                train_loss += loss.item() * b as f32;
                train_acc += accuracy(&logits.value_clone(), &batch.labels) * b as f32;
                seen += b;
            }
            // Architecture step on the validation split (bilevel) or the
            // training split (single-level ablation).
            let mut expected_perf = 0.0;
            let mut expected_res = 0.0;
            if epoch >= self.config.warmup_epochs {
                let arch_batches = if self.config.bilevel { val } else { train };
                let mut arch_steps = 0usize;
                for batch in arch_batches {
                    w_opt.zero_grad();
                    a_opt.zero_grad();
                    let x = Tensor::constant(batch.images.clone());
                    let (logits, _) = self.supernet.forward_sampled(&x, &self.arch, tau, rng)?;
                    let acc_loss = logits.cross_entropy(&batch.labels)?;
                    let est = estimate(
                        &self.arch,
                        &self.tables,
                        &self.space,
                        &self.target,
                        tau,
                        rng,
                    )?;
                    let total = edd_loss(
                        &acc_loss,
                        &est.perf,
                        &est.res,
                        self.target.resource_bound(),
                        &self.config.loss,
                    )?;
                    total.backward();
                    a_opt.step();
                    edd_tensor::scratch::reset();
                    expected_perf += est.perf.item();
                    expected_res += est.res.item();
                    arch_steps += 1;
                }
                if arch_steps > 0 {
                    expected_perf /= arch_steps as f32;
                    expected_res /= arch_steps as f32;
                }
            }
            // Validation accuracy of the current argmax architecture.
            self.supernet.set_training(false);
            let mut val_acc = 0.0;
            let mut val_seen = 0usize;
            for batch in val {
                let x = Tensor::constant(batch.images.clone());
                let logits = self.supernet.forward_argmax(&x, &self.arch)?;
                val_acc +=
                    accuracy(&logits.value_clone(), &batch.labels) * batch.labels.len() as f32;
                val_seen += batch.labels.len();
            }
            let epoch_val_acc = val_acc / val_seen.max(1) as f32;
            if best.as_ref().is_none_or(|(_, acc, _)| epoch_val_acc > *acc) {
                best = Some((
                    epoch,
                    epoch_val_acc,
                    DerivedArch::from_params(&self.space, &self.target, &self.arch),
                ));
            }
            history.push(EpochRecord {
                epoch,
                train_loss: train_loss / seen.max(1) as f32,
                train_acc: train_acc / seen.max(1) as f32,
                val_acc: epoch_val_acc,
                expected_perf,
                expected_res,
                tau,
            });
        }
        let derived = DerivedArch::from_params(&self.space, &self.target, &self.arch);
        let (best_epoch, _, best_derived) =
            best.unwrap_or((self.config.epochs.saturating_sub(1), 0.0, derived.clone()));
        Ok(SearchOutcome {
            derived,
            history,
            best_derived,
            best_epoch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edd_data::{SynthConfig, SynthDataset};
    use edd_hw::FpgaDevice;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_search(bilevel: bool) -> (CoSearch, Vec<Batch>, Vec<Batch>, StdRng) {
        let mut rng = StdRng::seed_from_u64(7);
        let space = SearchSpace::tiny(3, 16, 4, vec![4, 8, 16]);
        let target = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
        let config = CoSearchConfig {
            epochs: 3,
            warmup_epochs: 1,
            bilevel,
            ..CoSearchConfig::default()
        };
        let search = CoSearch::new(space, target, config, &mut rng).unwrap();
        let data = SynthDataset::new(SynthConfig::tiny());
        let train = data.split(3, 8, 1);
        let val = data.split(2, 8, 2);
        (search, train, val, rng)
    }

    #[test]
    fn new_rejects_incompatible_quant_menu() {
        // 4-bit weights are not representable on the GPU target (TensorRT
        // floor is 8-bit); construction must fail up front.
        let mut rng = StdRng::seed_from_u64(1);
        let space = SearchSpace::tiny(2, 16, 4, vec![4, 8, 16]);
        let target = crate::target::DeviceTarget::Gpu(edd_hw::GpuDevice::titan_rtx());
        assert!(CoSearch::new(space, target, CoSearchConfig::default(), &mut rng).is_err());
    }

    #[test]
    fn tau_anneals_geometrically() {
        let (search, _, _, _) = tiny_search(true);
        assert!((search.tau_at(0) - 3.0).abs() < 1e-5);
        assert!((search.tau_at(2) - 0.3).abs() < 1e-5);
        assert!(search.tau_at(1) < search.tau_at(0));
        assert!(search.tau_at(1) > search.tau_at(2));
    }

    #[test]
    fn run_produces_history_and_architecture() {
        let (mut search, train, val, mut rng) = tiny_search(true);
        let outcome = search.run(&train, &val, &mut rng).unwrap();
        assert_eq!(outcome.history.len(), 3);
        assert_eq!(outcome.derived.blocks.len(), 3);
        // Warmup epoch must not have arch updates -> zero expected perf.
        assert_eq!(outcome.history[0].expected_perf, 0.0);
        // Post-warmup epochs estimate performance.
        assert!(outcome.history[2].expected_perf > 0.0);
        assert!(outcome.history[2].expected_res > 0.0);
        // Losses should be finite and positive.
        assert!(outcome.history.iter().all(|h| h.train_loss.is_finite()));
    }

    #[test]
    fn best_epoch_tracks_peak_validation() {
        let (mut search, train, val, mut rng) = tiny_search(true);
        let outcome = search.run(&train, &val, &mut rng).unwrap();
        assert!(outcome.best_epoch < outcome.history.len());
        let best_acc = outcome.history[outcome.best_epoch].val_acc;
        for h in &outcome.history {
            assert!(h.val_acc <= best_acc + 1e-6);
        }
        assert_eq!(outcome.best_derived.blocks.len(), 3);
    }

    #[test]
    fn single_level_ablation_runs() {
        let (mut search, train, val, mut rng) = tiny_search(false);
        let outcome = search.run(&train, &val, &mut rng).unwrap();
        assert_eq!(outcome.history.len(), 3);
    }

    #[test]
    fn debug_format_mentions_target() {
        let (search, _, _, _) = tiny_search(true);
        assert!(format!("{search:?}").contains("FPGA-recursive"));
    }

    #[test]
    fn paper_config_matches_section6() {
        let c = CoSearchConfig::paper();
        assert_eq!(c.epochs, 50);
        assert!(c.bilevel);
        assert!(c.tau_start > c.tau_end);
    }

    #[test]
    fn history_exports_as_csv() {
        let (mut search, train, val, mut rng) = tiny_search(true);
        let outcome = search.run(&train, &val, &mut rng).unwrap();
        let csv = outcome.history_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 1 + outcome.history.len());
        assert!(lines[0].starts_with("epoch,train_loss"));
        assert_eq!(lines[1].split(',').count(), 7);
    }
}
