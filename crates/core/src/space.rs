//! The fused EDD search space definition (paper §3, Fig. 1–2).
//!
//! A [`SearchSpace`] fixes everything that is *not* searched: the macro
//! skeleton (N blocks with a channel/stride plan, stem and head), the
//! candidate-operation menu (`M = |kernels| × |expansions|` MBConv variants
//! per block) and the quantization menu (`Q` bit-widths). The searched
//! variables — operator logits `Θ`, quantization logits `Φ` and parallel
//! factors `pf` — live in [`crate::arch_params::ArchParams`].

use edd_hw::shapes::OpShape;
use serde::{Deserialize, Serialize};

/// Fixed plan of one supernet block: output channels and stride.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockPlan {
    /// Output channel count of the block.
    pub out_channels: usize,
    /// Stride of the block's depthwise stage (1 or 2).
    pub stride: usize,
}

/// The static skeleton of the supernet plus the per-block candidate menus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Human-readable name.
    pub name: String,
    /// Input image channels (3 for RGB).
    pub input_channels: usize,
    /// Input image side length.
    pub image_size: usize,
    /// Classifier output classes.
    pub num_classes: usize,
    /// Stem convolution output channels.
    pub stem_channels: usize,
    /// Stem convolution stride.
    pub stem_stride: usize,
    /// Per-block channel/stride plan (length `N`).
    pub blocks: Vec<BlockPlan>,
    /// Candidate depthwise kernel sizes (paper: `{3, 5, 7}`).
    pub kernel_choices: Vec<usize>,
    /// Candidate channel expansion ratios (paper: `{4, 5, 6}`).
    pub expansion_choices: Vec<usize>,
    /// Candidate weight bit-widths (`Q` entries; device-dependent).
    pub quant_bits: Vec<u32>,
    /// Head (final 1×1 conv) channels before global pooling.
    pub head_channels: usize,
}

impl SearchSpace {
    /// Number of blocks `N`.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of candidate operations per block,
    /// `M = |kernels| × |expansions|`.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.kernel_choices.len() * self.expansion_choices.len()
    }

    /// Number of quantization choices `Q`.
    #[must_use]
    pub fn num_quant(&self) -> usize {
        self.quant_bits.len()
    }

    /// Decodes candidate index `m` into `(kernel, expansion)`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= num_ops()`.
    #[must_use]
    pub fn op_choice(&self, m: usize) -> (usize, usize) {
        assert!(m < self.num_ops(), "op index {m} out of range");
        let e = self.expansion_choices.len();
        (self.kernel_choices[m / e], self.expansion_choices[m % e])
    }

    /// Input channels of block `i` (stem output for the first block).
    #[must_use]
    pub fn block_in_channels(&self, i: usize) -> usize {
        if i == 0 {
            self.stem_channels
        } else {
            self.blocks[i - 1].out_channels
        }
    }

    /// Spatial side length at the *input* of block `i` (after the stem and
    /// all preceding strides).
    #[must_use]
    pub fn spatial_at_block(&self, i: usize) -> usize {
        let mut s = self.image_size.div_ceil(self.stem_stride);
        for b in &self.blocks[..i] {
            s = s.div_ceil(b.stride);
        }
        s
    }

    /// The [`OpShape`] (for the hardware models) of candidate `m` in block
    /// `i`.
    #[must_use]
    pub fn op_shape(&self, i: usize, m: usize) -> OpShape {
        let (k, e) = self.op_choice(m);
        let cin = self.block_in_channels(i);
        let plan = self.blocks[i];
        let s = self.spatial_at_block(i);
        OpShape::mbconv(cin, plan.out_channels, k, e, s, s, plan.stride)
    }

    /// The paper's ImageNet space: 20 MBConv blocks, kernels `{3,5,7}`,
    /// expansions `{4,5,6}` (`M = 9`), 224×224 input, 1000 classes. The
    /// channel plan follows the published EDD-Net skeletons (Fig. 4).
    #[must_use]
    pub fn paper_imagenet(quant_bits: Vec<u32>) -> Self {
        let channels = [
            32, 32, 32, 40, 40, 40, 80, 80, 80, 80, 96, 96, 96, 96, 192, 192, 192, 192, 192, 320,
        ];
        let strides = [1, 1, 2, 1, 1, 2, 1, 1, 1, 2, 1, 1, 1, 1, 2, 1, 1, 1, 1, 1];
        SearchSpace {
            name: "edd-imagenet".into(),
            input_channels: 3,
            image_size: 224,
            num_classes: 1000,
            stem_channels: 32,
            stem_stride: 2,
            blocks: channels
                .iter()
                .zip(strides)
                .map(|(&c, s)| BlockPlan {
                    out_channels: c,
                    stride: s,
                })
                .collect(),
            kernel_choices: vec![3, 5, 7],
            expansion_choices: vec![4, 5, 6],
            quant_bits,
            head_channels: 1280,
        }
    }

    /// A laptop-scale space for the SynthImageNet experiments: `n` blocks on
    /// small images. Keeps the full `M = 9` candidate menu so the search
    /// dynamics match the paper.
    #[must_use]
    pub fn tiny(n: usize, image_size: usize, num_classes: usize, quant_bits: Vec<u32>) -> Self {
        assert!(n >= 1, "need at least one block");
        let mut blocks = Vec::with_capacity(n);
        let mut c = 16;
        for i in 0..n {
            // Double channels and stride every third block.
            let stride = if i > 0 && i % 3 == 0 { 2 } else { 1 };
            if stride == 2 {
                c *= 2;
            }
            blocks.push(BlockPlan {
                out_channels: c,
                stride,
            });
        }
        SearchSpace {
            name: format!("edd-tiny-{n}"),
            input_channels: 3,
            image_size,
            num_classes,
            stem_channels: 16,
            stem_stride: 1,
            blocks,
            kernel_choices: vec![3, 5, 7],
            expansion_choices: vec![4, 5, 6],
            quant_bits,
            head_channels: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_dimensions() {
        let s = SearchSpace::paper_imagenet(vec![4, 8, 16]);
        assert_eq!(s.num_blocks(), 20);
        assert_eq!(s.num_ops(), 9);
        assert_eq!(s.num_quant(), 3);
        assert_eq!(s.num_classes, 1000);
    }

    #[test]
    fn op_choice_decodes_row_major() {
        let s = SearchSpace::paper_imagenet(vec![16]);
        assert_eq!(s.op_choice(0), (3, 4));
        assert_eq!(s.op_choice(1), (3, 5));
        assert_eq!(s.op_choice(2), (3, 6));
        assert_eq!(s.op_choice(3), (5, 4));
        assert_eq!(s.op_choice(8), (7, 6));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn op_choice_bounds() {
        let s = SearchSpace::paper_imagenet(vec![16]);
        let _ = s.op_choice(9);
    }

    #[test]
    fn spatial_tracks_strides() {
        let s = SearchSpace::paper_imagenet(vec![16]);
        // Stem stride 2: 224 -> 112 at block 0.
        assert_eq!(s.spatial_at_block(0), 112);
        // After the first stride-2 block (index 2), block 3 sees 56.
        assert_eq!(s.spatial_at_block(3), 56);
    }

    #[test]
    fn block_in_channels_chains() {
        let s = SearchSpace::paper_imagenet(vec![16]);
        assert_eq!(s.block_in_channels(0), 32);
        assert_eq!(s.block_in_channels(3), 32);
        assert_eq!(s.block_in_channels(19), 192);
    }

    #[test]
    fn op_shape_respects_choice() {
        let s = SearchSpace::tiny(4, 16, 4, vec![4, 8, 16]);
        let a = s.op_shape(0, 0); // k3 e4
        let b = s.op_shape(0, 8); // k7 e6
        assert!(b.work() > a.work());
        assert!(a.ip_class.contains("k3_e4"));
        assert!(b.ip_class.contains("k7_e6"));
    }

    #[test]
    fn tiny_space_strides_double_channels() {
        let s = SearchSpace::tiny(7, 32, 10, vec![8]);
        assert_eq!(s.blocks[2].out_channels, 16);
        assert_eq!(s.blocks[3].stride, 2);
        assert_eq!(s.blocks[3].out_channels, 32);
        assert_eq!(s.blocks[6].out_channels, 64);
    }

    #[test]
    fn serde_roundtrip() {
        let s = SearchSpace::tiny(3, 16, 4, vec![8, 16]);
        let j = serde_json::to_string(&s).unwrap();
        let back: SearchSpace = serde_json::from_str(&j).unwrap();
        assert_eq!(s, back);
    }
}
