//! The weight-sharing supernet (paper Fig. 1): a stem, `N` blocks of `M`
//! candidate MBConv operations each, and a classifier head.
//!
//! During search the forward pass samples **one** operation and **one**
//! quantization per block with hard Gumbel-Softmax (straight-through), so
//! only a single path is computed — the memory/compute reduction the paper
//! credits Gumbel-Softmax for (§3.1). The straight-through coefficients
//! multiply the branch output, which is how gradients reach `Θ` and `Φ`
//! through the accuracy loss.

use crate::arch_params::ArchParams;
use crate::space::SearchSpace;
use edd_nn::{BatchNorm2d, Conv2d, Linear, MbConv, Module, QuantSpec, QuantizableModule};
use edd_tensor::{gumbel_softmax, Result, Tensor};
use rand::Rng;
use std::sync::Mutex;

/// The EDD supernet.
pub struct SuperNet {
    space: SearchSpace,
    stem: Conv2d,
    stem_bn: BatchNorm2d,
    /// `blocks[i][m]` = candidate op `m` of block `i`.
    blocks: Vec<Vec<MbConv>>,
    head: Conv2d,
    head_bn: BatchNorm2d,
    classifier: Linear,
}

impl std::fmt::Debug for SuperNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuperNet")
            .field("space", &self.space.name)
            .field("blocks", &self.blocks.len())
            .field("ops_per_block", &self.blocks.first().map_or(0, Vec::len))
            .finish()
    }
}

/// Record of the path sampled in one forward pass: per block, the chosen
/// op index and quantization index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledPath {
    /// Chosen candidate per block.
    pub ops: Vec<usize>,
    /// Chosen quantization index per block.
    pub quants: Vec<usize>,
}

impl SuperNet {
    /// Builds the supernet for `space` with fresh Kaiming-initialized
    /// weights.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(space: &SearchSpace, rng: &mut R) -> Self {
        let stem = Conv2d::same(
            space.input_channels,
            space.stem_channels,
            3,
            space.stem_stride,
            rng,
        );
        let stem_bn = BatchNorm2d::new(space.stem_channels);
        let mut blocks = Vec::with_capacity(space.num_blocks());
        for i in 0..space.num_blocks() {
            let cin = space.block_in_channels(i);
            let plan = space.blocks[i];
            let mut ops = Vec::with_capacity(space.num_ops());
            for m in 0..space.num_ops() {
                let (k, e) = space.op_choice(m);
                ops.push(MbConv::new(cin, plan.out_channels, k, e, plan.stride, rng));
            }
            blocks.push(ops);
        }
        let last_c = space
            .blocks
            .last()
            .map_or(space.stem_channels, |b| b.out_channels);
        let head = Conv2d::new(last_c, space.head_channels, 1, 1, 0, false, rng);
        let head_bn = BatchNorm2d::new(space.head_channels);
        let classifier = Linear::new(space.head_channels, space.num_classes, rng);
        SuperNet {
            space: space.clone(),
            stem,
            stem_bn,
            blocks,
            head,
            head_bn,
            classifier,
        }
    }

    /// The search space this supernet was built for.
    #[must_use]
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Candidate op `m` of block `i`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[must_use]
    pub fn candidate(&self, i: usize, m: usize) -> &MbConv {
        &self.blocks[i][m]
    }

    /// All DNN weights `ω` (stem, every candidate, head) — the inner-level
    /// variables of the bilevel optimization.
    #[must_use]
    pub fn weight_params(&self) -> Vec<Tensor> {
        let mut p = self.stem.parameters();
        p.extend(self.stem_bn.parameters());
        for ops in &self.blocks {
            for op in ops {
                p.extend(op.parameters());
            }
        }
        p.extend(self.head.parameters());
        p.extend(self.head_bn.parameters());
        p.extend(self.classifier.parameters());
        p
    }

    /// Every batch-norm layer in deterministic order (stem BN, each
    /// candidate's BNs in block/op order, head BN). Running statistics are
    /// state outside `weight_params()`, so checkpointing serializes them
    /// through this walk; the order is part of the snapshot contract.
    #[must_use]
    pub fn batch_norms(&self) -> Vec<&BatchNorm2d> {
        let mut bns = vec![&self.stem_bn];
        for ops in &self.blocks {
            for op in ops {
                bns.extend(op.batch_norms());
            }
        }
        bns.push(&self.head_bn);
        bns
    }

    /// Switches batch-norm layers between training and evaluation modes.
    pub fn set_training(&self, training: bool) {
        self.stem_bn.set_training(training);
        for ops in &self.blocks {
            for op in ops {
                op.set_training(training);
            }
        }
        self.head_bn.set_training(training);
    }

    fn head_forward(&self, h: &Tensor) -> Result<Tensor> {
        let h = self.head.forward(h)?;
        let h = self.head_bn.forward_relu6(&h)?;
        let h = h.global_avg_pool()?;
        self.classifier.forward(&h)
    }

    /// Single-path sampled forward: hard Gumbel-Softmax over ops and
    /// quantizations at temperature `tau`. Returns the class logits and the
    /// sampled path.
    ///
    /// Exactly one branch executes per block (that is the point of the
    /// single-path supernet), so there is no branch-level fan-out here;
    /// parallelism comes from the pooled convolution / normalization /
    /// elementwise kernels inside the sampled branch.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn forward_sampled<R: Rng + ?Sized>(
        &self,
        x: &Tensor,
        arch: &ArchParams,
        tau: f32,
        rng: &mut R,
    ) -> Result<(Tensor, SampledPath)> {
        let mut h = self.stem.forward(x)?;
        h = self.stem_bn.forward_relu6(&h)?;
        let mut path = SampledPath {
            ops: Vec::with_capacity(self.blocks.len()),
            quants: Vec::with_capacity(self.blocks.len()),
        };
        for (i, ops) in self.blocks.iter().enumerate() {
            // Sample the operation (hard one-hot, straight-through).
            let gs_theta = gumbel_softmax(&arch.theta[i], tau, true, rng)?;
            let m_star = gs_theta.value().argmax().expect("non-empty");
            let theta_coeff = gs_theta.select(m_star)?;
            // Sample the quantization for the chosen op.
            let gs_phi = gumbel_softmax(arch.phi_logits(i, m_star), tau, true, rng)?;
            let q_star = gs_phi.value().argmax().expect("non-empty");
            let phi_coeff = gs_phi.select(q_star)?;
            let bits = self.space.quant_bits[q_star];
            // Only the sampled branch is executed (single-path supernet).
            let branch = ops[m_star].forward_quantized(&h, Some(QuantSpec::bits(bits)))?;
            // Multiply by the ST coefficients (value exactly 1.0) so that
            // gradients reach Θ and Φ through the accuracy loss.
            let coeff = theta_coeff.mul(&phi_coeff)?;
            h = branch.mul(&coeff)?;
            path.ops.push(m_star);
            path.quants.push(q_star);
        }
        let logits = self.head_forward(&h)?;
        Ok((logits, path))
    }

    /// DARTS-style all-branch mixture forward: every candidate of every
    /// block executes and outputs are blended by `softmax(θ/τ)` weights;
    /// quantization is likewise the softmax expectation over `Φ` (executed
    /// at the argmax bit-width, weighted by its probability plus the
    /// straight-through residual of the remaining mass).
    ///
    /// This is the memory-hungry alternative the paper rejects in §3.1 —
    /// provided for the Gumbel-vs-softmax ablation and for users who want
    /// deterministic search gradients.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn forward_mixture(&self, x: &Tensor, arch: &ArchParams, tau: f32) -> Result<Tensor> {
        let mut h = self.stem.forward(x)?;
        h = self.stem_bn.forward_relu6(&h)?;
        for (i, ops) in self.blocks.iter().enumerate() {
            let weights = edd_tensor::softmax_selection(&arch.theta[i], tau)?;
            // Fan the M candidate branches out over the worker pool: each
            // branch owns its slot (and its own batch-norm running stats),
            // and the combine below walks slots in ascending m, so the
            // result is identical to the sequential loop for any thread
            // count. Ops inside a branch that would themselves use the pool
            // run inline on the worker (nested `run` never deadlocks).
            let slots: Vec<Mutex<Option<Result<Tensor>>>> =
                (0..ops.len()).map(|_| Mutex::new(None)).collect();
            edd_tensor::kernel::pool::run(ops.len(), &|m| {
                let q_star = arch.argmax_quant(i, m);
                let bits = self.space.quant_bits[q_star];
                let result = ops[m].forward_quantized(&h, Some(QuantSpec::bits(bits)));
                *slots[m].lock().expect("branch slot poisoned") = Some(result);
            });
            let mut terms = Vec::with_capacity(ops.len());
            for slot in slots {
                terms.push(
                    slot.into_inner()
                        .expect("branch slot poisoned")
                        .expect("every branch task ran")?,
                );
            }
            // Fused weighted combine: a single op node computes
            // `Σ_m w_m · branch_m` (bitwise identical to the per-branch
            // mul + add_n chain) and its backward fans the M branch
            // gradients out over the worker pool.
            h = Tensor::weighted_add_n(&terms, &weights)?;
        }
        self.head_forward(&h)
    }

    /// Deterministic forward along the argmax path of `arch` (used for
    /// validation during the search).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn forward_argmax(&self, x: &Tensor, arch: &ArchParams) -> Result<Tensor> {
        let mut h = self.stem.forward(x)?;
        h = self.stem_bn.forward_relu6(&h)?;
        for (i, ops) in self.blocks.iter().enumerate() {
            let m_star = arch.theta[i].value().argmax().expect("non-empty");
            let q_star = arch.argmax_quant(i, m_star);
            let bits = self.space.quant_bits[q_star];
            h = ops[m_star].forward_quantized(&h, Some(QuantSpec::bits(bits)))?;
        }
        self.head_forward(&h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::DeviceTarget;
    use edd_hw::FpgaDevice;
    use edd_tensor::Array;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SearchSpace, SuperNet, ArchParams, StdRng) {
        let mut rng = StdRng::seed_from_u64(42);
        let space = SearchSpace::tiny(3, 16, 4, vec![4, 8, 16]);
        let net = SuperNet::new(&space, &mut rng);
        let arch = ArchParams::init(
            &space,
            &DeviceTarget::FpgaPipelined(FpgaDevice::zc706()),
            &mut rng,
        );
        (space, net, arch, rng)
    }

    #[test]
    fn sampled_forward_shapes_and_path() {
        let (space, net, arch, mut rng) = setup();
        let x = Tensor::constant(Array::randn(&[2, 3, 16, 16], 1.0, &mut rng));
        let (logits, path) = net.forward_sampled(&x, &arch, 1.0, &mut rng).unwrap();
        assert_eq!(logits.shape(), vec![2, 4]);
        assert_eq!(path.ops.len(), 3);
        assert!(path.ops.iter().all(|&m| m < space.num_ops()));
        assert!(path.quants.iter().all(|&q| q < 3));
    }

    #[test]
    fn gradients_reach_theta_phi_and_weights() {
        let (_, net, arch, mut rng) = setup();
        let x = Tensor::constant(Array::randn(&[2, 3, 16, 16], 1.0, &mut rng));
        let (logits, path) = net.forward_sampled(&x, &arch, 1.0, &mut rng).unwrap();
        let loss = logits.cross_entropy(&[0, 1]).unwrap();
        loss.backward();
        // Theta of every block receives gradient.
        for (i, t) in arch.theta.iter().enumerate() {
            assert!(t.grad().is_some(), "theta {i} has no grad");
        }
        // Phi of the sampled (i, m) receives gradient.
        for (i, &m) in path.ops.iter().enumerate() {
            assert!(
                arch.phi_logits(i, m).grad().is_some(),
                "phi ({i},{m}) has no grad"
            );
        }
        // Stem weights receive gradient.
        assert!(net.stem.parameters()[0].grad().is_some());
    }

    #[test]
    fn argmax_forward_is_deterministic() {
        let (_, net, arch, mut rng) = setup();
        net.set_training(false);
        let x = Tensor::constant(Array::randn(&[1, 3, 16, 16], 1.0, &mut rng));
        let a = net.forward_argmax(&x, &arch).unwrap();
        let b = net.forward_argmax(&x, &arch).unwrap();
        assert_eq!(a.value().data(), b.value().data());
    }

    #[test]
    fn sampled_coefficients_do_not_change_forward_value() {
        // Hard ST coefficients are exactly 1, so the sampled forward equals
        // running the chosen branch directly.
        let (_, net, arch, mut rng) = setup();
        net.set_training(false);
        let x = Tensor::constant(Array::randn(&[1, 3, 16, 16], 1.0, &mut rng));
        let (logits, path) = net.forward_sampled(&x, &arch, 0.5, &mut rng).unwrap();
        // Manually replay the path.
        let mut h = net.stem.forward(&x).unwrap();
        h = net.stem_bn.forward(&h).unwrap().relu6();
        for (i, (&m, &q)) in path.ops.iter().zip(&path.quants).enumerate() {
            let bits = net.space.quant_bits[q];
            h = net.blocks[i][m]
                .forward_quantized(&h, Some(QuantSpec::bits(bits)))
                .unwrap();
        }
        let manual = net.head_forward(&h).unwrap();
        for (a, b) in logits.value().data().iter().zip(manual.value().data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn mixture_forward_blends_all_branches() {
        let (_, net, arch, mut rng) = setup();
        net.set_training(false);
        let x = Tensor::constant(Array::randn(&[1, 3, 16, 16], 1.0, &mut rng));
        let y = net.forward_mixture(&x, &arch, 1.0).unwrap();
        assert_eq!(y.shape(), vec![1, 4]);
        // Deterministic (no Gumbel noise).
        let y2 = net.forward_mixture(&x, &arch, 1.0).unwrap();
        assert_eq!(y.value().data(), y2.value().data());
        // Gradients reach every block's theta (all branches executed).
        y.cross_entropy(&[0]).unwrap().backward();
        for t in &arch.theta {
            assert!(t.grad().is_some());
        }
    }

    #[test]
    fn mixture_concentrates_to_argmax_at_low_tau() {
        let (_, net, arch, mut rng) = setup();
        net.set_training(false);
        // Sharpen theta toward op 0 everywhere.
        for t in &arch.theta {
            t.update_value(|a| {
                for (i, v) in a.data_mut().iter_mut().enumerate() {
                    *v = if i == 0 { 10.0 } else { 0.0 };
                }
            });
        }
        let x = Tensor::constant(Array::randn(&[1, 3, 16, 16], 1.0, &mut rng));
        let mix = net.forward_mixture(&x, &arch, 0.05).unwrap();
        let arg = net.forward_argmax(&x, &arch).unwrap();
        for (a, b) in mix.value().data().iter().zip(arg.value().data()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn weight_param_count_scales_with_m() {
        let mut rng = StdRng::seed_from_u64(1);
        let s1 = SearchSpace::tiny(2, 16, 4, vec![8]);
        let net = SuperNet::new(&s1, &mut rng);
        // 2 blocks × 9 candidates of MBConv params + stem + head.
        assert!(net.weight_params().len() > 2 * 9 * 8);
        assert!(format!("{net:?}").contains("SuperNet"));
    }

    #[test]
    fn candidate_accessor() {
        let (space, net, _, _) = setup();
        let c = net.candidate(0, 8);
        let (k, e) = space.op_choice(8);
        assert_eq!(c.kernel(), k);
        assert_eq!(c.expansion(), e);
    }
}
