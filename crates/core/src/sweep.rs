//! Amortized multi-target co-search: one supernet, `T` targets.
//!
//! The paper reproduces its Table-2 story by running EDD once per device
//! target, which costs `T` full supernet trainings even though the weight
//! step — the dominant cost — is identical work for every target: only the
//! `(Θ, Φ, pf)` states and the implementation-loss terms differ.
//! [`SweepSearch`] amortizes this into one run:
//!
//! * **One shared weight phase per epoch.** Training batches are assigned
//!   round-robin to targets (`t = (epoch + i) mod T`), so each batch's
//!   sampled path comes from one target's current arch distribution and
//!   every target steers a share of the shared weights. One pass over the
//!   training split serves all `T` targets — a `T`× amortization of the
//!   weight-step cost versus sequential runs.
//! * **`T` parallel arch phases.** With the supernet frozen
//!   (`set_training(false)` — a deliberate deviation from the
//!   single-target loop, which lets warm batch-norm statistics drift
//!   during arch steps; freezing them is what makes the phase free of
//!   shared mutable state), the per-target arch steps are data-parallel
//!   over [`edd_tensor::kernel::pool`]: each target descends its own
//!   `(Θ, Φ, pf)` with its own Adam and its own RNG stream. Backward
//!   passes also accumulate into the shared weight leaves, but those
//!   gradients are lock-protected and discarded — the next weight phase
//!   zeroes them before reading — so the only cross-target interaction is
//!   benign lock contention.
//! * **Per-epoch Pareto bookkeeping.** After each epoch every target's
//!   argmax architecture is derived, evaluated on its device model
//!   ([`edd_hw::HwPoint`]), and merged into a per-target Pareto front
//!   ([`crate::pareto`]).
//!
//! Determinism: the weight phase runs on the driver thread with the shared
//! RNG; each parallel arch task touches only its own target state, the
//! frozen supernet, and bitwise thread-count-invariant kernels, so sweep
//! results are identical for every `EDD_NUM_THREADS` setting. One
//! [`SweepSnapshot`] per epoch captures shared weights plus all `T` states
//! for bit-identical whole-sweep resume.

use crate::arch_params::ArchParams;
use crate::checkpoint::{
    fingerprint, resolve_sweep_resume_path, sweep_fingerprint, SearchRng, SweepSnapshot,
    SweepTargetSnapshot,
};
use crate::derive::DerivedArch;
use crate::loss::edd_loss;
use crate::pareto::{self, ParetoPoint};
use crate::perf_model::{estimate, PerfTables};
use crate::search::{
    epoch_fields, fnv1a_hex, history_to_csv, CoSearchConfig, EpochRecord, SearchOutcome,
    EPOCH_EVENT,
};
use crate::space::SearchSpace;
use crate::supernet::SuperNet;
use crate::target::DeviceTarget;
use edd_hw::gpu::GpuPrecision;
use edd_hw::{
    eval_accel, eval_gpu, eval_pipelined, eval_recursive, tune_pipelined, tune_recursive, HwPoint,
};
use edd_nn::Batch;
use edd_runtime::telemetry::{self, Value};
use edd_tensor::optim::{Adam, Optimizer, Sgd};
use edd_tensor::{accuracy, Result, Tensor, TensorError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// Evaluates a derived architecture on its target's device model and
/// reduces the report to the sweep's two minimized objectives.
///
/// Precision handling per family: GPU networks are uniform-precision, so
/// the first block's bits select the [`GpuPrecision`]; FPGA tuners take one
/// uniform bit-width, for which the maximum derived block width is the
/// conservative choice; the dedicated accelerator is evaluated per-op with
/// 8-bit stem/head around the derived block widths.
///
/// # Errors
///
/// Returns an error when the derived bit-width has no device
/// implementation (e.g. a GPU arch outside {8, 16, 32}).
pub fn hw_point(target: &DeviceTarget, derived: &DerivedArch) -> Result<HwPoint> {
    let net = derived.to_network_shape();
    match target {
        DeviceTarget::Gpu(d) => {
            let bits = derived.blocks.first().map_or(32, |b| b.quant_bits);
            let precision = GpuPrecision::from_bits(bits).ok_or_else(|| {
                TensorError::InvalidArgument(format!("no GPU precision for {bits}-bit weights"))
            })?;
            Ok(HwPoint::from_gpu(&eval_gpu(&net, precision, d)))
        }
        DeviceTarget::FpgaRecursive(d) => {
            let q = derived
                .blocks
                .iter()
                .map(|b| b.quant_bits)
                .max()
                .unwrap_or(16);
            let report = eval_recursive(&net, &tune_recursive(&net, q, d), d)
                .map_err(|e| TensorError::InvalidArgument(format!("recursive eval: {e}")))?;
            Ok(HwPoint::from_recursive(&report))
        }
        DeviceTarget::FpgaPipelined(d) => {
            let q = derived
                .blocks
                .iter()
                .map(|b| b.quant_bits)
                .max()
                .unwrap_or(16);
            let report = eval_pipelined(&net, &tune_pipelined(&net, q, d), d)
                .map_err(|e| TensorError::InvalidArgument(format!("pipelined eval: {e}")))?;
            Ok(HwPoint::from_pipelined(&report))
        }
        DeviceTarget::Dedicated(d) => {
            let mut q_per_op = vec![8u32; net.ops.len()];
            for (i, b) in derived.blocks.iter().enumerate() {
                if i + 1 < q_per_op.len() {
                    q_per_op[i + 1] = b.quant_bits;
                }
            }
            Ok(HwPoint::from_accel(&eval_accel(&net, &q_per_op, d)))
        }
    }
}

/// Static span name per target family, so per-target phase timings carry
/// stable names in traces (span names must be `'static`).
fn target_span_name(target: &DeviceTarget) -> &'static str {
    match target {
        DeviceTarget::Gpu(_) => "sweep.target.gpu",
        DeviceTarget::FpgaRecursive(_) => "sweep.target.fpga_recursive",
        DeviceTarget::FpgaPipelined(_) => "sweep.target.fpga_pipelined",
        DeviceTarget::Dedicated(_) => "sweep.target.dedicated",
    }
}

/// Everything that is per-target in a sweep: the arch variables and their
/// RNG stream, the accumulated history / Pareto front / best-so-far, and
/// the scratch the parallel phase fills each epoch.
struct TargetState {
    target: DeviceTarget,
    key: &'static str,
    arch: ArchParams,
    tables: PerfTables,
    rng: StdRng,
    history: Vec<EpochRecord>,
    front: Vec<ParetoPoint>,
    best: Option<(usize, f32, DerivedArch)>,
    // Weight-phase accumulators for this target's round-robin share.
    train_loss_sum: f32,
    train_acc_sum: f32,
    train_seen: usize,
    // Filled by this epoch's parallel arch/val task.
    scratch_record: Option<EpochRecord>,
    scratch_point: Option<ParetoPoint>,
    scratch_arch_ms: f64,
}

/// Per-target slice of a finished sweep.
#[derive(Debug)]
pub struct SweepTargetOutcome {
    /// The device target.
    pub target: DeviceTarget,
    /// The single-target view: derived arch, history, best epoch.
    pub outcome: SearchOutcome,
    /// The target's Pareto front over all epochs.
    pub front: Vec<ParetoPoint>,
}

/// Result of a finished multi-target sweep.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-target results, in sweep target order.
    pub targets: Vec<SweepTargetOutcome>,
}

impl SweepOutcome {
    /// All targets' epoch histories flattened into one CSV (same columns
    /// as [`SearchOutcome::history_csv`]; the `target` column tells rows
    /// apart), interleaved by epoch then target order.
    #[must_use]
    pub fn history_csv(&self) -> String {
        let mut rows: Vec<EpochRecord> = self
            .targets
            .iter()
            .flat_map(|t| t.outcome.history.iter().cloned())
            .collect();
        rows.sort_by(|a, b| a.epoch.cmp(&b.epoch).then_with(|| a.target.cmp(&b.target)));
        history_to_csv(&rows)
    }

    /// The cross-target summary as EXPERIMENTS.md-ready JSON: per target,
    /// the best epoch and the Pareto front of
    /// `(val_acc, perf_ms, resource_dsps)` points with arch digests.
    #[must_use]
    pub fn summary_json(&self) -> String {
        let mut out = String::from("{\n  \"targets\": [\n");
        for (i, t) in self.targets.iter().enumerate() {
            let best = t.outcome.history.get(t.outcome.best_epoch);
            out.push_str(&format!(
                "    {{\n      \"target\": \"{}\",\n      \"epochs\": {},\n      \
                 \"best_epoch\": {},\n      \"best_val_acc\": {},\n      \"front\": [\n",
                t.target.key(),
                t.outcome.history.len(),
                t.outcome.best_epoch,
                best.map_or(0.0, |h| h.val_acc),
            ));
            for (j, p) in t.front.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"epoch\": {}, \"val_acc\": {}, \"perf_ms\": {}, \
                     \"resource_dsps\": {}, \"arch_digest\": \"{}\"}}{}\n",
                    p.epoch,
                    p.val_acc,
                    p.perf_ms,
                    p.resource,
                    fnv1a_hex(p.arch_json.as_bytes()),
                    if j + 1 == t.front.len() { "" } else { "," },
                ));
            }
            out.push_str(&format!(
                "      ]\n    }}{}\n",
                if i + 1 == self.targets.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// A configured multi-target sweep: one shared supernet and weight
/// optimizer, `T` per-target architecture states.
pub struct SweepSearch {
    space: SearchSpace,
    config: CoSearchConfig,
    supernet: SuperNet,
    targets: Vec<TargetState>,
    ckpt_dir: Option<PathBuf>,
    ckpt_every: usize,
    ckpt_keep: usize,
    pending_resume: Option<SweepSnapshot>,
}

impl std::fmt::Debug for SweepSearch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepSearch")
            .field("space", &self.space.name)
            .field(
                "targets",
                &self.targets.iter().map(|t| t.key).collect::<Vec<_>>(),
            )
            .field("epochs", &self.config.epochs)
            .finish()
    }
}

impl SweepSearch {
    /// Creates a sweep over `targets` sharing one supernet. The space's
    /// quantization menu must be supported by *every* target (use the
    /// intersection of the per-target menus); targets must be distinct
    /// families (their [`DeviceTarget::key`]s label records and snapshots).
    ///
    /// # Errors
    ///
    /// Returns an error on an empty or duplicate target list, or when any
    /// target rejects the space's quantization menu.
    pub fn new<R: Rng + ?Sized>(
        space: SearchSpace,
        targets: Vec<DeviceTarget>,
        config: CoSearchConfig,
        rng: &mut R,
    ) -> Result<Self> {
        if targets.is_empty() {
            return Err(TensorError::InvalidArgument(
                "sweep requires at least one target".into(),
            ));
        }
        for (i, t) in targets.iter().enumerate() {
            if targets[..i].iter().any(|u| u.key() == t.key()) {
                return Err(TensorError::InvalidArgument(format!(
                    "duplicate sweep target `{}`: per-target records and snapshots are keyed \
                     by target family",
                    t.key()
                )));
            }
        }
        let supernet = SuperNet::new(&space, rng);
        let mut states = Vec::with_capacity(targets.len());
        for target in targets {
            let tables = PerfTables::build(&space, &target)?;
            let arch = ArchParams::init(&space, &target, rng);
            // Independent per-target RNG stream, seeded from the shared
            // construction stream so the whole sweep is one seed.
            let stream = StdRng::seed_from_u64(rng.gen());
            states.push(TargetState {
                key: target.key(),
                target,
                arch,
                tables,
                rng: stream,
                history: Vec::new(),
                front: Vec::new(),
                best: None,
                train_loss_sum: 0.0,
                train_acc_sum: 0.0,
                train_seen: 0,
                scratch_record: None,
                scratch_point: None,
                scratch_arch_ms: 0.0,
            });
        }
        Ok(SweepSearch {
            space,
            config,
            supernet,
            targets: states,
            ckpt_dir: None,
            ckpt_every: 1,
            ckpt_keep: 3,
            pending_resume: None,
        })
    }

    /// Enables crash-safe checkpointing: after qualifying epochs one
    /// [`SweepSnapshot`] (shared weights + all per-target states) is
    /// written atomically into `dir` as `sweep-<epoch>.edds`.
    pub fn checkpoint_into(&mut self, dir: impl Into<PathBuf>) -> &mut Self {
        self.ckpt_dir = Some(dir.into());
        self
    }

    /// Checkpoint cadence in epochs (default 1; `0` = final epoch only).
    pub fn checkpoint_every(&mut self, n: usize) -> &mut Self {
        self.ckpt_every = n;
        self
    }

    /// Retention: keep only the newest `k` sweep snapshots (default 3,
    /// floor 1). Single-target `search-*` files in the same directory are
    /// never touched.
    pub fn checkpoint_keep(&mut self, k: usize) -> &mut Self {
        self.ckpt_keep = k.max(1);
        self
    }

    /// Schedules a resume from `path` — a sweep snapshot file, or a
    /// checkpoint directory (resolved to its newest `sweep-*.edds`). The
    /// snapshot is fingerprint-checked eagerly and applied when the next
    /// `run*` call starts.
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot is missing, corrupt, or was
    /// taken by a differently-configured sweep (different space, config,
    /// or target list).
    pub fn resume_from(&mut self, path: &Path) -> Result<&mut Self> {
        let file = resolve_sweep_resume_path(path)?;
        let snap = SweepSnapshot::load(&file)?;
        let want = self.fingerprint();
        if snap.fingerprint != want {
            return Err(TensorError::InvalidArgument(format!(
                "snapshot {} was taken by a different sweep configuration\n  \
                 snapshot: {}\n  current:  {want}",
                file.display(),
                snap.fingerprint
            )));
        }
        self.pending_resume = Some(snap);
        Ok(self)
    }

    /// The sweep-level configuration fingerprint.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let parts: Vec<String> = self
            .targets
            .iter()
            .map(|t| fingerprint(&self.space, &t.target, &self.config))
            .collect();
        sweep_fingerprint(&parts)
    }

    /// The targets being swept, in order.
    #[must_use]
    pub fn target_keys(&self) -> Vec<&'static str> {
        self.targets.iter().map(|t| t.key).collect()
    }

    /// Temperature at `epoch` (same geometric schedule as the
    /// single-target loop).
    #[must_use]
    pub fn tau_at(&self, epoch: usize) -> f32 {
        let e = self.config.epochs.max(2) - 1;
        let t = (epoch.min(e)) as f32 / e as f32;
        self.config.tau_start * (self.config.tau_end / self.config.tau_start).powf(t)
    }

    /// Captures the complete sweep state after `epoch` completed.
    fn capture_snapshot(
        &self,
        epoch: usize,
        w_opt: &Sgd,
        a_opts: &[Adam],
        rng_state: [u64; 4],
    ) -> Result<SweepSnapshot> {
        let mut targets = Vec::with_capacity(self.targets.len());
        for (state, a_opt) in self.targets.iter().zip(a_opts) {
            let best = match &state.best {
                Some((e, acc, d)) => {
                    let json = d.to_json().map_err(|err| {
                        TensorError::InvalidArgument(format!("serialize best architecture: {err}"))
                    })?;
                    Some((*e, *acc, json))
                }
                None => None,
            };
            targets.push(SweepTargetSnapshot {
                key: state.key.to_owned(),
                rng: state.rng.state(),
                arch: state.arch.checkpoint(),
                adam: a_opt.export_state(),
                history: state.history.clone(),
                front: state.front.clone(),
                best,
            });
        }
        Ok(SweepSnapshot {
            fingerprint: self.fingerprint(),
            epoch,
            rng: rng_state,
            weights: self
                .supernet
                .weight_params()
                .iter()
                .map(Tensor::value_clone)
                .collect(),
            bn_stats: self
                .supernet
                .batch_norms()
                .iter()
                .map(|bn| (bn.running_mean(), bn.running_var()))
                .collect(),
            sgd_velocity: w_opt.export_state(),
            targets,
        })
    }

    /// Applies a loaded snapshot to the shared and per-target states.
    fn apply_snapshot<R: SearchRng + ?Sized>(
        &mut self,
        snap: &SweepSnapshot,
        w_opt: &mut Sgd,
        a_opts: &mut [Adam],
        rng: &mut R,
    ) -> Result<()> {
        let params = self.supernet.weight_params();
        if params.len() != snap.weights.len() {
            return Err(TensorError::InvalidArgument(format!(
                "snapshot has {} weight tensors, supernet has {}",
                snap.weights.len(),
                params.len()
            )));
        }
        for (p, w) in params.iter().zip(&snap.weights) {
            p.set_value(w.clone());
        }
        let bns = self.supernet.batch_norms();
        if bns.len() != snap.bn_stats.len() {
            return Err(TensorError::InvalidArgument(format!(
                "snapshot has {} batch-norm layers, supernet has {}",
                snap.bn_stats.len(),
                bns.len()
            )));
        }
        for (bn, (mean, var)) in bns.iter().zip(&snap.bn_stats) {
            bn.set_running_stats(mean.clone(), var.clone())?;
        }
        w_opt.import_state(snap.sgd_velocity.clone())?;
        rng.restore_state_words(snap.rng);
        if snap.targets.len() != self.targets.len() {
            return Err(TensorError::InvalidArgument(format!(
                "snapshot has {} targets, sweep has {}",
                snap.targets.len(),
                self.targets.len()
            )));
        }
        for ((state, a_opt), ts) in self.targets.iter_mut().zip(a_opts).zip(&snap.targets) {
            if ts.key != state.key {
                return Err(TensorError::InvalidArgument(format!(
                    "snapshot target `{}` does not match sweep target `{}`",
                    ts.key, state.key
                )));
            }
            state.arch.restore(&ts.arch)?;
            a_opt.import_state(ts.adam.clone())?;
            state.rng.set_state(ts.rng);
            state.history = ts.history.clone();
            state.front = ts.front.clone();
            state.best = match &ts.best {
                Some((e, acc, json)) => {
                    let derived = DerivedArch::from_json(json).map_err(|err| {
                        TensorError::InvalidArgument(format!(
                            "snapshot best architecture is unparseable: {err}"
                        ))
                    })?;
                    Some((*e, *acc, derived))
                }
                None => None,
            };
        }
        Ok(())
    }

    fn write_checkpoint(&self, dir: &Path, snap: &SweepSnapshot) -> Result<()> {
        std::fs::create_dir_all(dir).map_err(|e| {
            TensorError::InvalidArgument(format!("create checkpoint dir {}: {e}", dir.display()))
        })?;
        snap.save(&dir.join(SweepSnapshot::file_name(snap.epoch)))?;
        crate::checkpoint::prune_sweep_snapshots(dir, self.ckpt_keep)
            .map_err(|e| TensorError::InvalidArgument(format!("prune checkpoints: {e}")))?;
        Ok(())
    }

    /// Runs the full sweep over the given train/validation splits.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the supernet or the performance model,
    /// hardware-evaluation errors, and checkpoint I/O errors.
    pub fn run<R: SearchRng + ?Sized>(
        &mut self,
        train: &[Batch],
        val: &[Batch],
        rng: &mut R,
    ) -> Result<SweepOutcome> {
        self.run_range(train, val, rng, self.config.epochs)
    }

    /// Runs the sweep but stops after `stop_after` epochs (clamped to the
    /// configured total); with checkpointing enabled the last executed
    /// epoch is always snapshotted, modeling a crash boundary exactly.
    ///
    /// # Errors
    ///
    /// Same as [`SweepSearch::run`].
    pub fn run_until<R: SearchRng + ?Sized>(
        &mut self,
        train: &[Batch],
        val: &[Batch],
        rng: &mut R,
        stop_after: usize,
    ) -> Result<SweepOutcome> {
        self.run_range(train, val, rng, stop_after.min(self.config.epochs))
    }

    #[allow(clippy::too_many_lines)]
    fn run_range<R: SearchRng + ?Sized>(
        &mut self,
        train: &[Batch],
        val: &[Batch],
        rng: &mut R,
        end: usize,
    ) -> Result<SweepOutcome> {
        let num_targets = self.targets.len();
        let mut w_opt = Sgd::new(
            self.supernet.weight_params(),
            self.config.weight_lr,
            self.config.weight_momentum,
            1e-4,
        );
        let mut a_opts: Vec<Adam> = self
            .targets
            .iter()
            .map(|t| Adam::new(t.arch.all_params(), self.config.arch_lr))
            .collect();
        let train_inputs: Vec<Tensor> = train
            .iter()
            .map(|b| Tensor::constant(b.images.clone()))
            .collect();
        let val_inputs: Vec<Tensor> = val
            .iter()
            .map(|b| Tensor::constant(b.images.clone()))
            .collect();
        let mut start = 0usize;
        if let Some(snap) = self.pending_resume.take() {
            self.apply_snapshot(&snap, &mut w_opt, &mut a_opts, rng)?;
            start = snap.epoch + 1;
        }
        for epoch in start..end {
            let tau = self.tau_at(epoch);

            // ---- Shared weight phase (driver thread, shared RNG). Each
            // batch's path is sampled from one target's arch distribution,
            // round-robin, so every target steers the shared weights.
            self.supernet.set_training(true);
            for state in &mut self.targets {
                state.train_loss_sum = 0.0;
                state.train_acc_sum = 0.0;
                state.train_seen = 0;
            }
            let weight_span = telemetry::span("sweep.weight_phase");
            let weight_start = Instant::now();
            for (i, (batch, x)) in train.iter().zip(&train_inputs).enumerate() {
                let state = &mut self.targets[(epoch + i) % num_targets];
                w_opt.zero_grad();
                let (logits, _) = self.supernet.forward_sampled(x, &state.arch, tau, rng)?;
                let loss = logits.cross_entropy(&batch.labels)?;
                loss.backward();
                if let Some(max_norm) = self.config.clip_grad_norm {
                    edd_tensor::optim::clip_grad_norm(w_opt.params(), max_norm);
                }
                w_opt.step();
                edd_tensor::scratch::reset();
                let b = batch.labels.len();
                state.train_loss_sum += loss.item() * b as f32;
                state.train_acc_sum += accuracy(&logits.value(), &batch.labels) * b as f32;
                state.train_seen += b;
            }
            let weight_ms = weight_start.elapsed().as_secs_f64() * 1e3;
            drop(weight_span);
            telemetry::counter("sweep.weight_steps", train.len() as u64);

            // ---- Parallel per-target arch + val + derive phase. The
            // supernet is frozen: batch-norm running statistics do not
            // drift during arch steps (deviation from the single-target
            // loop, documented above), so tasks share no mutable state
            // except lock-protected, discarded weight gradients.
            self.supernet.set_training(false);
            let do_arch = epoch >= self.config.warmup_epochs;
            {
                let supernet = &self.supernet;
                let space = &self.space;
                let config = &self.config;
                let slots: Vec<Mutex<(&mut TargetState, &mut Adam)>> = self
                    .targets
                    .iter_mut()
                    .zip(a_opts.iter_mut())
                    .map(Mutex::new)
                    .collect();
                let errors: Vec<Mutex<Option<TensorError>>> =
                    (0..num_targets).map(|_| Mutex::new(None)).collect();
                edd_tensor::kernel::pool::run(num_targets, &|t| {
                    let mut slot = slots[t].lock().expect("sweep slot poisoned");
                    let (state, a_opt) = &mut *slot;
                    let span = telemetry::span(target_span_name(&state.target));
                    let arch_start = Instant::now();
                    let result = run_target_epoch(
                        supernet,
                        space,
                        config,
                        state,
                        a_opt,
                        val,
                        &val_inputs,
                        train,
                        &train_inputs,
                        epoch,
                        tau,
                        do_arch,
                    );
                    state.scratch_arch_ms = arch_start.elapsed().as_secs_f64() * 1e3;
                    drop(span);
                    edd_tensor::scratch::reset();
                    if let Err(e) = result {
                        *errors[t].lock().expect("sweep error slot poisoned") = Some(e);
                    }
                });
                for e in &errors {
                    if let Some(err) = e.lock().expect("sweep error slot poisoned").take() {
                        return Err(err);
                    }
                }
            }
            telemetry::counter("sweep.epochs", 1);
            if do_arch {
                let arch_batches = if self.config.bilevel {
                    val.len()
                } else {
                    train.len()
                };
                telemetry::counter("sweep.arch_steps", (arch_batches * num_targets) as u64);
            }

            // ---- Merge scratch results (driver thread, target order, so
            // telemetry and history are deterministic).
            if telemetry::enabled() {
                telemetry::event(
                    "sweep.epoch",
                    &[
                        ("epoch", Value::U64(epoch as u64)),
                        ("tau", Value::F32(tau)),
                        ("weight_ms", Value::F64(weight_ms)),
                        ("targets", Value::U64(num_targets as u64)),
                    ],
                );
            }
            for state in &mut self.targets {
                let record = state
                    .scratch_record
                    .take()
                    .expect("target epoch not recorded");
                let point = state.scratch_point.take().expect("target epoch not scored");
                if telemetry::enabled() {
                    telemetry::event(EPOCH_EVENT, &epoch_fields(&record));
                    telemetry::event(
                        "sweep.target",
                        &[
                            ("target", Value::Str(state.key.to_owned())),
                            ("epoch", Value::U64(epoch as u64)),
                            ("val_acc", Value::F32(record.val_acc)),
                            ("perf_ms", Value::F64(point.perf_ms)),
                            ("resource", Value::F64(point.resource)),
                            ("arch_ms", Value::F64(state.scratch_arch_ms)),
                        ],
                    );
                }
                if state
                    .best
                    .as_ref()
                    .is_none_or(|(_, acc, _)| record.val_acc > *acc)
                {
                    let derived = DerivedArch::from_params(&self.space, &state.target, &state.arch);
                    state.best = Some((epoch, record.val_acc, derived));
                }
                state.front = pareto::merge(&state.front, std::slice::from_ref(&point));
                state.history.push(record);
            }

            if let Some(dir) = self.ckpt_dir.clone() {
                let periodic = self.ckpt_every > 0 && (epoch + 1).is_multiple_of(self.ckpt_every);
                if periodic || epoch + 1 == end {
                    let snap = self.capture_snapshot(epoch, &w_opt, &a_opts, rng.state_words())?;
                    self.write_checkpoint(&dir, &snap)?;
                }
            }
        }

        let mut outcomes = Vec::with_capacity(num_targets);
        for state in &self.targets {
            let derived = DerivedArch::from_params(&self.space, &state.target, &state.arch);
            let (best_epoch, _, best_derived) =
                state
                    .best
                    .clone()
                    .unwrap_or((end.saturating_sub(1), 0.0, derived.clone()));
            outcomes.push(SweepTargetOutcome {
                target: state.target.clone(),
                outcome: SearchOutcome {
                    derived,
                    history: state.history.clone(),
                    best_derived,
                    best_epoch,
                },
                front: state.front.clone(),
            });
        }
        Ok(SweepOutcome { targets: outcomes })
    }
}

/// One target's share of an epoch, run as a pool task: arch steps (when
/// past warmup), argmax validation, derivation, and hardware scoring.
/// Touches only `state`/`a_opt` plus the frozen supernet; fills
/// `state.scratch_record` / `state.scratch_point`.
#[allow(clippy::too_many_arguments)]
fn run_target_epoch(
    supernet: &SuperNet,
    space: &SearchSpace,
    config: &CoSearchConfig,
    state: &mut TargetState,
    a_opt: &mut Adam,
    val: &[Batch],
    val_inputs: &[Tensor],
    train: &[Batch],
    train_inputs: &[Tensor],
    epoch: usize,
    tau: f32,
    do_arch: bool,
) -> Result<()> {
    let mut expected_perf = 0.0;
    let mut expected_res = 0.0;
    if do_arch {
        let (arch_batches, arch_inputs) = if config.bilevel {
            (val, val_inputs)
        } else {
            (train, train_inputs)
        };
        let mut arch_steps = 0usize;
        for (batch, x) in arch_batches.iter().zip(arch_inputs) {
            // Clears stale gradients on this target's arch leaves; the
            // shared weight leaves are NOT zeroed here (that would race
            // with sibling tasks) — the weight phase zeroes them before
            // every read.
            a_opt.zero_grad();
            let (logits, _) = supernet.forward_sampled(x, &state.arch, tau, &mut state.rng)?;
            let acc_loss = logits.cross_entropy(&batch.labels)?;
            let est = estimate(
                &state.arch,
                &state.tables,
                space,
                &state.target,
                tau,
                &mut state.rng,
            )?;
            let total = edd_loss(
                &acc_loss,
                &est.perf,
                &est.res,
                state.target.resource_bound(),
                &config.loss,
            )?;
            total.backward();
            a_opt.step();
            edd_tensor::scratch::reset();
            expected_perf += est.perf.item();
            expected_res += est.res.item();
            arch_steps += 1;
        }
        if arch_steps > 0 {
            expected_perf /= arch_steps as f32;
            expected_res /= arch_steps as f32;
        }
    }

    // Argmax validation (supernet already in eval mode).
    let mut val_acc = 0.0;
    let mut val_seen = 0usize;
    for (batch, x) in val.iter().zip(val_inputs) {
        let logits = supernet.forward_argmax(x, &state.arch)?;
        val_acc += accuracy(&logits.value(), &batch.labels) * batch.labels.len() as f32;
        val_seen += batch.labels.len();
    }
    let epoch_val_acc = val_acc / val_seen.max(1) as f32;

    let derived = DerivedArch::from_params(space, &state.target, &state.arch);
    let arch_json = derived.to_json().map_err(|err| {
        TensorError::InvalidArgument(format!("serialize derived architecture: {err}"))
    })?;
    let point = hw_point(&state.target, &derived)?;
    state.scratch_point = Some(ParetoPoint {
        target: state.key.to_owned(),
        epoch,
        val_acc: epoch_val_acc,
        perf_ms: point.perf_ms,
        resource: point.resource_dsps,
        arch_json,
    });
    state.scratch_record = Some(EpochRecord {
        target: state.key.to_owned(),
        epoch,
        train_loss: state.train_loss_sum / state.train_seen.max(1) as f32,
        train_acc: state.train_acc_sum / state.train_seen.max(1) as f32,
        val_acc: epoch_val_acc,
        expected_perf,
        expected_res,
        tau,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use edd_data::{SynthConfig, SynthDataset};
    use edd_hw::{FpgaDevice, GpuDevice};

    fn sweep_targets() -> Vec<DeviceTarget> {
        vec![
            DeviceTarget::Gpu(GpuDevice::titan_rtx()),
            DeviceTarget::FpgaRecursive(FpgaDevice::zcu102()),
            DeviceTarget::FpgaPipelined(FpgaDevice::zc706()),
        ]
    }

    fn tiny_sweep() -> (SweepSearch, Vec<Batch>, Vec<Batch>, StdRng) {
        let mut rng = StdRng::seed_from_u64(7);
        // Quant menu = intersection of the GPU ({8,16,32}) and FPGA
        // ({4,8,16}) menus.
        let space = SearchSpace::tiny(3, 16, 4, vec![8, 16]);
        let config = CoSearchConfig {
            epochs: 3,
            warmup_epochs: 1,
            ..CoSearchConfig::default()
        };
        let sweep = SweepSearch::new(space, sweep_targets(), config, &mut rng).unwrap();
        let data = SynthDataset::new(SynthConfig::tiny());
        let train = data.split(3, 8, 1);
        let val = data.split(2, 8, 2);
        (sweep, train, val, rng)
    }

    #[test]
    fn rejects_empty_and_duplicate_targets() {
        let mut rng = StdRng::seed_from_u64(1);
        let space = SearchSpace::tiny(2, 16, 4, vec![8, 16]);
        assert!(
            SweepSearch::new(space.clone(), vec![], CoSearchConfig::default(), &mut rng).is_err()
        );
        let dup = vec![
            DeviceTarget::Gpu(GpuDevice::titan_rtx()),
            DeviceTarget::Gpu(GpuDevice::p100()),
        ];
        let err = SweepSearch::new(space, dup, CoSearchConfig::default(), &mut rng).unwrap_err();
        assert!(err.to_string().contains("duplicate sweep target"), "{err}");
    }

    #[test]
    fn rejects_menu_unsupported_by_any_target() {
        // 4-bit is fine on FPGA but not on GPU: the shared space must be
        // rejected because the GPU target cannot represent it.
        let mut rng = StdRng::seed_from_u64(1);
        let space = SearchSpace::tiny(2, 16, 4, vec![4, 8, 16]);
        assert!(
            SweepSearch::new(space, sweep_targets(), CoSearchConfig::default(), &mut rng).is_err()
        );
    }

    #[test]
    fn sweep_produces_per_target_results() {
        let (mut sweep, train, val, mut rng) = tiny_sweep();
        let out = sweep.run(&train, &val, &mut rng).unwrap();
        assert_eq!(out.targets.len(), 3);
        for t in &out.targets {
            assert_eq!(t.outcome.history.len(), 3);
            assert_eq!(t.outcome.derived.blocks.len(), 3);
            assert!(!t.front.is_empty(), "every target accumulates a front");
            for p in &t.front {
                assert_eq!(p.target, t.target.key());
                assert!(p.perf_ms > 0.0);
            }
            // Warmup epoch: no arch steps yet.
            assert_eq!(t.outcome.history[0].expected_perf, 0.0);
            assert!(t.outcome.history[2].expected_perf > 0.0);
            for h in &t.outcome.history {
                assert_eq!(h.target, t.target.key());
                assert!(h.train_loss.is_finite());
            }
        }
        // Throughput target's resource axis is DSPs; GPU's is 0.
        assert_eq!(out.targets[0].front[0].resource, 0.0);
        assert!(out.targets[1].front[0].resource > 0.0);
    }

    #[test]
    fn history_csv_interleaves_targets() {
        let (mut sweep, train, val, mut rng) = tiny_sweep();
        let out = sweep.run(&train, &val, &mut rng).unwrap();
        let csv = out.history_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 1 + 3 * 3);
        assert!(lines[0].ends_with(",target"));
        // Epoch 0 rows come first, in target-key order.
        assert!(lines[1].ends_with(",fpga-pipelined"));
        assert!(lines[2].ends_with(",fpga-recursive"));
        assert!(lines[3].ends_with(",gpu"));
    }

    #[test]
    fn summary_json_lists_all_targets() {
        let (mut sweep, train, val, mut rng) = tiny_sweep();
        let out = sweep.run(&train, &val, &mut rng).unwrap();
        let json = out.summary_json();
        for key in ["gpu", "fpga-recursive", "fpga-pipelined"] {
            assert!(json.contains(&format!("\"target\": \"{key}\"")), "{json}");
        }
        assert!(json.contains("\"perf_ms\""));
        assert!(json.contains("\"arch_digest\""));
    }

    #[test]
    fn resume_matches_uninterrupted_sweep() {
        let dir = std::env::temp_dir().join(format!("edd-sweep-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let (mut full, train, val, mut rng) = tiny_sweep();
        let full_out = full.run(&train, &val, &mut rng).unwrap();

        let (mut part, train2, val2, mut rng2) = tiny_sweep();
        part.checkpoint_into(&dir).checkpoint_keep(1);
        part.run_until(&train2, &val2, &mut rng2, 2).unwrap();

        let (mut resumed, train3, val3, _) = tiny_sweep();
        let mut other_rng = StdRng::seed_from_u64(999);
        resumed.checkpoint_into(&dir);
        resumed.resume_from(&dir).unwrap();
        let res_out = resumed.run(&train3, &val3, &mut other_rng).unwrap();

        assert_eq!(full_out.targets.len(), res_out.targets.len());
        for (a, b) in full_out.targets.iter().zip(&res_out.targets) {
            assert_eq!(a.outcome.history, b.outcome.history);
            assert_eq!(
                a.outcome.derived.to_json().unwrap(),
                b.outcome.derived.to_json().unwrap()
            );
            assert_eq!(a.front, b.front);
        }
        assert_eq!(full_out.summary_json(), res_out.summary_json());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_different_target_list() {
        let dir = std::env::temp_dir().join(format!("edd-sweep-fp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut a, train, val, mut rng) = tiny_sweep();
        a.checkpoint_into(&dir);
        a.run_until(&train, &val, &mut rng, 1).unwrap();

        let mut rng2 = StdRng::seed_from_u64(7);
        let space = SearchSpace::tiny(3, 16, 4, vec![8, 16]);
        let config = CoSearchConfig {
            epochs: 3,
            warmup_epochs: 1,
            ..CoSearchConfig::default()
        };
        let two = vec![
            DeviceTarget::Gpu(GpuDevice::titan_rtx()),
            DeviceTarget::FpgaRecursive(FpgaDevice::zcu102()),
        ];
        let mut b = SweepSearch::new(space, two, config, &mut rng2).unwrap();
        let err = b.resume_from(&dir).unwrap_err();
        assert!(
            err.to_string().contains("different sweep configuration"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn telemetry_emits_sweep_events() {
        use edd_runtime::telemetry::JsonlSink;
        use std::sync::Arc;

        let path =
            std::env::temp_dir().join(format!("edd-sweep-trace-{}.jsonl", std::process::id()));
        let sink = Arc::new(JsonlSink::create(&path).unwrap());
        telemetry::set_global(sink);
        let (mut sweep, train, val, mut rng) = tiny_sweep();
        let out = sweep.run(&train, &val, &mut rng);
        telemetry::global().flush();
        telemetry::clear_global();
        out.unwrap();

        let trace = std::fs::read_to_string(&path).unwrap();
        assert!(trace.contains("\"name\":\"sweep.epoch\""), "{trace}");
        assert!(trace.contains("\"name\":\"sweep.target\""), "{trace}");
        assert!(trace.contains("\"weight_ms\""), "{trace}");
        assert!(trace.contains("\"arch_ms\""), "{trace}");
        assert!(trace.contains("sweep.weight_steps"), "{trace}");
        assert!(trace.contains("\"target\":\"fpga-pipelined\""), "{trace}");
        // Per-target epoch records share the single-target event name.
        assert!(trace.contains("\"name\":\"search.epoch\""), "{trace}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hw_point_covers_every_family() {
        let mut rng = StdRng::seed_from_u64(3);
        let space = SearchSpace::tiny(2, 16, 4, vec![8, 16]);
        for target in [
            DeviceTarget::Gpu(GpuDevice::titan_rtx()),
            DeviceTarget::FpgaRecursive(FpgaDevice::zcu102()),
            DeviceTarget::FpgaPipelined(FpgaDevice::zc706()),
            DeviceTarget::Dedicated(edd_hw::AccelDevice::loom_like()),
        ] {
            let arch = ArchParams::init(&space, &target, &mut rng);
            let derived = DerivedArch::from_params(&space, &target, &arch);
            let p = hw_point(&target, &derived).unwrap();
            assert!(p.perf_ms > 0.0, "{target:?}");
        }
    }
}
