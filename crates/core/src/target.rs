//! Device targets for the co-search: GPU (latency), recursive FPGA
//! (latency, resource sharing) and pipelined FPGA (throughput), per paper
//! §4 and §6.

use edd_hw::{AccelDevice, FpgaDevice, GpuDevice};
use serde::{Deserialize, Serialize};

/// Which whole-network performance objective Stage-4 aggregates to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PerfObjective {
    /// End-to-end latency: sum of block terms (Eq. 6).
    Latency,
    /// Throughput: smooth max (Log-Sum-Exp) of block terms (Eq. 7).
    Throughput,
}

/// The hardware target of a search — determines the Stage-1 model, the
/// Stage-4 aggregation, the structure of `Φ`/`pf`, and the resource bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DeviceTarget {
    /// General-purpose GPU: latency objective, uniform network precision
    /// (`φ_{i,m,q} = φ_q`, §4.2), fixed resources.
    Gpu(GpuDevice),
    /// Recursive FPGA accelerator: latency objective, IP sharing across
    /// blocks (`Iᵢᵐ = Iⱼᵐ`), shared `Φ`/`pf` per op class (§4.1).
    FpgaRecursive(FpgaDevice),
    /// Pipelined FPGA accelerator: throughput objective, per-stage
    /// implementation variables, no sharing (§4.1).
    FpgaPipelined(FpgaDevice),
    /// Dedicated bit-flexible accelerator (Stripes/Loom/Bit-Fusion class,
    /// §4.3): latency objective, per-op mixed precision, fixed silicon
    /// (no parallel factors, no resource bound). The paper sketches this
    /// target as future work; implemented here.
    Dedicated(AccelDevice),
}

impl DeviceTarget {
    /// The Stage-4 performance objective for this target.
    #[must_use]
    pub fn objective(&self) -> PerfObjective {
        match self {
            DeviceTarget::Gpu(_) | DeviceTarget::FpgaRecursive(_) | DeviceTarget::Dedicated(_) => {
                PerfObjective::Latency
            }
            DeviceTarget::FpgaPipelined(_) => PerfObjective::Throughput,
        }
    }

    /// Whether op implementations (and hence resources) are shared across
    /// blocks.
    #[must_use]
    pub fn shares_resource(&self) -> bool {
        matches!(self, DeviceTarget::FpgaRecursive(_))
    }

    /// Whether the whole network is constrained to a single precision
    /// (GPU frameworks lack mixed-precision support, §4.2).
    #[must_use]
    pub fn uniform_precision(&self) -> bool {
        matches!(self, DeviceTarget::Gpu(_))
    }

    /// Whether parallel factors are part of the implementation space.
    #[must_use]
    pub fn has_parallel_factors(&self) -> bool {
        !matches!(self, DeviceTarget::Gpu(_) | DeviceTarget::Dedicated(_))
    }

    /// The default quantization menu of the target: the paper searches
    /// 8/16/32-bit weights on GPU and 4/8/16-bit weights on FPGA (§6).
    #[must_use]
    pub fn default_quant_bits(&self) -> Vec<u32> {
        match self {
            DeviceTarget::Gpu(_) => vec![8, 16, 32],
            DeviceTarget::FpgaRecursive(_) | DeviceTarget::FpgaPipelined(_) => vec![4, 8, 16],
            DeviceTarget::Dedicated(_) => vec![2, 4, 8, 16],
        }
    }

    /// The resource upper bound `RES_ub` (DSP slices for FPGAs; GPUs have
    /// fixed resources, modeled as unbounded).
    #[must_use]
    pub fn resource_bound(&self) -> f64 {
        match self {
            DeviceTarget::Gpu(_) | DeviceTarget::Dedicated(_) => f64::INFINITY,
            DeviceTarget::FpgaRecursive(d) | DeviceTarget::FpgaPipelined(d) => d.dsp_budget,
        }
    }

    /// Stable machine-readable key — the CLI spelling of the target family
    /// (`gpu`, `fpga-recursive`, `fpga-pipelined`, `dedicated`). Used as
    /// the `target` column of epoch records, as the per-target label inside
    /// a sweep, and as the checkpoint-filename label, so it must stay free
    /// of characters that are unsafe in file names or CSV cells.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            DeviceTarget::Gpu(_) => "gpu",
            DeviceTarget::FpgaRecursive(_) => "fpga-recursive",
            DeviceTarget::FpgaPipelined(_) => "fpga-pipelined",
            DeviceTarget::Dedicated(_) => "dedicated",
        }
    }

    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            DeviceTarget::Gpu(d) => format!("GPU({})", d.name),
            DeviceTarget::FpgaRecursive(d) => format!("FPGA-recursive({})", d.name),
            DeviceTarget::FpgaPipelined(d) => format!("FPGA-pipelined({})", d.name),
            DeviceTarget::Dedicated(d) => format!("Dedicated({})", d.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objectives_per_target() {
        let gpu = DeviceTarget::Gpu(GpuDevice::titan_rtx());
        let rec = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
        let pipe = DeviceTarget::FpgaPipelined(FpgaDevice::zc706());
        assert_eq!(gpu.objective(), PerfObjective::Latency);
        assert_eq!(rec.objective(), PerfObjective::Latency);
        assert_eq!(pipe.objective(), PerfObjective::Throughput);
    }

    #[test]
    fn sharing_and_precision_flags() {
        let gpu = DeviceTarget::Gpu(GpuDevice::titan_rtx());
        let rec = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
        let pipe = DeviceTarget::FpgaPipelined(FpgaDevice::zc706());
        assert!(rec.shares_resource() && !pipe.shares_resource() && !gpu.shares_resource());
        assert!(gpu.uniform_precision() && !rec.uniform_precision());
        assert!(!gpu.has_parallel_factors() && rec.has_parallel_factors());
    }

    #[test]
    fn quant_menus_match_paper() {
        assert_eq!(
            DeviceTarget::Gpu(GpuDevice::titan_rtx()).default_quant_bits(),
            vec![8, 16, 32]
        );
        assert_eq!(
            DeviceTarget::FpgaPipelined(FpgaDevice::zc706()).default_quant_bits(),
            vec![4, 8, 16]
        );
    }

    #[test]
    fn resource_bounds() {
        assert_eq!(
            DeviceTarget::FpgaRecursive(FpgaDevice::zcu102()).resource_bound(),
            2520.0
        );
        assert!(DeviceTarget::Gpu(GpuDevice::titan_rtx())
            .resource_bound()
            .is_infinite());
    }

    #[test]
    fn keys_are_cli_spellings() {
        assert_eq!(DeviceTarget::Gpu(GpuDevice::titan_rtx()).key(), "gpu");
        assert_eq!(
            DeviceTarget::FpgaRecursive(FpgaDevice::zcu102()).key(),
            "fpga-recursive"
        );
        assert_eq!(
            DeviceTarget::FpgaPipelined(FpgaDevice::zc706()).key(),
            "fpga-pipelined"
        );
        assert_eq!(
            DeviceTarget::Dedicated(AccelDevice::loom_like()).key(),
            "dedicated"
        );
    }

    #[test]
    fn labels_mention_device() {
        assert!(DeviceTarget::FpgaPipelined(FpgaDevice::zc706())
            .label()
            .contains("ZC706"));
    }

    #[test]
    fn dedicated_target_properties() {
        let ded = DeviceTarget::Dedicated(AccelDevice::loom_like());
        assert_eq!(ded.objective(), PerfObjective::Latency);
        assert!(!ded.shares_resource());
        // Mixed precision is the whole point of bit-flexible ASICs.
        assert!(!ded.uniform_precision());
        assert!(!ded.has_parallel_factors());
        assert_eq!(ded.default_quant_bits(), vec![2, 4, 8, 16]);
        assert!(ded.resource_bound().is_infinite());
        assert!(ded.label().contains("Loom"));
    }
}
