//! End-to-end crash/resume determinism: a seeded co-search killed at epoch
//! `k` and resumed from its snapshot must finish with a byte-identical
//! derived architecture and metric history — and the guarantee must hold at
//! any logical thread count, because the kernel layer is bitwise
//! thread-count invariant.

use edd_core::{CoSearch, CoSearchConfig, DeviceTarget, SearchSpace};
use edd_data::{SynthConfig, SynthDataset};
use edd_hw::FpgaDevice;
use edd_nn::Batch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

const EPOCHS: usize = 4;
const KILL_AFTER: usize = 2;

fn make_search() -> (CoSearch, Vec<Batch>, Vec<Batch>, StdRng) {
    let mut rng = StdRng::seed_from_u64(21);
    let space = SearchSpace::tiny(3, 16, 4, vec![4, 8, 16]);
    let target = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
    let config = CoSearchConfig {
        epochs: EPOCHS,
        warmup_epochs: 1,
        ..CoSearchConfig::default()
    };
    let search = CoSearch::new(space, target, config, &mut rng).unwrap();
    let data = SynthDataset::new(SynthConfig::tiny());
    let train = data.split(3, 8, 1);
    let val = data.split(2, 8, 2);
    (search, train, val, rng)
}

fn ckpt_dir(threads: usize) -> PathBuf {
    std::env::temp_dir().join(format!("edd-resume-e2e-{}-t{threads}", std::process::id()))
}

#[test]
fn killed_search_resumes_bit_identically_across_thread_counts() {
    let mut reference_json: Option<String> = None;
    for &threads in &[1usize, 7] {
        edd_tensor::kernel::set_num_threads(threads);

        // Reference: the uninterrupted run.
        let (mut full, train, val, mut rng) = make_search();
        let full_out = full.run(&train, &val, &mut rng).unwrap();
        let full_json = full_out.derived.to_json().unwrap();

        // "Crash": checkpoint every epoch, stop after KILL_AFTER of EPOCHS.
        let dir = ckpt_dir(threads);
        let _ = std::fs::remove_dir_all(&dir);
        let (mut part, train2, val2, mut rng2) = make_search();
        part.checkpoint_into(&dir);
        part.run_until(&train2, &val2, &mut rng2, KILL_AFTER)
            .unwrap();

        // Recovery: a freshly-constructed search resumes from the newest
        // snapshot in the directory; its own RNG seed is irrelevant because
        // the snapshot restores the interrupted stream.
        let (mut resumed, train3, val3, _) = make_search();
        let mut unrelated_rng = StdRng::seed_from_u64(0xDEAD);
        resumed.resume_from(&dir).unwrap();
        let res_out = resumed.run(&train3, &val3, &mut unrelated_rng).unwrap();

        assert_eq!(
            full_json,
            res_out.derived.to_json().unwrap(),
            "derived architecture diverged after resume (threads={threads})"
        );
        assert_eq!(
            full_out.history, res_out.history,
            "metric history diverged after resume (threads={threads})"
        );
        assert_eq!(
            full_out.best_epoch, res_out.best_epoch,
            "best-epoch bookkeeping diverged after resume (threads={threads})"
        );

        // And the whole experiment is thread-count invariant.
        match &reference_json {
            None => reference_json = Some(full_json),
            Some(r) => assert_eq!(
                r, &full_json,
                "derived architecture depends on thread count"
            ),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
