//! Supernet-level bitwise determinism across pool sizes: a full
//! forward + backward through the sampled path and through the all-branch
//! mixture (whose `M` candidate branches fan out over the worker pool)
//! must produce identical bits for any logical thread count, and across
//! repeated runs on the same pool.
//!
//! Single `#[test]` because it mutates the global thread-count override.

use edd_core::{ArchParams, DeviceTarget, SearchSpace, SuperNet};
use edd_hw::FpgaDevice;
use edd_tensor::kernel::set_num_threads;
use edd_tensor::{Array, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One sampled step and one mixture step; returns forward bits plus the
/// gradient bits of every architecture parameter and the stem weight.
fn run_steps() -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(1234);
    let space = SearchSpace::tiny(3, 16, 4, vec![4, 8]);
    let net = SuperNet::new(&space, &mut rng);
    let arch = ArchParams::init(
        &space,
        &DeviceTarget::FpgaPipelined(FpgaDevice::zc706()),
        &mut rng,
    );
    let x = Tensor::constant(Array::randn(&[2, 3, 16, 16], 1.0, &mut rng));

    let (logits, _) = net.forward_sampled(&x, &arch, 1.0, &mut rng).unwrap();
    logits.cross_entropy(&[0, 1]).unwrap().backward();
    let sampled_bits: Vec<u32> = logits
        .value_clone()
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let mut grads = Vec::new();
    for t in &arch.theta {
        grads.extend(
            t.grad()
                .expect("theta grad")
                .data()
                .iter()
                .map(|v| v.to_bits()),
        );
    }
    grads.extend(
        net.weight_params()[0]
            .grad()
            .expect("stem grad")
            .data()
            .iter()
            .map(|v| v.to_bits()),
    );
    edd_tensor::scratch::reset();

    let mix = net.forward_mixture(&x, &arch, 1.0).unwrap();
    mix.cross_entropy(&[0, 1]).unwrap().backward();
    let mix_bits: Vec<u32> = mix
        .value_clone()
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let mut mix_grads = Vec::new();
    for t in &arch.theta {
        mix_grads.extend(
            t.grad()
                .expect("theta grad")
                .data()
                .iter()
                .map(|v| v.to_bits()),
        );
    }
    edd_tensor::scratch::reset();

    vec![sampled_bits, grads, mix_bits, mix_grads]
}

#[test]
fn supernet_steps_are_bitwise_identical_across_pool_sizes() {
    // Largest pool first so workers exist (and really execute branch
    // tasks) before the smaller logical counts run.
    set_num_threads(7);
    let seven = run_steps();
    let seven_again = run_steps();
    set_num_threads(2);
    let two = run_steps();
    set_num_threads(1);
    let one = run_steps();

    let names = [
        "sampled forward logits",
        "sampled theta + stem grads",
        "mixture forward logits",
        "mixture theta grads",
    ];
    for ((a, b), name) in seven.iter().zip(&seven_again).zip(names) {
        assert_eq!(a, b, "{name} differ between two runs on the same pool");
    }
    for ((a, b), name) in seven.iter().zip(&two).zip(names) {
        assert_eq!(a, b, "{name} differ between 7 and 2 threads");
    }
    for ((a, b), name) in seven.iter().zip(&one).zip(names) {
        assert_eq!(a, b, "{name} differ between 7 and 1 threads");
    }
}
