//! Property-based tests of the co-search machinery: structural invariants
//! of the search space, architecture parameters, performance estimate and
//! derived architectures across randomly drawn configurations.

use edd_core::{
    edd_loss, estimate, ArchParams, DerivedArch, DeviceTarget, LossConfig, PerfTables, SearchSpace,
};
use edd_hw::{AccelDevice, FpgaDevice, GpuDevice};
use edd_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: any of the four device targets.
fn arb_target() -> impl Strategy<Value = DeviceTarget> {
    prop::sample::select(vec![0usize, 1, 2, 3]).prop_map(|i| match i {
        0 => DeviceTarget::Gpu(GpuDevice::titan_rtx()),
        1 => DeviceTarget::FpgaRecursive(FpgaDevice::zcu102()),
        2 => DeviceTarget::FpgaPipelined(FpgaDevice::zc706()),
        _ => DeviceTarget::Dedicated(AccelDevice::loom_like()),
    })
}

/// Quantization menu compatible with the given target.
fn menu_for(target: &DeviceTarget) -> Vec<u32> {
    target.default_quant_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn space_indexing_is_total(n in 1usize..7, img in prop::sample::select(vec![8usize, 16, 32])) {
        let space = SearchSpace::tiny(n, img, 4, vec![4, 8, 16]);
        prop_assert_eq!(space.num_blocks(), n);
        for i in 0..n {
            prop_assert!(space.spatial_at_block(i) >= 1);
            prop_assert!(space.block_in_channels(i) >= 1);
            for m in 0..space.num_ops() {
                let op = space.op_shape(i, m);
                prop_assert!(op.work() > 0.0);
            }
        }
    }

    #[test]
    fn arch_params_layout_consistent(target in arb_target(), n in 1usize..5, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = SearchSpace::tiny(n, 16, 4, menu_for(&target));
        let arch = ArchParams::init(&space, &target, &mut rng);
        prop_assert_eq!(arch.theta.len(), n);
        for i in 0..n {
            for m in 0..space.num_ops() {
                prop_assert_eq!(arch.phi_logits(i, m).shape(), vec![space.num_quant()]);
                prop_assert_eq!(arch.pf(i, m).is_some(), target.has_parallel_factors());
            }
        }
        // Every parameter requires grad and appears exactly once.
        let params = arch.all_params();
        prop_assert!(params.iter().all(Tensor::requires_grad));
        let mut ids: Vec<usize> = params.iter().map(Tensor::node_id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), params.len(), "duplicate params in all_params");
    }

    #[test]
    fn estimate_finite_positive_for_all_targets(target in arb_target(), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = SearchSpace::tiny(3, 16, 4, menu_for(&target));
        let arch = ArchParams::init(&space, &target, &mut rng);
        let tables = PerfTables::build(&space, &target).unwrap();
        let est = estimate(&arch, &tables, &space, &target, 1.0, &mut rng).unwrap();
        prop_assert!(est.perf.item().is_finite());
        prop_assert!(est.perf.item() > 0.0);
        prop_assert!(est.res.item().is_finite());
        prop_assert!(est.res.item() >= 0.0);
        prop_assert!(est.block_latency_ms.iter().all(|v| v.is_finite() && *v > 0.0));
    }

    #[test]
    fn loss_positive_and_finite(
        acc in 0.01f32..10.0,
        perf in 0.01f32..100.0,
        res in 0.0f32..10_000.0,
        beta in 0.0f32..5.0,
    ) {
        let cfg = LossConfig { alpha: 1.0, beta, penalty_sharpness: 8.0 };
        let l = edd_loss(
            &Tensor::scalar(acc),
            &Tensor::scalar(perf),
            &Tensor::scalar(res),
            2520.0,
            &cfg,
        )
        .unwrap();
        prop_assert!(l.item().is_finite());
        prop_assert!(l.item() > 0.0);
        // Loss is monotone in resource usage (fixed everything else).
        let l2 = edd_loss(
            &Tensor::scalar(acc),
            &Tensor::scalar(perf),
            &Tensor::scalar(res + 500.0),
            2520.0,
            &cfg,
        )
        .unwrap();
        prop_assert!(l2.item() >= l.item() - 1e-6);
    }

    #[test]
    fn derived_arch_always_valid(target in arb_target(), n in 1usize..5, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = SearchSpace::tiny(n, 16, 4, menu_for(&target));
        let arch = ArchParams::init(&space, &target, &mut rng);
        let derived = DerivedArch::from_params(&space, &target, &arch);
        prop_assert_eq!(derived.blocks.len(), n);
        for b in &derived.blocks {
            prop_assert!(space.kernel_choices.contains(&b.kernel));
            prop_assert!(space.expansion_choices.contains(&b.expansion));
            prop_assert!(space.quant_bits.contains(&b.quant_bits));
        }
        // Shape export has stem + blocks + head.
        let net = derived.to_network_shape();
        prop_assert_eq!(net.ops.len(), n + 2);
        // JSON round trip.
        let back = DerivedArch::from_json(&derived.to_json().unwrap()).unwrap();
        prop_assert_eq!(back, derived);
    }

    #[test]
    fn gpu_uniform_precision_invariant(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let target = DeviceTarget::Gpu(GpuDevice::titan_rtx());
        let space = SearchSpace::tiny(4, 16, 4, vec![8, 16, 32]);
        let arch = ArchParams::init(&space, &target, &mut rng);
        let derived = DerivedArch::from_params(&space, &target, &arch);
        let q0 = derived.blocks[0].quant_bits;
        prop_assert!(derived.blocks.iter().all(|b| b.quant_bits == q0));
    }

    #[test]
    fn recursive_sharing_invariant(seed in 0u64..500) {
        // Same (kernel, expansion) class -> same quantization and pf.
        let mut rng = StdRng::seed_from_u64(seed);
        let target = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
        let space = SearchSpace::tiny(5, 16, 4, vec![4, 8, 16]);
        let arch = ArchParams::init(&space, &target, &mut rng);
        let derived = DerivedArch::from_params(&space, &target, &arch);
        for a in &derived.blocks {
            for b in &derived.blocks {
                if (a.kernel, a.expansion) == (b.kernel, b.expansion) {
                    prop_assert_eq!(a.quant_bits, b.quant_bits);
                    prop_assert_eq!(a.parallel_factor, b.parallel_factor);
                }
            }
        }
    }
}
