//! Serving-path bitwise determinism: the same requests answered through
//! the dynamic-batching [`edd_runtime::Server`] must be bit-identical to
//! the synchronous [`edd_runtime::InferServer`] path, regardless of how
//! many worker shards the server runs or how requests get coalesced into
//! batches. This holds because the compiled integer engine accumulates in
//! `i32` per image — batch composition cannot perturb any output — and it
//! is what lets CI run the serve leg across the
//! `EDD_NUM_THREADS` × `EDD_SIMD` × shard-count matrix.

use edd_core::{
    calibrate, ArchParams, DerivedArch, DeviceTarget, QatModel, QuantizedModel, SearchSpace,
};
use edd_hw::FpgaDevice;
use edd_runtime::{BatcherConfig, InferServer, ServeConfig, Server};
use edd_tensor::Array;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn compiled_tiny(seed: u64) -> QuantizedModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let space = SearchSpace::tiny(3, 16, 4, vec![4, 8, 16]);
    let target = DeviceTarget::FpgaPipelined(FpgaDevice::zc706());
    let arch_params = ArchParams::init(&space, &target, &mut rng);
    let arch = DerivedArch::from_params(&space, &target, &arch_params);
    let model = QatModel::new(&arch, &mut rng);
    let batches: Vec<Array> = (0..2)
        .map(|_| Array::randn(&[2, 3, 16, 16], 1.0, &mut rng))
        .collect();
    let calib = calibrate(&model, &batches).unwrap();
    QuantizedModel::compile(&model, &arch, &calib)
}

fn request_images(n: usize, image_len: usize) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(99);
    (0..n)
        .map(|_| Array::randn(&[1, 3, 16, 16], 1.0, &mut rng).data().to_vec())
        .inspect(|img| assert_eq!(img.len(), image_len))
        .collect()
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

/// Pushes every request through a server with the given shard count and
/// returns each request's logits, in submission order.
fn serve_all(model: &Arc<QuantizedModel>, images: &[Vec<f32>], shards: usize) -> Vec<Vec<f32>> {
    let server = Server::start(
        vec![("tiny".to_owned(), Arc::clone(model))],
        ServeConfig {
            batcher: BatcherConfig {
                max_batch: 8,
                max_delay_us: 200,
                queue_depth: images.len() + 1,
            },
            shards,
        },
    );
    let tickets: Vec<_> = images
        .iter()
        .map(|img| server.submit(0, img.clone()).expect("queue sized for all"))
        .collect();
    let out: Vec<Vec<f32>> = tickets
        .into_iter()
        .map(|t| t.wait().expect("model never errors"))
        .collect();
    let stats = server.shutdown();
    assert_eq!(stats[0].completed, images.len() as u64);
    assert_eq!(stats[0].failed, 0);
    out
}

#[test]
fn sharded_serving_is_bitwise_identical_to_sync_inference() {
    let model = Arc::new(compiled_tiny(61));
    let image_len = edd_runtime::BatchModel::image_len(model.as_ref());
    let classes = edd_runtime::BatchModel::num_classes(model.as_ref());
    let images = request_images(48, image_len);

    // Synchronous reference: one request at a time through InferServer.
    let sync = InferServer::new(model.as_ref());
    let reference: Vec<Vec<f32>> = images
        .iter()
        .map(|img| sync.infer(img, 1).unwrap())
        .collect();
    for logits in &reference {
        assert_eq!(logits.len(), classes);
    }

    // The same reference inputs batched at width 8: per-image outputs must
    // not depend on batch composition (integer accumulation is exact).
    for (chunk_idx, chunk) in images.chunks(8).enumerate() {
        let flat: Vec<f32> = chunk.concat();
        let batched = sync.infer(&flat, chunk.len()).unwrap();
        for (i, logits) in batched.chunks(classes).enumerate() {
            assert_eq!(
                bits(logits),
                bits(&reference[chunk_idx * 8 + i]),
                "batched output diverged from single-image output"
            );
        }
    }

    // 1-shard and 4-shard servers both match the sync path bit for bit.
    for shards in [1usize, 4] {
        let served = serve_all(&model, &images, shards);
        for (i, (got, want)) in served.iter().zip(&reference).enumerate() {
            assert_eq!(
                bits(got),
                bits(want),
                "request {i} diverged through {shards}-shard server"
            );
        }
    }
}

#[test]
fn repeated_serving_runs_are_bitwise_stable() {
    let model = Arc::new(compiled_tiny(61));
    let image_len = edd_runtime::BatchModel::image_len(model.as_ref());
    let images = request_images(24, image_len);
    let a = serve_all(&model, &images, 2);
    let b = serve_all(&model, &images, 2);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(bits(x), bits(y));
    }
}
