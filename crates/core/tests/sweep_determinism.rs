//! Whole-sweep bitwise determinism: a multi-target sweep must produce
//! byte-identical per-target derived architectures, Pareto fronts, and
//! epoch histories (a) for any logical thread count — the parallel
//! per-target arch phase fans out over the worker pool — and (b) across a
//! kill/resume boundary through a `sweep-*.edds` snapshot.
//!
//! Single `#[test]` because it mutates the global thread-count override.

use edd_core::{CoSearchConfig, DeviceTarget, SearchSpace, SweepSearch};
use edd_data::{SynthConfig, SynthDataset};
use edd_hw::{FpgaDevice, GpuDevice};
use edd_nn::Batch;
use edd_tensor::kernel::set_num_threads;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sweep_setup() -> (SweepSearch, Vec<Batch>, Vec<Batch>, StdRng) {
    let mut rng = StdRng::seed_from_u64(2024);
    // Quant menu = intersection of the GPU ({8,16,32}) and FPGA ({4,8,16})
    // menus, exactly what `edd sweep` computes for this target list.
    let space = SearchSpace::tiny(3, 16, 4, vec![8, 16]);
    let targets = vec![
        DeviceTarget::Gpu(GpuDevice::titan_rtx()),
        DeviceTarget::FpgaRecursive(FpgaDevice::zcu102()),
        DeviceTarget::FpgaPipelined(FpgaDevice::zc706()),
    ];
    let config = CoSearchConfig {
        epochs: 3,
        warmup_epochs: 1,
        ..CoSearchConfig::default()
    };
    let sweep = SweepSearch::new(space, targets, config, &mut rng).unwrap();
    let data = SynthDataset::new(SynthConfig::tiny());
    let train = data.split(3, 8, 1);
    let val = data.split(2, 8, 2);
    (sweep, train, val, rng)
}

/// Runs the full 3-target sweep and flattens everything comparable into
/// byte strings: per-target derived arch JSON, Pareto summary JSON, and
/// the flattened history CSV.
fn run_full() -> (Vec<String>, String, String) {
    let (mut sweep, train, val, mut rng) = sweep_setup();
    let out = sweep.run(&train, &val, &mut rng).unwrap();
    let archs = out
        .targets
        .iter()
        .map(|t| t.outcome.derived.to_json().unwrap())
        .collect();
    (archs, out.summary_json(), out.history_csv())
}

/// Runs 2 of 3 epochs with checkpointing ("crash"), then resumes a fresh
/// sweep from the snapshot directory with an unrelated RNG and finishes.
fn run_killed_and_resumed(dir: &std::path::Path) -> (Vec<String>, String, String) {
    let (mut part, train, val, mut rng) = sweep_setup();
    part.checkpoint_into(dir).checkpoint_keep(1);
    part.run_until(&train, &val, &mut rng, 2).unwrap();

    let (mut resumed, train2, val2, _) = sweep_setup();
    let mut other_rng = StdRng::seed_from_u64(555); // replaced by the snapshot
    resumed.resume_from(dir).unwrap();
    let out = resumed.run(&train2, &val2, &mut other_rng).unwrap();
    let archs = out
        .targets
        .iter()
        .map(|t| t.outcome.derived.to_json().unwrap())
        .collect();
    (archs, out.summary_json(), out.history_csv())
}

#[test]
fn sweep_is_bitwise_identical_across_pool_sizes_and_resume() {
    // Largest pool first so workers exist (and the arch phase really runs
    // its per-target tasks concurrently) before the serial count runs.
    set_num_threads(4);
    let four = run_full();
    let four_again = run_full();
    assert_eq!(four, four_again, "same pool, two runs differ");

    set_num_threads(1);
    let one = run_full();
    assert_eq!(
        four, one,
        "sweep results differ between 4 worker threads and 1"
    );

    // Kill/resume at the epoch-2 boundary, once per thread count; both
    // must land byte-identically on the uninterrupted result.
    let dir = std::env::temp_dir().join(format!("edd-sweep-det-{}", std::process::id()));
    for threads in [4, 1] {
        set_num_threads(threads);
        let _ = std::fs::remove_dir_all(&dir);
        let resumed = run_killed_and_resumed(&dir);
        assert_eq!(
            four, resumed,
            "kill/resume with {threads} thread(s) diverges from the uninterrupted sweep"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
