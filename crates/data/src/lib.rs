//! # edd-data
//!
//! Synthetic dataset substrate for the EDD reproduction.
//!
//! The paper searches on ImageNet-100 and trains on ImageNet-1k; neither is
//! available offline, so this crate generates **SynthImageNet** — a seeded,
//! procedural image-classification dataset whose difficulty scales with the
//! class count and noise level. See `DESIGN.md` §2 for the substitution
//! rationale.
//!
//! # Example
//!
//! ```
//! use edd_data::{SynthConfig, SynthDataset};
//!
//! let dataset = SynthDataset::new(SynthConfig::tiny());
//! let train = dataset.split(4, 16, 1); // 4 batches of 16, split seed 1
//! let val = dataset.split(2, 16, 2);
//! assert_eq!(train.len(), 4);
//! assert_eq!(val[0].images.shape(), &[16, 3, 16, 16]);
//! ```

#![warn(missing_docs)]

mod synth;

pub use synth::{SynthConfig, SynthDataset};
