//! SynthImageNet: a seeded, procedural image-classification dataset.
//!
//! The EDD paper searches on a 100-class subset of ImageNet and finally
//! trains on the full 1000-class set. ImageNet is not available offline, so
//! this module generates a deterministic synthetic stand-in: each class is
//! defined by a procedural *prototype* (an oriented sinusoidal grating
//! superimposed with a Gaussian blob and a class-specific channel balance),
//! and samples are prototypes under random translation, horizontal flip,
//! per-channel gain and additive Gaussian noise. Difficulty scales with the
//! class count and noise level, which preserves the property the co-search
//! needs: a non-trivial, learnable accuracy-loss signal.

use edd_tensor::Array;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a [`SynthDataset`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Number of classes.
    pub num_classes: usize,
    /// Square image side length.
    pub image_size: usize,
    /// Number of channels (3 for the RGB-like default).
    pub channels: usize,
    /// Standard deviation of the additive sample noise.
    pub noise_std: f32,
    /// Maximum absolute translation (pixels) applied per sample.
    pub max_shift: usize,
    /// Whether samples are randomly mirrored horizontally.
    pub hflip: bool,
    /// Master seed defining the class prototypes.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            num_classes: 10,
            image_size: 32,
            channels: 3,
            noise_std: 0.25,
            max_shift: 3,
            hflip: true,
            seed: 0xEDD,
        }
    }
}

impl SynthConfig {
    /// The search-scale stand-in for the paper's ImageNet-100 subset:
    /// 100 classes at 32×32. Heavier than [`SynthConfig::tiny`]; used by
    /// the full (non-`--quick`) experiment harnesses when more signal is
    /// wanted.
    #[must_use]
    pub fn imagenet100_proxy() -> Self {
        SynthConfig {
            num_classes: 100,
            image_size: 32,
            channels: 3,
            noise_std: 0.35,
            max_shift: 4,
            hflip: true,
            seed: 100,
        }
    }

    /// A small configuration for fast unit tests (4 classes, 16×16).
    #[must_use]
    pub fn tiny() -> Self {
        SynthConfig {
            num_classes: 4,
            image_size: 16,
            channels: 3,
            noise_std: 0.2,
            max_shift: 2,
            hflip: true,
            seed: 7,
        }
    }
}

/// Per-class generative parameters.
#[derive(Debug, Clone)]
struct ClassProto {
    /// Grating frequency (cycles across the image).
    freq: f32,
    /// Grating orientation in radians.
    angle: f32,
    /// Grating phase.
    phase: f32,
    /// Blob center (normalized 0..1).
    cx: f32,
    cy: f32,
    /// Blob radius (normalized).
    radius: f32,
    /// Blob amplitude.
    amp: f32,
    /// Per-channel gains.
    gains: Vec<f32>,
}

/// A deterministic synthetic image-classification dataset.
///
/// Two datasets constructed with the same [`SynthConfig`] produce identical
/// class prototypes; sampling takes an explicit RNG so callers control the
/// randomness of draws independently of the class definitions.
#[derive(Debug, Clone)]
pub struct SynthDataset {
    config: SynthConfig,
    protos: Vec<ClassProto>,
}

impl SynthDataset {
    /// Creates the dataset, deriving all class prototypes from
    /// `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes`, `image_size` or `channels` is zero.
    #[must_use]
    pub fn new(config: SynthConfig) -> Self {
        assert!(config.num_classes > 0, "num_classes must be positive");
        assert!(config.image_size > 0, "image_size must be positive");
        assert!(config.channels > 0, "channels must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let protos = (0..config.num_classes)
            .map(|_| ClassProto {
                freq: rng.gen_range(1.5..6.0),
                angle: rng.gen_range(0.0..std::f32::consts::PI),
                phase: rng.gen_range(0.0..std::f32::consts::TAU),
                cx: rng.gen_range(0.25..0.75),
                cy: rng.gen_range(0.25..0.75),
                radius: rng.gen_range(0.1..0.3),
                amp: rng.gen_range(0.8..1.6),
                gains: (0..config.channels)
                    .map(|_| rng.gen_range(0.5..1.5))
                    .collect(),
            })
            .collect();
        SynthDataset { config, protos }
    }

    /// The dataset configuration.
    #[must_use]
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Renders the noiseless prototype image of `class` as `[c, h, w]`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= num_classes`.
    #[must_use]
    pub fn prototype(&self, class: usize) -> Array {
        self.render(class, 0, 0, false, &[])
    }

    /// Renders class `class` with integer translation `(dx, dy)`, optional
    /// horizontal flip and per-channel gain jitter.
    fn render(&self, class: usize, dx: isize, dy: isize, flip: bool, gain_jitter: &[f32]) -> Array {
        let p = &self.protos[class];
        let s = self.config.image_size;
        let c = self.config.channels;
        let mut img = Array::zeros(&[c, s, s]);
        let (sin_a, cos_a) = p.angle.sin_cos();
        let inv = 1.0 / s as f32;
        for y in 0..s {
            for x in 0..s {
                // Source coordinates after translation / flip.
                let sx = if flip {
                    s as isize - 1 - x as isize
                } else {
                    x as isize
                } - dx;
                let sy = y as isize - dy;
                let u = sx as f32 * inv;
                let v = sy as f32 * inv;
                // Oriented grating.
                let t = (u * cos_a + v * sin_a) * p.freq * std::f32::consts::TAU + p.phase;
                let grating = t.sin();
                // Gaussian blob.
                let du = u - p.cx;
                let dv = v - p.cy;
                let blob = p.amp * (-(du * du + dv * dv) / (2.0 * p.radius * p.radius)).exp();
                let base = grating * 0.5 + blob;
                for ch in 0..c {
                    let jitter = gain_jitter.get(ch).copied().unwrap_or(1.0);
                    img.data_mut()[ch * s * s + y * s + x] = base * p.gains[ch] * jitter;
                }
            }
        }
        img
    }

    /// Draws one labeled sample: a randomly-augmented rendering of a random
    /// class. Returns `(image [c,h,w], label)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (Array, usize) {
        let class = rng.gen_range(0..self.config.num_classes);
        (self.sample_class(class, rng), class)
    }

    /// Draws one augmented sample of a specific `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= num_classes`.
    pub fn sample_class<R: Rng + ?Sized>(&self, class: usize, rng: &mut R) -> Array {
        let m = self.config.max_shift as isize;
        let dx = rng.gen_range(-m..=m);
        let dy = rng.gen_range(-m..=m);
        let flip = self.config.hflip && rng.gen_bool(0.5);
        let jitter: Vec<f32> = (0..self.config.channels)
            .map(|_| rng.gen_range(0.9..1.1))
            .collect();
        let mut img = self.render(class, dx, dy, flip, &jitter);
        if self.config.noise_std > 0.0 {
            let noise = Array::randn(img.shape(), self.config.noise_std, rng);
            img = img.add(&noise).expect("same shape");
        }
        img
    }

    /// Draws a batch of `batch_size` labeled samples as
    /// `(images [b,c,h,w], labels)`.
    pub fn sample_batch<R: Rng + ?Sized>(
        &self,
        batch_size: usize,
        rng: &mut R,
    ) -> (Array, Vec<usize>) {
        let s = self.config.image_size;
        let c = self.config.channels;
        let mut data = Vec::with_capacity(batch_size * c * s * s);
        let mut labels = Vec::with_capacity(batch_size);
        for _ in 0..batch_size {
            let (img, label) = self.sample(rng);
            data.extend_from_slice(img.data());
            labels.push(label);
        }
        (
            Array::from_vec(data, &[batch_size, c, s, s]).expect("sized correctly"),
            labels,
        )
    }

    /// Materializes a deterministic split of `num_batches` batches of
    /// `batch_size`, seeded independently of other splits by `split_seed`.
    #[must_use]
    pub fn split(
        &self,
        num_batches: usize,
        batch_size: usize,
        split_seed: u64,
    ) -> Vec<edd_nn::Batch> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ split_seed);
        (0..num_batches)
            .map(|_| {
                let (images, labels) = self.sample_batch(batch_size, &mut rng);
                edd_nn::Batch { images, labels }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imagenet100_proxy_scales() {
        let cfg = SynthConfig::imagenet100_proxy();
        assert_eq!(cfg.num_classes, 100);
        assert_eq!(cfg.image_size, 32);
        let d = SynthDataset::new(cfg);
        let mut rng = StdRng::seed_from_u64(0);
        let (img, label) = d.sample(&mut rng);
        assert_eq!(img.shape(), &[3, 32, 32]);
        assert!(label < 100);
    }

    #[test]
    fn deterministic_prototypes() {
        let a = SynthDataset::new(SynthConfig::tiny());
        let b = SynthDataset::new(SynthConfig::tiny());
        assert_eq!(a.prototype(0).data(), b.prototype(0).data());
        assert_eq!(a.prototype(3).data(), b.prototype(3).data());
    }

    #[test]
    fn different_classes_have_different_prototypes() {
        let d = SynthDataset::new(SynthConfig::tiny());
        let p0 = d.prototype(0);
        let p1 = d.prototype(1);
        let diff: f32 = p0
            .data()
            .iter()
            .zip(p1.data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1.0, "prototypes too similar: {diff}");
    }

    #[test]
    fn sample_shapes() {
        let d = SynthDataset::new(SynthConfig::tiny());
        let mut rng = StdRng::seed_from_u64(1);
        let (img, label) = d.sample(&mut rng);
        assert_eq!(img.shape(), &[3, 16, 16]);
        assert!(label < 4);
        let (batch, labels) = d.sample_batch(8, &mut rng);
        assert_eq!(batch.shape(), &[8, 3, 16, 16]);
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn split_is_deterministic_and_split_seeded() {
        let d = SynthDataset::new(SynthConfig::tiny());
        let s1 = d.split(2, 4, 100);
        let s2 = d.split(2, 4, 100);
        assert_eq!(s1[0].images.data(), s2[0].images.data());
        assert_eq!(s1[0].labels, s2[0].labels);
        let s3 = d.split(2, 4, 200);
        assert_ne!(s1[0].images.data(), s3[0].images.data());
    }

    #[test]
    fn augmentation_produces_variation_within_class() {
        let d = SynthDataset::new(SynthConfig::tiny());
        let mut rng = StdRng::seed_from_u64(2);
        let a = d.sample_class(0, &mut rng);
        let b = d.sample_class(0, &mut rng);
        let diff: f32 = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 0.5, "augmented samples identical");
    }

    #[test]
    fn noiseless_sample_close_to_prototype() {
        let mut cfg = SynthConfig::tiny();
        cfg.noise_std = 0.0;
        cfg.max_shift = 0;
        let d = SynthDataset::new(cfg);
        let mut rng = StdRng::seed_from_u64(3);
        // With no shift/noise, only flip and gain jitter vary; sample several
        // and expect at least one unflipped draw close to the prototype.
        let proto = d.prototype(1);
        let mut best = f32::INFINITY;
        for _ in 0..8 {
            let s = d.sample_class(1, &mut rng);
            let err: f32 = s
                .data()
                .iter()
                .zip(proto.data())
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
                / s.len() as f32;
            best = best.min(err);
        }
        assert!(best < 0.2, "best mean abs err {best}");
    }

    #[test]
    fn labels_cover_all_classes() {
        let d = SynthDataset::new(SynthConfig::tiny());
        let mut rng = StdRng::seed_from_u64(4);
        let (_, labels) = d.sample_batch(200, &mut rng);
        for class in 0..4 {
            assert!(labels.contains(&class), "class {class} never sampled");
        }
    }

    #[test]
    #[should_panic(expected = "num_classes")]
    fn zero_classes_rejected() {
        let mut cfg = SynthConfig::tiny();
        cfg.num_classes = 0;
        let _ = SynthDataset::new(cfg);
    }
}
