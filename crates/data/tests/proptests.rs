//! Property-based tests of the SynthImageNet generator: determinism,
//! label validity, shape correctness and class separability across random
//! configurations.

use edd_data::{SynthConfig, SynthDataset};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (
        1usize..12,
        prop::sample::select(vec![8usize, 16, 24]),
        1usize..4,
        0.0f32..0.8,
        0usize..4,
        0u64..1000,
    )
        .prop_map(
            |(classes, size, channels, noise, shift, seed)| SynthConfig {
                num_classes: classes,
                image_size: size,
                channels,
                noise_std: noise,
                max_shift: shift.min(size / 4),
                hflip: true,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn samples_have_declared_shape(cfg in arb_config(), draw_seed in 0u64..1000) {
        let d = SynthDataset::new(cfg);
        let mut rng = StdRng::seed_from_u64(draw_seed);
        let (img, label) = d.sample(&mut rng);
        prop_assert_eq!(img.shape(), &[cfg.channels, cfg.image_size, cfg.image_size]);
        prop_assert!(label < cfg.num_classes);
        prop_assert!(img.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn batches_have_declared_shape(cfg in arb_config(), b in 1usize..8) {
        let d = SynthDataset::new(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        let (images, labels) = d.sample_batch(b, &mut rng);
        prop_assert_eq!(
            images.shape(),
            &[b, cfg.channels, cfg.image_size, cfg.image_size]
        );
        prop_assert_eq!(labels.len(), b);
        prop_assert!(labels.iter().all(|&l| l < cfg.num_classes));
    }

    #[test]
    fn same_seed_same_dataset(cfg in arb_config()) {
        let a = SynthDataset::new(cfg);
        let b = SynthDataset::new(cfg);
        for class in 0..cfg.num_classes {
            let pa = a.prototype(class);
            let pb = b.prototype(class);
            prop_assert_eq!(pa.data(), pb.data());
        }
    }

    #[test]
    fn splits_reproducible_and_distinct(cfg in arb_config()) {
        let d = SynthDataset::new(cfg);
        let s1 = d.split(2, 4, 7);
        let s2 = d.split(2, 4, 7);
        prop_assert_eq!(s1[0].images.data(), s2[0].images.data());
        let s3 = d.split(2, 4, 8);
        // Different split seeds should (virtually always) differ.
        prop_assert_ne!(s1[0].images.data(), s3[0].images.data(), "split seeds produced equal data");
    }

    #[test]
    fn intra_class_distance_below_inter_class(seed in 0u64..200) {
        // The defining property of a learnable dataset: two noiseless-ish
        // samples of one class are closer than samples of different classes.
        // Flips disabled: mirrored gratings legitimately move far from
        // their unflipped siblings; the separability property is about the
        // underlying prototypes.
        let cfg = SynthConfig {
            num_classes: 4,
            image_size: 16,
            channels: 3,
            noise_std: 0.05,
            max_shift: 1,
            hflip: false,
            seed,
        };
        let d = SynthDataset::new(cfg);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let dist = |a: &edd_tensor::Array, b: &edd_tensor::Array| -> f32 {
            a.data()
                .iter()
                .zip(b.data())
                .map(|(x, y)| (x - y) * (x - y))
                .sum()
        };
        // Average over draws: individual pairs can be unlucky (random
        // prototypes may be similar), but on average the intra-class
        // distance must not exceed the inter-class distance.
        let mut intra = 0.0f32;
        let mut inter = 0.0f32;
        for _ in 0..8 {
            let a1 = d.sample_class(0, &mut rng);
            let a2 = d.sample_class(0, &mut rng);
            intra += dist(&a1, &a2);
            for other in 1..4 {
                inter += dist(&a1, &d.sample_class(other, &mut rng)) / 3.0;
            }
        }
        prop_assert!(
            intra <= inter * 1.2,
            "mean intra {intra} should not exceed mean inter {inter}"
        );
    }
}
