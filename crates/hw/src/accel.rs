//! Dedicated bit-flexible accelerator model (paper §4.3).
//!
//! The paper names Stripes, Loom and Bit-Fusion as ASIC accelerators whose
//! "computation latency and energy of convolution layers scale inversely
//! and almost proportionally with the precisions of weights and
//! activations", and notes EDD applies directly "by formulating the
//! latency and energy of an operation proportionally to data precision",
//! leaving it as future work. This module implements that formulation:
//!
//! * latency ∝ `q_w · q_a / lanes` per MAC (bit-serial × bit-serial);
//! * energy per MAC ∝ `q_w · q_a`, plus a per-byte memory energy;
//! * fixed silicon — no resource variable, so the search degenerates to
//!   `{Θ, Φ}` with per-op mixed precision fully supported.

use crate::shapes::{NetworkShape, OpShape};
use serde::{Deserialize, Serialize};

/// A Loom/Bit-Fusion-class bit-flexible DNN accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelDevice {
    /// Device name.
    pub name: String,
    /// Peak MACs/s at the reference 16×16-bit precision.
    pub peak_macs_16x16: f64,
    /// Activation bit-width (fixed by the deployment; the search variable
    /// is the weight precision, matching the paper's FPGA setting).
    pub activation_bits: u32,
    /// Energy per 16×16-bit MAC (pJ).
    pub energy_per_mac_pj: f64,
    /// Energy per byte of off-chip traffic (pJ).
    pub energy_per_byte_pj: f64,
}

impl AccelDevice {
    /// A Loom-class accelerator (DAC 2018): bit-serial weight × activation
    /// processing, modeled at 2 TMAC/s for 16×16-bit.
    #[must_use]
    pub fn loom_like() -> Self {
        AccelDevice {
            name: "Loom-like".into(),
            peak_macs_16x16: 2.0e12,
            activation_bits: 16,
            energy_per_mac_pj: 1.0,
            energy_per_byte_pj: 40.0,
        }
    }

    /// Effective MACs/s at `q_w`-bit weights: throughput scales inversely
    /// with the precision product.
    #[must_use]
    pub fn macs_per_s(&self, q_w: u32) -> f64 {
        let ref_product = 16.0 * 16.0;
        let product = f64::from(q_w.max(1)) * f64::from(self.activation_bits.max(1));
        self.peak_macs_16x16 * ref_product / product
    }
}

/// Latency (ms) of one operation at `q_w`-bit weights.
#[must_use]
pub fn op_latency_ms(op: &OpShape, q_w: u32, device: &AccelDevice) -> f64 {
    op.work() / device.macs_per_s(q_w) * 1e3
}

/// Energy (µJ) of one operation at `q_w`-bit weights: compute energy
/// scales with the precision product; memory energy with the weight bytes
/// plus activation traffic at the fixed activation precision.
#[must_use]
pub fn op_energy_uj(op: &OpShape, q_w: u32, device: &AccelDevice) -> f64 {
    let product = f64::from(q_w.max(1)) * f64::from(device.activation_bits.max(1));
    let compute_pj = op.work() * device.energy_per_mac_pj * product / (16.0 * 16.0);
    let bytes = op.params() * f64::from(q_w) / 8.0
        + 2.0 * op.activations() * f64::from(device.activation_bits) / 8.0;
    let memory_pj = bytes * device.energy_per_byte_pj;
    (compute_pj + memory_pj) / 1e6
}

/// Predicted end-to-end throughput (images/s) at per-op weight precisions
/// — the Stage-1 `Perf^q(op)` prediction that the integer inference
/// engine's measured throughput is cross-checked against (see
/// EXPERIMENTS.md): lowering Φ on bit-serial silicon raises predicted
/// throughput in proportion, while a byte-oriented CPU only banks the
/// storage win.
///
/// # Panics
///
/// Panics if `q_per_op` has a different length than the network's op list.
#[must_use]
pub fn predicted_throughput_fps(net: &NetworkShape, q_per_op: &[u32], device: &AccelDevice) -> f64 {
    1e3 / eval_accel(net, q_per_op, device).latency_ms
}

/// Evaluation result for a dedicated accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelReport {
    /// End-to-end latency (ms).
    pub latency_ms: f64,
    /// End-to-end energy (µJ).
    pub energy_uj: f64,
    /// Per-op latency breakdown.
    pub per_op_latency_ms: Vec<f64>,
}

/// Evaluates a network with per-op weight precisions (`None` in
/// `q_per_op` positions ⇒ 16-bit).
///
/// # Panics
///
/// Panics if `q_per_op` has a different length than the network's op list.
#[must_use]
pub fn eval_accel(net: &NetworkShape, q_per_op: &[u32], device: &AccelDevice) -> AccelReport {
    assert_eq!(
        q_per_op.len(),
        net.ops.len(),
        "one precision per op required"
    );
    let mut latency = 0.0;
    let mut energy = 0.0;
    let mut per_op = Vec::with_capacity(net.ops.len());
    for (op, &q) in net.ops.iter().zip(q_per_op) {
        let l = op_latency_ms(op, q, device);
        per_op.push(l);
        latency += l;
        energy += op_energy_uj(op, q, device);
    }
    AccelReport {
        latency_ms: latency,
        energy_uj: energy,
        per_op_latency_ms: per_op,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op() -> OpShape {
        OpShape::mbconv(32, 32, 3, 4, 16, 16, 1)
    }

    #[test]
    fn throughput_scales_inversely_with_precision_product() {
        let d = AccelDevice::loom_like();
        // Halving weight bits doubles throughput (Loom's headline property).
        assert!((d.macs_per_s(8) / d.macs_per_s(16) - 2.0).abs() < 1e-9);
        assert!((d.macs_per_s(4) / d.macs_per_s(16) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn latency_proportional_to_weight_bits() {
        let d = AccelDevice::loom_like();
        let l16 = op_latency_ms(&op(), 16, &d);
        let l4 = op_latency_ms(&op(), 4, &d);
        assert!((l16 / l4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn energy_has_memory_floor() {
        // Compute energy shrinks with bits but memory traffic at fixed
        // activation precision does not vanish.
        let d = AccelDevice::loom_like();
        let e16 = op_energy_uj(&op(), 16, &d);
        let e2 = op_energy_uj(&op(), 2, &d);
        assert!(e2 < e16);
        assert!(e2 > 0.1 * e16, "memory floor should prevent free energy");
    }

    #[test]
    fn eval_supports_mixed_precision() {
        let d = AccelDevice::loom_like();
        let net = NetworkShape {
            name: "t".into(),
            ops: vec![op(), op(), op()],
        };
        let uniform = eval_accel(&net, &[8, 8, 8], &d);
        let mixed = eval_accel(&net, &[4, 8, 16], &d);
        assert_eq!(mixed.per_op_latency_ms.len(), 3);
        // Mixed 4/8/16 sums to (0.5 + 1 + 2)x the 8-bit op latency.
        let l8 = uniform.per_op_latency_ms[0];
        assert!((mixed.latency_ms - (0.5 + 1.0 + 2.0) * l8).abs() < 1e-9);
    }

    #[test]
    fn predicted_throughput_doubles_when_bits_halve() {
        let d = AccelDevice::loom_like();
        let net = NetworkShape {
            name: "t".into(),
            ops: vec![op(), op()],
        };
        let f8 = predicted_throughput_fps(&net, &[8, 8], &d);
        let f4 = predicted_throughput_fps(&net, &[4, 4], &d);
        assert!(f8 > 0.0);
        assert!((f4 / f8 - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one precision per op")]
    fn eval_rejects_wrong_length() {
        let d = AccelDevice::loom_like();
        let net = NetworkShape {
            name: "t".into(),
            ops: vec![op()],
        };
        let _ = eval_accel(&net, &[8, 8], &d);
    }
}
