//! Bit-width calibration functions Φ(q) and Ψ(q) from paper §4.1.
//!
//! * `Φ(q)` calibrates latency under `q`-bit precision. The paper lets
//!   `Φ(q) = q` — smaller bit-widths move less off-chip data and compute
//!   faster.
//! * `Ψ(q)` calibrates DSP cost per unit parallelism. On Xilinx devices one
//!   DSP48 computes one ≥9-bit multiplication, two ≤8-bit multiplications,
//!   and ≤4-bit multiplications are moved to LUTs entirely:
//!   `Ψ(q) = 1` for `9 ≤ q ≤ 16`, `Ψ(q) = 1/2` for `5 ≤ q ≤ 8`,
//!   `Ψ(q) = 0` for `q ≤ 4`.

/// Latency calibration `Φ(q) = q` (paper §4.1.1).
#[must_use]
pub fn phi(q: u32) -> f64 {
    f64::from(q)
}

/// DSP-per-parallelism calibration `Ψ(q)` (paper §4.1.2).
///
/// Values of `q` above 16 are treated as 16-bit-class (1 DSP per multiply);
/// the paper's search space never exceeds 16-bit on FPGA.
#[must_use]
pub fn psi(q: u32) -> f64 {
    match q {
        0..=4 => 0.0,
        5..=8 => 0.5,
        _ => 1.0,
    }
}

/// LUT cost per unit parallelism for precisions that fall off the DSP cliff
/// (`q ≤ 4`). The paper only notes that such multiplies are computed in
/// LUTs; we model a small constant per-multiplier LUT cost so that 4-bit
/// designs are not free.
#[must_use]
pub fn lut_per_mult(q: u32) -> f64 {
    match q {
        0 => 0.0,
        1..=4 => 16.0 * f64::from(q), // bit-serial-ish LUT multiplier
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_is_identity() {
        assert_eq!(phi(4), 4.0);
        assert_eq!(phi(8), 8.0);
        assert_eq!(phi(16), 16.0);
    }

    #[test]
    fn psi_piecewise_matches_paper() {
        for q in 9..=16 {
            assert_eq!(psi(q), 1.0, "q={q}");
        }
        for q in 5..=8 {
            assert_eq!(psi(q), 0.5, "q={q}");
        }
        for q in 1..=4 {
            assert_eq!(psi(q), 0.0, "q={q}");
        }
    }

    #[test]
    fn psi_monotone_nondecreasing() {
        for q in 1..16 {
            assert!(psi(q) <= psi(q + 1));
        }
    }

    #[test]
    fn lut_cost_only_below_dsp_cliff() {
        assert!(lut_per_mult(4) > 0.0);
        assert!(lut_per_mult(3) > 0.0);
        assert_eq!(lut_per_mult(8), 0.0);
        assert_eq!(lut_per_mult(16), 0.0);
        assert_eq!(lut_per_mult(0), 0.0);
    }
}
