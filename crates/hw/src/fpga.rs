//! Analytic FPGA accelerator models (paper §4.1).
//!
//! Two accelerator architectures are modeled:
//!
//! * **Recursive** (CHaiDNN-style, paper refs \[8, 9\]): one customizable IP
//!   per *operation class*; every layer of the same type reuses it.
//!   Objective: end-to-end latency (Eq. 6); resource counts each shared IP
//!   once (Eq. 9–10).
//! * **Pipelined** (DNNBuilder-style, paper ref \[2\]): one accelerator stage
//!   per operation, no sharing. Objective: throughput = 1 / slowest stage
//!   (Eq. 7); resource is the plain sum (Eq. 8).
//!
//! Per-operation latency and DSP usage follow Eq. 11–13 with `Φ(q) = q` and
//! the piecewise DSP calibration `Ψ(q)`.

use crate::calib::{lut_per_mult, phi, psi};
use crate::shapes::{NetworkShape, OpShape};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Φ normalization: 16-bit is the reference precision (CHaiDNN/DNNBuilder
/// both report 16-bit fixed-point numbers), so `Φ(16)/PHI_NORM = 1`.
const PHI_NORM: f64 = 16.0;

/// An FPGA device: DSP/LUT budgets and accelerator clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaDevice {
    /// Device name.
    pub name: String,
    /// Number of DSP slices available to the accelerator.
    pub dsp_budget: f64,
    /// LUTs available for multiplier duty (only consumed when `q ≤ 4`).
    pub lut_budget: f64,
    /// Accelerator clock in MHz.
    pub clock_mhz: f64,
    /// MACs sustained per DSP per cycle. Below 1 models memory stalls and
    /// control overhead; above 1 models DSP double-pumping (DSP clocked at
    /// 2× fabric clock, as DNNBuilder does) plus LUT-side multipliers.
    /// Calibrated against the published CHaiDNN/DNNBuilder numbers.
    pub efficiency: f64,
    /// Per-compute-layer IP invocation overhead (ms) in the recursive
    /// architecture (weight reload, descriptor setup — CHaiDNN-style
    /// layer-by-layer execution).
    pub per_layer_overhead_ms: f64,
    /// Fixed DSP-equivalent cost per pipeline stage in the pipelined
    /// architecture (line buffers, address generation, control). This is
    /// the mechanism behind the paper's §6 remark that more blocks require
    /// more resource and memory control logic in pipelined designs.
    pub per_stage_dsp_overhead: f64,
}

impl FpgaDevice {
    /// Xilinx ZCU102 (Zynq UltraScale+): 2520 DSPs. The paper runs CHaiDNN
    /// on this board for Table 1.
    #[must_use]
    pub fn zcu102() -> Self {
        FpgaDevice {
            name: "ZCU102".into(),
            dsp_budget: 2520.0,
            lut_budget: 274_080.0,
            clock_mhz: 250.0,
            efficiency: 0.50,
            per_layer_overhead_ms: 0.08,
            per_stage_dsp_overhead: 8.0,
        }
    }

    /// Xilinx ZC706 (Zynq-7045): 900 DSPs. The paper compares against
    /// DNNBuilder on this board for Table 3.
    #[must_use]
    pub fn zc706() -> Self {
        FpgaDevice {
            name: "ZC706".into(),
            dsp_budget: 900.0,
            lut_budget: 218_600.0,
            clock_mhz: 200.0,
            efficiency: 3.3,
            per_layer_overhead_ms: 0.10,
            per_stage_dsp_overhead: 15.15,
        }
    }

    /// Effective cycles per millisecond after the efficiency derating.
    #[must_use]
    pub fn cycles_per_ms(&self) -> f64 {
        self.clock_mhz * 1e3 * self.efficiency
    }
}

/// Latency in milliseconds of one operation at `q` bits with `parallelism`
/// concurrent multipliers (the paper's `2^pf`), per Eq. 11–12.
///
/// # Panics
///
/// Panics if `parallelism` is not positive.
#[must_use]
pub fn op_latency_ms(op: &OpShape, q: u32, parallelism: f64, device: &FpgaDevice) -> f64 {
    assert!(parallelism > 0.0, "parallelism must be positive");
    phi(q) / PHI_NORM * op.work() / parallelism / device.cycles_per_ms()
}

/// DSPs consumed by one IP with `parallelism` multipliers at `q` bits
/// (Eq. 13).
#[must_use]
pub fn ip_dsps(q: u32, parallelism: f64) -> f64 {
    psi(q) * parallelism
}

/// LUTs consumed by one IP with `parallelism` multipliers at `q` bits
/// (nonzero only below the DSP cliff, `q ≤ 4`).
#[must_use]
pub fn ip_luts(q: u32, parallelism: f64) -> f64 {
    lut_per_mult(q) * parallelism
}

/// A concrete recursive-accelerator implementation: one parallelism value
/// per IP class, single network-wide precision per class is permitted to
/// differ, but the common case (and the paper's resource-sharing
/// constraint `Iᵢᵐ = Iⱼᵐ`) keys everything by IP class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecursiveImpl {
    /// Bit-width per IP class.
    pub q_per_class: BTreeMap<String, u32>,
    /// Parallelism (`2^pf`, continuous) per IP class.
    pub parallelism_per_class: BTreeMap<String, f64>,
}

/// A concrete pipelined-accelerator implementation: per-stage precision and
/// parallelism, one stage per operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelinedImpl {
    /// Bit-width per stage (same length as the network's op list).
    pub q_per_stage: Vec<u32>,
    /// Parallelism per stage.
    pub parallelism_per_stage: Vec<f64>,
}

/// Evaluation result of an FPGA implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaReport {
    /// End-to-end single-image latency (ms).
    pub latency_ms: f64,
    /// Steady-state throughput (frames/s). For the recursive architecture
    /// this is simply `1000 / latency`; for the pipelined architecture it is
    /// `1000 / max stage latency`.
    pub throughput_fps: f64,
    /// DSP slices used.
    pub dsps: f64,
    /// LUTs used as multipliers.
    pub luts: f64,
    /// Per-operation latency breakdown (ms).
    pub per_op_latency_ms: Vec<f64>,
}

/// Errors from FPGA model evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FpgaError {
    /// An op's IP class has no entry in the implementation maps.
    MissingClass(String),
    /// Implementation vector length does not match the network.
    StageCountMismatch {
        /// Ops in the network.
        ops: usize,
        /// Stages provided.
        stages: usize,
    },
}

impl std::fmt::Display for FpgaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FpgaError::MissingClass(c) => write!(f, "no implementation for IP class `{c}`"),
            FpgaError::StageCountMismatch { ops, stages } => {
                write!(f, "pipelined impl has {stages} stages for {ops} ops")
            }
        }
    }
}

impl std::error::Error for FpgaError {}

/// Evaluates a network on a recursive accelerator: layers execute
/// sequentially on shared IPs; each IP's resource is counted once.
///
/// # Errors
///
/// Returns [`FpgaError::MissingClass`] when an op's IP class is absent from
/// `imp`.
pub fn eval_recursive(
    net: &NetworkShape,
    imp: &RecursiveImpl,
    device: &FpgaDevice,
) -> Result<FpgaReport, FpgaError> {
    let mut latency = 0.0;
    let mut per_op = Vec::with_capacity(net.ops.len());
    for op in &net.ops {
        let q = *imp
            .q_per_class
            .get(&op.ip_class)
            .ok_or_else(|| FpgaError::MissingClass(op.ip_class.clone()))?;
        let p = *imp
            .parallelism_per_class
            .get(&op.ip_class)
            .ok_or_else(|| FpgaError::MissingClass(op.ip_class.clone()))?;
        // Each compute layer is one invocation of the shared IP: it pays the
        // device's per-layer setup/weight-reload overhead.
        let l = op_latency_ms(op, q, p, device)
            + op.compute_layer_count() as f64 * device.per_layer_overhead_ms;
        per_op.push(l);
        latency += l;
    }
    // Resource: one IP per class actually used by the network.
    let mut dsps = 0.0;
    let mut luts = 0.0;
    for class in net.ip_classes() {
        let q = imp.q_per_class[&class];
        let p = imp.parallelism_per_class[&class];
        dsps += ip_dsps(q, p);
        luts += ip_luts(q, p);
    }
    Ok(FpgaReport {
        latency_ms: latency,
        throughput_fps: 1000.0 / latency,
        dsps,
        luts,
        per_op_latency_ms: per_op,
    })
}

/// Evaluates a network on a pipelined accelerator: one stage per op, no
/// sharing; throughput set by the slowest stage, single-image latency is the
/// sum of stage latencies.
///
/// # Errors
///
/// Returns [`FpgaError::StageCountMismatch`] when `imp` has the wrong number
/// of stages.
pub fn eval_pipelined(
    net: &NetworkShape,
    imp: &PipelinedImpl,
    device: &FpgaDevice,
) -> Result<FpgaReport, FpgaError> {
    if imp.q_per_stage.len() != net.ops.len() || imp.parallelism_per_stage.len() != net.ops.len() {
        return Err(FpgaError::StageCountMismatch {
            ops: net.ops.len(),
            stages: imp.q_per_stage.len().min(imp.parallelism_per_stage.len()),
        });
    }
    let mut per_op = Vec::with_capacity(net.ops.len());
    let mut dsps = 0.0;
    let mut luts = 0.0;
    for (i, op) in net.ops.iter().enumerate() {
        let q = imp.q_per_stage[i];
        let p = imp.parallelism_per_stage[i];
        per_op.push(op_latency_ms(op, q, p, device));
        // Every pipeline stage (one per compute layer) carries a fixed
        // DSP-equivalent cost for buffering and control.
        dsps += ip_dsps(q, p) + op.compute_layer_count() as f64 * device.per_stage_dsp_overhead;
        luts += ip_luts(q, p);
    }
    let max_stage = per_op.iter().copied().fold(0.0f64, f64::max);
    let latency: f64 = per_op.iter().sum();
    Ok(FpgaReport {
        latency_ms: latency,
        throughput_fps: 1000.0 / max_stage,
        dsps,
        luts,
        per_op_latency_ms: per_op,
    })
}

/// Optimally tunes a recursive implementation at uniform precision `q`:
/// distributes the DSP budget across IP classes minimizing total latency.
///
/// With latency `Σ_c W_c / p_c` and budget `Σ_c Ψ(q)·p_c = B`, the optimum
/// is `p_c ∝ √W_c` (Cauchy–Schwarz). For `q ≤ 4` (DSP-free multiplies) the
/// LUT budget takes the DSP budget's role. This mirrors the paper's remark
/// that implementation variables are re-tuned after the search (§5).
#[must_use]
pub fn tune_recursive(net: &NetworkShape, q: u32, device: &FpgaDevice) -> RecursiveImpl {
    // Work per class.
    let mut work: BTreeMap<String, f64> = BTreeMap::new();
    for op in &net.ops {
        *work.entry(op.ip_class.clone()).or_insert(0.0) += op.work();
    }
    let unit_cost = if psi(q) > 0.0 {
        psi(q)
    } else {
        lut_per_mult(q).max(1e-9)
    };
    let budget = if psi(q) > 0.0 {
        device.dsp_budget
    } else {
        device.lut_budget
    };
    let sqrt_sum: f64 = work.values().map(|w| w.sqrt()).sum();
    let mut parallelism = BTreeMap::new();
    let mut qs = BTreeMap::new();
    for (class, w) in &work {
        let p = (budget / unit_cost) * w.sqrt() / sqrt_sum;
        parallelism.insert(class.clone(), p.max(1.0));
        qs.insert(class.clone(), q);
    }
    RecursiveImpl {
        q_per_class: qs,
        parallelism_per_class: parallelism,
    }
}

/// Optimally tunes a pipelined implementation at uniform precision `q`:
/// parallelism proportional to stage work (equalizing stage latencies),
/// scaled to the resource budget.
#[must_use]
pub fn tune_pipelined(net: &NetworkShape, q: u32, device: &FpgaDevice) -> PipelinedImpl {
    let works: Vec<f64> = net.ops.iter().map(OpShape::work).collect();
    let total: f64 = works.iter().sum();
    let unit_cost = if psi(q) > 0.0 {
        psi(q)
    } else {
        lut_per_mult(q).max(1e-9)
    };
    let budget = if psi(q) > 0.0 {
        device.dsp_budget
    } else {
        device.lut_budget
    };
    // Deep pipelines pay a fixed per-stage cost before any compute: the
    // remaining budget shrinks with depth (floored at 4% so extremely deep
    // nets degrade rather than divide by zero).
    let stage_cost = if psi(q) > 0.0 {
        net.total_compute_layers() as f64 * device.per_stage_dsp_overhead
    } else {
        0.0
    };
    let effective = (budget - stage_cost).max(budget * 0.04);
    let parallelism: Vec<f64> = works
        .iter()
        .map(|w| ((effective / unit_cost) * w / total).max(1.0))
        .collect();
    PipelinedImpl {
        q_per_stage: vec![q; net.ops.len()],
        parallelism_per_stage: parallelism,
    }
}

/// The paper's §5 initialization of the parallel factor for a recursive
/// accelerator: `pf₀ = log₂(RES_ub / M)` with `M` operation candidates.
#[must_use]
pub fn initial_pf_recursive(dsp_budget: f64, num_ops: usize) -> f64 {
    (dsp_budget / num_ops as f64).log2()
}

/// The paper's §5 initialization for a pipelined accelerator:
/// `pf₀ = log₂(RES_ub / (M·N))`.
#[must_use]
pub fn initial_pf_pipelined(dsp_budget: f64, num_ops: usize, num_blocks: usize) -> f64 {
    (dsp_budget / (num_ops * num_blocks) as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_net() -> NetworkShape {
        NetworkShape {
            name: "toy".into(),
            ops: vec![
                OpShape::mbconv(16, 16, 3, 4, 16, 16, 1),
                OpShape::mbconv(16, 16, 3, 4, 16, 16, 1),
                OpShape::mbconv(16, 32, 5, 4, 16, 16, 2),
            ],
        }
    }

    #[test]
    fn latency_scales_inverse_with_parallelism() {
        let op = OpShape::mbconv(8, 8, 3, 4, 8, 8, 1);
        let d = FpgaDevice::zcu102();
        let l1 = op_latency_ms(&op, 16, 64.0, &d);
        let l2 = op_latency_ms(&op, 16, 128.0, &d);
        assert!((l1 / l2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn latency_scales_with_bits() {
        let op = OpShape::mbconv(8, 8, 3, 4, 8, 8, 1);
        let d = FpgaDevice::zcu102();
        let l16 = op_latency_ms(&op, 16, 64.0, &d);
        let l8 = op_latency_ms(&op, 8, 64.0, &d);
        assert!(
            (l16 / l8 - 2.0).abs() < 1e-9,
            "Φ(q)=q halves latency at 8-bit"
        );
    }

    #[test]
    fn dsp_cost_follows_psi() {
        assert_eq!(ip_dsps(16, 100.0), 100.0);
        assert_eq!(ip_dsps(8, 100.0), 50.0);
        assert_eq!(ip_dsps(4, 100.0), 0.0);
        assert!(ip_luts(4, 100.0) > 0.0);
        assert_eq!(ip_luts(16, 100.0), 0.0);
    }

    #[test]
    fn recursive_shares_resources() {
        let net = toy_net();
        let d = FpgaDevice::zcu102();
        let imp = tune_recursive(&net, 16, &d);
        let report = eval_recursive(&net, &imp, &d).unwrap();
        // Two ops share the k3_e4 IP: only 2 IP classes worth of DSPs.
        assert!(report.dsps <= d.dsp_budget * 1.001);
        assert_eq!(report.per_op_latency_ms.len(), 3);
        assert!(report.latency_ms > 0.0);
        // First two ops share a class -> identical latency.
        assert!((report.per_op_latency_ms[0] - report.per_op_latency_ms[1]).abs() < 1e-12);
    }

    #[test]
    fn recursive_missing_class_errors() {
        let net = toy_net();
        let d = FpgaDevice::zcu102();
        let imp = RecursiveImpl {
            q_per_class: BTreeMap::new(),
            parallelism_per_class: BTreeMap::new(),
        };
        assert!(matches!(
            eval_recursive(&net, &imp, &d),
            Err(FpgaError::MissingClass(_))
        ));
    }

    #[test]
    fn pipelined_uses_budget_and_balances() {
        let net = toy_net();
        let d = FpgaDevice::zc706();
        let imp = tune_pipelined(&net, 16, &d);
        let report = eval_pipelined(&net, &imp, &d).unwrap();
        assert!(report.dsps <= d.dsp_budget * 1.01);
        // Balanced stages: max/min stage latency ratio near 1.
        let max = report.per_op_latency_ms.iter().copied().fold(0.0, f64::max);
        let min = report
            .per_op_latency_ms
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(max / min < 1.5, "stages unbalanced: {max} vs {min}");
        assert!(report.throughput_fps > 0.0);
    }

    #[test]
    fn pipelined_stage_mismatch_errors() {
        let net = toy_net();
        let d = FpgaDevice::zc706();
        let imp = PipelinedImpl {
            q_per_stage: vec![16; 2],
            parallelism_per_stage: vec![64.0; 2],
        };
        assert!(matches!(
            eval_pipelined(&net, &imp, &d),
            Err(FpgaError::StageCountMismatch { .. })
        ));
    }

    #[test]
    fn tuned_recursive_beats_uniform_split() {
        // sqrt-proportional allocation should beat a uniform allocation.
        let net = toy_net();
        let d = FpgaDevice::zcu102();
        let tuned = tune_recursive(&net, 16, &d);
        let classes = net.ip_classes();
        let uniform_p = d.dsp_budget / psi(16) / classes.len() as f64;
        let uniform = RecursiveImpl {
            q_per_class: classes.iter().map(|c| (c.clone(), 16)).collect(),
            parallelism_per_class: classes.iter().map(|c| (c.clone(), uniform_p)).collect(),
        };
        let lt = eval_recursive(&net, &tuned, &d).unwrap().latency_ms;
        let lu = eval_recursive(&net, &uniform, &d).unwrap().latency_ms;
        assert!(lt <= lu * 1.0001, "tuned {lt} vs uniform {lu}");
    }

    #[test]
    fn lower_precision_is_faster_at_same_budget() {
        // 8-bit: Φ halves *and* Ψ halves -> 4x compute-latency improvement
        // at equal DSP budget (measured with invocation overhead disabled).
        let net = toy_net();
        let mut d = FpgaDevice::zcu102();
        d.per_layer_overhead_ms = 0.0;
        let r16 = eval_recursive(&net, &tune_recursive(&net, 16, &d), &d).unwrap();
        let r8 = eval_recursive(&net, &tune_recursive(&net, 8, &d), &d).unwrap();
        let ratio = r16.latency_ms / r8.latency_ms;
        assert!((ratio - 4.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn recursive_overhead_adds_per_layer() {
        let net = toy_net();
        let mut d0 = FpgaDevice::zcu102();
        d0.per_layer_overhead_ms = 0.0;
        let mut d1 = d0.clone();
        d1.per_layer_overhead_ms = 0.1;
        let imp = tune_recursive(&net, 16, &d0);
        let l0 = eval_recursive(&net, &imp, &d0).unwrap().latency_ms;
        let l1 = eval_recursive(&net, &imp, &d1).unwrap().latency_ms;
        let layers = net.total_compute_layers() as f64;
        assert!((l1 - l0 - 0.1 * layers).abs() < 1e-9);
    }

    #[test]
    fn pipelined_depth_tax_shrinks_effective_budget() {
        // A deep network of small ops gets less compute parallelism than a
        // shallow one with the same per-op structure.
        let shallow = NetworkShape {
            name: "shallow".into(),
            ops: vec![OpShape::mbconv(64, 64, 3, 4, 32, 32, 1)],
        };
        let deep = NetworkShape {
            name: "deep".into(),
            ops: (0..24)
                .map(|_| OpShape::mbconv(16, 16, 3, 4, 16, 16, 1))
                .collect(),
        };
        let d = FpgaDevice::zc706();
        let imp_s = tune_pipelined(&shallow, 16, &d);
        let imp_d = tune_pipelined(&deep, 16, &d);
        let p_s: f64 = imp_s.parallelism_per_stage.iter().sum();
        let p_d: f64 = imp_d.parallelism_per_stage.iter().sum();
        assert!(p_s > p_d, "shallow {p_s} should out-parallelize deep {p_d}");
    }

    #[test]
    fn initial_pf_matches_paper() {
        assert!((initial_pf_recursive(2520.0, 9) - (2520.0f64 / 9.0).log2()).abs() < 1e-12);
        assert!((initial_pf_pipelined(900.0, 9, 20) - (900.0f64 / 180.0).log2()).abs() < 1e-12);
    }

    #[test]
    fn throughput_latency_consistent_recursive() {
        let net = toy_net();
        let d = FpgaDevice::zcu102();
        let r = eval_recursive(&net, &tune_recursive(&net, 16, &d), &d).unwrap();
        assert!((r.throughput_fps - 1000.0 / r.latency_ms).abs() < 1e-9);
    }
}
