//! Analytic GPU latency model (paper §4.2).
//!
//! The paper uses *normalized measured latencies* per operation and
//! precision as constants `Perf^q(opᵢᵐ)` during the search, and constrains
//! the whole DNN to one precision (TensorRT supports 8-bit integer and
//! 16/32-bit floating point). With no GPU available here, the measured LUT
//! is replaced by a **roofline model**: per-op latency is the max of
//! compute time and memory time plus a kernel-launch overhead, derated by a
//! sustained-efficiency factor. The search consumes the model exactly the
//! way the paper consumes measurements — as a per-`(op, q)` constant table.

use crate::shapes::{NetworkShape, OpShape};
use serde::{Deserialize, Serialize};

/// GPU data precisions supported by the model (mirroring TensorRT's
/// 8-bit integer and 16/32-bit floating point as of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuPrecision {
    /// 32-bit floating point.
    Fp32,
    /// 16-bit floating point.
    Fp16,
    /// 8-bit integer.
    Int8,
}

impl GpuPrecision {
    /// Bit-width of the precision.
    #[must_use]
    pub fn bits(self) -> u32 {
        match self {
            GpuPrecision::Fp32 => 32,
            GpuPrecision::Fp16 => 16,
            GpuPrecision::Int8 => 8,
        }
    }

    /// All supported precisions.
    #[must_use]
    pub fn all() -> [GpuPrecision; 3] {
        [GpuPrecision::Fp32, GpuPrecision::Fp16, GpuPrecision::Int8]
    }

    /// The precision for a given bit-width, if supported.
    #[must_use]
    pub fn from_bits(bits: u32) -> Option<Self> {
        match bits {
            32 => Some(GpuPrecision::Fp32),
            16 => Some(GpuPrecision::Fp16),
            8 => Some(GpuPrecision::Int8),
            _ => None,
        }
    }
}

/// A GPU device descriptor for the roofline model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuDevice {
    /// Device name.
    pub name: String,
    /// Peak tera-MACs/s at fp32.
    pub peak_tmacs_fp32: f64,
    /// Peak tera-MACs/s at fp16.
    pub peak_tmacs_fp16: f64,
    /// Peak tera-MACs/s at int8.
    pub peak_tmacs_int8: f64,
    /// Memory bandwidth (GB/s).
    pub mem_bw_gbs: f64,
    /// Kernel launch / framework overhead per *compute layer* at fp32 (ms).
    /// Batch-1 inference of mobile-class CNNs is dominated by this term, so
    /// it is the main calibration constant.
    pub per_layer_overhead_ms: f64,
    /// How strongly the per-layer overhead scales with precision, in
    /// `[0, 1]`: effective overhead factor is
    /// `(1 − s) + s·(bits/32)`. Turing-class devices (tensor cores, fused
    /// low-precision pipelines) sit near 1; Pascal-class near 0.5.
    pub overhead_precision_scaling: f64,
    /// Sustained fraction of peak for small-batch inference.
    pub efficiency: f64,
}

impl GpuDevice {
    /// NVIDIA Titan RTX (Turing): the Table 1 measurement device.
    /// Calibrated against the published Table 1 latencies.
    #[must_use]
    pub fn titan_rtx() -> Self {
        GpuDevice {
            name: "Titan RTX".into(),
            peak_tmacs_fp32: 8.15,
            peak_tmacs_fp16: 16.3,
            peak_tmacs_int8: 32.6,
            mem_bw_gbs: 672.0,
            per_layer_overhead_ms: 0.40,
            overhead_precision_scaling: 1.0,
            efficiency: 0.18,
        }
    }

    /// NVIDIA GTX 1080 Ti (Pascal): the Table 2 measurement device. Pascal
    /// has no fast fp16 path, so fp16 peak equals fp32; int8 uses DP4A.
    /// Calibrated against the published Table 2 latencies.
    #[must_use]
    pub fn gtx_1080_ti() -> Self {
        GpuDevice {
            name: "GTX 1080 Ti".into(),
            peak_tmacs_fp32: 5.65,
            peak_tmacs_fp16: 5.65,
            peak_tmacs_int8: 22.6,
            mem_bw_gbs: 484.0,
            per_layer_overhead_ms: 0.034,
            overhead_precision_scaling: 0.5,
            efficiency: 0.25,
        }
    }

    /// NVIDIA P100 (the paper's search device; provided for completeness).
    #[must_use]
    pub fn p100() -> Self {
        GpuDevice {
            name: "P100".into(),
            peak_tmacs_fp32: 4.7,
            peak_tmacs_fp16: 9.4,
            peak_tmacs_int8: 4.7,
            mem_bw_gbs: 732.0,
            per_layer_overhead_ms: 0.05,
            overhead_precision_scaling: 0.5,
            efficiency: 0.25,
        }
    }

    /// Per-compute-layer overhead (ms) at `precision`.
    #[must_use]
    pub fn layer_overhead_ms(&self, precision: GpuPrecision) -> f64 {
        let s = self.overhead_precision_scaling;
        let factor = (1.0 - s) + s * f64::from(precision.bits()) / 32.0;
        self.per_layer_overhead_ms * factor
    }

    /// Peak MACs/s at `precision`, after the efficiency derating.
    #[must_use]
    pub fn sustained_macs(&self, precision: GpuPrecision) -> f64 {
        let peak = match precision {
            GpuPrecision::Fp32 => self.peak_tmacs_fp32,
            GpuPrecision::Fp16 => self.peak_tmacs_fp16,
            GpuPrecision::Int8 => self.peak_tmacs_int8,
        };
        peak * 1e12 * self.efficiency
    }

    /// Sustained memory bandwidth (bytes/s).
    #[must_use]
    pub fn sustained_bw(&self) -> f64 {
        self.mem_bw_gbs * 1e9 * self.efficiency
    }
}

/// Roofline latency (ms) of one operation at `precision`, batch 1.
///
/// Each *compute* layer (conv / depthwise / linear) is one kernel: its cost
/// is the max of compute time and memory time plus the device's per-layer
/// launch overhead. `Other` layers (batch-norm, activation) fuse into the
/// preceding kernel and are free. Memory traffic counts weights once and
/// activations twice (read + write) at the working precision.
#[must_use]
pub fn op_latency_ms(op: &OpShape, precision: GpuPrecision, device: &GpuDevice) -> f64 {
    let bytes_per_elem = f64::from(precision.bits()) / 8.0;
    let overhead = device.layer_overhead_ms(precision);
    let mut total = 0.0;
    for layer in &op.layers {
        if matches!(layer.kind, crate::shapes::LayerKind::Other { .. }) {
            continue;
        }
        let compute_s = layer.work() / device.sustained_macs(precision);
        let bytes = (layer.params() + 2.0 * layer.activations()) * bytes_per_elem;
        let memory_s = bytes / device.sustained_bw();
        total += compute_s.max(memory_s) * 1e3 + overhead;
    }
    total
}

/// GPU evaluation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuReport {
    /// End-to-end batch-1 latency (ms).
    pub latency_ms: f64,
    /// Per-op latency breakdown (ms).
    pub per_op_latency_ms: Vec<f64>,
    /// Precision evaluated.
    pub precision: GpuPrecision,
}

/// Evaluates a network end-to-end at uniform `precision` (paper §4.2
/// constrains the whole DNN to one precision on GPU).
#[must_use]
pub fn eval_gpu(net: &NetworkShape, precision: GpuPrecision, device: &GpuDevice) -> GpuReport {
    let per_op: Vec<f64> = net
        .ops
        .iter()
        .map(|op| op_latency_ms(op, precision, device))
        .collect();
    GpuReport {
        latency_ms: per_op.iter().sum(),
        per_op_latency_ms: per_op,
        precision,
    }
}

/// A per-`(op, q)` latency lookup table — the object the differentiable
/// search actually consumes, standing in for the paper's normalized
/// measured values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuLatencyLut {
    /// `lut[i][j]` = latency (ms) of op `i` at precision `j` (index into
    /// [`GpuPrecision::all`]).
    pub lut: Vec<[f64; 3]>,
}

impl GpuLatencyLut {
    /// Builds the table for `ops` on `device`.
    #[must_use]
    pub fn build(ops: &[OpShape], device: &GpuDevice) -> Self {
        let lut = ops
            .iter()
            .map(|op| {
                let mut row = [0.0; 3];
                for (j, p) in GpuPrecision::all().iter().enumerate() {
                    row[j] = op_latency_ms(op, *p, device);
                }
                row
            })
            .collect();
        GpuLatencyLut { lut }
    }

    /// Latency of op `i` at `precision`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn latency(&self, i: usize, precision: GpuPrecision) -> f64 {
        let j = GpuPrecision::all()
            .iter()
            .position(|p| *p == precision)
            .expect("all precisions enumerated");
        self.lut[i][j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_op() -> OpShape {
        OpShape::mbconv(96, 96, 5, 6, 14, 14, 1)
    }

    #[test]
    fn precision_bits_roundtrip() {
        for p in GpuPrecision::all() {
            assert_eq!(GpuPrecision::from_bits(p.bits()), Some(p));
        }
        assert_eq!(GpuPrecision::from_bits(4), None);
    }

    #[test]
    fn lower_precision_no_slower() {
        let d = GpuDevice::titan_rtx();
        let op = big_op();
        let l32 = op_latency_ms(&op, GpuPrecision::Fp32, &d);
        let l16 = op_latency_ms(&op, GpuPrecision::Fp16, &d);
        let l8 = op_latency_ms(&op, GpuPrecision::Int8, &d);
        assert!(l32 >= l16 && l16 >= l8, "{l32} {l16} {l8}");
    }

    #[test]
    fn pascal_fp16_gains_memory_only() {
        // On the 1080 Ti model fp16 compute equals fp32; the improvement
        // comes from halved memory traffic, so it is modest — the shape of
        // paper Table 2.
        let d = GpuDevice::gtx_1080_ti();
        let op = big_op();
        let l32 = op_latency_ms(&op, GpuPrecision::Fp32, &d);
        let l16 = op_latency_ms(&op, GpuPrecision::Fp16, &d);
        let ratio = l32 / l16;
        assert!(ratio > 1.0 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn network_latency_sums_ops() {
        let d = GpuDevice::titan_rtx();
        let net = NetworkShape {
            name: "n".into(),
            ops: vec![big_op(), big_op()],
        };
        let r = eval_gpu(&net, GpuPrecision::Fp16, &d);
        assert_eq!(r.per_op_latency_ms.len(), 2);
        assert!((r.latency_ms - r.per_op_latency_ms.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn overhead_dominates_tiny_ops() {
        let d = GpuDevice::titan_rtx();
        let tiny = OpShape::mbconv(4, 4, 3, 1, 2, 2, 1);
        // e=1 MBConv has 2 compute layers (dw + project).
        let l = op_latency_ms(&tiny, GpuPrecision::Fp32, &d);
        let oh = 2.0 * d.layer_overhead_ms(GpuPrecision::Fp32);
        assert!((l - oh) / l < 0.1, "latency {l} ≉ overhead {oh}");
    }

    #[test]
    fn overhead_scales_with_precision_on_turing() {
        let d = GpuDevice::titan_rtx();
        let f32oh = d.layer_overhead_ms(GpuPrecision::Fp32);
        let f16oh = d.layer_overhead_ms(GpuPrecision::Fp16);
        assert!((f16oh / f32oh - 0.5).abs() < 1e-9);
        // Pascal scales only half as strongly.
        let p = GpuDevice::gtx_1080_ti();
        let ratio =
            p.layer_overhead_ms(GpuPrecision::Fp16) / p.layer_overhead_ms(GpuPrecision::Fp32);
        assert!((ratio - 0.75).abs() < 1e-9);
    }

    #[test]
    fn lut_matches_direct_model() {
        let d = GpuDevice::gtx_1080_ti();
        let ops = vec![big_op(), OpShape::mbconv(32, 32, 3, 4, 28, 28, 1)];
        let lut = GpuLatencyLut::build(&ops, &d);
        for (i, op) in ops.iter().enumerate() {
            for p in GpuPrecision::all() {
                assert_eq!(lut.latency(i, p), op_latency_ms(op, p, &d));
            }
        }
    }

    #[test]
    fn devices_have_distinct_profiles() {
        let rtx = GpuDevice::titan_rtx();
        let pascal = GpuDevice::gtx_1080_ti();
        assert!(rtx.sustained_macs(GpuPrecision::Fp16) > pascal.sustained_macs(GpuPrecision::Fp16));
    }
}

/// GPU energy model — the paper's conclusion lists "GPU power and resource
/// formulation" as future work; this implements a first-order version:
/// energy = busy-time × dynamic power + idle leakage, where the dynamic
/// power splits between compute-bound (near-TDP) and memory-bound
/// (bandwidth-limited) phases.
pub mod energy {
    use super::{GpuDevice, GpuPrecision};
    use crate::shapes::{NetworkShape, OpShape};

    /// Power characteristics added on top of a [`GpuDevice`].
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct GpuPower {
        /// Board power when compute-bound (W).
        pub compute_watts: f64,
        /// Board power when memory-bound (W).
        pub memory_watts: f64,
        /// Idle/leakage power (W).
        pub idle_watts: f64,
    }

    impl GpuPower {
        /// Titan RTX class power profile (280 W TDP).
        #[must_use]
        pub fn titan_rtx() -> Self {
            GpuPower {
                compute_watts: 280.0,
                memory_watts: 160.0,
                idle_watts: 15.0,
            }
        }

        /// GTX 1080 Ti class power profile (250 W TDP).
        #[must_use]
        pub fn gtx_1080_ti() -> Self {
            GpuPower {
                compute_watts: 250.0,
                memory_watts: 150.0,
                idle_watts: 12.0,
            }
        }
    }

    /// Energy (mJ) of one operation at `precision`.
    #[must_use]
    pub fn op_energy_mj(
        op: &OpShape,
        precision: GpuPrecision,
        device: &GpuDevice,
        power: &GpuPower,
    ) -> f64 {
        let bytes_per_elem = f64::from(precision.bits()) / 8.0;
        let mut energy_j = 0.0;
        for layer in &op.layers {
            if matches!(layer.kind, crate::shapes::LayerKind::Other { .. }) {
                continue;
            }
            let compute_s = layer.work() / device.sustained_macs(precision);
            let bytes = (layer.params() + 2.0 * layer.activations()) * bytes_per_elem;
            let memory_s = bytes / device.sustained_bw();
            // Bound phase dominates the power draw; the overhead window
            // draws idle power.
            let (busy_s, watts) = if compute_s >= memory_s {
                (compute_s, power.compute_watts)
            } else {
                (memory_s, power.memory_watts)
            };
            let overhead_s = device.layer_overhead_ms(precision) / 1e3;
            energy_j += busy_s * watts + overhead_s * power.idle_watts;
        }
        energy_j * 1e3
    }

    /// Energy (mJ) of a whole network at uniform `precision`.
    #[must_use]
    pub fn network_energy_mj(
        net: &NetworkShape,
        precision: GpuPrecision,
        device: &GpuDevice,
        power: &GpuPower,
    ) -> f64 {
        net.ops
            .iter()
            .map(|op| op_energy_mj(op, precision, device, power))
            .sum()
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::shapes::OpShape;

        #[test]
        fn energy_positive_and_monotone_in_precision() {
            let d = GpuDevice::titan_rtx();
            let p = GpuPower::titan_rtx();
            let op = OpShape::mbconv(64, 64, 5, 6, 14, 14, 1);
            let e32 = op_energy_mj(&op, GpuPrecision::Fp32, &d, &p);
            let e16 = op_energy_mj(&op, GpuPrecision::Fp16, &d, &p);
            let e8 = op_energy_mj(&op, GpuPrecision::Int8, &d, &p);
            assert!(e32 > 0.0);
            assert!(e32 >= e16 && e16 >= e8, "{e32} {e16} {e8}");
        }

        #[test]
        fn network_energy_sums_ops() {
            let d = GpuDevice::titan_rtx();
            let p = GpuPower::titan_rtx();
            let op = OpShape::mbconv(32, 32, 3, 4, 16, 16, 1);
            let net1 = NetworkShape {
                name: "one".into(),
                ops: vec![op.clone()],
            };
            let net2 = NetworkShape {
                name: "two".into(),
                ops: vec![op.clone(), op],
            };
            let e1 = network_energy_mj(&net1, GpuPrecision::Fp16, &d, &p);
            let e2 = network_energy_mj(&net2, GpuPrecision::Fp16, &d, &p);
            assert!((e2 - 2.0 * e1).abs() < 1e-9);
        }

        #[test]
        fn bigger_work_costs_more_energy() {
            let d = GpuDevice::gtx_1080_ti();
            let p = GpuPower::gtx_1080_ti();
            let small = OpShape::mbconv(16, 16, 3, 4, 8, 8, 1);
            let large = OpShape::mbconv(64, 64, 5, 6, 28, 28, 1);
            assert!(
                op_energy_mj(&large, GpuPrecision::Fp32, &d, &p)
                    > op_energy_mj(&small, GpuPrecision::Fp32, &d, &p)
            );
        }
    }
}
