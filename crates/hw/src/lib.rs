//! # edd-hw
//!
//! Analytic hardware performance and resource models for the EDD
//! reproduction — the device-specific Stage-1 formulations of paper §4:
//!
//! * [`calib`] — the bit-width calibration functions `Φ(q) = q` (latency)
//!   and the piecewise DSP-packing function `Ψ(q)` (Eq. 12–13);
//! * [`shapes`] — layer/operation/network shape descriptions and the work
//!   terms of Eq. 12, shared by every evaluator and the search;
//! * [`fpga`] — recursive (CHaiDNN-style, shared IPs) and pipelined
//!   (DNNBuilder-style, per-stage IPs) accelerator models with ZCU102 and
//!   ZC706 device descriptors, plus post-search implementation tuning;
//! * [`gpu`] — a roofline latency model with Titan RTX / GTX 1080 Ti / P100
//!   descriptors and the per-`(op, q)` latency LUT the search consumes.
//!
//! All models are pure math (no autodiff): the differentiable mirror lives
//! in `edd-core`, which pulls coefficients from here.

#![warn(missing_docs)]

pub mod accel;
pub mod calib;
pub mod fpga;
pub mod gpu;
pub mod metrics;
pub mod shapes;

pub use accel::{eval_accel, predicted_throughput_fps, AccelDevice, AccelReport};
pub use fpga::{
    eval_pipelined, eval_recursive, initial_pf_pipelined, initial_pf_recursive, ip_dsps, ip_luts,
    tune_pipelined, tune_recursive, FpgaDevice, FpgaError, FpgaReport, PipelinedImpl,
    RecursiveImpl,
};
pub use gpu::energy::{network_energy_mj, op_energy_mj as gpu_op_energy_mj, GpuPower};
pub use gpu::{eval_gpu, GpuDevice, GpuLatencyLut, GpuPrecision, GpuReport};
pub use metrics::HwPoint;
pub use shapes::{LayerKind, LayerShape, NetworkShape, OpShape};
