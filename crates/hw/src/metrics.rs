//! Uniform objective-space projection of device evaluation reports.
//!
//! Every device family reports performance in its own native terms — GPU
//! batch-1 latency, recursive-FPGA end-to-end latency plus DSPs,
//! pipelined-FPGA steady-state throughput plus DSPs, dedicated-accelerator
//! latency — which makes cross-target comparison (and Pareto-front
//! bookkeeping in a multi-target sweep) awkward. [`HwPoint`] normalizes
//! each report to two minimized axes: **milliseconds per frame** (latency,
//! or `1000 / fps` for throughput-objective targets) and **DSP slices**
//! (`0` for targets whose silicon is fixed and therefore not part of the
//! search trade-off).

use crate::accel::AccelReport;
use crate::fpga::FpgaReport;
use crate::gpu::GpuReport;

/// A device evaluation reduced to the two minimized sweep objectives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwPoint {
    /// Milliseconds per frame: latency for latency-objective targets,
    /// `1000 / throughput_fps` for throughput-objective ones.
    pub perf_ms: f64,
    /// DSP slices consumed; `0` when the target has fixed silicon (GPU,
    /// dedicated accelerator) and resources are not searched over.
    pub resource_dsps: f64,
}

impl HwPoint {
    /// GPU: batch-1 latency; resources are fixed silicon.
    #[must_use]
    pub fn from_gpu(report: &GpuReport) -> Self {
        HwPoint {
            perf_ms: report.latency_ms,
            resource_dsps: 0.0,
        }
    }

    /// Recursive FPGA accelerator: latency objective, shared-IP DSPs.
    #[must_use]
    pub fn from_recursive(report: &FpgaReport) -> Self {
        HwPoint {
            perf_ms: report.latency_ms,
            resource_dsps: report.dsps,
        }
    }

    /// Pipelined FPGA accelerator: throughput objective, so the perf axis
    /// is steady-state milliseconds per frame, not single-image latency.
    #[must_use]
    pub fn from_pipelined(report: &FpgaReport) -> Self {
        HwPoint {
            perf_ms: 1000.0 / report.throughput_fps,
            resource_dsps: report.dsps,
        }
    }

    /// Dedicated bit-flexible accelerator: latency; fixed silicon.
    #[must_use]
    pub fn from_accel(report: &AccelReport) -> Self {
        HwPoint {
            perf_ms: report.latency_ms,
            resource_dsps: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpga::{eval_pipelined, eval_recursive, tune_pipelined, tune_recursive, FpgaDevice};
    use crate::gpu::{eval_gpu, GpuDevice, GpuPrecision};
    use crate::shapes::{NetworkShape, OpShape};

    fn tiny_net() -> NetworkShape {
        NetworkShape {
            name: "t".into(),
            ops: vec![
                OpShape::mbconv(16, 24, 3, 1, 16, 16, 1),
                OpShape::mbconv(24, 32, 5, 6, 16, 16, 2),
            ],
        }
    }

    #[test]
    fn gpu_and_accel_points_have_zero_resource() {
        let net = tiny_net();
        let g = HwPoint::from_gpu(&eval_gpu(&net, GpuPrecision::Fp16, &GpuDevice::titan_rtx()));
        assert!(g.perf_ms > 0.0);
        assert_eq!(g.resource_dsps, 0.0);
        let a = HwPoint::from_accel(&crate::accel::eval_accel(
            &net,
            &vec![8; net.ops.len()],
            &crate::accel::AccelDevice::loom_like(),
        ));
        assert!(a.perf_ms > 0.0);
        assert_eq!(a.resource_dsps, 0.0);
    }

    #[test]
    fn fpga_points_expose_dsps_and_objective() {
        let net = tiny_net();
        let zcu = FpgaDevice::zcu102();
        let rec = eval_recursive(&net, &tune_recursive(&net, 16, &zcu), &zcu).unwrap();
        let r = HwPoint::from_recursive(&rec);
        assert_eq!(r.perf_ms, rec.latency_ms);
        assert!(r.resource_dsps > 0.0);

        let zc7 = FpgaDevice::zc706();
        let pipe = eval_pipelined(&net, &tune_pipelined(&net, 16, &zc7), &zc7).unwrap();
        let p = HwPoint::from_pipelined(&pipe);
        // Throughput objective: ms/frame is the pipeline initiation
        // interval, which is at most the single-image latency.
        assert!((p.perf_ms - 1000.0 / pipe.throughput_fps).abs() < 1e-12);
        assert!(p.perf_ms <= pipe.latency_ms);
        assert!(p.resource_dsps > 0.0);
    }
}
