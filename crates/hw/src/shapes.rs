//! Layer and operation shape descriptions, and the work terms of paper
//! Eq. 12.
//!
//! An *operation* (`opᵢᵐ` in the paper) is a short sequence of layers — for
//! MBConv: expand `conv-1×1`, `dwconv-k×k`, project `conv-1×1`, plus
//! normalization/activation — whose latency and resource are summed
//! (paper §3.2.1: "the latency and resource are the summation of all
//! layers").

use serde::{Deserialize, Serialize};

/// The compute class of one layer, mirroring the three cases of Eq. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerKind {
    /// Standard convolution: work `k²·h·w·cin·cout`.
    Conv {
        /// Square kernel size.
        k: usize,
        /// Input channels.
        cin: usize,
        /// Output channels.
        cout: usize,
    },
    /// Depthwise convolution: work `k²·h·w·cin`.
    DwConv {
        /// Square kernel size.
        k: usize,
        /// Channels.
        c: usize,
    },
    /// Everything else (batch-norm, activation, pooling, elementwise):
    /// work `h·w·cin`.
    Other {
        /// Channels.
        c: usize,
    },
    /// Fully-connected layer: work `cin·cout` (spatial dims 1).
    Linear {
        /// Input features.
        cin: usize,
        /// Output features.
        cout: usize,
    },
}

/// One layer of an operation: a compute class plus its output spatial size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerShape {
    /// Compute class.
    pub kind: LayerKind,
    /// Output height.
    pub h: usize,
    /// Output width.
    pub w: usize,
}

impl LayerShape {
    /// The bracketed work term of Eq. 12 (number of multiply-accumulates for
    /// compute layers; element count for `Other`).
    #[must_use]
    pub fn work(&self) -> f64 {
        let hw = (self.h * self.w) as f64;
        match self.kind {
            LayerKind::Conv { k, cin, cout } => (k * k) as f64 * hw * cin as f64 * cout as f64,
            LayerKind::DwConv { k, c } => (k * k) as f64 * hw * c as f64,
            LayerKind::Other { c } => hw * c as f64,
            LayerKind::Linear { cin, cout } => cin as f64 * cout as f64,
        }
    }

    /// Number of weight parameters contributed by this layer.
    #[must_use]
    pub fn params(&self) -> f64 {
        match self.kind {
            LayerKind::Conv { k, cin, cout } => (k * k * cin * cout) as f64,
            LayerKind::DwConv { k, c } => (k * k * c) as f64,
            LayerKind::Other { c } => 2.0 * c as f64, // bn gamma/beta-style
            LayerKind::Linear { cin, cout } => (cin * cout + cout) as f64,
        }
    }

    /// Output activation element count.
    #[must_use]
    pub fn activations(&self) -> f64 {
        let hw = (self.h * self.w) as f64;
        match self.kind {
            LayerKind::Conv { cout, .. } => hw * cout as f64,
            LayerKind::DwConv { c, .. } | LayerKind::Other { c } => hw * c as f64,
            LayerKind::Linear { cout, .. } => cout as f64,
        }
    }
}

/// One searchable operation: a named sequence of layers plus an *IP class*
/// label used for resource sharing in recursive FPGA accelerators (ops with
/// equal `ip_class` share one IP instance; paper Fig. 2/3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpShape {
    /// Human-readable name, e.g. `"mbconv_k3_e4"`.
    pub name: String,
    /// IP-sharing class. Ops in different blocks with the same class reuse
    /// the same hardware IP in a recursive accelerator.
    pub ip_class: String,
    /// The layers executed by this operation, in order.
    pub layers: Vec<LayerShape>,
}

impl OpShape {
    /// Total work of the operation (summed over layers, paper Eq. 11).
    #[must_use]
    pub fn work(&self) -> f64 {
        self.layers.iter().map(LayerShape::work).sum()
    }

    /// Total parameter count of the operation.
    #[must_use]
    pub fn params(&self) -> f64 {
        self.layers.iter().map(LayerShape::params).sum()
    }

    /// Total output activations of the operation.
    #[must_use]
    pub fn activations(&self) -> f64 {
        self.layers.iter().map(LayerShape::activations).sum()
    }

    /// Number of *compute* layers (convolutions and linear layers; the
    /// `Other` layers fuse into them on real hardware and carry no
    /// invocation overhead).
    #[must_use]
    pub fn compute_layer_count(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| !matches!(l.kind, LayerKind::Other { .. }))
            .count()
    }

    /// Builds the layer sequence of an MBConv operation with kernel `k`,
    /// expansion `e`, input `cin`, output `cout`, input spatial size
    /// `h×w` and `stride` (layers after the depthwise stage run at the
    /// strided resolution).
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the stride is zero.
    #[must_use]
    pub fn mbconv(
        cin: usize,
        cout: usize,
        k: usize,
        e: usize,
        h: usize,
        w: usize,
        stride: usize,
    ) -> OpShape {
        assert!(
            cin > 0 && cout > 0 && k > 0 && e > 0 && h > 0 && w > 0 && stride > 0,
            "mbconv dimensions must be positive"
        );
        let mid = cin * e;
        let (oh, ow) = (h.div_ceil(stride), w.div_ceil(stride));
        let mut layers = Vec::new();
        if e > 1 {
            layers.push(LayerShape {
                kind: LayerKind::Conv {
                    k: 1,
                    cin,
                    cout: mid,
                },
                h,
                w,
            });
            layers.push(LayerShape {
                kind: LayerKind::Other { c: mid },
                h,
                w,
            });
        }
        layers.push(LayerShape {
            kind: LayerKind::DwConv { k, c: mid },
            h: oh,
            w: ow,
        });
        layers.push(LayerShape {
            kind: LayerKind::Other { c: mid },
            h: oh,
            w: ow,
        });
        layers.push(LayerShape {
            kind: LayerKind::Conv {
                k: 1,
                cin: mid,
                cout,
            },
            h: oh,
            w: ow,
        });
        layers.push(LayerShape {
            kind: LayerKind::Other { c: cout },
            h: oh,
            w: ow,
        });
        OpShape {
            name: format!("mbconv_k{k}_e{e}_c{cin}x{cout}_s{stride}"),
            ip_class: format!("mbconv_k{k}_e{e}"),
            layers,
        }
    }
}

/// A whole network as a sequence of operations — the unit evaluated by the
/// FPGA and GPU models, and the exchange format between search, zoo and
/// benchmark harnesses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkShape {
    /// Network name.
    pub name: String,
    /// Operations in execution order.
    pub ops: Vec<OpShape>,
}

impl NetworkShape {
    /// Total multiply-accumulate work of the network.
    #[must_use]
    pub fn total_work(&self) -> f64 {
        self.ops.iter().map(OpShape::work).sum()
    }

    /// Total parameter count.
    #[must_use]
    pub fn total_params(&self) -> f64 {
        self.ops.iter().map(OpShape::params).sum()
    }

    /// Total number of compute layers across all operations.
    #[must_use]
    pub fn total_compute_layers(&self) -> usize {
        self.ops.iter().map(OpShape::compute_layer_count).sum()
    }

    /// The distinct IP classes of this network, in first-appearance order.
    #[must_use]
    pub fn ip_classes(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for op in &self.ops {
            if !seen.contains(&op.ip_class) {
                seen.push(op.ip_class.clone());
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_work_matches_formula() {
        let l = LayerShape {
            kind: LayerKind::Conv {
                k: 3,
                cin: 16,
                cout: 32,
            },
            h: 8,
            w: 8,
        };
        assert_eq!(l.work(), 9.0 * 64.0 * 16.0 * 32.0);
    }

    #[test]
    fn dwconv_work_drops_cout() {
        let l = LayerShape {
            kind: LayerKind::DwConv { k: 5, c: 16 },
            h: 4,
            w: 4,
        };
        assert_eq!(l.work(), 25.0 * 16.0 * 16.0);
    }

    #[test]
    fn other_work_is_elementwise() {
        let l = LayerShape {
            kind: LayerKind::Other { c: 8 },
            h: 2,
            w: 3,
        };
        assert_eq!(l.work(), 48.0);
    }

    #[test]
    fn linear_work() {
        let l = LayerShape {
            kind: LayerKind::Linear { cin: 128, cout: 10 },
            h: 1,
            w: 1,
        };
        assert_eq!(l.work(), 1280.0);
    }

    #[test]
    fn mbconv_op_structure() {
        let op = OpShape::mbconv(16, 24, 5, 4, 32, 32, 2);
        // expand conv + bn + dw + bn + project + bn = 6 layers
        assert_eq!(op.layers.len(), 6);
        assert_eq!(op.ip_class, "mbconv_k5_e4");
        // Depthwise runs at strided resolution 16x16.
        assert_eq!(op.layers[2].h, 16);
        // Expand conv dominates: k=1, 16->64 at 32x32.
        assert!(op.work() > 0.0);
    }

    #[test]
    fn mbconv_expansion1_omits_expand() {
        let op = OpShape::mbconv(16, 16, 3, 1, 8, 8, 1);
        assert_eq!(op.layers.len(), 4);
    }

    #[test]
    fn larger_kernel_more_work() {
        let w3 = OpShape::mbconv(16, 16, 3, 4, 16, 16, 1).work();
        let w7 = OpShape::mbconv(16, 16, 7, 4, 16, 16, 1).work();
        assert!(w7 > w3);
    }

    #[test]
    fn larger_expansion_more_work_and_params() {
        let a = OpShape::mbconv(16, 16, 3, 4, 16, 16, 1);
        let b = OpShape::mbconv(16, 16, 3, 6, 16, 16, 1);
        assert!(b.work() > a.work());
        assert!(b.params() > a.params());
    }

    #[test]
    fn network_aggregates_and_ip_classes() {
        let net = NetworkShape {
            name: "t".into(),
            ops: vec![
                OpShape::mbconv(8, 8, 3, 4, 8, 8, 1),
                OpShape::mbconv(8, 8, 3, 4, 8, 8, 1),
                OpShape::mbconv(8, 8, 5, 4, 8, 8, 1),
            ],
        };
        assert_eq!(net.ip_classes(), vec!["mbconv_k3_e4", "mbconv_k5_e4"]);
        assert!(net.total_work() > 0.0);
        assert!(net.total_params() > 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn mbconv_rejects_zero_stride() {
        let _ = OpShape::mbconv(8, 8, 3, 4, 8, 8, 0);
    }

    #[test]
    fn serde_roundtrip() {
        let op = OpShape::mbconv(8, 16, 3, 4, 8, 8, 2);
        let json = serde_json::to_string(&op).unwrap();
        let back: OpShape = serde_json::from_str(&json).unwrap();
        assert_eq!(op, back);
    }
}
