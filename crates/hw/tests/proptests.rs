//! Property-based tests of the hardware models: monotonicities and budget
//! feasibility across randomly drawn operation shapes and implementations.

use edd_hw::accel::{op_energy_uj, op_latency_ms as accel_latency, AccelDevice};
use edd_hw::calib::{phi, psi};
use edd_hw::fpga::op_latency_ms as fpga_latency;
use edd_hw::gpu::{op_latency_ms as gpu_latency, GpuPrecision};
use edd_hw::{
    eval_pipelined, eval_recursive, tune_pipelined, tune_recursive, FpgaDevice, GpuDevice,
    NetworkShape, OpShape,
};
use proptest::prelude::*;

/// Strategy: a random MBConv op shape.
fn arb_op() -> impl Strategy<Value = OpShape> {
    (
        prop::sample::select(vec![8usize, 16, 32]),
        prop::sample::select(vec![8usize, 16, 32]),
        prop::sample::select(vec![3usize, 5, 7]),
        prop::sample::select(vec![4usize, 5, 6]),
        prop::sample::select(vec![8usize, 16, 32]),
        1usize..3,
    )
        .prop_map(|(cin, cout, k, e, hw, s)| OpShape::mbconv(cin, cout, k, e, hw, hw, s))
}

/// Strategy: a random small network.
fn arb_net() -> impl Strategy<Value = NetworkShape> {
    prop::collection::vec(arb_op(), 2..8).prop_map(|ops| NetworkShape {
        name: "prop".into(),
        ops,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fpga_latency_monotone_in_parallelism(op in arb_op(), p in 2.0f64..512.0) {
        let d = FpgaDevice::zcu102();
        let l1 = fpga_latency(&op, 16, p, &d);
        let l2 = fpga_latency(&op, 16, p * 2.0, &d);
        prop_assert!(l2 < l1);
    }

    #[test]
    fn fpga_latency_monotone_in_bits(op in arb_op(), p in 2.0f64..512.0) {
        let d = FpgaDevice::zcu102();
        prop_assert!(fpga_latency(&op, 8, p, &d) <= fpga_latency(&op, 16, p, &d));
        prop_assert!(fpga_latency(&op, 4, p, &d) <= fpga_latency(&op, 8, p, &d));
    }

    #[test]
    fn gpu_latency_monotone_in_precision(op in arb_op()) {
        for device in [GpuDevice::titan_rtx(), GpuDevice::gtx_1080_ti(), GpuDevice::p100()] {
            let l32 = gpu_latency(&op, GpuPrecision::Fp32, &device);
            let l16 = gpu_latency(&op, GpuPrecision::Fp16, &device);
            let l8 = gpu_latency(&op, GpuPrecision::Int8, &device);
            prop_assert!(l32 >= l16 && l16 >= l8, "{}: {l32} {l16} {l8}", device.name);
        }
    }

    #[test]
    fn tuned_recursive_respects_budget(net in arb_net(), q in prop::sample::select(vec![8u32, 16])) {
        let d = FpgaDevice::zcu102();
        let imp = tune_recursive(&net, q, &d);
        let report = eval_recursive(&net, &imp, &d).unwrap();
        // The sqrt allocation can exceed only via the max(1.0) clamp on
        // vanishing classes; allow 1% slack.
        prop_assert!(report.dsps <= d.dsp_budget * 1.01, "dsps {}", report.dsps);
        prop_assert!(report.latency_ms.is_finite() && report.latency_ms > 0.0);
    }

    #[test]
    fn tuned_pipelined_respects_budget(net in arb_net()) {
        let d = FpgaDevice::zc706();
        let imp = tune_pipelined(&net, 16, &d);
        let report = eval_pipelined(&net, &imp, &d).unwrap();
        prop_assert!(report.dsps <= d.dsp_budget * 1.05, "dsps {}", report.dsps);
        prop_assert!(report.throughput_fps > 0.0);
        // Single-image latency >= slowest stage.
        let max_stage = report.per_op_latency_ms.iter().copied().fold(0.0, f64::max);
        prop_assert!(report.latency_ms >= max_stage - 1e-12);
    }

    #[test]
    fn recursive_latency_sums_per_op(net in arb_net()) {
        let d = FpgaDevice::zcu102();
        let imp = tune_recursive(&net, 16, &d);
        let report = eval_recursive(&net, &imp, &d).unwrap();
        let sum: f64 = report.per_op_latency_ms.iter().sum();
        prop_assert!((report.latency_ms - sum).abs() < 1e-9);
    }

    #[test]
    fn more_parallel_classes_never_reduce_shared_resource(net in arb_net()) {
        // Resource of the recursive impl counts each class once: evaluating
        // the same impl on a net with duplicated ops must not change DSPs.
        let d = FpgaDevice::zcu102();
        let imp = tune_recursive(&net, 16, &d);
        let before = eval_recursive(&net, &imp, &d).unwrap().dsps;
        let mut doubled = net.clone();
        doubled.ops.extend(net.ops.iter().cloned());
        let after = eval_recursive(&doubled, &imp, &d).unwrap().dsps;
        prop_assert!((before - after).abs() < 1e-9, "sharing must dedupe: {before} vs {after}");
    }

    #[test]
    fn accel_latency_proportional_to_bits(op in arb_op(), q in prop::sample::select(vec![2u32, 4, 8])) {
        let d = AccelDevice::loom_like();
        let l_q = accel_latency(&op, q, &d);
        let l_2q = accel_latency(&op, 2 * q, &d);
        prop_assert!((l_2q / l_q - 2.0).abs() < 1e-6);
    }

    #[test]
    fn accel_energy_monotone_in_bits(op in arb_op()) {
        let d = AccelDevice::loom_like();
        let mut last = 0.0;
        for q in [2u32, 4, 8, 16] {
            let e = op_energy_uj(&op, q, &d);
            prop_assert!(e >= last);
            last = e;
        }
    }

    #[test]
    fn calibration_functions_sane(q in 1u32..17) {
        prop_assert!(phi(q) > 0.0);
        prop_assert!(psi(q) >= 0.0 && psi(q) <= 1.0);
    }

    #[test]
    fn work_positive_and_scales_with_resolution(op_small in arb_op()) {
        prop_assert!(op_small.work() > 0.0);
        let mut layers = op_small.layers.clone();
        for l in &mut layers {
            l.h *= 2;
            l.w *= 2;
        }
        let big = OpShape { name: "big".into(), ip_class: "big".into(), layers };
        prop_assert!(big.work() > op_small.work());
    }
}
