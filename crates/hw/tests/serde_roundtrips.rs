//! Serde round-trip tests for every public data type of the hardware
//! models — these types are the JSON exchange surface between the search,
//! external tooling, and saved experiment artifacts.

use edd_hw::{
    eval_pipelined, eval_recursive, tune_pipelined, tune_recursive, AccelDevice, FpgaDevice,
    GpuDevice, NetworkShape, OpShape,
};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("parses")
}

#[test]
fn devices_roundtrip() {
    for d in [
        GpuDevice::titan_rtx(),
        GpuDevice::gtx_1080_ti(),
        GpuDevice::p100(),
    ] {
        assert_eq!(roundtrip(&d), d);
    }
    for d in [FpgaDevice::zcu102(), FpgaDevice::zc706()] {
        assert_eq!(roundtrip(&d), d);
    }
    let a = AccelDevice::loom_like();
    assert_eq!(roundtrip(&a), a);
}

#[test]
fn network_shapes_roundtrip() {
    let net = NetworkShape {
        name: "probe".into(),
        ops: vec![
            OpShape::mbconv(16, 24, 3, 4, 32, 32, 2),
            OpShape::mbconv(24, 24, 5, 6, 16, 16, 1),
        ],
    };
    let back = roundtrip(&net);
    assert_eq!(back, net);
    assert_eq!(back.total_work(), net.total_work());
}

#[test]
fn implementations_and_reports_roundtrip() {
    let net = NetworkShape {
        name: "probe".into(),
        ops: vec![OpShape::mbconv(16, 16, 3, 4, 16, 16, 1)],
    };
    let zcu = FpgaDevice::zcu102();
    let imp = tune_recursive(&net, 16, &zcu);
    assert_eq!(roundtrip(&imp), imp);
    let report = eval_recursive(&net, &imp, &zcu).expect("classes covered");
    assert_eq!(roundtrip(&report), report);

    let zc7 = FpgaDevice::zc706();
    let pimp = tune_pipelined(&net, 16, &zc7);
    assert_eq!(roundtrip(&pimp), pimp);
    let preport = eval_pipelined(&net, &pimp, &zc7).expect("stages");
    assert_eq!(roundtrip(&preport), preport);
}

#[test]
fn modified_budget_survives_roundtrip() {
    let mut d = FpgaDevice::zcu102();
    d.dsp_budget = 1234.0;
    d.per_layer_overhead_ms = 0.05;
    let back = roundtrip(&d);
    assert_eq!(back.dsp_budget, 1234.0);
    assert_eq!(back.per_layer_overhead_ms, 0.05);
}
