//! The compiled-model artifact format.
//!
//! An artifact is a lowered (all-quantized) [`Graph`] serialized into the
//! engine's standard snapshot container: an 8-byte magic, a little-endian
//! format version, a payload length, and a CRC-32 over the payload —
//! reusing `edd_runtime::snapshot`'s framing with an artifact-specific
//! magic (`EDDMODL\0`) so model files and training snapshots can never be
//! confused for one another. Tensors are stored as raw bits (int8/int4
//! weights verbatim, f32 scales as IEEE-754 bit patterns, requantizers as
//! their i32 fixed-point fields), so a load reconstructs the exact specs
//! that were saved and a hot-loaded model is bit-identical to the one
//! compiled in process.
//!
//! Robustness: the CRC rejects bit flips and truncation before parsing
//! begins; every count is bounds-checked against the remaining payload
//! ([`ByteReader::get_count`]); and decoded specs are cross-validated
//! against their geometry (weight/bias/requant lengths, clamp-bound
//! ordering) before graph fact inference runs. A corrupt file yields a
//! clean [`SnapshotError`], never a panic.

use crate::exec::CompiledModel;
use crate::graph::{Graph, GraphMeta, Node, Op, QAddOp};
use edd_nn::{QConvSpec, QDwConvSpec, QLinearSpec, QWeights, ACT_QMAX};
use edd_runtime::{
    decode_container_as, encode_container_as, write_atomic_raw, ByteReader, ByteWriter,
    SectionWriter, Sections, SnapshotError,
};
use edd_tensor::qkernel::Requant;
use std::path::Path;

/// Magic bytes identifying a compiled-model artifact.
pub const ARTIFACT_MAGIC: [u8; 8] = *b"EDDMODL\0";
/// Current artifact format version.
pub const ARTIFACT_VERSION: u32 = 1;
/// Conventional file extension for artifacts.
pub const ARTIFACT_EXT: &str = "eddm";

type Result<T> = std::result::Result<T, SnapshotError>;

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

/// Serializes a lowered graph into complete artifact file bytes
/// (container framing included).
///
/// # Errors
///
/// Errors when the graph still contains float ops — only lowered graphs
/// are artifacts.
pub fn to_bytes(g: &Graph) -> Result<Vec<u8>> {
    let mut meta = ByteWriter::new();
    meta.put_str(&g.meta.name);
    for d in g.meta.input_shape {
        meta.put_u64(d as u64);
    }
    meta.put_u64(g.meta.num_classes as u64);

    let mut gw = ByteWriter::new();
    gw.put_u64(g.len() as u64);
    gw.put_u64(g.output().map_err(|e| corrupt(e.to_string()))? as u64);
    for n in g.nodes() {
        gw.put_str(&n.name);
        match n.scale {
            Some(s) => {
                gw.put_u8(1);
                gw.put_f32(s);
            }
            None => gw.put_u8(0),
        }
        match n.bits {
            Some(b) => {
                gw.put_u8(1);
                gw.put_u32(b);
            }
            None => gw.put_u8(0),
        }
        gw.put_u64(n.inputs.len() as u64);
        for &i in &n.inputs {
            gw.put_u64(i as u64);
        }
        encode_op(&mut gw, &n.op)?;
    }

    let mut sections = SectionWriter::new();
    sections.add("meta", &meta.into_bytes());
    sections.add("graph", &gw.into_bytes());
    Ok(encode_container_as(
        &ARTIFACT_MAGIC,
        ARTIFACT_VERSION,
        &sections.into_payload(),
    ))
}

/// Parses artifact file bytes back into a validated lowered graph.
///
/// # Errors
///
/// Magic/version/CRC failures from the container, framing errors, and
/// semantic validation failures (spec-geometry mismatches, fact-inference
/// errors) all surface as [`SnapshotError`].
pub fn from_bytes(bytes: &[u8]) -> Result<Graph> {
    let payload = decode_container_as(&ARTIFACT_MAGIC, ARTIFACT_VERSION, bytes)?;
    let sections = Sections::parse(&payload)?;

    let mut mr = ByteReader::new(sections.require("meta")?);
    let name = mr.get_str()?;
    let mut input_shape = [0usize; 3];
    for d in &mut input_shape {
        *d = dim(mr.get_u64()?)?;
    }
    let num_classes = dim(mr.get_u64()?)?;

    let mut r = ByteReader::new(sections.require("graph")?);
    let count = r.get_count(1)?;
    let output = dim(r.get_u64()?)?;
    let mut g = Graph::new(GraphMeta {
        name,
        input_shape,
        num_classes,
    });
    for id in 0..count {
        let name = r.get_str()?;
        let scale = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_f32()?),
            v => return Err(corrupt(format!("node {id}: bad scale flag {v}"))),
        };
        let bits = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_u32()?),
            v => return Err(corrupt(format!("node {id}: bad bits flag {v}"))),
        };
        let n_inputs = r.get_count(8)?;
        let mut inputs = Vec::with_capacity(n_inputs);
        for _ in 0..n_inputs {
            inputs.push(dim(r.get_u64()?)?);
        }
        let op = decode_op(&mut r, id)?;
        g.add(Node {
            name,
            op,
            inputs,
            scale,
            bits,
        })
        .map_err(|e| corrupt(e.to_string()))?;
    }
    if r.remaining() != 0 {
        return Err(corrupt(format!(
            "graph section has {} trailing bytes",
            r.remaining()
        )));
    }
    g.set_output(output).map_err(|e| corrupt(e.to_string()))?;
    // Type-check the decoded graph: shape/dtype facts must be coherent.
    g.facts().map_err(|e| corrupt(e.to_string()))?;
    Ok(g)
}

/// Writes a lowered graph to `path` atomically (tmp + fsync + rename).
///
/// # Errors
///
/// Serialization and I/O failures.
pub fn save(path: &Path, g: &Graph) -> Result<()> {
    write_atomic_raw(path, &to_bytes(g)?)
}

/// Loads an artifact from disk into a validated lowered graph.
///
/// # Errors
///
/// I/O, container, and validation failures.
pub fn load_graph(path: &Path) -> Result<Graph> {
    from_bytes(&std::fs::read(path)?)
}

/// Loads an artifact from disk and builds the runnable model (the hot
/// path for `edd serve --artifacts`).
///
/// # Errors
///
/// Everything [`load_graph`] rejects, plus executable-model validation
/// (e.g. the output not being logits).
pub fn load(path: &Path) -> Result<CompiledModel> {
    CompiledModel::from_graph(load_graph(path)?).map_err(|e| corrupt(e.to_string()))
}

fn dim(v: u64) -> Result<usize> {
    usize::try_from(v).map_err(|_| corrupt(format!("value {v} exceeds the address space")))
}

// Op tags. Stable on-disk identifiers — append, never renumber.
const TAG_INPUT: u8 = 0;
const TAG_QUANTIZE: u8 = 1;
const TAG_QCONV: u8 = 2;
const TAG_QDWCONV: u8 = 3;
const TAG_QRELU6: u8 = 4;
const TAG_QADD: u8 = 5;
const TAG_QGAP: u8 = 6;
const TAG_QLINEAR: u8 = 7;

fn encode_op(w: &mut ByteWriter, op: &Op) -> Result<()> {
    match op {
        Op::Input => w.put_u8(TAG_INPUT),
        Op::Quantize { scale } => {
            w.put_u8(TAG_QUANTIZE);
            w.put_f32(*scale);
        }
        Op::QConv(s) => {
            w.put_u8(TAG_QCONV);
            encode_weights(w, &s.weights);
            w.put_i32_slice(&s.bias_q);
            encode_requants(w, &s.requant);
            for d in [s.in_channels, s.out_channels, s.kernel, s.stride, s.padding] {
                w.put_u64(d as u64);
            }
            w.put_f32(s.in_scale);
            w.put_f32(s.out_scale);
            w.put_i32(s.lo);
            w.put_i32(s.hi);
            w.put_u8(u8::from(s.direct));
        }
        Op::QDwConv(s) => {
            w.put_u8(TAG_QDWCONV);
            encode_weights(w, &s.weights);
            w.put_i32_slice(&s.bias_q);
            encode_requants(w, &s.requant);
            for d in [s.channels, s.kernel, s.stride, s.padding] {
                w.put_u64(d as u64);
            }
            w.put_f32(s.in_scale);
            w.put_f32(s.out_scale);
            w.put_i32(s.lo);
            w.put_i32(s.hi);
        }
        Op::QRelu6 { hi } => {
            w.put_u8(TAG_QRELU6);
            w.put_u8(*hi as u8);
        }
        Op::QAdd(a) => {
            w.put_u8(TAG_QADD);
            let flags = u8::from(a.rq_a.is_some()) | (u8::from(a.rq_b.is_some()) << 1);
            w.put_u8(flags);
            for rq in [&a.rq_a, &a.rq_b].into_iter().flatten() {
                w.put_i32(rq.mult);
                w.put_i32(rq.shift);
            }
            w.put_f32(a.out_scale);
        }
        Op::QGlobalAvgPool => w.put_u8(TAG_QGAP),
        Op::QLinear(s) => {
            w.put_u8(TAG_QLINEAR);
            encode_weights(w, &s.weights);
            w.put_f32_slice(&s.bias);
            w.put_f32_slice(&s.w_scales);
            w.put_u64(s.in_features as u64);
            w.put_u64(s.out_features as u64);
            w.put_f32(s.in_scale);
        }
        float => {
            return Err(corrupt(format!(
                "float op `{}` cannot be serialized; lower the graph first",
                float.mnemonic()
            )));
        }
    }
    Ok(())
}

fn decode_op(r: &mut ByteReader<'_>, id: usize) -> Result<Op> {
    let tag = r.get_u8()?;
    let op = match tag {
        TAG_INPUT => Op::Input,
        TAG_QUANTIZE => Op::Quantize {
            scale: r.get_f32()?,
        },
        TAG_QCONV => {
            let weights = decode_weights(r)?;
            let bias_q = r.get_i32_vec()?;
            let requant = decode_requants(r)?;
            let (in_channels, out_channels, kernel, stride, padding) = (
                dim(r.get_u64()?)?,
                dim(r.get_u64()?)?,
                dim(r.get_u64()?)?,
                dim(r.get_u64()?)?,
                dim(r.get_u64()?)?,
            );
            let spec = QConvSpec {
                weights,
                bias_q,
                requant,
                in_channels,
                out_channels,
                kernel,
                stride,
                padding,
                in_scale: r.get_f32()?,
                out_scale: r.get_f32()?,
                lo: r.get_i32()?,
                hi: r.get_i32()?,
                direct: r.get_u8()? != 0,
            };
            check(
                spec.weights.len()
                    == spec.out_channels * spec.in_channels * spec.kernel * spec.kernel
                    && spec.bias_q.len() == spec.out_channels
                    && spec.requant.len() == spec.out_channels
                    && spec.kernel > 0
                    && spec.stride > 0
                    && spec.lo <= spec.hi,
                id,
                "qconv",
            )?;
            Op::QConv(Box::new(spec))
        }
        TAG_QDWCONV => {
            let weights = decode_weights(r)?;
            let bias_q = r.get_i32_vec()?;
            let requant = decode_requants(r)?;
            let (channels, kernel, stride, padding) = (
                dim(r.get_u64()?)?,
                dim(r.get_u64()?)?,
                dim(r.get_u64()?)?,
                dim(r.get_u64()?)?,
            );
            let spec = QDwConvSpec {
                weights,
                bias_q,
                requant,
                channels,
                kernel,
                stride,
                padding,
                in_scale: r.get_f32()?,
                out_scale: r.get_f32()?,
                lo: r.get_i32()?,
                hi: r.get_i32()?,
            };
            check(
                spec.weights.len() == spec.channels * spec.kernel * spec.kernel
                    && spec.bias_q.len() == spec.channels
                    && spec.requant.len() == spec.channels
                    && spec.kernel > 0
                    && spec.stride > 0
                    && spec.lo <= spec.hi,
                id,
                "qdwconv",
            )?;
            Op::QDwConv(Box::new(spec))
        }
        TAG_QRELU6 => {
            let hi = r.get_u8()?;
            check(i32::from(hi) <= ACT_QMAX, id, "qrelu6")?;
            Op::QRelu6 { hi: hi as i8 }
        }
        TAG_QADD => {
            let flags = r.get_u8()?;
            check(flags <= 0b11, id, "qadd")?;
            let mut get_rq = |present: bool| -> Result<Option<Requant>> {
                if !present {
                    return Ok(None);
                }
                Ok(Some(Requant {
                    mult: r.get_i32()?,
                    shift: r.get_i32()?,
                }))
            };
            let rq_a = get_rq(flags & 1 != 0)?;
            let rq_b = get_rq(flags & 2 != 0)?;
            Op::QAdd(Box::new(QAddOp {
                rq_a,
                rq_b,
                out_scale: r.get_f32()?,
            }))
        }
        TAG_QGAP => Op::QGlobalAvgPool,
        TAG_QLINEAR => {
            let weights = decode_weights(r)?;
            let bias = r.get_f32_vec()?;
            let w_scales = r.get_f32_vec()?;
            let spec = QLinearSpec {
                weights,
                bias,
                w_scales,
                in_features: dim(r.get_u64()?)?,
                out_features: dim(r.get_u64()?)?,
                in_scale: r.get_f32()?,
            };
            check(
                spec.weights.len() == spec.in_features * spec.out_features
                    && spec.bias.len() == spec.out_features
                    && spec.w_scales.len() == spec.out_features,
                id,
                "qlinear",
            )?;
            Op::QLinear(Box::new(spec))
        }
        other => return Err(corrupt(format!("node {id}: unknown op tag {other}"))),
    };
    Ok(op)
}

fn check(ok: bool, id: usize, what: &str) -> Result<()> {
    if ok {
        Ok(())
    } else {
        Err(corrupt(format!(
            "node {id}: {what} spec is inconsistent with its geometry"
        )))
    }
}

const WEIGHTS_INT8: u8 = 0;
const WEIGHTS_INT4: u8 = 1;

fn encode_weights(w: &mut ByteWriter, q: &QWeights) {
    match q {
        QWeights::Int8(v) => {
            w.put_u8(WEIGHTS_INT8);
            w.put_i8_slice(v);
        }
        QWeights::Int4 { packed, len } => {
            w.put_u8(WEIGHTS_INT4);
            w.put_u64(*len as u64);
            w.put_bytes(packed);
        }
    }
}

fn decode_weights(r: &mut ByteReader<'_>) -> Result<QWeights> {
    match r.get_u8()? {
        WEIGHTS_INT8 => Ok(QWeights::Int8(r.get_i8_vec()?)),
        WEIGHTS_INT4 => {
            let len = dim(r.get_u64()?)?;
            let packed = r.get_bytes()?;
            if packed.len() != len.div_ceil(2) {
                return Err(corrupt(format!(
                    "int4 weights: {len} nibbles need {} bytes, found {}",
                    len.div_ceil(2),
                    packed.len()
                )));
            }
            Ok(QWeights::Int4 { packed, len })
        }
        other => Err(corrupt(format!("unknown weight storage tag {other}"))),
    }
}

fn encode_requants(w: &mut ByteWriter, rqs: &[Requant]) {
    w.put_u64(rqs.len() as u64);
    for rq in rqs {
        w.put_i32(rq.mult);
        w.put_i32(rq.shift);
    }
}

fn decode_requants(r: &mut ByteReader<'_>) -> Result<Vec<Requant>> {
    let n = r.get_count(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Requant {
            mult: r.get_i32()?,
            shift: r.get_i32()?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ConvOp, LinearOp};
    use crate::passes::{lower, PassConfig};
    use edd_runtime::BatchModel;

    /// A lowered graph with every serializable op, via the real pipeline.
    fn lowered() -> Graph {
        let mut g = Graph::new(GraphMeta {
            name: "artifact-test".into(),
            input_shape: [2, 5, 5],
            num_classes: 3,
        });
        let mut state = 0xDEAD_BEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / f64::from(1u32 << 21) - 16.0) as f32 * 0.03
        };
        let add = |g: &mut Graph, name: &str, op: Op, inputs: Vec<usize>, scale: f32, bits| {
            g.add(Node {
                name: name.into(),
                op,
                inputs,
                scale: Some(scale),
                bits,
            })
            .unwrap()
        };
        let i = add(&mut g, "in", Op::Input, vec![], 0.05, None);
        // int4 conv exercises the packed-weights encoding.
        let c1 = add(
            &mut g,
            "c1",
            Op::Conv2d(Box::new(ConvOp {
                w: (0..4 * 2 * 9).map(|_| next()).collect(),
                out_channels: 4,
                in_channels: 2,
                kernel: 3,
                stride: 1,
                padding: 1,
                bias: None,
                relu6: true,
            })),
            vec![i],
            0.04,
            Some(4),
        );
        let c2 = add(
            &mut g,
            "c2",
            Op::Conv2d(Box::new(ConvOp {
                w: (0..4 * 4).map(|_| next()).collect(),
                out_channels: 4,
                in_channels: 4,
                kernel: 1,
                stride: 1,
                padding: 0,
                bias: Some((0..4).map(|_| next()).collect()),
                relu6: false,
            })),
            vec![c1],
            0.04,
            Some(8),
        );
        let res = add(&mut g, "res", Op::Add, vec![c2, c1], 0.05, None);
        let p = add(&mut g, "gap", Op::GlobalAvgPool, vec![res], 0.05, None);
        let fc = add(
            &mut g,
            "fc",
            Op::Linear(Box::new(LinearOp {
                w: (0..4 * 3).map(|_| next()).collect(),
                in_features: 4,
                out_features: 3,
                bias: vec![0.1, -0.1, 0.0],
            })),
            vec![p],
            0.05,
            None,
        );
        g.set_output(fc).unwrap();
        lower(&g, &PassConfig::all()).unwrap().0
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let g = lowered();
        let bytes = to_bytes(&g).unwrap();
        let g2 = from_bytes(&bytes).unwrap();
        let bytes2 = to_bytes(&g2).unwrap();
        assert_eq!(bytes, bytes2, "decode→encode must reproduce the file");
        assert_eq!(g.len(), g2.len());
    }

    #[test]
    fn float_graphs_are_rejected_at_encode() {
        let mut g = Graph::new(GraphMeta {
            name: "f".into(),
            input_shape: [1, 2, 2],
            num_classes: 1,
        });
        let i = g
            .add(Node {
                name: "in".into(),
                op: Op::Input,
                inputs: vec![],
                scale: None,
                bits: None,
            })
            .unwrap();
        g.add(Node {
            name: "act".into(),
            op: Op::Relu6,
            inputs: vec![i],
            scale: None,
            bits: None,
        })
        .unwrap();
        let err = to_bytes(&g).unwrap_err().to_string();
        assert!(err.contains("relu6"), "{err}");
    }

    #[test]
    fn wrong_magic_and_truncation_are_rejected() {
        let bytes = to_bytes(&lowered()).unwrap();
        assert!(from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(from_bytes(&bytes[..10]).is_err());
        assert!(from_bytes(&[]).is_err());
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xFF;
        assert!(from_bytes(&wrong).is_err());
        // A training snapshot's container must not parse as a model.
        let snap = edd_runtime::snapshot::encode_container(b"not a model");
        assert!(from_bytes(&snap).is_err());
    }

    #[test]
    fn save_load_executes_identically() {
        let g = lowered();
        let dir = std::env::temp_dir().join(format!("edd-ir-artifact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.eddm");
        save(&path, &g).unwrap();
        let loaded = load(&path).unwrap();
        let direct = CompiledModel::from_graph(g).unwrap();
        let data: Vec<f32> = (0..2 * 2 * 5 * 5)
            .map(|i| ((i % 17) as f32 - 8.0) * 0.02)
            .collect();
        let a = direct.infer_batch(&data, 2).unwrap();
        let b = loaded.infer_batch(&data, 2).unwrap();
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
