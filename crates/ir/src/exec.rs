//! Executable form of a lowered graph.
//!
//! [`CompiledModel::from_graph`] type-checks a quantized graph, rebuilds
//! each spec's microkernel-native caches via the `from_spec` constructors
//! (`QConv2d`, `QDwConv2d`, `QLinear`), and precomputes a liveness plan so
//! intermediate activations are dropped at their last use. Execution order
//! is ascending node id — valid by the graph's forward-edges invariant —
//! so the forward pass is a plain loop with no scheduling.
//!
//! The model implements [`edd_runtime::BatchModel`], which is all the
//! serving layer needs: a hot-loaded artifact drops into `InferServer` and
//! the sharded `serve::Server` exactly like a directly compiled
//! `QuantizedModel`.

use crate::graph::{DType, Graph, Op, QAddOp};
use edd_nn::{q_global_avg_pool, QConv2d, QDwConv2d, QLinear, QTensor, ACT_QMAX};
use edd_runtime::BatchModel;
use edd_tensor::{Array, Result, TensorError};

/// Per-node executor, parallel to the graph's node list.
enum Layer {
    /// Unreachable node (or the input placeholder) — nothing to run.
    Skip,
    /// The graph input: seeds the value table with the float batch.
    Input,
    /// Float → int8 boundary.
    Quantize { scale: f32 },
    /// Quantized convolution with rebuilt weight panels.
    Conv(QConv2d),
    /// Quantized depthwise convolution with rebuilt taps.
    Dw(QDwConv2d),
    /// Standalone integer ReLU6 clamp.
    Relu6 { hi: i8 },
    /// Integer residual add.
    Add(QAddOp),
    /// Integer global average pool.
    Gap,
    /// Quantized classifier head with rebuilt panels.
    Linear(QLinear),
}

/// An intermediate value during a forward pass.
enum Value {
    F(Array),
    Q(QTensor),
}

impl Value {
    fn as_f(&self) -> Result<&Array> {
        match self {
            Value::F(a) => Ok(a),
            Value::Q(_) => Err(TensorError::InvalidArgument(
                "expected a float value, found a quantized one".into(),
            )),
        }
    }

    fn as_q(&self) -> Result<&QTensor> {
        match self {
            Value::Q(q) => Ok(q),
            Value::F(_) => Err(TensorError::InvalidArgument(
                "expected a quantized value, found a float one".into(),
            )),
        }
    }
}

/// A lowered graph compiled into runnable layers.
pub struct CompiledModel {
    graph: Graph,
    layers: Vec<Layer>,
    /// `last_use[i]` = id of the last node reading `i`'s value (or `i`
    /// itself when nothing does); the value is freed right after.
    last_use: Vec<usize>,
    input_shape: [usize; 3],
    num_classes: usize,
}

impl std::fmt::Debug for CompiledModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledModel")
            .field("name", &self.graph.meta.name)
            .field("nodes", &self.graph.len())
            .field("input_shape", &self.input_shape)
            .field("num_classes", &self.num_classes)
            .finish_non_exhaustive()
    }
}

impl CompiledModel {
    /// Builds the executable model from a lowered graph, validating facts
    /// and rebuilding every layer's execution caches from its spec.
    ///
    /// # Errors
    ///
    /// Errors when the graph still contains float ops, when fact
    /// inference fails, or when the output is not `[num_classes]` f32
    /// logits.
    pub fn from_graph(graph: Graph) -> Result<Self> {
        let facts = graph.facts()?;
        let out = graph.output()?;
        if facts[out].dtype != DType::F32 || facts[out].shape != vec![graph.meta.num_classes] {
            return Err(TensorError::InvalidArgument(format!(
                "compiled graph output is {:?} {:?}, expected [{}] f32 logits",
                facts[out].dtype, facts[out].shape, graph.meta.num_classes
            )));
        }
        let reachable = graph.reachable()?;
        let mut layers = Vec::with_capacity(graph.len());
        for (id, n) in graph.nodes().iter().enumerate() {
            if !reachable[id] {
                layers.push(Layer::Skip);
                continue;
            }
            let layer = match &n.op {
                Op::Input => Layer::Input,
                Op::Quantize { scale } => Layer::Quantize { scale: *scale },
                Op::QConv(s) => Layer::Conv(QConv2d::from_spec(s.as_ref().clone())),
                Op::QDwConv(s) => Layer::Dw(QDwConv2d::from_spec(s.as_ref().clone())),
                Op::QRelu6 { hi } => Layer::Relu6 { hi: *hi },
                Op::QAdd(a) => Layer::Add(*a.as_ref()),
                Op::QGlobalAvgPool => Layer::Gap,
                Op::QLinear(s) => Layer::Linear(QLinear::from_spec(s.as_ref().clone())),
                float => {
                    return Err(TensorError::InvalidArgument(format!(
                        "cannot execute unlowered op `{}` at node `{}`; run the quantize \
                         lowering first",
                        float.mnemonic(),
                        n.name
                    )));
                }
            };
            layers.push(layer);
        }
        let mut last_use: Vec<usize> = (0..graph.len()).collect();
        for (id, n) in graph.nodes().iter().enumerate() {
            if !reachable[id] {
                continue;
            }
            for &i in &n.inputs {
                last_use[i] = last_use[i].max(id);
            }
        }
        // The output must survive the whole loop.
        last_use[out] = graph.len();
        let input_shape = graph.meta.input_shape;
        let num_classes = graph.meta.num_classes;
        Ok(CompiledModel {
            graph,
            layers,
            last_use,
            input_shape,
            num_classes,
        })
    }

    /// The lowered graph this model executes (what artifacts serialize).
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Model name from the graph metadata.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.graph.meta.name
    }

    /// Runs the model on an NCHW float batch, returning
    /// `[batch, num_classes]` logits.
    ///
    /// # Errors
    ///
    /// Rejects inputs whose shape does not match the compiled
    /// `[b, c, h, w]` and propagates layer errors.
    pub fn forward(&self, x: &Array) -> Result<Array> {
        let [c, h, w] = self.input_shape;
        let shape = x.shape();
        if shape.len() != 4 || shape[1] != c || shape[2] != h || shape[3] != w {
            return Err(TensorError::InvalidArgument(format!(
                "compiled model expects [b, {c}, {h}, {w}] input, got {shape:?}"
            )));
        }
        let batch = shape[0];
        let mut values: Vec<Option<Value>> = (0..self.graph.len()).map(|_| None).collect();
        for (id, layer) in self.layers.iter().enumerate() {
            let node = self.graph.node(id);
            let produced = match layer {
                Layer::Skip => continue,
                Layer::Input => Value::F(x.clone()),
                Layer::Quantize { scale } => {
                    let f = value(&values, node.inputs[0])?.as_f()?;
                    Value::Q(QTensor::quantize(f, *scale))
                }
                Layer::Conv(l) => Value::Q(l.forward(value(&values, node.inputs[0])?.as_q()?)?),
                Layer::Dw(l) => Value::Q(l.forward(value(&values, node.inputs[0])?.as_q()?)?),
                Layer::Relu6 { hi } => {
                    let q = value(&values, node.inputs[0])?.as_q()?;
                    let data = q.data.iter().map(|&v| v.clamp(0, *hi)).collect();
                    Value::Q(QTensor {
                        data,
                        shape: q.shape.clone(),
                        scale: q.scale,
                    })
                }
                Layer::Add(op) => {
                    let a = value(&values, node.inputs[0])?.as_q()?;
                    let b = value(&values, node.inputs[1])?.as_q()?;
                    Value::Q(qadd(op, a, b)?)
                }
                Layer::Gap => Value::Q(q_global_avg_pool(value(&values, node.inputs[0])?.as_q()?)?),
                Layer::Linear(l) => Value::F(l.forward(value(&values, node.inputs[0])?.as_q()?)?),
            };
            // Free operands whose last consumer was this node.
            for &i in &node.inputs {
                if self.last_use[i] == id {
                    values[i] = None;
                }
            }
            if self.last_use[id] >= id {
                values[id] = Some(produced);
            }
        }
        let out = self.graph.output()?;
        let logits = values[out]
            .take()
            .ok_or_else(|| TensorError::InvalidArgument("output was never computed".into()))?;
        let logits = logits.as_f()?;
        debug_assert_eq!(logits.shape(), &[batch, self.num_classes]);
        Ok(logits.clone())
    }
}

/// Reads a live value from the table (errors on a liveness-plan bug
/// rather than panicking).
fn value(values: &[Option<Value>], id: usize) -> Result<&Value> {
    values[id].as_ref().ok_or_else(|| {
        TensorError::InvalidArgument(format!("value of node {id} was freed before its last use"))
    })
}

/// The integer residual add: each operand is brought onto the output grid
/// by its optional requant, summed in i32, and clamped to the int8
/// activation range — the exact loop `QMbConv::forward` runs.
fn qadd(op: &QAddOp, a: &QTensor, b: &QTensor) -> Result<QTensor> {
    if a.shape != b.shape {
        return Err(TensorError::InvalidArgument(format!(
            "qadd operand shapes differ: {:?} vs {:?}",
            a.shape, b.shape
        )));
    }
    let term = |rq: &Option<edd_tensor::qkernel::Requant>, v: i8| -> i32 {
        match rq {
            Some(rq) => rq.apply(i32::from(v)),
            None => i32::from(v),
        }
    };
    let data = a
        .data
        .iter()
        .zip(&b.data)
        .map(|(&va, &vb)| {
            (term(&op.rq_a, va) + term(&op.rq_b, vb)).clamp(-ACT_QMAX, ACT_QMAX) as i8
        })
        .collect();
    Ok(QTensor {
        data,
        shape: a.shape.clone(),
        scale: op.out_scale,
    })
}

impl BatchModel for CompiledModel {
    type Error = TensorError;

    fn image_len(&self) -> usize {
        let [c, h, w] = self.input_shape;
        c * h * w
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn infer_batch(&self, images: &[f32], batch: usize) -> Result<Vec<f32>> {
        let expect = batch * self.image_len();
        if images.len() != expect {
            return Err(TensorError::InvalidArgument(format!(
                "infer_batch: expected {expect} values for batch {batch}, got {}",
                images.len()
            )));
        }
        let [c, h, w] = self.input_shape;
        let x = Array::from_vec(images.to_vec(), &[batch, c, h, w])?;
        Ok(self.forward(&x)?.data().to_vec())
    }
}

// Hot-loaded models are shared immutably across serving shards, exactly
// like a directly compiled `QuantizedModel`; keep that property checked
// at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledModel>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ConvOp, GraphMeta, LinearOp, Node};
    use crate::passes::{compile, PassConfig};

    /// Small annotated float graph exercising every executable op
    /// (conv, relu6, residual add, gap, linear).
    fn float_graph() -> Graph {
        let mut g = Graph::new(GraphMeta {
            name: "exec-test".into(),
            input_shape: [2, 5, 5],
            num_classes: 3,
        });
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / f64::from(1u32 << 21) - 16.0) as f32 * 0.04
        };
        let conv =
            |out_c: usize, in_c: usize, k: usize, pad: usize, next: &mut dyn FnMut() -> f32| {
                Op::Conv2d(Box::new(ConvOp {
                    w: (0..out_c * in_c * k * k).map(|_| next()).collect(),
                    out_channels: out_c,
                    in_channels: in_c,
                    kernel: k,
                    stride: 1,
                    padding: pad,
                    bias: None,
                    relu6: false,
                }))
            };
        let add = |g: &mut Graph, name: &str, op: Op, inputs: Vec<usize>, scale: f32| {
            g.add(Node {
                name: name.into(),
                op,
                inputs,
                scale: Some(scale),
                bits: None,
            })
            .unwrap()
        };
        let i = add(&mut g, "in", Op::Input, vec![], 0.05);
        let c1 = add(&mut g, "c1", conv(4, 2, 3, 1, &mut next), vec![i], 0.04);
        let r1 = add(&mut g, "r1", Op::Relu6, vec![c1], 0.04);
        let c2 = add(&mut g, "c2", conv(4, 4, 1, 0, &mut next), vec![r1], 0.04);
        let res = add(&mut g, "res", Op::Add, vec![c2, r1], 0.05);
        let p = add(&mut g, "gap", Op::GlobalAvgPool, vec![res], 0.05);
        let fc = add(
            &mut g,
            "fc",
            Op::Linear(Box::new(LinearOp {
                w: (0..4 * 3).map(|_| next()).collect(),
                in_features: 4,
                out_features: 3,
                bias: vec![0.05, -0.1, 0.0],
            })),
            vec![p],
            0.05,
        );
        g.set_output(fc).unwrap();
        g
    }

    fn input(batch: usize) -> Array {
        let n = batch * 2 * 5 * 5;
        let data: Vec<f32> = (0..n)
            .map(|i| ((i * 37 % 113) as f32 - 56.0) * 0.01)
            .collect();
        Array::from_vec(data, &[batch, 2, 5, 5]).unwrap()
    }

    #[test]
    fn pass_configs_agree_bitwise() {
        let g = float_graph();
        let (reference, _) = compile(&g, &PassConfig::none()).unwrap();
        let x = input(3);
        let want = reference.forward(&x).unwrap();
        for cfg in [
            PassConfig::all(),
            PassConfig {
                bypass_1x1: false,
                ..PassConfig::all()
            },
            PassConfig {
                relu6_fuse: false,
                ..PassConfig::all()
            },
        ] {
            let (m, _) = compile(&g, &cfg).unwrap();
            let got = m.forward(&x).unwrap();
            assert_eq!(
                want.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "outputs diverge under {cfg:?}"
            );
        }
    }

    #[test]
    fn batch_model_contract() {
        let (m, _) = compile(&float_graph(), &PassConfig::all()).unwrap();
        assert_eq!(m.image_len(), 2 * 5 * 5);
        assert_eq!(m.num_classes(), 3);
        let x = input(2);
        let logits = m.infer_batch(x.data(), 2).unwrap();
        assert_eq!(logits.len(), 6);
        assert!(m.infer_batch(x.data(), 3).is_err());
        // Per-image results match the batched forward (batch invariance).
        let one = m.infer_batch(&x.data()[..m.image_len()], 1).unwrap();
        assert_eq!(
            one.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            logits[..3].iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unlowered_graph_is_rejected() {
        let err = CompiledModel::from_graph(float_graph())
            .unwrap_err()
            .to_string();
        assert!(err.contains("unlowered"), "{err}");
    }
}
