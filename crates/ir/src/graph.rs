//! The typed model graph: single-output op nodes over implicit tensor
//! edges, with shape/dtype *facts* inferred per node for validation.
//!
//! # Invariants
//!
//! * **Forward edges only.** [`Graph::add`] rejects inputs that do not
//!   already exist, and every patch operation rewires consumers to an
//!   *earlier* node, so edges always point from lower to higher ids. The
//!   graph is a DAG by construction and ascending id order is a valid
//!   (and deterministic) execution order — no topological sort ever runs
//!   on the hot path.
//! * **One input node.** Exactly one [`Op::Input`] per graph, recorded at
//!   add time.
//! * **Single output per node.** Every op produces one tensor; fan-out is
//!   expressed by several consumers listing the same producer id.
//!
//! Nodes carry two annotations from the lowering frontend (`edd-core`):
//! the calibrated activation `scale` of the value they produce and the
//! Φ-searched weight `bits` for parameterized ops. The quantize-lowering
//! pass consumes both.

use edd_nn::{QConvSpec, QDwConvSpec, QLinearSpec};
use edd_tensor::qkernel::Requant;
use edd_tensor::{Conv2dGeometry, Result, TensorError};

/// Element type of a tensor edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DType {
    /// 32-bit float (the training/calibration domain, and final logits).
    F32,
    /// Quantized int8 activations.
    I8,
}

/// Inferred type information for the value one node produces: dtype plus
/// the per-image shape (batch dimension implicit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fact {
    /// Element type.
    pub dtype: DType,
    /// Per-image shape, e.g. `[c, h, w]` for feature maps, `[c]` after
    /// global pooling.
    pub shape: Vec<usize>,
}

/// A float 2-D convolution awaiting quantize lowering.
#[derive(Clone, Debug)]
pub struct ConvOp {
    /// Row-major OIHW weights.
    pub w: Vec<f32>,
    /// Output channels.
    pub out_channels: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub padding: usize,
    /// Optional per-output-channel bias (BN folding materializes one).
    pub bias: Option<Vec<f32>>,
    /// ReLU6 fused into this op (set by the fusion pass).
    pub relu6: bool,
}

/// A float depthwise convolution awaiting quantize lowering.
#[derive(Clone, Debug)]
pub struct DwConvOp {
    /// Row-major `[channels, kernel, kernel]` weights.
    pub w: Vec<f32>,
    /// Channel count.
    pub channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub padding: usize,
    /// Optional per-channel bias.
    pub bias: Option<Vec<f32>>,
    /// ReLU6 fused into this op.
    pub relu6: bool,
}

/// Eval-mode batch norm reduced to its per-channel affine factors
/// (`y = x·mul + add`, see [`edd_nn::bn_fold_factors`]).
#[derive(Clone, Debug)]
pub struct BatchNormOp {
    /// Per-channel multiplier `γ/√(σ²+ε)`.
    pub mul: Vec<f32>,
    /// Per-channel offset `β − μ·mul`.
    pub add: Vec<f32>,
    /// ReLU6 fused into this op.
    pub relu6: bool,
}

/// An integer residual add in a fixed output grid.
///
/// Each operand is brought onto the output grid by an optional q31
/// [`Requant`]; `None` means the operand already lives on that grid and
/// its raw int8 value is used directly. This mirrors `QMbConv`'s residual
/// loop exactly: the projection output (same grid) passes through raw,
/// the block input is requantized by `in_scale/out_scale`.
#[derive(Clone, Copy, Debug)]
pub struct QAddOp {
    /// Requant for the first operand (`None` = same grid, raw value).
    pub rq_a: Option<Requant>,
    /// Requant for the second operand.
    pub rq_b: Option<Requant>,
    /// Activation scale of the output grid.
    pub out_scale: f32,
}

/// A float linear classifier head awaiting quantize lowering.
#[derive(Clone, Debug)]
pub struct LinearOp {
    /// Row-major `[in, out]` weights.
    pub w: Vec<f32>,
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
    /// Per-output bias.
    pub bias: Vec<f32>,
}

/// One graph operation. Float ops come out of the `DerivedArch` lowering;
/// the `Q*` ops are what the quantize-lowering pass rewrites them into and
/// are the only ops an artifact may contain.
#[derive(Clone, Debug)]
pub enum Op {
    /// The graph input (float NCHW batch).
    Input,
    /// Float convolution.
    Conv2d(Box<ConvOp>),
    /// Float depthwise convolution.
    DwConv2d(Box<DwConvOp>),
    /// Eval-mode batch norm (per-channel affine).
    BatchNorm(Box<BatchNormOp>),
    /// Float ReLU6 activation.
    Relu6,
    /// Float elementwise add (residual connections).
    Add,
    /// Float global average pooling `[c,h,w] → [c]`.
    GlobalAvgPool,
    /// Float linear classifier.
    Linear(Box<LinearOp>),
    /// Float → int8 quantization boundary at a fixed scale.
    Quantize {
        /// Activation scale of the int8 grid.
        scale: f32,
    },
    /// Compiled quantized convolution.
    QConv(Box<QConvSpec>),
    /// Compiled quantized depthwise convolution.
    QDwConv(Box<QDwConvSpec>),
    /// Standalone integer ReLU6: clamp to `[0, hi]` on the producer's grid.
    QRelu6 {
        /// Upper clamp bound `min(127, round(6/scale))`.
        hi: i8,
    },
    /// Integer residual add in a fixed output grid.
    QAdd(Box<QAddOp>),
    /// Integer global average pooling (scale passthrough).
    QGlobalAvgPool,
    /// Compiled quantized linear head (int8 in, f32 logits out).
    QLinear(Box<QLinearSpec>),
}

impl Op {
    /// Short stable mnemonic for display and artifact listings.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Input => "input",
            Op::Conv2d(_) => "conv2d",
            Op::DwConv2d(_) => "dwconv2d",
            Op::BatchNorm(_) => "batchnorm",
            Op::Relu6 => "relu6",
            Op::Add => "add",
            Op::GlobalAvgPool => "gap",
            Op::Linear(_) => "linear",
            Op::Quantize { .. } => "quantize",
            Op::QConv(_) => "qconv",
            Op::QDwConv(_) => "qdwconv",
            Op::QRelu6 { .. } => "qrelu6",
            Op::QAdd(_) => "qadd",
            Op::QGlobalAvgPool => "qgap",
            Op::QLinear(_) => "qlinear",
        }
    }

    /// True for ops the quantize lowering has already produced (the only
    /// ops an artifact may contain).
    #[must_use]
    pub fn is_quantized(&self) -> bool {
        matches!(
            self,
            Op::Input
                | Op::Quantize { .. }
                | Op::QConv(_)
                | Op::QDwConv(_)
                | Op::QRelu6 { .. }
                | Op::QAdd(_)
                | Op::QGlobalAvgPool
                | Op::QLinear(_)
        )
    }

    /// Arity check: how many inputs this op consumes.
    #[must_use]
    pub fn arity(&self) -> usize {
        match self {
            Op::Input => 0,
            Op::Add | Op::QAdd(_) => 2,
            _ => 1,
        }
    }
}

/// One node: a named op applied to earlier nodes' outputs, with the
/// frontend's calibration annotations.
#[derive(Clone, Debug)]
pub struct Node {
    /// Human-readable name (`stem.conv`, `block1.dw`, …).
    pub name: String,
    /// The operation.
    pub op: Op,
    /// Producer node ids (all `< ` this node's id).
    pub inputs: Vec<usize>,
    /// Calibrated activation scale of the value this node produces
    /// (annotated by the frontend on quantization boundaries).
    pub scale: Option<f32>,
    /// Φ-searched weight precision for parameterized ops.
    pub bits: Option<u32>,
}

/// Model-level metadata carried alongside the node list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphMeta {
    /// Model name (mirrors the derived-arch name).
    pub name: String,
    /// Input per-image shape `[c, h, w]`.
    pub input_shape: [usize; 3],
    /// Classifier output width.
    pub num_classes: usize,
}

/// The typed model graph. See the module docs for invariants.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Model metadata.
    pub meta: GraphMeta,
    nodes: Vec<Node>,
    input: Option<usize>,
    output: Option<usize>,
}

fn invalid(msg: impl Into<String>) -> TensorError {
    TensorError::InvalidArgument(msg.into())
}

impl Graph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new(meta: GraphMeta) -> Self {
        Graph {
            meta,
            nodes: Vec::new(),
            input: None,
            output: None,
        }
    }

    /// Appends a node, returning its id. The last-added node becomes the
    /// default output.
    ///
    /// # Errors
    ///
    /// Rejects inputs referring to nodes that do not exist yet (forward
    /// edges only), arity mismatches, and a second [`Op::Input`].
    pub fn add(&mut self, node: Node) -> Result<usize> {
        let id = self.nodes.len();
        if node.inputs.len() != node.op.arity() {
            return Err(invalid(format!(
                "node `{}` ({}): expected {} inputs, got {}",
                node.name,
                node.op.mnemonic(),
                node.op.arity(),
                node.inputs.len()
            )));
        }
        for &i in &node.inputs {
            if i >= id {
                return Err(invalid(format!(
                    "node `{}`: input {i} is not an earlier node (id {id})",
                    node.name
                )));
            }
        }
        if matches!(node.op, Op::Input) {
            if self.input.is_some() {
                return Err(invalid("graph already has an input node"));
            }
            self.input = Some(id);
        }
        self.nodes.push(node);
        self.output = Some(id);
        Ok(id)
    }

    /// Marks `id` as the graph output.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range ids.
    pub fn set_output(&mut self, id: usize) -> Result<()> {
        if id >= self.nodes.len() {
            return Err(invalid(format!("output id {id} out of range")));
        }
        self.output = Some(id);
        Ok(())
    }

    /// The graph input node id.
    ///
    /// # Errors
    ///
    /// Errors when no [`Op::Input`] node was added.
    pub fn input(&self) -> Result<usize> {
        self.input.ok_or_else(|| invalid("graph has no input node"))
    }

    /// The graph output node id.
    ///
    /// # Errors
    ///
    /// Errors on an empty graph.
    pub fn output(&self) -> Result<usize> {
        self.output.ok_or_else(|| invalid("graph has no nodes"))
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids (a caller bug; every public mutation
    /// validates ids).
    #[must_use]
    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    /// All nodes, in id (= execution) order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub(crate) fn node_mut(&mut self, id: usize) -> &mut Node {
        &mut self.nodes[id]
    }

    /// Consumer lists: `consumers()[p]` holds every node id reading `p`'s
    /// output, ascending.
    #[must_use]
    pub fn consumers(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (id, n) in self.nodes.iter().enumerate() {
            for &i in &n.inputs {
                out[i].push(id);
            }
        }
        out
    }

    /// Reachability from the output, walking producer edges backwards.
    ///
    /// # Errors
    ///
    /// Errors on an empty graph.
    pub fn reachable(&self) -> Result<Vec<bool>> {
        let out = self.output()?;
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![out];
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id], true) {
                continue;
            }
            stack.extend_from_slice(&self.nodes[id].inputs);
        }
        Ok(seen)
    }

    /// Removes every node unreachable from the output, renumbering the
    /// survivors (relative order preserved, so edges stay forward).
    /// Returns the number of nodes removed.
    ///
    /// # Errors
    ///
    /// Errors when the input node would be eliminated (a graph whose
    /// output does not depend on its input is malformed).
    pub fn eliminate_dead(&mut self) -> Result<usize> {
        let keep = self.reachable()?;
        let removed = keep.iter().filter(|&&k| !k).count();
        if removed == 0 {
            return Ok(0);
        }
        if let Some(inp) = self.input {
            if !keep[inp] {
                return Err(invalid("dead-code elimination would remove the input node"));
            }
        }
        let mut remap = vec![usize::MAX; self.nodes.len()];
        let mut next = 0usize;
        for (id, &k) in keep.iter().enumerate() {
            if k {
                remap[id] = next;
                next += 1;
            }
        }
        let old = std::mem::take(&mut self.nodes);
        for (id, mut n) in old.into_iter().enumerate() {
            if !keep[id] {
                continue;
            }
            for i in &mut n.inputs {
                *i = remap[*i];
            }
            self.nodes.push(n);
        }
        self.input = self.input.map(|i| remap[i]);
        self.output = self.output.map(|o| remap[o]);
        Ok(removed)
    }

    /// Infers the output [`Fact`] of every node from the input shape,
    /// validating op/shape/dtype consistency along the way. This is the
    /// graph type-checker: artifact loading and compilation both run it.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error for the first inconsistency found.
    pub fn facts(&self) -> Result<Vec<Fact>> {
        let mut facts: Vec<Fact> = Vec::with_capacity(self.nodes.len());
        let _ = self.input()?;
        for (id, n) in self.nodes.iter().enumerate() {
            let get = |i: usize| -> &Fact { &facts[i] };
            let ctx = |msg: String| invalid(format!("node {id} `{}`: {msg}", n.name));
            let fact = match &n.op {
                Op::Input => Fact {
                    dtype: DType::F32,
                    shape: self.meta.input_shape.to_vec(),
                },
                Op::Quantize { .. } => {
                    let f = get(n.inputs[0]);
                    if f.dtype != DType::F32 {
                        return Err(ctx("quantize expects an f32 input".into()));
                    }
                    Fact {
                        dtype: DType::I8,
                        shape: f.shape.clone(),
                    }
                }
                Op::Conv2d(c) => conv_fact(
                    get(n.inputs[0]),
                    DType::F32,
                    c.in_channels,
                    c.out_channels,
                    c.kernel,
                    c.stride,
                    c.padding,
                )
                .map_err(&ctx)?,
                Op::QConv(c) => conv_fact(
                    get(n.inputs[0]),
                    DType::I8,
                    c.in_channels,
                    c.out_channels,
                    c.kernel,
                    c.stride,
                    c.padding,
                )
                .map_err(&ctx)?,
                Op::DwConv2d(c) => conv_fact(
                    get(n.inputs[0]),
                    DType::F32,
                    c.channels,
                    c.channels,
                    c.kernel,
                    c.stride,
                    c.padding,
                )
                .map_err(&ctx)?,
                Op::QDwConv(c) => conv_fact(
                    get(n.inputs[0]),
                    DType::I8,
                    c.channels,
                    c.channels,
                    c.kernel,
                    c.stride,
                    c.padding,
                )
                .map_err(&ctx)?,
                Op::BatchNorm(b) => {
                    let f = get(n.inputs[0]);
                    if f.dtype != DType::F32 {
                        return Err(ctx("batchnorm expects an f32 input".into()));
                    }
                    if f.shape.len() != 3 || f.shape[0] != b.mul.len() {
                        return Err(ctx(format!(
                            "batchnorm over {} channels applied to shape {:?}",
                            b.mul.len(),
                            f.shape
                        )));
                    }
                    f.clone()
                }
                Op::Relu6 => {
                    let f = get(n.inputs[0]);
                    if f.dtype != DType::F32 {
                        return Err(ctx("relu6 expects an f32 input".into()));
                    }
                    f.clone()
                }
                Op::QRelu6 { .. } => {
                    let f = get(n.inputs[0]);
                    if f.dtype != DType::I8 {
                        return Err(ctx("qrelu6 expects an i8 input".into()));
                    }
                    f.clone()
                }
                Op::Add | Op::QAdd(_) => {
                    let (a, b) = (get(n.inputs[0]), get(n.inputs[1]));
                    let want = if matches!(n.op, Op::Add) {
                        DType::F32
                    } else {
                        DType::I8
                    };
                    if a.dtype != want || b.dtype != want {
                        return Err(ctx("add operands have the wrong dtype".into()));
                    }
                    if a.shape != b.shape {
                        return Err(ctx(format!(
                            "add operand shapes differ: {:?} vs {:?}",
                            a.shape, b.shape
                        )));
                    }
                    a.clone()
                }
                Op::GlobalAvgPool | Op::QGlobalAvgPool => {
                    let f = get(n.inputs[0]);
                    let want = if matches!(n.op, Op::GlobalAvgPool) {
                        DType::F32
                    } else {
                        DType::I8
                    };
                    if f.dtype != want || f.shape.len() != 3 {
                        return Err(ctx(format!(
                            "global pool expects a 3-d {want:?} input, got {:?}",
                            f.shape
                        )));
                    }
                    Fact {
                        dtype: want,
                        shape: vec![f.shape[0]],
                    }
                }
                Op::Linear(l) => {
                    let f = get(n.inputs[0]);
                    if f.dtype != DType::F32 || f.shape != vec![l.in_features] {
                        return Err(ctx(format!(
                            "linear over {} features applied to {:?}",
                            l.in_features, f.shape
                        )));
                    }
                    Fact {
                        dtype: DType::F32,
                        shape: vec![l.out_features],
                    }
                }
                Op::QLinear(l) => {
                    let f = get(n.inputs[0]);
                    if f.dtype != DType::I8 || f.shape != vec![l.in_features] {
                        return Err(ctx(format!(
                            "qlinear over {} features applied to {:?}",
                            l.in_features, f.shape
                        )));
                    }
                    Fact {
                        dtype: DType::F32,
                        shape: vec![l.out_features],
                    }
                }
            };
            facts.push(fact);
        }
        Ok(facts)
    }
}

/// Shape/dtype inference shared by the four convolution ops.
fn conv_fact(
    f: &Fact,
    want: DType,
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> std::result::Result<Fact, String> {
    if f.dtype != want {
        return Err(format!("conv expects a {want:?} input, got {:?}", f.dtype));
    }
    if f.shape.len() != 3 || f.shape[0] != in_c {
        return Err(format!(
            "conv over {in_c} input channels applied to shape {:?}",
            f.shape
        ));
    }
    if kernel == 0 || stride == 0 {
        return Err("conv kernel and stride must be positive".into());
    }
    let geom = Conv2dGeometry {
        in_channels: in_c,
        in_h: f.shape[1],
        in_w: f.shape[2],
        kernel,
        stride,
        padding,
    };
    if f.shape[1] + 2 * padding < kernel || f.shape[2] + 2 * padding < kernel {
        return Err(format!(
            "kernel {kernel} does not fit the padded {}x{} input",
            f.shape[1], f.shape[2]
        ));
    }
    Ok(Fact {
        dtype: want,
        shape: vec![out_c, geom.out_h(), geom.out_w()],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> GraphMeta {
        GraphMeta {
            name: "t".into(),
            input_shape: [3, 8, 8],
            num_classes: 4,
        }
    }

    fn conv(out_c: usize, in_c: usize, k: usize, stride: usize, padding: usize) -> Op {
        Op::Conv2d(Box::new(ConvOp {
            w: vec![0.1; out_c * in_c * k * k],
            out_channels: out_c,
            in_channels: in_c,
            kernel: k,
            stride,
            padding,
            bias: None,
            relu6: false,
        }))
    }

    fn node(name: &str, op: Op, inputs: Vec<usize>) -> Node {
        Node {
            name: name.into(),
            op,
            inputs,
            scale: None,
            bits: None,
        }
    }

    #[test]
    fn forward_edges_and_single_input_enforced() {
        let mut g = Graph::new(meta());
        let i = g.add(node("in", Op::Input, vec![])).unwrap();
        assert_eq!(i, 0);
        // Input referencing a future node is rejected.
        assert!(g.add(node("c", conv(4, 3, 3, 1, 1), vec![5])).is_err());
        // Wrong arity is rejected.
        assert!(g.add(node("c", conv(4, 3, 3, 1, 1), vec![])).is_err());
        // Second input node is rejected.
        assert!(g.add(node("in2", Op::Input, vec![])).is_err());
        let c = g.add(node("c", conv(4, 3, 3, 1, 1), vec![i])).unwrap();
        assert_eq!(g.output().unwrap(), c);
    }

    #[test]
    fn facts_infer_conv_shapes_and_catch_mismatches() {
        let mut g = Graph::new(meta());
        let i = g.add(node("in", Op::Input, vec![])).unwrap();
        let c = g.add(node("c", conv(8, 3, 3, 2, 1), vec![i])).unwrap();
        let facts = g.facts().unwrap();
        assert_eq!(facts[i].shape, vec![3, 8, 8]);
        assert_eq!(facts[c].shape, vec![8, 4, 4]);
        assert_eq!(facts[c].dtype, DType::F32);
        // Channel mismatch is caught.
        let bad = g.add(node("bad", conv(8, 5, 3, 1, 1), vec![c])).unwrap();
        let err = g.facts().unwrap_err().to_string();
        assert!(err.contains("5 input channels"), "{err}");
        let _ = bad;
    }

    #[test]
    fn dce_drops_orphans_and_renumbers() {
        let mut g = Graph::new(meta());
        let i = g.add(node("in", Op::Input, vec![])).unwrap();
        let keep = g.add(node("keep", conv(4, 3, 3, 1, 1), vec![i])).unwrap();
        let dead = g
            .add(node("dead", conv(2, 4, 1, 1, 0), vec![keep]))
            .unwrap();
        let tail = g
            .add(node("tail", conv(5, 4, 1, 1, 0), vec![keep]))
            .unwrap();
        g.set_output(tail).unwrap();
        let _ = dead;
        assert_eq!(g.eliminate_dead().unwrap(), 1);
        assert_eq!(g.len(), 3);
        assert_eq!(g.output().unwrap(), 2);
        assert_eq!(g.node(2).name, "tail");
        assert_eq!(g.node(2).inputs, vec![1]);
        g.facts().unwrap();
        // Second run is a no-op.
        assert_eq!(g.eliminate_dead().unwrap(), 0);
    }
}
