//! `edd-ir`: the typed model-graph IR between architecture derivation and
//! the quantized inference engine.
//!
//! The EDD co-search emits a `DerivedArch`; training/calibration attach
//! weights and activation scales. Previously `edd-core::quantize` lowered
//! that directly into `edd-nn` quantized layers with special-cased fusion
//! decisions baked into the lowering code. This crate makes the lowering
//! a first-class, inspectable pipeline:
//!
//! 1. **[`graph`]** — a typed graph of ops (nodes) over tensors (edges),
//!    each node carrying inferred shape/dtype [`Fact`]s plus the
//!    frontend's calibration annotations (activation scale, Φ-searched
//!    weight bits).
//! 2. **[`patch`]** — passes record rewrites in a [`Patch`] against a
//!    frozen graph and apply them as a validated batch.
//! 3. **[`passes`]** — BN folding, ReLU6 fusion, quantize lowering at the
//!    annotated precisions, 1×1 direct-conv bypass, and dead-branch
//!    elimination. Every optional pass preserves the quantized output
//!    bit-for-bit (see the [`passes`] docs for why), which the test suite
//!    enforces per pass against the unoptimized lowering.
//! 4. **[`exec`]** — [`CompiledModel`] runs the lowered graph and
//!    implements `edd_runtime::BatchModel`, so it serves behind the same
//!    batching front end as a directly compiled `QuantizedModel`.
//! 5. **[`artifact`]** — a versioned, CRC-checked binary format (the
//!    snapshot container with an artifact magic) storing tensors as raw
//!    bits; `edd compile` writes artifacts, `edd serve` hot-loads them.
//! 6. **[`pulse`]** — [`PulsedModel`] converts a lowered graph into
//!    streaming form: fixed-size input slices in, sliding-window outputs
//!    out at a computed delay, with per-conv ring buffers bounding
//!    carried state at O(window) independent of stream length, bitwise
//!    equal to the batch executor on the same windows.
//!
//! The crate deliberately knows nothing about search, training, or
//! calibration — `edd-core` builds annotated float graphs out of its
//! models (`edd_core::lower`), and everything downstream of that is pure
//! graph transformation.

pub mod artifact;
pub mod exec;
pub mod graph;
pub mod passes;
pub mod patch;
pub mod pulse;

pub use exec::CompiledModel;
pub use graph::{
    BatchNormOp, ConvOp, DType, DwConvOp, Fact, Graph, GraphMeta, LinearOp, Node, Op, QAddOp,
};
pub use passes::{
    bn_fold_pass, bypass_1x1_pass, compile, lower, lower_quantized, relu6_fuse_pass, PassConfig,
    PassReport, PASS_NAMES,
};
pub use patch::Patch;
pub use pulse::{PulsedModel, PulsedProgram, PulsedState, Row};
