//! The optimization/lowering pass pipeline.
//!
//! Float-graph rewrites run first (BN folding, BN/conv + ReLU6 fusion,
//! dead-code elimination), then the mandatory quantize lowering converts
//! the graph to integer ops at the frontend's annotated scales and bits,
//! and finally quantized-graph rewrites run (1×1 direct-conv bypass, a
//! second DCE sweep).
//!
//! # Bitwise equivalence
//!
//! Every optional pass preserves the quantized output bit-for-bit, by
//! construction rather than by tolerance:
//!
//! * **bn-fold** performs the *same float fold* ([`edd_nn::fold_bn`]) the
//!   quantize lowering would perform when it pairs a conv with its BN, so
//!   the weights reaching `QConvSpec::quantize` are identical floats
//!   either way.
//! * **relu6-fuse** replaces `clamp(v, -127, 127)` followed by
//!   `clamp(·, 0, q6)` with the fused `clamp(v, 0, min(q6, 127))`; the
//!   two compositions are pointwise identical for every i32 `v` because
//!   `0 ≤ min(q6, 127) ≤ 127`.
//! * **bypass-1x1** only flips `QConvSpec::direct`, selecting the im2col
//!   bypass path that is already bitwise-verified against the GEMM path
//!   by the engine's determinism suite.
//! * **dce** removes nodes that cannot influence the output.

use crate::exec::CompiledModel;
use crate::graph::{Graph, Node, Op, QAddOp};
use crate::patch::Patch;
use edd_nn::{
    clamp_bounds, fold_bn, QConvSource, QConvSpec, QDwConvSource, QDwConvSpec, QLinearSpec,
};
use edd_tensor::qkernel::Requant;
use edd_tensor::{Result, TensorError};

/// Names of the optional passes, in pipeline order. `--passes` on the CLI
/// accepts exactly these.
pub const PASS_NAMES: [&str; 4] = ["bn-fold", "relu6-fuse", "bypass-1x1", "dce"];

/// Which optional passes to run. Quantize lowering itself is not optional
/// — it is the compilation step — so it has no flag here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PassConfig {
    /// Fold eval-mode batch norms into their producer convolutions.
    pub bn_fold: bool,
    /// Fuse ReLU6 activations into their producer conv/BN clamp bounds.
    pub relu6_fuse: bool,
    /// Flip eligible 1×1/s1/p0 quantized convolutions to the direct
    /// (im2col-bypass) path.
    pub bypass_1x1: bool,
    /// Sweep nodes unreachable from the output.
    pub dce: bool,
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig::all()
    }
}

impl PassConfig {
    /// Every optional pass enabled (the default).
    #[must_use]
    pub fn all() -> Self {
        PassConfig {
            bn_fold: true,
            relu6_fuse: true,
            bypass_1x1: true,
            dce: true,
        }
    }

    /// Every optional pass disabled: the pipeline reduces to the bare
    /// quantize lowering. Reference configuration for equivalence tests.
    #[must_use]
    pub fn none() -> Self {
        PassConfig {
            bn_fold: false,
            relu6_fuse: false,
            bypass_1x1: false,
            dce: false,
        }
    }

    /// Enables or disables one pass by its [`PASS_NAMES`] name.
    ///
    /// # Errors
    ///
    /// Returns the unknown name (callers render the valid list).
    pub fn set(&mut self, name: &str, on: bool) -> std::result::Result<(), String> {
        match name {
            "bn-fold" => self.bn_fold = on,
            "relu6-fuse" => self.relu6_fuse = on,
            "bypass-1x1" => self.bypass_1x1 = on,
            "dce" => self.dce = on,
            other => return Err(other.to_string()),
        }
        Ok(())
    }
}

/// True when node `id` is the only *reachable* consumer of `p`. Bypassed
/// orphans keep their input edges until a DCE sweep, so raw consumer
/// counts would spuriously block fusions; dead readers cannot observe a
/// value and are ignored.
fn sole_reachable_consumer(
    consumers: &[Vec<usize>],
    reachable: &[bool],
    p: usize,
    id: usize,
) -> bool {
    let mut live = consumers[p].iter().filter(|&&c| reachable[c]);
    live.next() == Some(&id) && live.next().is_none()
}

/// What the pipeline did, for `edd compile` reporting and test assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassReport {
    /// Batch norms folded into a producer convolution.
    pub bn_folded: usize,
    /// ReLU6 activations fused into a producer's clamp bounds.
    pub relu6_fused: usize,
    /// Quantized 1×1 convolutions flipped to the direct path.
    pub bypassed_1x1: usize,
    /// Nodes removed by the two dead-code sweeps.
    pub dce_removed: usize,
}

/// Folds every eval-mode [`Op::BatchNorm`] whose producer is a conv or
/// depthwise conv consumed by nothing else. The producer's weights and
/// bias absorb the affine factors via the same [`fold_bn`] the quantize
/// lowering uses, the producer inherits the BN's output scale and fused
/// ReLU6 flag, and the BN node is bypassed (swept by a later DCE).
/// Returns the fold count.
///
/// # Errors
///
/// Propagates patch-application failures (graph invariant violations).
pub fn bn_fold_pass(g: &mut Graph) -> Result<usize> {
    let consumers = g.consumers();
    let reachable = g.reachable()?;
    let mut patch = Patch::new();
    let mut count = 0usize;
    for id in 0..g.len() {
        let Op::BatchNorm(bn) = &g.node(id).op else {
            continue;
        };
        if !reachable[id] {
            continue;
        }
        let p = g.node(id).inputs[0];
        if !sole_reachable_consumer(&consumers, &reachable, p, id) {
            continue;
        }
        let folded = match &g.node(p).op {
            Op::Conv2d(c) => {
                let mut c2 = c.as_ref().clone();
                let mut bias = c2.bias.take().unwrap_or_else(|| vec![0.0; c2.out_channels]);
                fold_bn(
                    &mut c2.w,
                    &mut bias,
                    &bn.mul,
                    &bn.add,
                    c2.in_channels * c2.kernel * c2.kernel,
                );
                c2.bias = Some(bias);
                c2.relu6 |= bn.relu6;
                Op::Conv2d(Box::new(c2))
            }
            Op::DwConv2d(c) => {
                let mut c2 = c.as_ref().clone();
                let mut bias = c2.bias.take().unwrap_or_else(|| vec![0.0; c2.channels]);
                fold_bn(
                    &mut c2.w,
                    &mut bias,
                    &bn.mul,
                    &bn.add,
                    c2.kernel * c2.kernel,
                );
                c2.bias = Some(bias);
                c2.relu6 |= bn.relu6;
                Op::DwConv2d(Box::new(c2))
            }
            _ => continue,
        };
        patch.set_op(p, folded);
        if let Some(s) = g.node(id).scale {
            patch.set_scale(p, s);
        }
        patch.bypass(id);
        count += 1;
    }
    patch.apply(g)?;
    Ok(count)
}

/// Fuses every [`Op::Relu6`] into its producer conv / depthwise conv /
/// batch norm when that producer has no other consumer: the producer's
/// `relu6` flag turns its requantization clamp into `[0, min(q6, 127)]`
/// and the activation node is bypassed. Returns the fusion count.
///
/// # Errors
///
/// Propagates patch-application failures.
pub fn relu6_fuse_pass(g: &mut Graph) -> Result<usize> {
    let consumers = g.consumers();
    let reachable = g.reachable()?;
    let mut patch = Patch::new();
    let mut count = 0usize;
    for id in 0..g.len() {
        if !matches!(g.node(id).op, Op::Relu6) || !reachable[id] {
            continue;
        }
        let p = g.node(id).inputs[0];
        if !sole_reachable_consumer(&consumers, &reachable, p, id) {
            continue;
        }
        let fused = match &g.node(p).op {
            Op::Conv2d(c) => {
                let mut c2 = c.as_ref().clone();
                c2.relu6 = true;
                Op::Conv2d(Box::new(c2))
            }
            Op::DwConv2d(c) => {
                let mut c2 = c.as_ref().clone();
                c2.relu6 = true;
                Op::DwConv2d(Box::new(c2))
            }
            Op::BatchNorm(b) => {
                let mut b2 = b.as_ref().clone();
                b2.relu6 = true;
                Op::BatchNorm(Box::new(b2))
            }
            _ => continue,
        };
        patch.set_op(p, fused);
        if let Some(s) = g.node(id).scale {
            patch.set_scale(p, s);
        }
        patch.bypass(id);
        count += 1;
    }
    patch.apply(g)?;
    Ok(count)
}

/// Flips eligible quantized 1×1/stride-1/pad-0 convolutions onto the
/// direct path (`QConvSpec::direct`), skipping im2col at runtime. Runs on
/// the lowered graph. Returns the flip count.
///
/// # Errors
///
/// Propagates patch-application failures.
pub fn bypass_1x1_pass(g: &mut Graph) -> Result<usize> {
    let mut patch = Patch::new();
    let mut count = 0usize;
    for id in 0..g.len() {
        let Op::QConv(spec) = &g.node(id).op else {
            continue;
        };
        if spec.direct || !spec.direct_eligible() {
            continue;
        }
        let mut s2 = spec.as_ref().clone();
        s2.direct = true;
        patch.set_op(id, Op::QConv(Box::new(s2)));
        count += 1;
    }
    patch.apply(g)?;
    Ok(count)
}

/// Reads the annotated activation scale of `id`, erroring with the node
/// name when the frontend did not provide one.
fn scale_of(g: &Graph, id: usize) -> Result<f32> {
    g.node(id).scale.ok_or_else(|| {
        TensorError::InvalidArgument(format!(
            "quantize lowering: node `{}` has no calibrated scale",
            g.node(id).name
        ))
    })
}

/// Requant bringing an operand at `s_in` onto the `s_out` grid, or `None`
/// when the scales are bit-identical (the operand already lives there).
/// The f64 division matches `QMbConv::compile`'s residual requant exactly.
fn operand_requant(s_in: f32, s_out: f32) -> Option<Requant> {
    if s_in.to_bits() == s_out.to_bits() {
        None
    } else {
        Some(Requant::from_scale(f64::from(s_in) / f64::from(s_out)))
    }
}

/// Lowers an annotated float graph into the quantized op set. This is the
/// mandatory compilation step: every float op becomes its integer
/// counterpart at the scales/bits the frontend annotated, reproducing the
/// direct `QuantizedModel::compile` arithmetic exactly:
///
/// * the input gains an explicit [`Op::Quantize`] boundary at the
///   calibrated input scale;
/// * a conv/dw-conv whose sole consumer is a batch norm is compiled
///   *together with it* through `QConvSpec::quantize`'s BN-fold path
///   (identically to `QConv2d::compile(conv, Some(bn), …)`);
/// * a standalone ReLU6 becomes a [`Op::QRelu6`] clamp on its producer's
///   grid;
/// * a residual [`Op::Add`] becomes a [`Op::QAdd`] in the output grid,
///   first operand raw when already on that grid, second requantized via
///   the same f64 scale ratio as `QMbConv`;
/// * the classifier lowers through `QLinearSpec::quantize`.
///
/// All `QConv` nodes are emitted with `direct = false`; the bypass pass
/// opts eligible ones in afterwards.
///
/// # Errors
///
/// Errors on missing scale annotations, on standalone batch norms (no
/// producer conv to fold into), and on graphs that already contain
/// quantized ops.
pub fn lower_quantized(g: &Graph) -> Result<Graph> {
    let consumers = g.consumers();
    let reachable = g.reachable()?;
    let mut out = Graph::new(g.meta.clone());
    let mut map = vec![usize::MAX; g.len()];
    let mapped = |map: &[usize], id: usize| -> Result<usize> {
        if map[id] == usize::MAX {
            return Err(TensorError::InvalidArgument(format!(
                "quantize lowering: node `{}` consumed before being lowered",
                g.node(id).name
            )));
        }
        Ok(map[id])
    };

    for id in 0..g.len() {
        if !reachable[id] {
            continue;
        }
        let n = g.node(id);
        match &n.op {
            Op::Input => {
                let s = scale_of(g, id)?;
                let ni = out.add(Node {
                    name: n.name.clone(),
                    op: Op::Input,
                    inputs: vec![],
                    scale: Some(s),
                    bits: None,
                })?;
                map[id] = out.add(Node {
                    name: format!("{}.quantize", n.name),
                    op: Op::Quantize { scale: s },
                    inputs: vec![ni],
                    scale: Some(s),
                    bits: None,
                })?;
            }
            Op::Conv2d(_) | Op::DwConv2d(_) => {
                // Deferred: a conv whose sole consumer is a BN compiles
                // together with it at the BN node (the BN-fold quantize
                // path). Handled below when the BN comes up.
                let mut live = consumers[id].iter().filter(|&&c| reachable[c]);
                let fused_bn = match (live.next(), live.next()) {
                    (Some(&c), None) => matches!(g.node(c).op, Op::BatchNorm(_)),
                    _ => false,
                };
                if fused_bn {
                    continue;
                }
                let in_scale = scale_of(g, n.inputs[0])?;
                let out_scale = scale_of(g, id)?;
                let bits = n.bits.unwrap_or(8);
                let op = match &n.op {
                    Op::Conv2d(c) => Op::QConv(Box::new(QConvSpec::quantize(
                        &QConvSource {
                            w: &c.w,
                            out_channels: c.out_channels,
                            in_channels: c.in_channels,
                            kernel: c.kernel,
                            stride: c.stride,
                            padding: c.padding,
                            bias: c.bias.as_deref(),
                            bn: None,
                        },
                        bits,
                        in_scale,
                        out_scale,
                        c.relu6,
                        false,
                    ))),
                    Op::DwConv2d(c) => Op::QDwConv(Box::new(QDwConvSpec::quantize(
                        &QDwConvSource {
                            w: &c.w,
                            channels: c.channels,
                            kernel: c.kernel,
                            stride: c.stride,
                            padding: c.padding,
                            bias: c.bias.as_deref(),
                            bn: None,
                        },
                        bits,
                        in_scale,
                        out_scale,
                        c.relu6,
                    ))),
                    _ => unreachable!(),
                };
                map[id] = out.add(Node {
                    name: n.name.clone(),
                    op,
                    inputs: vec![mapped(&map, n.inputs[0])?],
                    scale: Some(out_scale),
                    bits: Some(bits),
                })?;
            }
            Op::BatchNorm(bn) => {
                let p = n.inputs[0];
                let paired = sole_reachable_consumer(&consumers, &reachable, p, id)
                    && matches!(g.node(p).op, Op::Conv2d(_) | Op::DwConv2d(_));
                if !paired {
                    return Err(TensorError::InvalidArgument(format!(
                        "quantize lowering: standalone batchnorm `{}` (producer is not an \
                         exclusively-consumed conv); run bn-fold or restructure the graph",
                        n.name
                    )));
                }
                let conv = g.node(p);
                let in_scale = scale_of(g, conv.inputs[0])?;
                let out_scale = scale_of(g, id)?;
                let bits = conv.bits.unwrap_or(8);
                let op = match &conv.op {
                    Op::Conv2d(c) => Op::QConv(Box::new(QConvSpec::quantize(
                        &QConvSource {
                            w: &c.w,
                            out_channels: c.out_channels,
                            in_channels: c.in_channels,
                            kernel: c.kernel,
                            stride: c.stride,
                            padding: c.padding,
                            bias: c.bias.as_deref(),
                            bn: Some((&bn.mul, &bn.add)),
                        },
                        bits,
                        in_scale,
                        out_scale,
                        c.relu6 || bn.relu6,
                        false,
                    ))),
                    Op::DwConv2d(c) => Op::QDwConv(Box::new(QDwConvSpec::quantize(
                        &QDwConvSource {
                            w: &c.w,
                            channels: c.channels,
                            kernel: c.kernel,
                            stride: c.stride,
                            padding: c.padding,
                            bias: c.bias.as_deref(),
                            bn: Some((&bn.mul, &bn.add)),
                        },
                        bits,
                        in_scale,
                        out_scale,
                        c.relu6 || bn.relu6,
                    ))),
                    _ => unreachable!(),
                };
                let nid = out.add(Node {
                    name: conv.name.clone(),
                    op,
                    inputs: vec![mapped(&map, conv.inputs[0])?],
                    scale: Some(out_scale),
                    bits: Some(bits),
                })?;
                map[id] = nid;
                map[p] = nid;
            }
            Op::Relu6 => {
                let s = scale_of(g, n.inputs[0])?;
                let (_, hi) = clamp_bounds(true, s);
                map[id] = out.add(Node {
                    name: n.name.clone(),
                    op: Op::QRelu6 { hi: hi as i8 },
                    inputs: vec![mapped(&map, n.inputs[0])?],
                    scale: Some(s),
                    bits: None,
                })?;
            }
            Op::Add => {
                let out_scale = scale_of(g, id)?;
                let s_a = scale_of(g, n.inputs[0])?;
                let s_b = scale_of(g, n.inputs[1])?;
                // The second operand is always requantized (matching the
                // QMbConv residual loop, which rescales the block input
                // unconditionally); the first passes through raw when it
                // already lives on the output grid.
                let rq_b = Some(Requant::from_scale(f64::from(s_b) / f64::from(out_scale)));
                map[id] = out.add(Node {
                    name: n.name.clone(),
                    op: Op::QAdd(Box::new(QAddOp {
                        rq_a: operand_requant(s_a, out_scale),
                        rq_b,
                        out_scale,
                    })),
                    inputs: vec![mapped(&map, n.inputs[0])?, mapped(&map, n.inputs[1])?],
                    scale: Some(out_scale),
                    bits: None,
                })?;
            }
            Op::GlobalAvgPool => {
                let s = scale_of(g, n.inputs[0])?;
                map[id] = out.add(Node {
                    name: n.name.clone(),
                    op: Op::QGlobalAvgPool,
                    inputs: vec![mapped(&map, n.inputs[0])?],
                    scale: Some(s),
                    bits: None,
                })?;
            }
            Op::Linear(l) => {
                let in_scale = scale_of(g, n.inputs[0])?;
                let bits = n.bits.unwrap_or(8);
                map[id] = out.add(Node {
                    name: n.name.clone(),
                    op: Op::QLinear(Box::new(QLinearSpec::quantize(
                        &l.w,
                        l.in_features,
                        l.out_features,
                        &l.bias,
                        bits,
                        in_scale,
                    ))),
                    inputs: vec![mapped(&map, n.inputs[0])?],
                    scale: None,
                    bits: Some(bits),
                })?;
            }
            other => {
                return Err(TensorError::InvalidArgument(format!(
                    "quantize lowering: node `{}` is already quantized ({})",
                    n.name,
                    other.mnemonic()
                )));
            }
        }
    }
    out.set_output(mapped(&map, g.output()?)?)?;
    Ok(out)
}

/// Runs the full pipeline on a float graph and builds the executable
/// model: optional float passes → quantize lowering → optional quantized
/// passes → [`CompiledModel::from_graph`].
///
/// # Errors
///
/// Propagates pass, lowering, and validation failures.
pub fn compile(g: &Graph, cfg: &PassConfig) -> Result<(CompiledModel, PassReport)> {
    let (q, report) = lower(g, cfg)?;
    Ok((CompiledModel::from_graph(q)?, report))
}

/// Like [`compile`] but stops at the optimized quantized graph — what
/// `edd compile` serializes into an artifact.
///
/// # Errors
///
/// Propagates pass and lowering failures.
pub fn lower(g: &Graph, cfg: &PassConfig) -> Result<(Graph, PassReport)> {
    let mut f = g.clone();
    let mut report = PassReport::default();
    if cfg.bn_fold {
        report.bn_folded = bn_fold_pass(&mut f)?;
    }
    if cfg.relu6_fuse {
        report.relu6_fused = relu6_fuse_pass(&mut f)?;
    }
    if cfg.dce {
        report.dce_removed += f.eliminate_dead()?;
    }
    let mut q = lower_quantized(&f)?;
    if cfg.bypass_1x1 {
        report.bypassed_1x1 = bypass_1x1_pass(&mut q)?;
    }
    if cfg.dce {
        report.dce_removed += q.eliminate_dead()?;
    }
    Ok((q, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{BatchNormOp, ConvOp, GraphMeta, LinearOp};

    fn node(name: &str, op: Op, inputs: Vec<usize>, scale: f32) -> Node {
        Node {
            name: name.into(),
            op,
            inputs,
            scale: Some(scale),
            bits: None,
        }
    }

    /// input → conv → bn(+stats) → relu6 → gap → linear, deterministic
    /// pseudo-random weights.
    fn float_graph() -> Graph {
        let mut g = Graph::new(GraphMeta {
            name: "pass-test".into(),
            input_shape: [2, 6, 6],
            num_classes: 3,
        });
        let mut state = 0x2545_F491u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / f64::from(1u32 << 21) - 16.0) as f32 * 0.05
        };
        let i = g.add(node("in", Op::Input, vec![], 0.04)).unwrap();
        let c = g
            .add(node(
                "conv",
                Op::Conv2d(Box::new(ConvOp {
                    w: (0..4 * 2 * 9).map(|_| next()).collect(),
                    out_channels: 4,
                    in_channels: 2,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                    bias: None,
                    relu6: false,
                })),
                vec![i],
                0.03,
            ))
            .unwrap();
        let b = g
            .add(node(
                "bn",
                Op::BatchNorm(Box::new(BatchNormOp {
                    mul: (0..4).map(|_| 1.0 + next().abs()).collect(),
                    add: (0..4).map(|_| next()).collect(),
                    relu6: false,
                })),
                vec![c],
                0.03,
            ))
            .unwrap();
        let r = g.add(node("act", Op::Relu6, vec![b], 0.03)).unwrap();
        let p = g
            .add(node("gap", Op::GlobalAvgPool, vec![r], 0.03))
            .unwrap();
        g.add(node(
            "fc",
            Op::Linear(Box::new(LinearOp {
                w: (0..4 * 3).map(|_| next()).collect(),
                in_features: 4,
                out_features: 3,
                bias: vec![0.01, -0.02, 0.03],
            })),
            vec![p],
            0.03,
        ))
        .unwrap();
        g
    }

    #[test]
    fn bn_fold_absorbs_bn_and_rewires() {
        let mut g = float_graph();
        assert_eq!(bn_fold_pass(&mut g).unwrap(), 1);
        // The relu now reads the conv directly; bn is an orphan.
        let relu = g.nodes().iter().position(|n| n.name == "act").unwrap();
        let conv = g.nodes().iter().position(|n| n.name == "conv").unwrap();
        assert_eq!(g.node(relu).inputs, vec![conv]);
        let Op::Conv2d(c) = &g.node(conv).op else {
            panic!("conv survived as {:?}", g.node(conv).op.mnemonic());
        };
        assert!(c.bias.is_some(), "fold materializes a bias");
        assert_eq!(g.eliminate_dead().unwrap(), 1);
        g.facts().unwrap();
    }

    #[test]
    fn relu6_fuses_into_folded_conv() {
        let mut g = float_graph();
        bn_fold_pass(&mut g).unwrap();
        assert_eq!(relu6_fuse_pass(&mut g).unwrap(), 1);
        let conv = g.nodes().iter().position(|n| n.name == "conv").unwrap();
        let Op::Conv2d(c) = &g.node(conv).op else {
            panic!("expected conv");
        };
        assert!(c.relu6);
        assert_eq!(g.eliminate_dead().unwrap(), 2);
        g.facts().unwrap();
    }

    #[test]
    fn relu6_fuses_into_bn_when_fold_disabled() {
        let mut g = float_graph();
        assert_eq!(relu6_fuse_pass(&mut g).unwrap(), 1);
        let bn = g.nodes().iter().position(|n| n.name == "bn").unwrap();
        let Op::BatchNorm(b) = &g.node(bn).op else {
            panic!("expected batchnorm");
        };
        assert!(b.relu6);
    }

    #[test]
    fn lowering_produces_a_valid_quantized_graph() {
        for cfg in [PassConfig::none(), PassConfig::all()] {
            let (q, report) = lower(&float_graph(), &cfg).unwrap();
            assert!(q.nodes().iter().all(|n| n.op.is_quantized()), "{cfg:?}");
            q.facts().unwrap();
            if cfg == PassConfig::all() {
                assert_eq!(report.bn_folded, 1);
                assert_eq!(report.relu6_fused, 1);
                // Node count shrinks: in+quant+conv+gap+fc vs the
                // unfused in+quant+conv+relu+gap+fc.
                assert_eq!(q.len(), 5);
            } else {
                assert_eq!(q.len(), 6);
            }
        }
    }

    #[test]
    fn lowering_requires_scale_annotations() {
        let mut g = float_graph();
        let input = g.nodes().iter().position(|n| n.name == "in").unwrap();
        g.node_mut(input).scale = None;
        let err = lower_quantized(&g).unwrap_err().to_string();
        assert!(err.contains("no calibrated scale"), "{err}");
    }

    #[test]
    fn pass_config_parses_names() {
        let mut cfg = PassConfig::none();
        for name in PASS_NAMES {
            cfg.set(name, true).unwrap();
        }
        assert_eq!(cfg, PassConfig::all());
        assert_eq!(
            cfg.set("fuse-everything", true),
            Err("fuse-everything".into())
        );
    }
}
