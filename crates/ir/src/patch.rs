//! Patch-based graph rewriting.
//!
//! Passes never mutate a [`Graph`] directly while scanning it; they record
//! intended edits in a [`Patch`] and apply the batch afterwards. This keeps
//! match logic readable (it sees a frozen graph), makes each rewrite
//! auditable, and lets [`Patch::apply`] enforce the graph invariants in one
//! place.
//!
//! Three primitive edits cover every pass in this crate:
//!
//! * **set-op** — replace a node's operation in place (same inputs), e.g.
//!   swapping a `Conv2d` for its BN-folded version or flipping a `QConv`
//!   spec's `direct` flag.
//! * **set-scale** — move a quantization-boundary annotation onto a node,
//!   e.g. a fused producer inherits the ReLU6's output scale.
//! * **bypass** — splice a single-input node out of the graph: every
//!   consumer (and the graph output, if applicable) is rewired to the
//!   node's producer. The node itself becomes an orphan for dead-code
//!   elimination to sweep. Because the producer id is always smaller than
//!   the bypassed node's id, rewiring preserves the forward-edges
//!   invariant.

use crate::graph::{Graph, Op};
use edd_tensor::{Result, TensorError};

#[derive(Debug)]
enum Edit {
    SetOp { node: usize, op: Op },
    SetScale { node: usize, scale: f32 },
    Bypass { node: usize },
}

/// An ordered batch of graph edits. Build with the recording methods, then
/// [`apply`](Patch::apply) once.
#[derive(Debug, Default)]
pub struct Patch {
    edits: Vec<Edit>,
}

impl Patch {
    /// Creates an empty patch.
    #[must_use]
    pub fn new() -> Self {
        Patch::default()
    }

    /// True when no edits were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Number of recorded edits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// Records replacing `node`'s operation (inputs unchanged).
    pub fn set_op(&mut self, node: usize, op: Op) {
        self.edits.push(Edit::SetOp { node, op });
    }

    /// Records setting `node`'s activation-scale annotation.
    pub fn set_scale(&mut self, node: usize, scale: f32) {
        self.edits.push(Edit::SetScale { node, scale });
    }

    /// Records splicing single-input `node` out: its consumers read the
    /// node's producer instead.
    pub fn bypass(&mut self, node: usize) {
        self.edits.push(Edit::Bypass { node });
    }

    /// Applies all recorded edits to `g` in order.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range node ids, a set-op that changes arity, and a
    /// bypass of a node without exactly one input. On error the graph may
    /// hold a prefix of the edits; callers treat that as fatal (passes
    /// bail out of compilation).
    pub fn apply(self, g: &mut Graph) -> Result<()> {
        for edit in self.edits {
            match edit {
                Edit::SetOp { node, op } => {
                    let n = checked(g, node)?;
                    if g.node(n).inputs.len() != op.arity() {
                        return Err(TensorError::InvalidArgument(format!(
                            "patch set-op on node {n}: new op `{}` wants {} inputs, node has {}",
                            op.mnemonic(),
                            op.arity(),
                            g.node(n).inputs.len()
                        )));
                    }
                    g.node_mut(n).op = op;
                }
                Edit::SetScale { node, scale } => {
                    let n = checked(g, node)?;
                    g.node_mut(n).scale = Some(scale);
                }
                Edit::Bypass { node } => {
                    let n = checked(g, node)?;
                    let inputs = &g.node(n).inputs;
                    if inputs.len() != 1 {
                        return Err(TensorError::InvalidArgument(format!(
                            "patch bypass on node {n}: needs exactly one input, has {}",
                            inputs.len()
                        )));
                    }
                    let producer = inputs[0];
                    for id in n + 1..g.len() {
                        let node = g.node_mut(id);
                        for i in &mut node.inputs {
                            if *i == n {
                                *i = producer;
                            }
                        }
                    }
                    if g.output()? == n {
                        g.set_output(producer)?;
                    }
                }
            }
        }
        Ok(())
    }
}

fn checked(g: &Graph, node: usize) -> Result<usize> {
    if node >= g.len() {
        return Err(TensorError::InvalidArgument(format!(
            "patch edit targets node {node}, graph has {} nodes",
            g.len()
        )));
    }
    Ok(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphMeta, Node};

    fn tiny() -> Graph {
        let mut g = Graph::new(GraphMeta {
            name: "t".into(),
            input_shape: [2, 4, 4],
            num_classes: 2,
        });
        let i = g
            .add(Node {
                name: "in".into(),
                op: Op::Input,
                inputs: vec![],
                scale: Some(0.05),
                bits: None,
            })
            .unwrap();
        let r = g
            .add(Node {
                name: "act".into(),
                op: Op::Relu6,
                inputs: vec![i],
                scale: Some(0.05),
                bits: None,
            })
            .unwrap();
        g.add(Node {
            name: "pool".into(),
            op: Op::GlobalAvgPool,
            inputs: vec![r],
            scale: Some(0.05),
            bits: None,
        })
        .unwrap();
        g
    }

    #[test]
    fn bypass_rewires_consumers_and_output() {
        let mut g = tiny();
        let mut p = Patch::new();
        p.bypass(1);
        p.apply(&mut g).unwrap();
        // pool now reads the input directly; relu node is an orphan.
        assert_eq!(g.node(2).inputs, vec![0]);
        assert_eq!(g.eliminate_dead().unwrap(), 1);
        assert_eq!(g.len(), 2);

        // Bypassing the output node moves the output to its producer.
        let mut g = tiny();
        let mut p = Patch::new();
        p.bypass(2);
        p.apply(&mut g).unwrap();
        assert_eq!(g.output().unwrap(), 1);
    }

    #[test]
    fn invalid_edits_are_rejected() {
        let mut g = tiny();
        let mut p = Patch::new();
        p.set_scale(99, 1.0);
        assert!(p.apply(&mut g).is_err());

        // Arity-changing set-op is rejected (Add wants two inputs).
        let mut g = tiny();
        let mut p = Patch::new();
        p.set_op(1, Op::Add);
        assert!(p.apply(&mut g).is_err());

        // Bypass of the zero-input node is rejected.
        let mut g = tiny();
        let mut p = Patch::new();
        p.bypass(0);
        assert!(p.apply(&mut g).is_err());
    }

    #[test]
    fn set_op_and_scale_apply_in_order() {
        let mut g = tiny();
        let mut p = Patch::new();
        p.set_scale(1, 0.125);
        p.set_op(1, Op::QRelu6 { hi: 48 });
        assert_eq!(p.len(), 2);
        p.apply(&mut g).unwrap();
        assert_eq!(g.node(1).scale, Some(0.125));
        assert!(matches!(g.node(1).op, Op::QRelu6 { hi: 48 }));
    }
}
