//! Pulsed (streaming) execution of lowered graphs.
//!
//! The batch executor ([`crate::exec::CompiledModel`]) wants the whole
//! `[b, c, h, w]` window in memory before it runs. Embedded deployments
//! see the opposite shape: a signal arriving one row at a time, under a
//! fixed memory budget, classified over sliding windows. This module
//! converts a lowered quantized graph into that form.
//!
//! **Pulse model.** A *pulse* is one input row — `channels × width`
//! floats. [`PulsedProgram::from_graph`] compiles each conv/dwconv into a
//! padding-free *strip twin* (same spec with `padding: 0`, so weights,
//! bias, and requantizers are byte-identical to the batch layer's) plus a
//! ring buffer of carried rows. Rows are stored width-padded (the
//! horizontal zero padding baked in), the vertical padding is replayed
//! per window — `p` zero rows pre-rolled before the first real row, `p`
//! more self-injected when the last real row of the window arrives — so
//! every strip the twin sees contains exactly the values the batch
//! convolution read at that output row. Because the integer engine
//! accumulates exactly in i32 and requantizes per element, equal inputs
//! give bitwise-equal outputs, whatever `EDD_NUM_THREADS`, `EDD_SIMD`, or
//! `EDD_GEMM` selected — the equivalence is structural, not numerical
//! luck.
//!
//! **Memory bound.** After emitting output row `j`, a conv ring is
//! trimmed to the rows at index `≥ (j+1)·stride`, so it never holds more
//! than `kernel` rows — for stride 1, exactly `kernel − 1` rows of
//! carried state between emissions. Residual adds hold the skew between
//! their two operand paths; the global pool holds one i32 per channel.
//! None of it grows with stream length.
//!
//! **Delay.** [`PulsedProgram::delay`] computes, by structural recursion,
//! the index of the last input row that must arrive before the first
//! output row can be emitted. [`PulsedModel`] turns the per-window
//! machinery into an [`edd_runtime::StreamModel`]: overlapping windows
//! share the immutable program, each with a recycled [`PulsedState`], and
//! `push(slice)` yields at most one completed window per pushed row.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::graph::{DType, Graph, Op, QAddOp};
use edd_nn::{QConv2d, QConvSpec, QDwConv2d, QLinear, QTensor, ACT_QMAX};
use edd_runtime::{ByteReader, ByteWriter, StreamModel, StreamWindow};
use edd_tensor::qkernel::Requant;
use edd_tensor::{Array, Result, TensorError};

fn invalid(msg: impl Into<String>) -> TensorError {
    TensorError::InvalidArgument(msg.into())
}

/// One propagated row of activations: float (graph boundary) or int8.
#[derive(Debug, Clone, PartialEq)]
pub enum Row {
    /// Float row (input rows, final logits).
    F(Vec<f32>),
    /// Quantized row, channel-major `[c · w]`.
    Q(Vec<i8>),
}

impl Row {
    fn as_q(&self) -> Result<&[i8]> {
        match self {
            Row::Q(v) => Ok(v),
            Row::F(_) => Err(invalid("pulse: expected a quantized row, found float")),
        }
    }

    fn as_f(&self) -> Result<&[f32]> {
        match self {
            Row::F(v) => Ok(v),
            Row::Q(_) => Err(invalid("pulse: expected a float row, found quantized")),
        }
    }
}

/// Static per-conv pulse geometry (shared by standard and depthwise).
#[derive(Debug, Clone)]
struct ConvGeom {
    /// Input channels of this node.
    c_in: usize,
    /// Unpadded input row width.
    in_w: usize,
    /// Real input rows per window.
    in_rows: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    out_h: usize,
    /// Activation scale the strips are stamped with (the twin's
    /// `in_scale`, byte-identical to the batch layer's).
    in_scale: f32,
}

impl ConvGeom {
    /// Width of a stored (horizontally padded) ring row.
    fn padded_w(&self) -> usize {
        self.in_w + 2 * self.padding
    }
}

/// The convolution microkernel behind a strip twin.
enum PKern {
    Std(QConv2d),
    Dw(QDwConv2d),
}

impl PKern {
    fn forward(&self, x: &QTensor) -> Result<QTensor> {
        match self {
            PKern::Std(l) => l.forward(x),
            PKern::Dw(l) => l.forward(x),
        }
    }
}

/// Per-node pulse executor, parallel to the graph's node list.
enum PNode {
    /// Unreachable node — never scheduled.
    Skip,
    /// The graph input: seeds each sweep with the pushed row.
    Input,
    /// Float → int8 boundary, row at a time.
    Quantize { scale: f32 },
    /// Conv/dwconv strip twin with ring-buffered carried rows.
    Conv { kern: PKern, geom: ConvGeom },
    /// Standalone integer ReLU6 clamp.
    Relu6 { hi: i8 },
    /// Integer residual add over two row queues.
    Add { op: QAddOp, row_len: usize },
    /// Incremental integer global average pool.
    Gap {
        channels: usize,
        in_rows: usize,
        in_w: usize,
    },
    /// Quantized classifier head on the pooled row.
    Linear(Box<QLinear>),
}

/// A lowered graph compiled for pulsed execution.
///
/// Immutable and shareable (wrap in [`Arc`] to drive many concurrent
/// windows); all mutable state lives in [`PulsedState`].
pub struct PulsedProgram {
    nodes: Vec<PNode>,
    /// Graph input ids per node.
    inputs: Vec<Vec<usize>>,
    /// `(consumer, port)` routes per node, reachable consumers only.
    routes: Vec<Vec<(usize, usize)>>,
    input_id: usize,
    output_id: usize,
    input_shape: [usize; 3],
    num_classes: usize,
    name: String,
    /// Whether the output node produces `[num_classes]` f32 logits.
    logits_output: bool,
}

impl std::fmt::Debug for PulsedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PulsedProgram")
            .field("name", &self.name)
            .field("nodes", &self.nodes.len())
            .field("input_shape", &self.input_shape)
            .field("delay", &self.delay())
            .finish_non_exhaustive()
    }
}

/// Mirror of `edd-nn`'s scale compatibility check, applied statically at
/// program build time (rows do not carry scales at run time, so the
/// producer/consumer agreement the batch layers verify per call is
/// verified once here instead).
fn check_scale(got: f32, want: f32, what: &str) -> Result<()> {
    if (got - want).abs() > want.abs() * 1e-5 {
        return Err(invalid(format!(
            "{what}: producer scale {got} does not match consumer scale {want}"
        )));
    }
    Ok(())
}

impl PulsedProgram {
    /// Compiles a lowered quantized graph for pulsed execution.
    ///
    /// Unlike the batch executor, the output need not be logits: a graph
    /// ending in a spatial node emits one quantized row per output row,
    /// which is what the delay property tests drive directly.
    ///
    /// # Errors
    ///
    /// Errors when the graph still contains float ops, when fact
    /// inference fails, or when producer/consumer activation scales
    /// disagree.
    pub fn from_graph(graph: &Graph) -> Result<Self> {
        let facts = graph.facts()?;
        let output_id = graph.output()?;
        let input_id = graph.input()?;
        let reachable = graph.reachable()?;
        // Out-scale per node, for the static scale agreement check.
        let mut out_scale: Vec<Option<f32>> = vec![None; graph.len()];
        let mut nodes = Vec::with_capacity(graph.len());
        for (id, n) in graph.nodes().iter().enumerate() {
            if !reachable[id] {
                nodes.push(PNode::Skip);
                continue;
            }
            let in_fact = |port: usize| &facts[n.inputs[port]];
            let in_scale = |port: usize| out_scale[n.inputs[port]];
            let spatial = |fact: &crate::graph::Fact, what: &str| -> Result<[usize; 3]> {
                match fact.shape.as_slice() {
                    [c, h, w] => Ok([*c, *h, *w]),
                    other => Err(invalid(format!(
                        "{what} `{}`: pulsed execution needs a [c, h, w] input, got {other:?}",
                        n.name
                    ))),
                }
            };
            let node = match &n.op {
                Op::Input => PNode::Input,
                Op::Quantize { scale } => {
                    out_scale[id] = Some(*scale);
                    PNode::Quantize { scale: *scale }
                }
                Op::QConv(s) => {
                    let [c, h, _w] = spatial(in_fact(0), "QConv")?;
                    let [_, oh, _] = spatial(&facts[id], "QConv output")?;
                    if let Some(got) = in_scale(0) {
                        check_scale(got, s.in_scale, &n.name)?;
                    }
                    out_scale[id] = Some(s.out_scale);
                    let geom = ConvGeom {
                        c_in: c,
                        in_w: _w,
                        in_rows: h,
                        kernel: s.kernel,
                        stride: s.stride,
                        padding: s.padding,
                        out_h: oh,
                        in_scale: s.in_scale,
                    };
                    // The strip twin: identical spec with the vertical
                    // padding stripped — the ring replays it as rows.
                    let twin = QConv2d::from_spec(QConvSpec {
                        padding: 0,
                        ..s.as_ref().clone()
                    });
                    PNode::Conv {
                        kern: PKern::Std(twin),
                        geom,
                    }
                }
                Op::QDwConv(s) => {
                    let [c, h, w] = spatial(in_fact(0), "QDwConv")?;
                    let [_, oh, _] = spatial(&facts[id], "QDwConv output")?;
                    if let Some(got) = in_scale(0) {
                        check_scale(got, s.in_scale, &n.name)?;
                    }
                    out_scale[id] = Some(s.out_scale);
                    let geom = ConvGeom {
                        c_in: c,
                        in_w: w,
                        in_rows: h,
                        kernel: s.kernel,
                        stride: s.stride,
                        padding: s.padding,
                        out_h: oh,
                        in_scale: s.in_scale,
                    };
                    let twin = QDwConv2d::from_spec(edd_nn::QDwConvSpec {
                        padding: 0,
                        ..s.as_ref().clone()
                    });
                    PNode::Conv {
                        kern: PKern::Dw(twin),
                        geom,
                    }
                }
                Op::QRelu6 { hi } => {
                    out_scale[id] = in_scale(0);
                    PNode::Relu6 { hi: *hi }
                }
                Op::QAdd(a) => {
                    let [_, _, w] = spatial(in_fact(0), "QAdd")?;
                    let [c, ..] = spatial(in_fact(0), "QAdd")?;
                    out_scale[id] = Some(a.out_scale);
                    PNode::Add {
                        op: *a.as_ref(),
                        row_len: c * w,
                    }
                }
                Op::QGlobalAvgPool => {
                    let [c, h, w] = spatial(in_fact(0), "QGlobalAvgPool")?;
                    out_scale[id] = in_scale(0);
                    PNode::Gap {
                        channels: c,
                        in_rows: h,
                        in_w: w,
                    }
                }
                Op::QLinear(s) => {
                    if let Some(got) = in_scale(0) {
                        check_scale(got, s.in_scale, &n.name)?;
                    }
                    PNode::Linear(Box::new(QLinear::from_spec(s.as_ref().clone())))
                }
                float => {
                    return Err(invalid(format!(
                        "cannot pulse unlowered op `{}` at node `{}`; run the quantize \
                         lowering first",
                        float.mnemonic(),
                        n.name
                    )));
                }
            };
            nodes.push(node);
        }
        let mut routes: Vec<Vec<(usize, usize)>> = vec![Vec::new(); graph.len()];
        for (id, n) in graph.nodes().iter().enumerate() {
            if !reachable[id] {
                continue;
            }
            for (port, &src) in n.inputs.iter().enumerate() {
                routes[src].push((id, port));
            }
        }
        let logits_output = facts[output_id].dtype == DType::F32
            && facts[output_id].shape == vec![graph.meta.num_classes];
        Ok(PulsedProgram {
            nodes,
            inputs: graph.nodes().iter().map(|n| n.inputs.clone()).collect(),
            routes,
            input_id,
            output_id,
            input_shape: graph.meta.input_shape,
            num_classes: graph.meta.num_classes,
            name: graph.meta.name.clone(),
            logits_output,
        })
    }

    /// Model name from the graph metadata.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Floats per pushed row (`channels × width`).
    #[must_use]
    pub fn slice_len(&self) -> usize {
        self.input_shape[0] * self.input_shape[2]
    }

    /// Input rows per window.
    #[must_use]
    pub fn window_rows(&self) -> usize {
        self.input_shape[1]
    }

    /// Logits per window (graph metadata).
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Whether the output node emits `[num_classes]` f32 logits (required
    /// by [`PulsedModel`]; spatial-output programs drive
    /// [`PulsedState`] directly).
    #[must_use]
    pub fn emits_logits(&self) -> bool {
        self.logits_output
    }

    /// Index of the last input row that must be pushed before output row
    /// `j` of node `id` can be emitted.
    fn node_delay(&self, id: usize, j: usize) -> usize {
        match &self.nodes[id] {
            PNode::Skip => 0,
            PNode::Input => j,
            PNode::Quantize { .. } | PNode::Relu6 { .. } => self.node_delay(self.inputs[id][0], j),
            PNode::Conv { geom, .. } => {
                // Output row j reads padded rows [j·s, j·s + k - 1]; the
                // bottom zero rows are injected when the last real row
                // arrives, so the requirement clamps to in_rows - 1.
                let need = (j * geom.stride + geom.kernel - 1)
                    .saturating_sub(geom.padding)
                    .min(geom.in_rows.saturating_sub(1));
                self.node_delay(self.inputs[id][0], need)
            }
            PNode::Add { .. } => self.inputs[id]
                .iter()
                .map(|&i| self.node_delay(i, j))
                .max()
                .unwrap_or(j),
            PNode::Gap { in_rows, .. } => {
                self.node_delay(self.inputs[id][0], in_rows.saturating_sub(1))
            }
            PNode::Linear(_) => self.node_delay(self.inputs[id][0], 0),
        }
    }

    /// Pulse delay: the index of the input row whose arrival emits the
    /// first output row. For a window classifier (global pool before the
    /// head) this is `window_rows - 1`; for a spatial stack it is the
    /// structural receptive-field delay the property tests verify.
    #[must_use]
    pub fn delay(&self) -> usize {
        self.node_delay(self.output_id, 0)
    }
}

// Programs are shared immutably across concurrent windows.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PulsedProgram>();
};

/// Ring of carried (horizontally padded) rows for one conv node.
#[derive(Debug, Default)]
struct Ring {
    rows: VecDeque<Vec<i8>>,
    /// Padded-row index of `rows.front()`.
    base: usize,
    /// Padded rows pushed so far (top padding included).
    pushed: usize,
    /// Real rows received so far this window.
    fed_real: usize,
    /// Output rows emitted so far this window.
    emitted: usize,
    /// Whether the top padding rows have been rolled in.
    primed: bool,
}

impl Ring {
    fn clear(&mut self) {
        self.rows.clear();
        self.base = 0;
        self.pushed = 0;
        self.fed_real = 0;
        self.emitted = 0;
        self.primed = false;
    }

    fn bytes(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

/// Per-node dynamic state, parallel to the program's node list.
#[derive(Debug)]
enum NState {
    None,
    Ring(Ring),
    /// Residual-add operand queues, indexed by port. Depth is bounded by
    /// the delay difference of the two operand paths, not stream length.
    Pair([VecDeque<Vec<i8>>; 2]),
    Pool {
        sums: Vec<i32>,
        rows: usize,
    },
}

impl NState {
    fn bytes(&self) -> usize {
        match self {
            NState::None => 0,
            NState::Ring(r) => r.bytes(),
            NState::Pair(qs) => qs.iter().flat_map(|q| q.iter().map(Vec::len)).sum(),
            NState::Pool { sums, rows } => {
                if *rows > 0 {
                    sums.len() * std::mem::size_of::<i32>()
                } else {
                    0
                }
            }
        }
    }
}

/// Mutable per-window execution state for a [`PulsedProgram`].
///
/// Holds only the carried activation state — rings, residual queues,
/// partial pools — whose total size is geometry-bound (O(window)), never
/// stream-length-bound.
#[derive(Debug)]
pub struct PulsedState {
    ns: Vec<NState>,
    /// Input rows fed this window.
    rows_fed: usize,
}

impl PulsedState {
    /// Fresh (empty) state for `program`.
    #[must_use]
    pub fn new(program: &PulsedProgram) -> Self {
        let ns = program
            .nodes
            .iter()
            .map(|n| match n {
                PNode::Conv { .. } => NState::Ring(Ring::default()),
                PNode::Add { .. } => NState::Pair([VecDeque::new(), VecDeque::new()]),
                PNode::Gap { channels, .. } => NState::Pool {
                    sums: vec![0i32; *channels],
                    rows: 0,
                },
                _ => NState::None,
            })
            .collect();
        PulsedState { ns, rows_fed: 0 }
    }

    /// Input rows fed so far this window.
    #[must_use]
    pub fn rows_fed(&self) -> usize {
        self.rows_fed
    }

    /// Bytes of carried activation state currently held.
    #[must_use]
    pub fn state_bytes(&self) -> usize {
        self.ns.iter().map(NState::bytes).sum()
    }

    /// Drops all carried state, readying the window for reuse.
    pub fn reset(&mut self) {
        for n in &mut self.ns {
            match n {
                NState::Ring(r) => r.clear(),
                NState::Pair(qs) => qs.iter_mut().for_each(VecDeque::clear),
                NState::Pool { sums, rows } => {
                    sums.iter_mut().for_each(|s| *s = 0);
                    *rows = 0;
                }
                NState::None => {}
            }
        }
        self.rows_fed = 0;
    }

    /// Feeds one input row (`channels × width` floats) and returns every
    /// row the output node emitted as a consequence — usually none or
    /// one; several at the bottom of a window when the injected padding
    /// cascades.
    ///
    /// # Errors
    ///
    /// Errors on a wrong-length row, on feeding past the window, or on a
    /// layer failure.
    pub fn push_row(&mut self, program: &PulsedProgram, row: &[f32]) -> Result<Vec<Row>> {
        if row.len() != program.slice_len() {
            return Err(invalid(format!(
                "pulse: expected a row of {} floats, got {}",
                program.slice_len(),
                row.len()
            )));
        }
        if self.rows_fed >= program.window_rows() {
            return Err(invalid(format!(
                "pulse: window already complete ({} rows)",
                program.window_rows()
            )));
        }
        let n = program.nodes.len();
        let mut inbox: Vec<Vec<(usize, Row)>> = vec![Vec::new(); n];
        let mut outputs = Vec::new();
        // One ascending-id sweep fully propagates the row: edges are
        // forward-only, and the bottom-padding injection at each conv
        // happens within the same sweep, so a window completes exactly
        // when its last row is fed.
        for id in 0..n {
            let produced = if id == program.input_id {
                vec![Row::F(row.to_vec())]
            } else {
                let msgs = std::mem::take(&mut inbox[id]);
                if msgs.is_empty() {
                    continue;
                }
                self.step(program, id, msgs)?
            };
            if produced.is_empty() {
                continue;
            }
            if id == program.output_id {
                outputs.extend(produced.iter().cloned());
            }
            for out in produced {
                for &(consumer, port) in &program.routes[id] {
                    inbox[consumer].push((port, out.clone()));
                }
            }
        }
        self.rows_fed += 1;
        Ok(outputs)
    }

    /// Runs one node over its inbox rows, returning what it produced.
    fn step(
        &mut self,
        program: &PulsedProgram,
        id: usize,
        msgs: Vec<(usize, Row)>,
    ) -> Result<Vec<Row>> {
        match (&program.nodes[id], &mut self.ns[id]) {
            (PNode::Quantize { scale }, _) => {
                let mut out = Vec::with_capacity(msgs.len());
                for (_, row) in &msgs {
                    let f = row.as_f()?;
                    // Same element-wise kernel the batch boundary runs.
                    let a = Array::from_vec(f.to_vec(), &[f.len()])?;
                    out.push(Row::Q(QTensor::quantize(&a, *scale).data));
                }
                Ok(out)
            }
            (PNode::Relu6 { hi }, _) => {
                let mut out = Vec::with_capacity(msgs.len());
                for (_, row) in &msgs {
                    let q = row.as_q()?;
                    out.push(Row::Q(q.iter().map(|&v| v.clamp(0, *hi)).collect()));
                }
                Ok(out)
            }
            (PNode::Conv { kern, geom }, NState::Ring(ring)) => {
                let mut out = Vec::new();
                for (_, row) in &msgs {
                    let q = row.as_q()?;
                    if q.len() != geom.c_in * geom.in_w {
                        return Err(invalid(format!(
                            "pulse conv: expected a row of {} bytes, got {}",
                            geom.c_in * geom.in_w,
                            q.len()
                        )));
                    }
                    if ring.fed_real >= geom.in_rows {
                        return Err(invalid(
                            "pulse conv: received more rows than the window holds",
                        ));
                    }
                    let wp = geom.padded_w();
                    if !ring.primed {
                        ring.primed = true;
                        for _ in 0..geom.padding {
                            push_ring_row(ring, kern, geom, vec![0i8; geom.c_in * wp], &mut out)?;
                        }
                    }
                    let mut padded = vec![0i8; geom.c_in * wp];
                    for ch in 0..geom.c_in {
                        padded[ch * wp + geom.padding..ch * wp + geom.padding + geom.in_w]
                            .copy_from_slice(&q[ch * geom.in_w..(ch + 1) * geom.in_w]);
                    }
                    push_ring_row(ring, kern, geom, padded, &mut out)?;
                    ring.fed_real += 1;
                    if ring.fed_real == geom.in_rows {
                        // Bottom padding: the window is complete, replay
                        // the trailing zero rows now, in this same sweep.
                        for _ in 0..geom.padding {
                            push_ring_row(ring, kern, geom, vec![0i8; geom.c_in * wp], &mut out)?;
                        }
                    }
                }
                Ok(out)
            }
            (PNode::Add { op, row_len }, NState::Pair(queues)) => {
                for (port, row) in msgs {
                    let q = row.as_q()?;
                    if q.len() != *row_len {
                        return Err(invalid(format!(
                            "pulse add: expected a row of {row_len} bytes, got {}",
                            q.len()
                        )));
                    }
                    if port > 1 {
                        return Err(invalid("pulse add: more than two operands"));
                    }
                    queues[port].push_back(q.to_vec());
                }
                let mut out = Vec::new();
                while !queues[0].is_empty() && !queues[1].is_empty() {
                    let a = queues[0].pop_front().expect("checked non-empty");
                    let b = queues[1].pop_front().expect("checked non-empty");
                    out.push(Row::Q(qadd_row(op, &a, &b)));
                }
                Ok(out)
            }
            (
                PNode::Gap {
                    channels,
                    in_rows,
                    in_w,
                },
                NState::Pool { sums, rows },
            ) => {
                let mut out = Vec::new();
                for (_, row) in &msgs {
                    let q = row.as_q()?;
                    if q.len() != channels * in_w {
                        return Err(invalid(format!(
                            "pulse gap: expected a row of {} bytes, got {}",
                            channels * in_w,
                            q.len()
                        )));
                    }
                    for (ch, sum) in sums.iter_mut().enumerate() {
                        *sum += q[ch * in_w..(ch + 1) * in_w]
                            .iter()
                            .map(|&v| i32::from(v))
                            .sum::<i32>();
                    }
                    *rows += 1;
                    if rows == in_rows {
                        // Same requant the batch pool applies; i32 sums
                        // are exact, so accumulation order cannot matter.
                        let plane = in_rows * in_w;
                        let rq = Requant::from_scale(1.0 / plane as f64);
                        out.push(Row::Q(
                            sums.iter()
                                .map(|&s| rq.apply_i8(s, -ACT_QMAX, ACT_QMAX))
                                .collect(),
                        ));
                    }
                }
                Ok(out)
            }
            (PNode::Linear(l), _) => {
                let mut out = Vec::with_capacity(msgs.len());
                for (_, row) in &msgs {
                    let q = row.as_q()?;
                    let x = QTensor {
                        data: q.to_vec(),
                        shape: vec![1, q.len()],
                        scale: l.spec().in_scale,
                    };
                    out.push(Row::F(l.forward(&x)?.data().to_vec()));
                }
                Ok(out)
            }
            (PNode::Input | PNode::Skip, _) => {
                Err(invalid("pulse: row routed to a non-executing node"))
            }
            _ => Err(invalid("pulse: node/state mismatch (corrupted state)")),
        }
    }

    /// Serializes the carried state into `w` (geometry not included; the
    /// bytes only restore onto a state built from the same program).
    pub fn save(&self, w: &mut ByteWriter) {
        w.put_u64(self.rows_fed as u64);
        for n in &self.ns {
            match n {
                NState::None => {}
                NState::Ring(r) => {
                    w.put_u64(r.base as u64);
                    w.put_u64(r.pushed as u64);
                    w.put_u64(r.fed_real as u64);
                    w.put_u64(r.emitted as u64);
                    w.put_u8(u8::from(r.primed));
                    w.put_u32(r.rows.len() as u32);
                    for row in &r.rows {
                        w.put_i8_slice(row);
                    }
                }
                NState::Pair(qs) => {
                    for q in qs {
                        w.put_u32(q.len() as u32);
                        for row in q {
                            w.put_i8_slice(row);
                        }
                    }
                }
                NState::Pool { sums, rows } => {
                    w.put_i32_slice(sums);
                    w.put_u64(*rows as u64);
                }
            }
        }
    }

    /// Restores state written by [`PulsedState::save`], validating every
    /// decoded row length against the program geometry.
    ///
    /// # Errors
    ///
    /// Errors when the bytes run dry or disagree with the geometry.
    pub fn restore(&mut self, program: &PulsedProgram, r: &mut ByteReader<'_>) -> Result<()> {
        let snap = |e: edd_runtime::snapshot::SnapshotError| invalid(format!("pulse restore: {e}"));
        self.rows_fed = r.get_u64().map_err(snap)? as usize;
        for (id, n) in self.ns.iter_mut().enumerate() {
            match (&program.nodes[id], n) {
                (PNode::Conv { geom, .. }, NState::Ring(ring)) => {
                    ring.base = r.get_u64().map_err(snap)? as usize;
                    ring.pushed = r.get_u64().map_err(snap)? as usize;
                    ring.fed_real = r.get_u64().map_err(snap)? as usize;
                    ring.emitted = r.get_u64().map_err(snap)? as usize;
                    ring.primed = r.get_u8().map_err(snap)? != 0;
                    let count = r.get_u32().map_err(snap)? as usize;
                    let row_len = geom.c_in * geom.padded_w();
                    let mut rows = VecDeque::with_capacity(count);
                    for _ in 0..count {
                        let row = r.get_i8_vec().map_err(snap)?;
                        if row.len() != row_len {
                            return Err(invalid(format!(
                                "pulse restore: ring row of {} bytes, expected {row_len}",
                                row.len()
                            )));
                        }
                        rows.push_back(row);
                    }
                    ring.rows = rows;
                }
                (PNode::Add { row_len, .. }, NState::Pair(qs)) => {
                    for q in qs.iter_mut() {
                        let count = r.get_u32().map_err(snap)? as usize;
                        q.clear();
                        for _ in 0..count {
                            let row = r.get_i8_vec().map_err(snap)?;
                            if row.len() != *row_len {
                                return Err(invalid(format!(
                                    "pulse restore: add row of {} bytes, expected {row_len}",
                                    row.len()
                                )));
                            }
                            q.push_back(row);
                        }
                    }
                }
                (PNode::Gap { channels, .. }, NState::Pool { sums, rows }) => {
                    let s = r.get_i32_vec().map_err(snap)?;
                    if s.len() != *channels {
                        return Err(invalid(format!(
                            "pulse restore: pool of {} channels, expected {channels}",
                            s.len()
                        )));
                    }
                    *sums = s;
                    *rows = r.get_u64().map_err(snap)? as usize;
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Pushes one padded row into a conv ring, emitting the output row it
/// completes (if any) and trimming the ring to the carried minimum.
fn push_ring_row(
    ring: &mut Ring,
    kern: &PKern,
    geom: &ConvGeom,
    row: Vec<i8>,
    out: &mut Vec<Row>,
) -> Result<()> {
    let (k, s, wp) = (geom.kernel, geom.stride, geom.padded_w());
    if ring.emitted < geom.out_h {
        ring.rows.push_back(row);
    } else {
        // Every output row is out; nothing downstream can read this.
        ring.base += 1;
    }
    let u = ring.pushed;
    ring.pushed += 1;
    if u + 1 >= k && (u + 1 - k).is_multiple_of(s) {
        let j = (u + 1 - k) / s;
        if j < geom.out_h {
            // Assemble the [1, c, k, w+2p] strip the twin consumes: the
            // last k padded rows, channel-major.
            let first = u + 1 - k;
            let mut strip = vec![0i8; geom.c_in * k * wp];
            for ch in 0..geom.c_in {
                for kr in 0..k {
                    let src = &ring.rows[first + kr - ring.base];
                    strip[(ch * k + kr) * wp..(ch * k + kr + 1) * wp]
                        .copy_from_slice(&src[ch * wp..(ch + 1) * wp]);
                }
            }
            let x = QTensor {
                data: strip,
                shape: vec![1, geom.c_in, k, wp],
                scale: geom.in_scale,
            };
            let y = kern.forward(&x)?;
            out.push(Row::Q(y.data));
            ring.emitted += 1;
        }
    }
    // Trim everything below the next output row's first padded row; for
    // stride 1 this leaves exactly kernel - 1 carried rows after an
    // emission — the O(window) bound.
    let next_start = ring.emitted * s;
    while ring.base < next_start && !ring.rows.is_empty() {
        ring.rows.pop_front();
        ring.base += 1;
    }
    if ring.emitted == geom.out_h {
        ring.base += ring.rows.len();
        ring.rows.clear();
    }
    Ok(())
}

/// The integer residual add on one row pair — the exact per-element loop
/// the batch engine runs.
fn qadd_row(op: &QAddOp, a: &[i8], b: &[i8]) -> Vec<i8> {
    let term = |rq: &Option<Requant>, v: i8| -> i32 {
        match rq {
            Some(rq) => rq.apply(i32::from(v)),
            None => i32::from(v),
        }
    };
    a.iter()
        .zip(b)
        .map(|(&va, &vb)| {
            (term(&op.rq_a, va) + term(&op.rq_b, vb)).clamp(-ACT_QMAX, ACT_QMAX) as i8
        })
        .collect()
}

/// One in-flight sliding window.
#[derive(Debug)]
struct Active {
    index: u64,
    start: u64,
    state: PulsedState,
}

/// Sliding-window streaming classifier over a [`PulsedProgram`].
///
/// Pushes consume one input row at a time; a new window opens every `hop`
/// rows, at most `ceil(window/hop)` run concurrently (all sharing the
/// immutable program), and completed windows recycle their state through
/// a free pool — so memory is O(window · depth), independent of how long
/// the stream runs. Implements [`StreamModel`].
#[derive(Debug)]
pub struct PulsedModel {
    program: Arc<PulsedProgram>,
    hop: usize,
    active: VecDeque<Active>,
    free: Vec<PulsedState>,
    /// Rows pushed since the stream began.
    t: u64,
}

impl PulsedModel {
    /// Wraps a shared program as a sliding-window stream with the given
    /// hop (rows between window starts).
    ///
    /// # Errors
    ///
    /// Errors when the program's output is not `[num_classes]` logits or
    /// the hop is zero.
    pub fn new(program: Arc<PulsedProgram>, hop: usize) -> Result<Self> {
        if !program.emits_logits() {
            return Err(invalid(format!(
                "PulsedModel needs a logits-emitting program; `{}` ends in a spatial node",
                program.name()
            )));
        }
        if hop == 0 {
            return Err(invalid("PulsedModel: hop must be at least one row"));
        }
        Ok(PulsedModel {
            program,
            hop,
            active: VecDeque::new(),
            free: Vec::new(),
            t: 0,
        })
    }

    /// Compiles a lowered graph and wraps it in one step.
    ///
    /// # Errors
    ///
    /// Propagates [`PulsedProgram::from_graph`] and [`PulsedModel::new`]
    /// errors.
    pub fn from_graph(graph: &Graph, hop: usize) -> Result<Self> {
        Self::new(Arc::new(PulsedProgram::from_graph(graph)?), hop)
    }

    /// The shared program.
    #[must_use]
    pub fn program(&self) -> &Arc<PulsedProgram> {
        &self.program
    }

    /// Windows currently in flight.
    #[must_use]
    pub fn active_windows(&self) -> usize {
        self.active.len()
    }
}

impl StreamModel for PulsedModel {
    type Error = TensorError;

    fn slice_len(&self) -> usize {
        self.program.slice_len()
    }

    fn window_rows(&self) -> usize {
        self.program.window_rows()
    }

    fn hop_rows(&self) -> usize {
        self.hop
    }

    fn num_classes(&self) -> usize {
        self.program.num_classes()
    }

    fn delay_rows(&self) -> usize {
        self.program.delay()
    }

    fn push(&mut self, slice: &[f32]) -> Result<Option<StreamWindow>> {
        if slice.len() != self.program.slice_len() {
            return Err(invalid(format!(
                "stream push: expected {} floats per slice, got {}",
                self.program.slice_len(),
                slice.len()
            )));
        }
        if self.t.is_multiple_of(self.hop as u64) {
            let state = self
                .free
                .pop()
                .unwrap_or_else(|| PulsedState::new(&self.program));
            self.active.push_back(Active {
                index: self.t / self.hop as u64,
                start: self.t,
                state,
            });
        }
        let mut completed = None;
        for a in &mut self.active {
            let outs = a.state.push_row(&self.program, slice)?;
            if let Some(row) = outs.into_iter().next() {
                let logits = row.as_f()?.to_vec();
                completed = Some(StreamWindow {
                    index: a.index,
                    start_row: a.start,
                    logits,
                });
            }
        }
        self.t += 1;
        if completed.is_some() {
            // Window starts are a hop (>= 1 row) apart, so only the
            // oldest window can have completed on this row.
            let mut done = self.active.pop_front().expect("completed window in flight");
            done.state.reset();
            self.free.push(done.state);
        }
        Ok(completed)
    }

    fn reset(&mut self) {
        while let Some(mut a) = self.active.pop_front() {
            a.state.reset();
            self.free.push(a.state);
        }
        self.t = 0;
    }

    fn state_bytes(&self) -> usize {
        self.active.iter().map(|a| a.state.state_bytes()).sum()
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_str("EDD-PULSE-STATE");
        w.put_u32(1); // version
        w.put_u64(self.t);
        w.put_u64(self.hop as u64);
        w.put_u32(self.program.nodes.len() as u32);
        w.put_u32(self.active.len() as u32);
        for a in &self.active {
            w.put_u64(a.index);
            w.put_u64(a.start);
            a.state.save(&mut w);
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = ByteReader::new(bytes);
        let snap = |e: edd_runtime::snapshot::SnapshotError| invalid(format!("pulse restore: {e}"));
        let magic = r.get_str().map_err(snap)?;
        if magic != "EDD-PULSE-STATE" {
            return Err(invalid("pulse restore: not a pulse state blob"));
        }
        let version = r.get_u32().map_err(snap)?;
        if version != 1 {
            return Err(invalid(format!(
                "pulse restore: unsupported version {version}"
            )));
        }
        let t = r.get_u64().map_err(snap)?;
        let hop = r.get_u64().map_err(snap)? as usize;
        if hop != self.hop {
            return Err(invalid(format!(
                "pulse restore: snapshot hop {hop} does not match model hop {}",
                self.hop
            )));
        }
        let nodes = r.get_u32().map_err(snap)? as usize;
        if nodes != self.program.nodes.len() {
            return Err(invalid(format!(
                "pulse restore: snapshot program has {nodes} nodes, this one {}",
                self.program.nodes.len()
            )));
        }
        self.reset();
        let count = r.get_u32().map_err(snap)? as usize;
        for _ in 0..count {
            let index = r.get_u64().map_err(snap)?;
            let start = r.get_u64().map_err(snap)?;
            let mut state = self
                .free
                .pop()
                .unwrap_or_else(|| PulsedState::new(&self.program));
            state.restore(&self.program, &mut r)?;
            self.active.push_back(Active {
                index,
                start,
                state,
            });
        }
        self.t = t;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ConvOp, GraphMeta, LinearOp, Node};
    use crate::passes::{compile, PassConfig};

    /// Small annotated float graph exercising every executable op
    /// (conv, relu6, residual add, gap, linear) — the exec test twin.
    fn float_graph() -> Graph {
        let mut g = Graph::new(GraphMeta {
            name: "pulse-test".into(),
            input_shape: [2, 6, 5],
            num_classes: 3,
        });
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / f64::from(1u32 << 21) - 16.0) as f32 * 0.04
        };
        let conv = |out_c: usize,
                    in_c: usize,
                    k: usize,
                    stride: usize,
                    pad: usize,
                    next: &mut dyn FnMut() -> f32| {
            Op::Conv2d(Box::new(ConvOp {
                w: (0..out_c * in_c * k * k).map(|_| next()).collect(),
                out_channels: out_c,
                in_channels: in_c,
                kernel: k,
                stride,
                padding: pad,
                bias: None,
                relu6: false,
            }))
        };
        let add = |g: &mut Graph, name: &str, op: Op, inputs: Vec<usize>, scale: f32| {
            g.add(Node {
                name: name.into(),
                op,
                inputs,
                scale: Some(scale),
                bits: None,
            })
            .unwrap()
        };
        let i = add(&mut g, "in", Op::Input, vec![], 0.05);
        let c1 = add(&mut g, "c1", conv(4, 2, 3, 1, 1, &mut next), vec![i], 0.04);
        let r1 = add(&mut g, "r1", Op::Relu6, vec![c1], 0.04);
        let c2 = add(&mut g, "c2", conv(4, 4, 1, 1, 0, &mut next), vec![r1], 0.04);
        let res = add(&mut g, "res", Op::Add, vec![c2, r1], 0.05);
        let p = add(&mut g, "gap", Op::GlobalAvgPool, vec![res], 0.05);
        let fc = add(
            &mut g,
            "fc",
            Op::Linear(Box::new(LinearOp {
                w: (0..4 * 3).map(|_| next()).collect(),
                in_features: 4,
                out_features: 3,
                bias: vec![0.05, -0.1, 0.0],
            })),
            vec![p],
            0.05,
        );
        g.set_output(fc).unwrap();
        g
    }

    fn window(rows: usize, cols: usize, seed: usize) -> Vec<f32> {
        (0..2 * rows * cols)
            .map(|i| (((i * 37 + seed * 11) % 113) as f32 - 56.0) * 0.01)
            .collect()
    }

    /// Splits a `[c, h, w]` window into h channel-major rows.
    fn rows_of(win: &[f32], c: usize, h: usize, w: usize) -> Vec<Vec<f32>> {
        (0..h)
            .map(|r| {
                let mut row = Vec::with_capacity(c * w);
                for ch in 0..c {
                    row.extend_from_slice(&win[(ch * h + r) * w..(ch * h + r) * w + w]);
                }
                row
            })
            .collect()
    }

    #[test]
    fn pulsed_logits_match_batch_bitwise() {
        let g = float_graph();
        let (batch, _) = compile(&g, &PassConfig::all()).unwrap();
        let program = PulsedProgram::from_graph(batch.graph()).unwrap();
        assert!(program.emits_logits());
        assert_eq!(program.delay(), 5);
        let mut state = PulsedState::new(&program);
        for seed in 0..3 {
            let win = window(6, 5, seed);
            let x = Array::from_vec(win.clone(), &[1, 2, 6, 5]).unwrap();
            let want = batch.forward(&x).unwrap();
            let mut got = Vec::new();
            for (r, row) in rows_of(&win, 2, 6, 5).iter().enumerate() {
                let outs = state.push_row(&program, row).unwrap();
                if r < 5 {
                    assert!(outs.is_empty(), "early output at row {r}");
                } else {
                    got = outs;
                }
            }
            assert_eq!(got.len(), 1);
            let Row::F(logits) = &got[0] else {
                panic!("expected float logits");
            };
            assert_eq!(
                want.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                logits.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "pulsed diverges from batch on window {seed}"
            );
            state.reset();
            assert_eq!(state.state_bytes(), 0);
        }
    }

    #[test]
    fn sliding_windows_match_batch_per_window() {
        let g = float_graph();
        let (batch, _) = compile(&g, &PassConfig::all()).unwrap();
        let mut model = PulsedModel::from_graph(batch.graph(), 2).unwrap();
        assert_eq!(model.window_rows(), 6);
        assert_eq!(model.slice_len(), 10);
        // A 16-row stream = windows starting at rows 0, 2, 4, .., 10.
        let stream: Vec<Vec<f32>> = (0..16)
            .map(|r| {
                (0..10)
                    .map(|i| (((r * 31 + i * 7) % 97) as f32 - 48.0) * 0.015)
                    .collect()
            })
            .collect();
        let mut windows = Vec::new();
        let mut peak = 0usize;
        for row in &stream {
            if let Some(w) = model.push(row).unwrap() {
                windows.push(w);
            }
            peak = peak.max(model.state_bytes());
        }
        assert_eq!(windows.len(), 6);
        for w in &windows {
            // Assemble the same window [c=2, h=6, w=5] and run batch.
            let start = w.start_row as usize;
            let mut win = vec![0.0f32; 2 * 6 * 5];
            for (r, row) in stream[start..start + 6].iter().enumerate() {
                for ch in 0..2 {
                    win[(ch * 6 + r) * 5..(ch * 6 + r) * 5 + 5]
                        .copy_from_slice(&row[ch * 5..(ch + 1) * 5]);
                }
            }
            let x = Array::from_vec(win, &[1, 2, 6, 5]).unwrap();
            let want = batch.forward(&x).unwrap();
            assert_eq!(
                want.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                w.logits.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "window {} diverges",
                w.index
            );
        }
        // Bounded state: at most ceil(window/hop) windows in flight.
        assert!(model.active_windows() <= 3);
        assert!(peak > 0);
    }

    #[test]
    fn state_save_restore_roundtrips_bitwise() {
        let g = float_graph();
        let (batch, _) = compile(&g, &PassConfig::all()).unwrap();
        let stream: Vec<Vec<f32>> = (0..20)
            .map(|r| {
                (0..10)
                    .map(|i| (((r * 13 + i * 29) % 101) as f32 - 50.0) * 0.012)
                    .collect()
            })
            .collect();
        let mut whole = PulsedModel::from_graph(batch.graph(), 3).unwrap();
        let mut want = Vec::new();
        for row in &stream {
            if let Some(w) = whole.push(row).unwrap() {
                want.push(w);
            }
        }
        // Split mid-signal (mid-window): run 8 rows, snapshot, resume.
        let mut a = PulsedModel::from_graph(batch.graph(), 3).unwrap();
        let mut got = Vec::new();
        for row in &stream[..8] {
            if let Some(w) = a.push(row).unwrap() {
                got.push(w);
            }
        }
        let blob = a.save_state();
        let mut b = PulsedModel::from_graph(batch.graph(), 3).unwrap();
        b.restore_state(&blob).unwrap();
        for row in &stream[8..] {
            if let Some(w) = b.push(row).unwrap() {
                got.push(w);
            }
        }
        assert_eq!(want, got);
    }

    #[test]
    fn state_is_stream_length_independent() {
        let g = float_graph();
        let (batch, _) = compile(&g, &PassConfig::all()).unwrap();
        let run = |rows: usize| -> usize {
            let mut model = PulsedModel::from_graph(batch.graph(), 2).unwrap();
            let mut peak = 0usize;
            for r in 0..rows {
                let row: Vec<f32> = (0..10)
                    .map(|i| (((r * 7 + i * 3) % 53) as f32 - 26.0) * 0.02)
                    .collect();
                model.push(&row).unwrap();
                peak = peak.max(model.state_bytes());
            }
            peak
        };
        // Peak carried state for a 12-row stream equals the peak for a
        // stream 20x longer: the memory bound does not grow with length.
        assert_eq!(run(12), run(240));
    }

    #[test]
    fn rejects_unlowered_and_bad_pushes() {
        let g = float_graph();
        let err = PulsedProgram::from_graph(&g).unwrap_err().to_string();
        assert!(err.contains("unlowered"), "{err}");
        let (batch, _) = compile(&g, &PassConfig::all()).unwrap();
        let program = PulsedProgram::from_graph(batch.graph()).unwrap();
        let mut state = PulsedState::new(&program);
        assert!(state.push_row(&program, &[0.0; 3]).is_err());
        let mut model = PulsedModel::new(Arc::new(program), 2).unwrap();
        assert!(model.push(&[0.0; 3]).is_err());
        assert!(PulsedModel::from_graph(batch.graph(), 0).is_err());
    }
}
