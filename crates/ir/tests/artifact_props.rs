//! Property tests for the compiled-model artifact format: serialization
//! round-trips byte-identically for arbitrary lowered graphs, corrupt or
//! truncated files are rejected with a clean error (never a panic, never
//! silent acceptance), and a graph rebuilt from its artifact executes
//! bit-identically to the original.

use edd_ir::passes::{lower, PassConfig};
use edd_ir::{artifact, BatchNormOp, CompiledModel, ConvOp, Graph, GraphMeta, LinearOp, Node, Op};
use edd_runtime::BatchModel;
use proptest::prelude::*;

/// Deterministic xorshift float stream so graph weights are a pure
/// function of the seed.
fn weights(seed: u64, n: usize) -> Vec<f32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / f64::from(1u32 << 21) - 16.0) as f32 * 0.04
        })
        .collect()
}

/// Builds a small annotated float graph — conv+bn+relu6 stem, a 1×1
/// residual branch, pool, classifier — then lowers it with the given
/// pass configuration. Covers every serializable op including int4
/// packed weights.
fn lowered_graph(c_mid: usize, kernel: usize, bits: u32, seed: u64, cfg: &PassConfig) -> Graph {
    let mut g = Graph::new(GraphMeta {
        name: format!("prop-{c_mid}-{kernel}-{bits}"),
        input_shape: [2, 6, 6],
        num_classes: 3,
    });
    let add = |g: &mut Graph, name: &str, op: Op, inputs: Vec<usize>, scale: f32, bits| {
        g.add(Node {
            name: name.into(),
            op,
            inputs,
            scale: Some(scale),
            bits,
        })
        .unwrap()
    };
    let pad = kernel / 2;
    let i = add(&mut g, "in", Op::Input, vec![], 0.05, None);
    let c1 = add(
        &mut g,
        "stem",
        Op::Conv2d(Box::new(ConvOp {
            w: weights(seed, c_mid * 2 * kernel * kernel),
            out_channels: c_mid,
            in_channels: 2,
            kernel,
            stride: 1,
            padding: pad,
            bias: None,
            relu6: false,
        })),
        vec![i],
        0.04,
        Some(bits),
    );
    let bn = add(
        &mut g,
        "stem.bn",
        Op::BatchNorm(Box::new(BatchNormOp {
            mul: weights(seed ^ 0xA5, c_mid)
                .iter()
                .map(|v| 1.0 + v.abs())
                .collect(),
            add: weights(seed ^ 0x5A, c_mid),
            relu6: false,
        })),
        vec![c1],
        0.04,
        None,
    );
    let r = add(&mut g, "stem.act", Op::Relu6, vec![bn], 0.04, None);
    let c2 = add(
        &mut g,
        "branch",
        Op::Conv2d(Box::new(ConvOp {
            w: weights(seed ^ 0xC3, c_mid * c_mid),
            out_channels: c_mid,
            in_channels: c_mid,
            kernel: 1,
            stride: 1,
            padding: 0,
            bias: Some(weights(seed ^ 0x3C, c_mid)),
            relu6: false,
        })),
        vec![r],
        0.04,
        Some(8),
    );
    let res = add(&mut g, "res", Op::Add, vec![c2, r], 0.05, None);
    let p = add(&mut g, "gap", Op::GlobalAvgPool, vec![res], 0.05, None);
    let fc = add(
        &mut g,
        "fc",
        Op::Linear(Box::new(LinearOp {
            w: weights(seed ^ 0xF0, c_mid * 3),
            in_features: c_mid,
            out_features: 3,
            bias: weights(seed ^ 0x0F, 3),
        })),
        vec![p],
        0.05,
        None,
    );
    g.set_output(fc).unwrap();
    lower(&g, cfg).unwrap().0
}

fn configs() -> Vec<PassConfig> {
    vec![PassConfig::none(), PassConfig::all()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn roundtrip_is_byte_identical(
        c_mid in 1usize..=4,
        kernel in prop::sample::select(vec![1usize, 3]),
        bits in prop::sample::select(vec![4u32, 8]),
        seed in 0u64..=u64::MAX,
        all_passes in 0u8..2,
    ) {
        let cfg = if all_passes == 1 { PassConfig::all() } else { PassConfig::none() };
        let g = lowered_graph(c_mid, kernel, bits, seed, &cfg);
        let bytes = artifact::to_bytes(&g).unwrap();
        let g2 = artifact::from_bytes(&bytes).unwrap();
        let bytes2 = artifact::to_bytes(&g2).unwrap();
        prop_assert_eq!(bytes, bytes2);
    }

    #[test]
    fn reloaded_model_is_bitwise_identical(
        c_mid in 1usize..=4,
        kernel in prop::sample::select(vec![1usize, 3]),
        bits in prop::sample::select(vec![4u32, 8]),
        seed in 0u64..=u64::MAX,
    ) {
        for cfg in configs() {
            let g = lowered_graph(c_mid, kernel, bits, seed, &cfg);
            let bytes = artifact::to_bytes(&g).unwrap();
            let direct = CompiledModel::from_graph(g).unwrap();
            let reloaded = CompiledModel::from_graph(artifact::from_bytes(&bytes).unwrap()).unwrap();
            let x: Vec<f32> = (0..2 * direct.image_len())
                .map(|i| ((i * 31 % 97) as f32 - 48.0) * 0.015)
                .collect();
            let a = direct.infer_batch(&x, 2).unwrap();
            let b = reloaded.infer_batch(&x, 2).unwrap();
            let a_bits: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(a_bits, b_bits);
        }
    }

    #[test]
    fn flipped_bit_is_always_rejected(
        seed in 0u64..=u64::MAX,
        pos_seed in 0usize..=usize::MAX,
        bit in 0u8..8,
    ) {
        let g = lowered_graph(2, 3, 8, seed, &PassConfig::all());
        let mut bytes = artifact::to_bytes(&g).unwrap();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= 1 << bit;
        // Every single-bit flip — header or payload — must surface as an
        // error from parsing, never a panic or a silently-wrong model.
        prop_assert!(artifact::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_is_always_rejected(
        seed in 0u64..=u64::MAX,
        cut_seed in 0usize..=usize::MAX,
    ) {
        let g = lowered_graph(2, 1, 4, seed, &PassConfig::all());
        let bytes = artifact::to_bytes(&g).unwrap();
        let keep = cut_seed % bytes.len(); // strictly shorter than full
        prop_assert!(artifact::from_bytes(&bytes[..keep]).is_err());
    }
}
