//! Property tests for the pulsed executor's delay computation: for random
//! conv/dwconv stacks (depth, kernels, strides, paddings, channel widths
//! all varied), the statically computed [`PulsedProgram::delay`] must
//! equal the index of the first pushed input row at which the pulsed
//! execution actually emits an output row — and every emitted row must be
//! bitwise identical to the batch oracle (the same quantized layers run
//! on the full window at once).
//!
//! The oracle and the pulsed path share specs byte-for-byte, so any
//! disagreement is a scheduling bug (delay math, ring trim, padding
//! replay), not arithmetic noise.

use edd_ir::{Graph, GraphMeta, Node, Op, PulsedProgram, PulsedState, Row};
use edd_nn::{QConv2d, QConvSource, QConvSpec, QDwConv2d, QDwConvSource, QDwConvSpec, QTensor};
use edd_tensor::Array;
use proptest::prelude::*;

const SCALE: f32 = 0.05;

/// Deterministic xorshift float stream so layer weights are a pure
/// function of the seed.
fn weights(seed: u64, n: usize) -> Vec<f32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / f64::from(1u32 << 21) - 16.0) as f32 * 0.04
        })
        .collect()
}

/// One randomly drawn layer of the stack, already shape-checked.
enum Layer {
    Std(QConvSpec),
    Dw(QDwConvSpec),
}

impl Layer {
    fn op(&self) -> Op {
        match self {
            Layer::Std(s) => Op::QConv(Box::new(s.clone())),
            Layer::Dw(s) => Op::QDwConv(Box::new(s.clone())),
        }
    }
}

/// Draws a `depth`-layer conv/dwconv stack from the xorshift stream,
/// keeping every intermediate height/width ≥ 1. Returns the layers plus
/// the final spatial size.
fn draw_stack(depth: usize, c0: usize, h0: usize, w0: usize, seed: u64) -> Vec<Layer> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let (mut c, mut h, mut w) = (c0, h0, w0);
    let mut layers = Vec::with_capacity(depth);
    for i in 0..depth {
        let depthwise = next() % 2 == 0;
        let kernel = if depthwise {
            [3usize, 5][(next() % 2) as usize]
        } else {
            [1usize, 3, 5][(next() % 3) as usize]
        };
        let mut stride = 1 + (next() % 2) as usize;
        let mut padding = if next() % 2 == 0 { kernel / 2 } else { 0 };
        // Keep every intermediate ≥ 4×4 — the quantized im2col kernels do
        // not support near-degenerate planes. With odd kernels, the
        // `same`-padding stride-1 fallback preserves the spatial size, so
        // it always fits.
        let fits = h + 2 * padding >= kernel
            && w + 2 * padding >= kernel
            && (h + 2 * padding - kernel) / stride + 1 >= 4
            && (w + 2 * padding - kernel) / stride + 1 >= 4;
        if !fits {
            stride = 1;
            padding = kernel / 2;
        }
        let layer = if depthwise {
            Layer::Dw(QDwConvSpec::quantize(
                &QDwConvSource {
                    w: &weights(seed ^ (i as u64) << 3, c * kernel * kernel),
                    channels: c,
                    kernel,
                    stride,
                    padding,
                    bias: None,
                    bn: None,
                },
                8,
                SCALE,
                SCALE,
                false,
            ))
        } else {
            let c_out = 2 + (next() % 2) as usize;
            let spec = QConvSpec::quantize(
                &QConvSource {
                    w: &weights(seed ^ (i as u64) << 7, c_out * c * kernel * kernel),
                    out_channels: c_out,
                    in_channels: c,
                    kernel,
                    stride,
                    padding,
                    bias: None,
                    bn: None,
                },
                8,
                SCALE,
                SCALE,
                false,
                kernel == 1 && stride == 1,
            );
            c = c_out;
            Layer::Std(spec)
        };
        h = (h + 2 * padding - kernel) / stride + 1;
        w = (w + 2 * padding - kernel) / stride + 1;
        layers.push(layer);
    }
    layers
}

/// Builds the lowered graph `input → quantize → stack…` with the stack's
/// last conv as the output node.
fn build_graph(layers: &[Layer], c0: usize, h0: usize, w0: usize) -> Graph {
    let mut g = Graph::new(GraphMeta {
        name: "pulse-delay-prop".into(),
        input_shape: [c0, h0, w0],
        num_classes: 1,
    });
    let add = |g: &mut Graph, name: String, op: Op, inputs: Vec<usize>| {
        g.add(Node {
            name,
            op,
            inputs,
            scale: None,
            bits: None,
        })
        .unwrap()
    };
    let input = add(&mut g, "input".into(), Op::Input, vec![]);
    let mut prev = add(
        &mut g,
        "quantize".into(),
        Op::Quantize { scale: SCALE },
        vec![input],
    );
    for (i, layer) in layers.iter().enumerate() {
        prev = add(&mut g, format!("conv{i}"), layer.op(), vec![prev]);
    }
    g.set_output(prev).unwrap();
    g
}

/// Runs the stack as the batch oracle on the full window, returning the
/// final quantized activation `[1, c, h, w]`.
fn batch_oracle(layers: &[Layer], x: &Array) -> QTensor {
    let mut h = QTensor::quantize(x, SCALE);
    for layer in layers {
        h = match layer {
            Layer::Std(s) => QConv2d::from_spec(s.clone()).forward(&h).unwrap(),
            Layer::Dw(s) => QDwConv2d::from_spec(s.clone()).forward(&h).unwrap(),
        };
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn computed_delay_matches_first_pulsed_emission(
        depth in 1usize..=3,
        h0 in 6usize..=12,
        w0 in 5usize..=9,
        seed in 0u64..1_000_000,
    ) {
        let c0 = 2;
        let layers = draw_stack(depth, c0, h0, w0, seed);
        let g = build_graph(&layers, c0, h0, w0);
        let program = PulsedProgram::from_graph(&g).unwrap();
        let delay = program.delay();
        prop_assert!(delay < h0, "delay {delay} beyond the {h0}-row window");

        // Push the window row by row, recording which input row produced
        // which output rows.
        let signal = weights(seed ^ 0xFACE, c0 * h0 * w0);
        let mut state = PulsedState::new(&program);
        let mut emitted: Vec<Vec<i8>> = Vec::new();
        let mut first_emission: Option<usize> = None;
        for r in 0..h0 {
            let mut row = Vec::with_capacity(c0 * w0);
            for ch in 0..c0 {
                row.extend_from_slice(&signal[(ch * h0 + r) * w0..(ch * h0 + r) * w0 + w0]);
            }
            let outs = state.push_row(&program, &row).unwrap();
            if !outs.is_empty() && first_emission.is_none() {
                first_emission = Some(r);
            }
            for out in outs {
                match out {
                    Row::Q(v) => emitted.push(v),
                    Row::F(_) => prop_assert!(false, "conv stack emitted a float row"),
                }
            }
        }

        // The computed delay is exactly the first row that produced output.
        prop_assert_eq!(
            first_emission,
            Some(delay),
            "first pulsed emission disagrees with PulsedProgram::delay"
        );

        // And the emitted rows reassemble the batch oracle bitwise.
        let x = Array::from_vec(signal, &[1, c0, h0, w0]).unwrap();
        let want = batch_oracle(&layers, &x);
        let (c_out, out_h, out_w) = (want.shape[1], want.shape[2], want.shape[3]);
        prop_assert_eq!(emitted.len(), out_h, "pulsed row count vs batch output height");
        for (r, row) in emitted.iter().enumerate() {
            prop_assert_eq!(row.len(), c_out * out_w);
            for ch in 0..c_out {
                let batch = &want.data[(ch * out_h + r) * out_w..(ch * out_h + r) * out_w + out_w];
                prop_assert_eq!(
                    &row[ch * out_w..(ch + 1) * out_w],
                    batch,
                    "output row {} channel {} diverges from the batch oracle", r, ch
                );
            }
        }
    }
}
