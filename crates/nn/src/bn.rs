//! 2-D batch normalization layer with running statistics.

use crate::module::Module;
use edd_tensor::{Array, Result, Tensor};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Batch normalization over NCHW activations.
///
/// In training mode (the default) the layer normalizes with batch statistics
/// and updates exponential running estimates; in evaluation mode it
/// normalizes with the stored running statistics (differentiably with
/// respect to `gamma`/`beta` and the input).
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Tensor,
    beta: Tensor,
    running_mean: Mutex<Array>,
    running_var: Mutex<Array>,
    momentum: f32,
    eps: f32,
    training: AtomicBool,
    channels: usize,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` channels with the usual
    /// defaults (`momentum = 0.1`, `eps = 1e-5`).
    #[must_use]
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Tensor::param(Array::ones(&[channels])),
            beta: Tensor::param(Array::zeros(&[channels])),
            running_mean: Mutex::new(Array::zeros(&[channels])),
            running_var: Mutex::new(Array::ones(&[channels])),
            momentum: 0.1,
            eps: 1e-5,
            training: AtomicBool::new(true),
            channels,
        }
    }

    /// The per-channel scale parameter `gamma`.
    #[must_use]
    pub fn gamma(&self) -> &Tensor {
        &self.gamma
    }

    /// The per-channel shift parameter `beta`.
    #[must_use]
    pub fn beta(&self) -> &Tensor {
        &self.beta
    }

    /// Numerical-stability epsilon added to the variance.
    #[must_use]
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Current running mean estimate.
    #[must_use]
    pub fn running_mean(&self) -> Array {
        self.running_mean.lock().expect("bn stats poisoned").clone()
    }

    /// Current running variance estimate.
    #[must_use]
    pub fn running_var(&self) -> Array {
        self.running_var.lock().expect("bn stats poisoned").clone()
    }

    /// Whether the layer is in training mode.
    #[must_use]
    pub fn is_training(&self) -> bool {
        self.training.load(Ordering::Relaxed)
    }

    /// Replaces both running statistics (checkpoint restore). The running
    /// estimates are state, not parameters — `parameters()` does not expose
    /// them — so resuming a search must set them through this hook.
    ///
    /// # Errors
    ///
    /// Rejects statistics whose shape is not `[channels]`.
    pub fn set_running_stats(&self, mean: Array, var: Array) -> Result<()> {
        let want = [self.channels];
        for (name, a) in [("mean", &mean), ("var", &var)] {
            if a.shape() != want {
                return Err(edd_tensor::TensorError::InvalidArgument(format!(
                    "BatchNorm2d::set_running_stats: {name} has shape {:?}, expected {want:?}",
                    a.shape()
                )));
            }
        }
        *self.running_mean.lock().expect("bn stats poisoned") = mean;
        *self.running_var.lock().expect("bn stats poisoned") = var;
        Ok(())
    }

    /// Exponential moving average of the running statistics toward the batch
    /// statistics of the current forward pass.
    fn update_running_stats(&self, batch_mean: &Array, batch_var: &Array) {
        let mut rm = self.running_mean.lock().expect("bn stats poisoned");
        let mut rv = self.running_var.lock().expect("bn stats poisoned");
        for c in 0..self.channels {
            rm.data_mut()[c] =
                (1.0 - self.momentum) * rm.data()[c] + self.momentum * batch_mean.data()[c];
            rv.data_mut()[c] =
                (1.0 - self.momentum) * rv.data()[c] + self.momentum * batch_var.data()[c];
        }
    }

    /// Forward pass fused with a ReLU6 activation: `relu6(bn(x))`.
    ///
    /// In training mode this runs as a single fused op node — bitwise
    /// identical to `forward(x)?.relu6()` but with one fewer graph node and
    /// one fewer full-tensor gradient buffer per call. In eval mode it
    /// composes the unfused pair.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying ops.
    pub fn forward_relu6(&self, x: &Tensor) -> Result<Tensor> {
        if self.is_training() {
            let bn = x.batch_norm2d_relu6_train(&self.gamma, &self.beta, self.eps)?;
            self.update_running_stats(&bn.batch_mean, &bn.batch_var);
            Ok(bn.output)
        } else {
            Ok(self.forward(x)?.relu6())
        }
    }
}

impl Module for BatchNorm2d {
    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        if self.is_training() {
            let bn = x.batch_norm2d_train(&self.gamma, &self.beta, self.eps)?;
            self.update_running_stats(&bn.batch_mean, &bn.batch_var);
            Ok(bn.output)
        } else {
            // y = gamma * (x - mean) / sqrt(var + eps) + beta, with running
            // statistics as constants, composed from broadcast primitives.
            let c = self.channels;
            let bshape = [1, c, 1, 1];
            let mean = Tensor::constant(self.running_mean().reshape(&bshape)?);
            let var = self.running_var();
            let eps = self.eps;
            let inv_std =
                Tensor::constant(var.map(move |v| 1.0 / (v + eps).sqrt()).reshape(&bshape)?);
            let gamma = self.gamma.reshape(&bshape)?;
            let beta = self.beta.reshape(&bshape)?;
            x.sub(&mean)?.mul(&inv_std)?.mul(&gamma)?.add(&beta)
        }
    }

    fn parameters(&self) -> Vec<Tensor> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn set_training(&self, training: bool) {
        self.training.store(training, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn training_mode_normalizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let bn = BatchNorm2d::new(3);
        let x = Tensor::constant(Array::randn(&[4, 3, 5, 5], 3.0, &mut rng));
        let y = bn.forward(&x).unwrap();
        let v = y.value();
        let mean: f32 = v.data().iter().sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn running_stats_move_toward_batch_stats() {
        let mut rng = StdRng::seed_from_u64(2);
        let bn = BatchNorm2d::new(1);
        // Input with mean ~5.
        let x = Tensor::constant(Array::randn(&[8, 1, 4, 4], 1.0, &mut rng).map(|v| v + 5.0));
        for _ in 0..50 {
            bn.forward(&x).unwrap();
        }
        let rm = bn.running_mean();
        assert!(
            (rm.data()[0] - 5.0).abs() < 0.3,
            "running mean {}",
            rm.data()[0]
        );
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut rng = StdRng::seed_from_u64(3);
        let bn = BatchNorm2d::new(2);
        let x = Tensor::constant(Array::randn(&[4, 2, 3, 3], 2.0, &mut rng));
        for _ in 0..100 {
            bn.forward(&x).unwrap();
        }
        bn.set_training(false);
        assert!(!bn.is_training());
        // In eval mode, the same distribution normalizes to ~zero mean.
        let y = bn.forward(&x).unwrap();
        let v = y.value();
        let mean: f32 = v.data().iter().sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 0.2, "eval mean {mean}");
        // And eval mode must not further update running stats.
        let before = bn.running_mean();
        bn.forward(&x).unwrap();
        assert_eq!(before.data(), bn.running_mean().data());
    }

    #[test]
    fn gamma_beta_are_trainable() {
        let bn = BatchNorm2d::new(4);
        assert_eq!(bn.parameters().len(), 2);
        assert_eq!(bn.num_parameters(), 8);
        assert!(bn.parameters().iter().all(Tensor::requires_grad));
    }

    #[test]
    fn forward_relu6_matches_unfused_bitwise() {
        let mut rng = StdRng::seed_from_u64(9);
        let fused = BatchNorm2d::new(3);
        let unfused = BatchNorm2d::new(3);
        let x = Tensor::constant(Array::randn(&[2, 3, 4, 4], 2.0, &mut rng));
        let yf = fused.forward_relu6(&x).unwrap();
        let yu = unfused.forward(&x).unwrap().relu6();
        assert_eq!(yf.value().data(), yu.value().data());
        // EMA updates must agree too (same batch statistics feed both).
        assert_eq!(fused.running_mean().data(), unfused.running_mean().data());
        assert_eq!(fused.running_var().data(), unfused.running_var().data());
        // Eval mode composes the unfused pair.
        fused.set_training(false);
        unfused.set_training(false);
        let yf = fused.forward_relu6(&x).unwrap();
        let yu = unfused.forward(&x).unwrap().relu6();
        assert_eq!(yf.value().data(), yu.value().data());
    }

    #[test]
    fn eval_mode_differentiable_wrt_gamma() {
        let mut rng = StdRng::seed_from_u64(4);
        let bn = BatchNorm2d::new(2);
        bn.set_training(false);
        let x = Tensor::constant(Array::randn(&[1, 2, 2, 2], 1.0, &mut rng));
        let y = bn.forward(&x).unwrap();
        y.sum().backward();
        assert!(bn.parameters()[0].grad().is_some());
        assert!(bn.parameters()[1].grad().is_some());
    }
}
