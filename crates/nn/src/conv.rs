//! Convolution layers: standard [`Conv2d`] and depthwise [`DwConv2d`].
//!
//! Both lower onto `edd-tensor`'s blocked kernel layer: im2col + tiled
//! GEMM for [`Conv2d`], shifted-row accumulation for [`DwConv2d`], with
//! the batch dimension threaded across `EDD_NUM_THREADS` workers
//! (bitwise-deterministic in the thread count).

use crate::init::{kaiming_conv, kaiming_dwconv};
use crate::module::{maybe_quantize, Module, QuantSpec, QuantizableModule};
use edd_tensor::{Array, Result, Tensor};
use rand::Rng;

/// A standard 2-D convolution layer (NCHW), square kernel, optional bias.
#[derive(Debug)]
pub struct Conv2d {
    weight: Tensor,
    bias: Option<Tensor>,
    stride: usize,
    padding: usize,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        Conv2d {
            weight: Tensor::param(kaiming_conv(out_c, in_c, kernel, rng)),
            bias: bias.then(|| Tensor::param(Array::zeros(&[out_c]))),
            stride,
            padding,
        }
    }

    /// Creates a "same" padded convolution (`padding = kernel / 2`).
    #[must_use]
    pub fn same<R: Rng + ?Sized>(
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        rng: &mut R,
    ) -> Self {
        Self::new(in_c, out_c, kernel, stride, kernel / 2, false, rng)
    }

    /// The weight tensor `[out_c, in_c, k, k]`.
    #[must_use]
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Kernel size.
    #[must_use]
    pub fn kernel(&self) -> usize {
        self.weight.shape()[2]
    }

    /// Stride.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Padding.
    #[must_use]
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// The bias tensor `[out_c]`, when the layer has one.
    #[must_use]
    pub fn bias(&self) -> Option<&Tensor> {
        self.bias.as_ref()
    }
}

impl Module for Conv2d {
    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        x.conv2d(&self.weight, self.bias.as_ref(), self.stride, self.padding)
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }
}

impl QuantizableModule for Conv2d {
    fn forward_quantized(&self, x: &Tensor, quant: Option<QuantSpec>) -> Result<Tensor> {
        let w = maybe_quantize(&self.weight, quant);
        x.conv2d(&w, self.bias.as_ref(), self.stride, self.padding)
    }
}

/// A depthwise 2-D convolution layer (one `k×k` filter per channel).
#[derive(Debug)]
pub struct DwConv2d {
    weight: Tensor,
    bias: Option<Tensor>,
    stride: usize,
    padding: usize,
}

impl DwConv2d {
    /// Creates a Kaiming-initialized depthwise convolution with "same"
    /// padding (`kernel / 2`).
    #[must_use]
    pub fn same<R: Rng + ?Sized>(
        channels: usize,
        kernel: usize,
        stride: usize,
        rng: &mut R,
    ) -> Self {
        DwConv2d {
            weight: Tensor::param(kaiming_dwconv(channels, kernel, rng)),
            bias: None,
            stride,
            padding: kernel / 2,
        }
    }

    /// The weight tensor `[c, k, k]`.
    #[must_use]
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Kernel size.
    #[must_use]
    pub fn kernel(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Stride.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Padding.
    #[must_use]
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// The bias tensor `[c]`, when the layer has one.
    #[must_use]
    pub fn bias(&self) -> Option<&Tensor> {
        self.bias.as_ref()
    }
}

impl Module for DwConv2d {
    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        x.dwconv2d(&self.weight, self.bias.as_ref(), self.stride, self.padding)
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }
}

impl QuantizableModule for DwConv2d {
    fn forward_quantized(&self, x: &Tensor, quant: Option<QuantSpec>) -> Result<Tensor> {
        let w = maybe_quantize(&self.weight, quant);
        x.dwconv2d(&w, self.bias.as_ref(), self.stride, self.padding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv2d::same(3, 16, 3, 2, &mut rng);
        let x = Tensor::constant(Array::zeros(&[2, 3, 32, 32]));
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![2, 16, 16, 16]);
        assert_eq!(conv.kernel(), 3);
        assert_eq!(conv.stride(), 2);
    }

    #[test]
    fn conv_param_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let conv = Conv2d::new(3, 8, 3, 1, 1, true, &mut rng);
        // weight 8*3*3*3 + bias 8
        assert_eq!(conv.num_parameters(), 8 * 27 + 8);
        assert_eq!(conv.parameters().len(), 2);
    }

    #[test]
    fn conv_trains_toward_target() {
        use edd_tensor::optim::{Optimizer, Sgd};
        let mut rng = StdRng::seed_from_u64(3);
        let conv = Conv2d::new(1, 1, 1, 1, 0, false, &mut rng);
        let mut opt = Sgd::new(conv.parameters(), 0.05, 0.0, 0.0);
        // learn to double the input
        let x = Tensor::constant(Array::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap());
        let t = Tensor::constant(Array::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[1, 1, 2, 2]).unwrap());
        for _ in 0..100 {
            opt.zero_grad();
            let y = conv.forward(&x).unwrap();
            let loss = y.sub(&t).unwrap().square().mean();
            loss.backward();
            opt.step();
        }
        let w = conv.weight().value().data()[0];
        assert!((w - 2.0).abs() < 0.05, "weight {w}");
    }

    #[test]
    fn quantized_forward_changes_low_bits_only() {
        let mut rng = StdRng::seed_from_u64(4);
        let conv = Conv2d::same(2, 4, 3, 1, &mut rng);
        let x = Tensor::constant(Array::randn(&[1, 2, 8, 8], 1.0, &mut rng));
        let full = conv.forward(&x).unwrap();
        let q16 = conv
            .forward_quantized(&x, Some(QuantSpec::bits(16)))
            .unwrap();
        let q2 = conv
            .forward_quantized(&x, Some(QuantSpec::bits(2)))
            .unwrap();
        let diff16: f32 = full
            .value()
            .data()
            .iter()
            .zip(q16.value().data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        let diff2: f32 = full
            .value()
            .data()
            .iter()
            .zip(q2.value().data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            diff16 < diff2,
            "16-bit ({diff16}) should be closer than 2-bit ({diff2})"
        );
    }

    #[test]
    fn dwconv_preserves_channels() {
        let mut rng = StdRng::seed_from_u64(5);
        let dw = DwConv2d::same(6, 5, 1, &mut rng);
        let x = Tensor::constant(Array::zeros(&[1, 6, 10, 10]));
        let y = dw.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![1, 6, 10, 10]);
    }

    #[test]
    fn dwconv_quantized_runs() {
        let mut rng = StdRng::seed_from_u64(6);
        let dw = DwConv2d::same(3, 3, 2, &mut rng);
        let x = Tensor::constant(Array::randn(&[1, 3, 8, 8], 1.0, &mut rng));
        let y = dw.forward_quantized(&x, Some(QuantSpec::bits(8))).unwrap();
        assert_eq!(y.shape(), vec![1, 3, 4, 4]);
    }
}
