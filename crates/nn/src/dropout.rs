//! Inverted dropout with train/eval modes.

use crate::module::Module;
use edd_tensor::{Array, Result, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; evaluation is the
/// identity. Used by the classifier heads of the final-training stage
/// (GoogLeNet/VGG-style heads use dropout 0.4–0.5).
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    training: AtomicBool,
    rng: Mutex<StdRng>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a fixed RNG
    /// seed (deterministic training runs).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    #[must_use]
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        Dropout {
            p,
            training: AtomicBool::new(true),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// The drop probability.
    #[must_use]
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Module for Dropout {
    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        if !self.training.load(Ordering::Relaxed) || self.p == 0.0 {
            return Ok(x.clone());
        }
        let shape = x.shape();
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut rng = self.rng.lock().expect("dropout rng poisoned");
        let mask_data: Vec<f32> = (0..x.value().len())
            .map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let mask = Tensor::constant(Array::from_vec(mask_data, &shape)?);
        x.mul(&mask)
    }

    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }

    fn set_training(&self, training: bool) {
        self.training.store(training, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.5, 1);
        d.set_training(false);
        let x = Tensor::constant(Array::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap());
        let y = d.forward(&x).unwrap();
        assert_eq!(y.value().data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn training_mode_zeroes_and_rescales() {
        let d = Dropout::new(0.5, 2);
        let x = Tensor::constant(Array::ones(&[10_000]));
        let y = d.forward(&x).unwrap();
        let v = y.value_clone();
        let zeros = v.data().iter().filter(|&&e| e == 0.0).count();
        let frac = zeros as f32 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.05, "drop fraction {frac}");
        // Survivors are scaled to preserve the expectation.
        let mean = v.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        for &e in v.data() {
            assert!(e == 0.0 || (e - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let d = Dropout::new(0.0, 3);
        let x = Tensor::constant(Array::from_vec(vec![4.0, 5.0], &[2]).unwrap());
        assert_eq!(d.forward(&x).unwrap().value().data(), &[4.0, 5.0]);
    }

    #[test]
    fn gradient_respects_mask() {
        let d = Dropout::new(0.5, 4);
        let x = Tensor::param(Array::ones(&[64]));
        let y = d.forward(&x).unwrap();
        y.sum().backward();
        let g = x.grad().unwrap();
        let yv = y.value_clone();
        for (ge, ye) in g.data().iter().zip(yv.data()) {
            // Gradient is the mask value (0 or 1/keep).
            assert!((ge - ye).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn rejects_p_one() {
        let _ = Dropout::new(1.0, 5);
    }
}
