//! Weight initialization schemes.

use edd_tensor::Array;
use rand::Rng;

/// Kaiming (He) normal initialization for a convolution weight
/// `[out_c, in_c, k, k]`: `std = sqrt(2 / fan_in)` with `fan_in = in_c·k²`.
#[must_use]
pub fn kaiming_conv<R: Rng + ?Sized>(out_c: usize, in_c: usize, k: usize, rng: &mut R) -> Array {
    let fan_in = (in_c * k * k) as f32;
    let std = (2.0 / fan_in).sqrt();
    Array::randn(&[out_c, in_c, k, k], std, rng)
}

/// Kaiming normal initialization for a depthwise convolution weight
/// `[c, k, k]` (`fan_in = k²`).
#[must_use]
pub fn kaiming_dwconv<R: Rng + ?Sized>(c: usize, k: usize, rng: &mut R) -> Array {
    let fan_in = (k * k) as f32;
    let std = (2.0 / fan_in).sqrt();
    Array::randn(&[c, k, k], std, rng)
}

/// Xavier (Glorot) normal initialization for a linear weight
/// `[in_f, out_f]`: `std = sqrt(2 / (in_f + out_f))`.
#[must_use]
pub fn xavier_linear<R: Rng + ?Sized>(in_f: usize, out_f: usize, rng: &mut R) -> Array {
    let std = (2.0 / (in_f + out_f) as f32).sqrt();
    Array::randn(&[in_f, out_f], std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_conv_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = kaiming_conv(64, 64, 3, &mut rng);
        let mean = w.mean();
        let var = w
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / w.len() as f32;
        let expect = 2.0 / (64.0 * 9.0);
        assert!(
            (var - expect).abs() < expect * 0.2,
            "var {var} expect {expect}"
        );
    }

    #[test]
    fn shapes_are_right() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(kaiming_conv(8, 4, 3, &mut rng).shape(), &[8, 4, 3, 3]);
        assert_eq!(kaiming_dwconv(8, 5, &mut rng).shape(), &[8, 5, 5]);
        assert_eq!(xavier_linear(10, 20, &mut rng).shape(), &[10, 20]);
    }

    #[test]
    fn xavier_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = xavier_linear(100, 100, &mut rng);
        let var = w.data().iter().map(|v| v * v).sum::<f32>() / w.len() as f32;
        assert!((var - 0.01).abs() < 0.003, "var {var}");
    }
}
