//! # edd-nn
//!
//! Neural-network layers on top of [`edd_tensor`], providing everything the
//! EDD supernet and the baseline model zoo need: convolutions (standard,
//! depthwise, separable), batch normalization with running statistics,
//! linear layers, pooling, activations, the MBConv inverted-residual block,
//! straight-through weight fake-quantization hooks, and a small
//! train/evaluate loop.
//!
//! # Example
//!
//! ```
//! use edd_nn::{Activation, Conv2d, GlobalAvgPool, Linear, Module, Sequential};
//! use edd_tensor::{Array, Tensor};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let net = Sequential::new()
//!     .push(Conv2d::same(3, 8, 3, 2, &mut rng))
//!     .push(Activation::Relu6)
//!     .push(GlobalAvgPool)
//!     .push(Linear::new(8, 10, &mut rng));
//! let x = Tensor::constant(Array::zeros(&[1, 3, 32, 32]));
//! let logits = net.forward(&x).unwrap();
//! assert_eq!(logits.shape(), vec![1, 10]);
//! ```

#![warn(missing_docs)]

mod bn;
mod conv;
mod dropout;
pub mod init;
mod linear;
mod mbconv;
mod module;
pub mod qlayers;
mod se;
mod sequential;
pub mod train;

pub use bn::BatchNorm2d;
pub use conv::{Conv2d, DwConv2d};
pub use dropout::Dropout;
pub use linear::Linear;
pub use mbconv::{MbConv, SepConv};
pub use module::{maybe_quantize, resolve_range, Module, QuantSpec, QuantizableModule};
pub use qlayers::{
    bn_fold_factors, clamp_bounds, fold_bn, q_global_avg_pool, MbConvScales, QConv2d, QConvSource,
    QConvSpec, QDwConv2d, QDwConvSource, QDwConvSpec, QLinear, QLinearSpec, QMbConv, QTensor,
    QWeights, ACT_QMAX,
};
pub use se::SqueezeExcite;
pub use sequential::{Activation, AvgPool2d, Flatten, GlobalAvgPool, MaxPool2d, Sequential};
pub use train::{evaluate, train_epoch, train_epoch_with, Batch, EpochStats};
