//! Fully-connected layer.
//!
//! Forward and backward run on `edd-tensor`'s blocked GEMM kernel layer:
//! the matmul uses the register-tiled kernel and the backward pass the
//! transpose-free `AᵀB` / `ABᵀ` variants, with the bias add taking the
//! rank-1 broadcast fast path.

use crate::init::xavier_linear;
use crate::module::{maybe_quantize, Module, QuantSpec, QuantizableModule};
use edd_tensor::{Array, Result, Tensor};
use rand::Rng;

/// A fully-connected layer `y = x W + b` over `[batch, in_features]` inputs.
#[derive(Debug)]
pub struct Linear {
    weight: Tensor,
    bias: Tensor,
}

impl Linear {
    /// Creates a Xavier-initialized linear layer.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Linear {
            weight: Tensor::param(xavier_linear(in_features, out_features, rng)),
            bias: Tensor::param(Array::zeros(&[out_features])),
        }
    }

    /// The weight tensor `[in_features, out_features]`.
    #[must_use]
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias tensor `[out_features]`.
    #[must_use]
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

impl Module for Linear {
    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        x.matmul(&self.weight)?.add(&self.bias)
    }

    fn parameters(&self) -> Vec<Tensor> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

impl QuantizableModule for Linear {
    fn forward_quantized(&self, x: &Tensor, quant: Option<QuantSpec>) -> Result<Tensor> {
        let w = maybe_quantize(&self.weight, quant);
        x.matmul(&w)?.add(&self.bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_params() {
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new(10, 4, &mut rng);
        let x = Tensor::constant(Array::zeros(&[3, 10]));
        let y = lin.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![3, 4]);
        assert_eq!(lin.num_parameters(), 44);
    }

    #[test]
    fn learns_linear_map() {
        use edd_tensor::optim::{Adam, Optimizer};
        let mut rng = StdRng::seed_from_u64(2);
        let lin = Linear::new(2, 1, &mut rng);
        let mut opt = Adam::new(lin.parameters(), 0.1);
        // target: y = 3a - b + 0.5
        let xs = Array::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, -1.0], &[4, 2]).unwrap();
        let ts = Array::from_vec(vec![3.5, -0.5, 2.5, 7.5], &[4, 1]).unwrap();
        for _ in 0..1500 {
            opt.zero_grad();
            let y = lin.forward(&Tensor::constant(xs.clone())).unwrap();
            let loss = y
                .sub(&Tensor::constant(ts.clone()))
                .unwrap()
                .square()
                .mean();
            loss.backward();
            opt.step();
        }
        let y = lin.forward(&Tensor::constant(xs.clone())).unwrap();
        let err: f32 = y
            .value()
            .data()
            .iter()
            .zip(ts.data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(err < 0.2, "err {err}");
    }

    #[test]
    fn quantized_matches_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let lin = Linear::new(5, 7, &mut rng);
        let x = Tensor::constant(Array::randn(&[2, 5], 1.0, &mut rng));
        let y = lin.forward_quantized(&x, Some(QuantSpec::bits(4))).unwrap();
        assert_eq!(y.shape(), vec![2, 7]);
    }
}
