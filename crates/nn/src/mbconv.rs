//! The MBConv inverted-residual block — the candidate operation of the EDD
//! search space (paper §3.1): `conv-1×1` expand → `dwconv-k×k` → `conv-1×1`
//! project, with batch norm + ReLU6 between layers and a residual connection
//! when shapes allow.

use crate::bn::BatchNorm2d;
use crate::conv::{Conv2d, DwConv2d};
use crate::module::{Module, QuantSpec, QuantizableModule};
use edd_tensor::{Result, Tensor};
use rand::Rng;

/// Inverted-residual MBConv block with kernel size `k` and channel expansion
/// ratio `e` (the paper searches `k ∈ {3,5,7}` and `e ∈ {4,5,6}`).
#[derive(Debug)]
pub struct MbConv {
    expand: Option<(Conv2d, BatchNorm2d)>,
    depthwise: DwConv2d,
    dw_bn: BatchNorm2d,
    project: Conv2d,
    proj_bn: BatchNorm2d,
    residual: bool,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    expansion: usize,
    stride: usize,
}

impl MbConv {
    /// Creates an MBConv block.
    ///
    /// `expansion = 1` omits the expand convolution (MobileNetV2-style).
    /// The residual connection is used when `stride == 1` and
    /// `in_c == out_c`.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        in_c: usize,
        out_c: usize,
        kernel: usize,
        expansion: usize,
        stride: usize,
        rng: &mut R,
    ) -> Self {
        let mid = in_c * expansion;
        let expand = (expansion > 1).then(|| {
            (
                Conv2d::new(in_c, mid, 1, 1, 0, false, rng),
                BatchNorm2d::new(mid),
            )
        });
        MbConv {
            expand,
            depthwise: DwConv2d::same(mid, kernel, stride, rng),
            dw_bn: BatchNorm2d::new(mid),
            project: Conv2d::new(mid, out_c, 1, 1, 0, false, rng),
            proj_bn: BatchNorm2d::new(out_c),
            residual: stride == 1 && in_c == out_c,
            in_channels: in_c,
            out_channels: out_c,
            kernel,
            expansion,
            stride,
        }
    }

    /// Input channel count.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Depthwise kernel size.
    #[must_use]
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Channel expansion ratio.
    #[must_use]
    pub fn expansion(&self) -> usize {
        self.expansion
    }

    /// Stride of the depthwise stage.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Whether the block uses a residual connection.
    #[must_use]
    pub fn has_residual(&self) -> bool {
        self.residual
    }

    /// The expand stage (1×1 conv + BN), absent when `expansion == 1`.
    /// Exposed so post-training compilers (the integer inference engine's
    /// calibration pass) can replay the block stage by stage.
    #[must_use]
    pub fn expand(&self) -> Option<&(Conv2d, BatchNorm2d)> {
        self.expand.as_ref()
    }

    /// The depthwise convolution stage.
    #[must_use]
    pub fn depthwise(&self) -> &DwConv2d {
        &self.depthwise
    }

    /// Batch norm after the depthwise stage.
    #[must_use]
    pub fn dw_bn(&self) -> &BatchNorm2d {
        &self.dw_bn
    }

    /// The projection 1×1 convolution.
    #[must_use]
    pub fn project(&self) -> &Conv2d {
        &self.project
    }

    /// Batch norm after the projection stage.
    #[must_use]
    pub fn proj_bn(&self) -> &BatchNorm2d {
        &self.proj_bn
    }

    /// The block's batch-norm layers in forward order (expand BN when
    /// present, depthwise BN, projection BN). Running statistics are state
    /// outside `parameters()`, so checkpointing walks them through this.
    #[must_use]
    pub fn batch_norms(&self) -> Vec<&BatchNorm2d> {
        let mut bns = Vec::with_capacity(3);
        if let Some((_, bn)) = &self.expand {
            bns.push(bn);
        }
        bns.push(&self.dw_bn);
        bns.push(&self.proj_bn);
        bns
    }

    fn forward_impl(&self, x: &Tensor, quant: Option<QuantSpec>) -> Result<Tensor> {
        let mut h = x.clone();
        if let Some((conv, bn)) = &self.expand {
            h = conv.forward_quantized(&h, quant)?;
            h = bn.forward_relu6(&h)?;
        }
        h = self.depthwise.forward_quantized(&h, quant)?;
        h = self.dw_bn.forward_relu6(&h)?;
        h = self.project.forward_quantized(&h, quant)?;
        h = self.proj_bn.forward(&h)?;
        if self.residual {
            h = h.add(x)?;
        }
        Ok(h)
    }
}

impl Module for MbConv {
    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        self.forward_impl(x, None)
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = Vec::new();
        if let Some((conv, bn)) = &self.expand {
            p.extend(conv.parameters());
            p.extend(bn.parameters());
        }
        p.extend(self.depthwise.parameters());
        p.extend(self.dw_bn.parameters());
        p.extend(self.project.parameters());
        p.extend(self.proj_bn.parameters());
        p
    }

    fn set_training(&self, training: bool) {
        if let Some((_, bn)) = &self.expand {
            bn.set_training(training);
        }
        self.dw_bn.set_training(training);
        self.proj_bn.set_training(training);
    }
}

impl QuantizableModule for MbConv {
    fn forward_quantized(&self, x: &Tensor, quant: Option<QuantSpec>) -> Result<Tensor> {
        self.forward_impl(x, quant)
    }
}

/// Depthwise-separable convolution (`dw-k×k` + pointwise `1×1`), the "Sep"
/// stem block in the published EDD-Net architectures (Fig. 4).
#[derive(Debug)]
pub struct SepConv {
    depthwise: DwConv2d,
    dw_bn: BatchNorm2d,
    pointwise: Conv2d,
    pw_bn: BatchNorm2d,
}

impl SepConv {
    /// Creates a separable convolution block.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        rng: &mut R,
    ) -> Self {
        SepConv {
            depthwise: DwConv2d::same(in_c, kernel, stride, rng),
            dw_bn: BatchNorm2d::new(in_c),
            pointwise: Conv2d::new(in_c, out_c, 1, 1, 0, false, rng),
            pw_bn: BatchNorm2d::new(out_c),
        }
    }
}

impl Module for SepConv {
    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let h = self.depthwise.forward(x)?;
        let h = self.dw_bn.forward_relu6(&h)?;
        let h = self.pointwise.forward(&h)?;
        self.pw_bn.forward(&h)
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.depthwise.parameters();
        p.extend(self.dw_bn.parameters());
        p.extend(self.pointwise.parameters());
        p.extend(self.pw_bn.parameters());
        p
    }

    fn set_training(&self, training: bool) {
        self.dw_bn.set_training(training);
        self.pw_bn.set_training(training);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edd_tensor::Array;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mbconv_shape_stride1() {
        let mut rng = StdRng::seed_from_u64(1);
        let mb = MbConv::new(8, 8, 3, 4, 1, &mut rng);
        assert!(mb.has_residual());
        let x = Tensor::constant(Array::randn(&[2, 8, 8, 8], 1.0, &mut rng));
        let y = mb.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![2, 8, 8, 8]);
    }

    #[test]
    fn mbconv_shape_stride2_changes_channels() {
        let mut rng = StdRng::seed_from_u64(2);
        let mb = MbConv::new(8, 16, 5, 6, 2, &mut rng);
        assert!(!mb.has_residual());
        let x = Tensor::constant(Array::randn(&[1, 8, 16, 16], 1.0, &mut rng));
        let y = mb.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![1, 16, 8, 8]);
    }

    #[test]
    fn mbconv_expansion1_has_no_expand_conv() {
        let mut rng = StdRng::seed_from_u64(3);
        let mb1 = MbConv::new(8, 8, 3, 1, 1, &mut rng);
        let mb4 = MbConv::new(8, 8, 3, 4, 1, &mut rng);
        assert!(mb1.num_parameters() < mb4.num_parameters());
        let x = Tensor::constant(Array::randn(&[1, 8, 4, 4], 1.0, &mut rng));
        assert_eq!(mb1.forward(&x).unwrap().shape(), vec![1, 8, 4, 4]);
    }

    #[test]
    fn mbconv_gradients_reach_all_params() {
        let mut rng = StdRng::seed_from_u64(4);
        let mb = MbConv::new(4, 4, 3, 4, 1, &mut rng);
        let x = Tensor::constant(Array::randn(&[2, 4, 6, 6], 1.0, &mut rng));
        let y = mb.forward(&x).unwrap();
        y.square().sum().backward();
        for (i, p) in mb.parameters().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} missing grad");
        }
    }

    #[test]
    fn mbconv_quantized_path_differs_from_full() {
        let mut rng = StdRng::seed_from_u64(5);
        let mb = MbConv::new(4, 4, 3, 4, 1, &mut rng);
        mb.set_training(false);
        let x = Tensor::constant(Array::randn(&[1, 4, 6, 6], 1.0, &mut rng));
        let full = mb.forward(&x).unwrap();
        let q = mb.forward_quantized(&x, Some(QuantSpec::bits(3))).unwrap();
        let diff: f32 = full
            .value()
            .data()
            .iter()
            .zip(q.value().data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4, "3-bit quantization should perturb outputs");
    }

    #[test]
    fn sepconv_shapes() {
        let mut rng = StdRng::seed_from_u64(6);
        let sep = SepConv::new(32, 16, 3, 1, &mut rng);
        let x = Tensor::constant(Array::randn(&[1, 32, 8, 8], 1.0, &mut rng));
        let y = sep.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![1, 16, 8, 8]);
        assert!(!sep.parameters().is_empty());
    }

    #[test]
    fn getters_report_config() {
        let mut rng = StdRng::seed_from_u64(7);
        let mb = MbConv::new(8, 16, 5, 6, 2, &mut rng);
        assert_eq!(mb.in_channels(), 8);
        assert_eq!(mb.out_channels(), 16);
        assert_eq!(mb.kernel(), 5);
        assert_eq!(mb.expansion(), 6);
        assert_eq!(mb.stride(), 2);
    }
}
