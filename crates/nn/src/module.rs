//! The [`Module`] abstraction shared by all layers: a differentiable
//! forward function plus a parameter list.

use edd_tensor::{Result, Tensor};

/// Quantization applied to a layer's weights during a forward pass.
///
/// `None` bits means full precision. The range is the symmetric clip range of
/// the straight-through fake quantizer; layers typically derive it from the
/// current weight magnitudes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantSpec {
    /// Bit-width of the symmetric fixed-point grid.
    pub bits: u32,
    /// Optional explicit clip range; when `None` the layer uses the max
    /// absolute value of its weights (min-max calibration).
    pub range: Option<f32>,
}

impl QuantSpec {
    /// Creates a spec with min-max calibrated range.
    #[must_use]
    pub fn bits(bits: u32) -> Self {
        QuantSpec { bits, range: None }
    }
}

/// A neural-network layer: maps an input tensor to an output tensor and owns
/// trainable parameters.
///
/// Layers use interior mutability for mode switches (train/eval) so that
/// `forward` can take `&self` and modules can be freely shared.
pub trait Module {
    /// Runs the layer on `x`.
    ///
    /// # Errors
    ///
    /// Returns an error when `x` has an incompatible shape.
    fn forward(&self, x: &Tensor) -> Result<Tensor>;

    /// All trainable parameters of this layer (and its children).
    fn parameters(&self) -> Vec<Tensor>;

    /// Switches between training mode (batch statistics, etc.) and
    /// evaluation mode. Default: no-op.
    fn set_training(&self, _training: bool) {}

    /// Number of scalar parameters.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.value().len()).sum()
    }
}

/// A layer whose weights can be fake-quantized on the fly — the hook used by
/// the EDD supernet to evaluate an operation under a sampled bit-width.
pub trait QuantizableModule: Module {
    /// Runs the layer with weights pushed through a straight-through fake
    /// quantizer at `quant` precision (`None` = full precision).
    ///
    /// # Errors
    ///
    /// Returns an error when `x` has an incompatible shape.
    fn forward_quantized(&self, x: &Tensor, quant: Option<QuantSpec>) -> Result<Tensor>;
}

/// Derives the symmetric quantization range for a weight tensor: an explicit
/// range if given, otherwise the max absolute weight value (never below a
/// small epsilon so the grid stays valid for all-zero weights).
#[must_use]
pub fn resolve_range(weight: &Tensor, spec: QuantSpec) -> f32 {
    spec.range.unwrap_or_else(|| {
        let v = weight.value();
        v.data()
            .iter()
            .fold(0.0f32, |acc, &x| acc.max(x.abs()))
            .max(1e-6)
    })
}

/// Applies `spec` to `weight` (straight-through), or returns the weight
/// unchanged when `spec` is `None`.
#[must_use]
pub fn maybe_quantize(weight: &Tensor, spec: Option<QuantSpec>) -> Tensor {
    match spec {
        Some(q) => weight.fake_quantize(q.bits, resolve_range(weight, q)),
        None => weight.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edd_tensor::Array;

    #[test]
    fn resolve_range_uses_max_abs() {
        let w = Tensor::param(Array::from_vec(vec![0.5, -2.0, 1.0], &[3]).unwrap());
        assert_eq!(resolve_range(&w, QuantSpec::bits(8)), 2.0);
        assert_eq!(
            resolve_range(
                &w,
                QuantSpec {
                    bits: 8,
                    range: Some(4.0)
                }
            ),
            4.0
        );
    }

    #[test]
    fn resolve_range_floor_for_zero_weights() {
        let w = Tensor::param(Array::zeros(&[4]));
        assert!(resolve_range(&w, QuantSpec::bits(8)) > 0.0);
    }

    #[test]
    fn maybe_quantize_none_is_identity_node() {
        let w = Tensor::param(Array::from_vec(vec![0.33], &[1]).unwrap());
        let q = maybe_quantize(&w, None);
        assert_eq!(q.value().data(), &[0.33]);
    }

    #[test]
    fn maybe_quantize_snaps_to_grid() {
        let w = Tensor::param(Array::from_vec(vec![0.3, -0.8], &[2]).unwrap());
        let q = maybe_quantize(
            &w,
            Some(QuantSpec {
                bits: 2,
                range: Some(1.0),
            }),
        );
        // 2-bit symmetric: step 0.5.
        assert_eq!(q.value().data(), &[0.5, -1.0]);
    }
}
