//! Integer quantized inference layers: compiled, BN-folded counterparts of
//! [`Conv2d`], [`DwConv2d`], [`Linear`] and [`MbConv`] executing entirely
//! in integer arithmetic on [`edd_tensor::qkernel`].
//!
//! # Compilation model
//!
//! A float layer is *compiled* once into its quantized form: batch norm is
//! folded into the convolution weights and bias (`w' = w · γ/√(σ²+ε)`,
//! `b' = β − μ · γ/√(σ²+ε)`), the folded weights are quantized symmetrically
//! **per output channel** at the block's Φ-searched bit-width (int8
//! storage, bit-packed int4 when the searched width is ≤ 4 bits), and the
//! bias is pre-quantized into the i32 accumulator domain at scale
//! `s_in · s_w[c]`. Activations travel between layers as [`QTensor`]s —
//! int8 with one per-tensor scale fixed ahead of time by a calibration
//! pass — so a forward pass performs no float arithmetic until the final
//! classifier dequantizes its logits.
//!
//! ReLU6 fuses into the requantization clamp: the activation bound `6.0`
//! maps to `round(6/s_out)` in the output grid, so clamping the requantized
//! accumulator to `[0, min(127, round(6/s_out))]` is the integer image of
//! `relu6`. Residual adds rescale both operands into the block-output grid
//! with [`Requant`] multipliers and add saturating in i32.

use crate::bn::BatchNorm2d;
use crate::conv::{Conv2d, DwConv2d};
use crate::linear::Linear;
use crate::mbconv::MbConv;
use edd_tensor::kernel::{pack, pool, select};
use edd_tensor::qkernel::{
    self, pack_i4, qdw_plane_into, qim2col_into, qmatmul_into, qmatmul_prepacked_into,
    quantize_i8_into, requantize_rows_into, unpack_i4_into, Requant,
};
use edd_tensor::{scratch, stats, Array, Conv2dGeometry, Result, TensorError};

/// Activation quantization width: activations always travel as int8
/// (`qmax = 127`); the Φ-searched precision applies to weights.
pub const ACT_QMAX: i32 = 127;

/// A quantized activation tensor: int8 values with one per-tensor scale
/// (`real ≈ data[i] · scale`), zero-point 0.
#[derive(Debug, Clone)]
pub struct QTensor {
    /// Row-major quantized values (NCHW for feature maps).
    pub data: Vec<i8>,
    /// Logical shape.
    pub shape: Vec<usize>,
    /// Real value of one integer step.
    pub scale: f32,
}

impl QTensor {
    /// Quantizes a float array onto the int8 grid with the given scale,
    /// clamping to `[-127, 127]`.
    #[must_use]
    pub fn quantize(x: &Array, scale: f32) -> Self {
        let mut data = vec![0i8; x.len()];
        quantize_i8_into(&mut data, x.data(), scale, ACT_QMAX);
        QTensor {
            data,
            shape: x.shape().to_vec(),
            scale,
        }
    }

    /// Dequantizes back to a float array.
    ///
    /// # Panics
    ///
    /// Panics if the stored shape is inconsistent with the data length
    /// (unreachable for tensors built by this module).
    #[must_use]
    pub fn dequantize(&self) -> Array {
        let mut out = vec![0.0f32; self.data.len()];
        qkernel::dequantize_into(&mut out, &self.data, self.scale);
        Array::from_vec(out, &self.shape).expect("QTensor shape consistent")
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Quantized weight storage: dense int8, or bit-packed int4 for low-Φ
/// blocks (two sign-extended nibbles per byte — half the bytes of dense
/// int8 storage). This is the *model* form that [`weight_bytes`] reports;
/// the layers additionally cache a microkernel-native execution form
/// (k4-padded rows or packed B-panels) built once at compile time, so no
/// unpacking happens on the forward path.
///
/// [`weight_bytes`]: QConv2d::weight_bytes
#[derive(Debug, Clone)]
pub enum QWeights {
    /// One i8 per weight.
    Int8(Vec<i8>),
    /// Bit-packed int4: `len` nibbles in `len.div_ceil(2)` bytes.
    Int4 {
        /// Packed nibble bytes.
        packed: Vec<u8>,
        /// Number of logical weights.
        len: usize,
    },
}

impl QWeights {
    /// Quantized values already in `[-qmax(bits), qmax(bits)]`; packs when
    /// the searched width fits int4.
    #[must_use]
    pub fn new(q: Vec<i8>, bits: u32) -> Self {
        if bits <= 4 {
            QWeights::Int4 {
                packed: pack_i4(&q),
                len: q.len(),
            }
        } else {
            QWeights::Int8(q)
        }
    }

    /// Number of logical weights.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            QWeights::Int8(q) => q.len(),
            QWeights::Int4 { len, .. } => *len,
        }
    }

    /// True when no weights are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of storage actually held (the int4 memory win is real, not
    /// notional — this is what the zoo/bench report).
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        match self {
            QWeights::Int8(q) => q.len(),
            QWeights::Int4 { packed, .. } => packed.len(),
        }
    }

    /// Materializes the dense int8 view (unpacking int4 nibbles). Values
    /// round-trip exactly: quantized weights fit `[-qmax(bits), qmax(bits)]`
    /// before packing, so sign-extended nibbles reproduce them bit-for-bit.
    #[must_use]
    pub fn to_dense(&self) -> Vec<i8> {
        match self {
            QWeights::Int8(q) => q.clone(),
            QWeights::Int4 { packed, len } => {
                let mut out = vec![0i8; *len];
                unpack_i4_into(&mut out, packed);
                out
            }
        }
    }
}

/// Shares a raw mutable base pointer between the two tasks of the
/// double-buffered packing pipeline (GEMM on the current panel, packing of
/// the next); each task re-materializes and writes a disjoint buffer.
struct SendMut<T>(*mut T);

// SAFETY: only the address crosses threads; the pipeline's two tasks write
// disjoint buffers (acc/out-row vs. next-panel/cols) that the caller keeps
// alive for the whole `pool::run`.
unsafe impl<T> Send for SendMut<T> {}
unsafe impl<T> Sync for SendMut<T> {}

impl<T> SendMut<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the raw pointer field.
    fn ptr(&self) -> *mut T {
        self.0
    }
}

/// Packs one image's im2col column matrix into microkernel-native B-panels:
/// straight from the image for 1×1 stride-1 convolutions (the image *is*
/// the column matrix), through the `cols` scratch otherwise.
fn pack_image_panels(
    dst: &mut [i8],
    cols: Option<&mut [i8]>,
    image: &[i8],
    geom: &Conv2dGeometry,
    ckk: usize,
    plane: usize,
) {
    stats::record_pack_panel_miss();
    match cols {
        None => pack::pack_rhs_i8(dst, image, ckk, plane),
        Some(cols) => {
            qim2col_into(cols, image, geom);
            pack::pack_rhs_i8(dst, cols, ckk, plane);
        }
    }
}

/// Adds the per-output-channel bias into the accumulator rows (saturating,
/// like the requantization domain expects).
fn add_bias_rows(acc: &mut [i32], bias_q: &[i32], plane: usize) {
    for (row, &bq) in acc.chunks_exact_mut(plane).zip(bias_q) {
        if bq != 0 {
            for a in row {
                *a = a.saturating_add(bq);
            }
        }
    }
}

/// Per-output-channel symmetric quantization of a `[rows, cols]` weight
/// matrix (row = output channel): returns the quantized values and one
/// scale per row.
fn quantize_per_row(w: &[f32], rows: usize, cols: usize, bits: u32) -> (Vec<i8>, Vec<f32>) {
    let qm = qkernel::qmax(bits);
    let mut q = vec![0i8; w.len()];
    let mut scales = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &w[r * cols..(r + 1) * cols];
        let s = qkernel::scale_for(qkernel::max_abs(row), bits);
        quantize_i8_into(&mut q[r * cols..(r + 1) * cols], row, s, qm);
        scales.push(s);
    }
    (q, scales)
}

/// Per-channel batch-norm fold factors for eval-mode statistics:
/// `(mul[c], add[c])` with `mul = γ/√(σ²+ε)` and `add = β − μ·mul`, so
/// `bn(x) = x·mul + add` channelwise.
#[must_use]
pub fn bn_fold_factors(bn: &BatchNorm2d) -> (Vec<f32>, Vec<f32>) {
    let gamma = bn.gamma().value().data().to_vec();
    let beta = bn.beta().value().data().to_vec();
    let mean = bn.running_mean();
    let var = bn.running_var();
    let eps = bn.eps();
    let mul: Vec<f32> = gamma
        .iter()
        .zip(var.data())
        .map(|(&g, &v)| g / (v + eps).sqrt())
        .collect();
    let add: Vec<f32> = beta
        .iter()
        .zip(mean.data())
        .zip(&mul)
        .map(|((&b, &m), &s)| b - m * s)
        .collect();
    (mul, add)
}

/// Output clamp bounds for a requantizing layer: `[0, round(6/s_out)]`
/// capped at the int8 range when ReLU6 is fused, the full symmetric range
/// otherwise. Public so graph-level lowerings (`edd-ir`) compute the exact
/// clamp this module would fuse.
#[must_use]
pub fn clamp_bounds(relu6: bool, out_scale: f32) -> (i32, i32) {
    if relu6 {
        let q6 = (6.0 / out_scale).round() as i32;
        (0, q6.clamp(0, ACT_QMAX))
    } else {
        (-ACT_QMAX, ACT_QMAX)
    }
}

/// Folds per-channel batch-norm factors `(mul, add)` into a `[rows, cols]`
/// weight matrix and its bias, in place: `w[o,:] *= mul[o]`,
/// `b[o] = b[o]·mul[o] + add[o]`. Shared by the layer compilers below and
/// the `edd-ir` BN-folding pass, so both paths produce bit-identical folded
/// floats (and therefore bit-identical quantized specs).
///
/// # Panics
///
/// Panics when the factor vectors do not have one entry per row.
pub fn fold_bn(w: &mut [f32], bias: &mut [f32], mul: &[f32], add: &[f32], cols: usize) {
    assert_eq!(mul.len(), bias.len(), "fold_bn: factor/bias mismatch");
    assert_eq!(add.len(), bias.len(), "fold_bn: factor/bias mismatch");
    assert_eq!(w.len(), bias.len() * cols, "fold_bn: weight shape mismatch");
    for (o, &m) in mul.iter().enumerate() {
        for v in &mut w[o * cols..(o + 1) * cols] {
            *v *= m;
        }
        bias[o] = bias[o] * m + add[o];
    }
}

/// Borrowed float-domain source of one convolution for [`QConvSpec::quantize`]:
/// raw OIHW weights, optional bias, optional pre-computed BN fold factors.
#[derive(Debug, Clone, Copy)]
pub struct QConvSource<'a> {
    /// Row-major OIHW weights, `out_channels · in_channels · kernel²` long.
    pub w: &'a [f32],
    /// Output channels.
    pub out_channels: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub padding: usize,
    /// Optional per-output-channel bias.
    pub bias: Option<&'a [f32]>,
    /// Optional `(mul, add)` batch-norm fold factors (see
    /// [`bn_fold_factors`]) to fold before quantizing.
    pub bn: Option<(&'a [f32], &'a [f32])>,
}

/// The plain-data compiled form of a quantized convolution: everything
/// [`QConv2d`] needs except the microkernel-native weight cache, which
/// [`QConv2d::from_spec`] rebuilds. This is what the `edd-ir` artifact
/// format serializes — a spec round-trips losslessly (all-integer fields
/// plus IEEE-754 bit patterns), so a hot-loaded layer is bit-identical to
/// the one compiled in process.
#[derive(Debug, Clone)]
pub struct QConvSpec {
    /// Quantized per-output-channel weights (model storage form).
    pub weights: QWeights,
    /// Bias pre-quantized into the i32 accumulator domain.
    pub bias_q: Vec<i32>,
    /// Per-output-channel fixed-point requantizers.
    pub requant: Vec<Requant>,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub padding: usize,
    /// Calibrated input activation scale.
    pub in_scale: f32,
    /// Calibrated output activation scale.
    pub out_scale: f32,
    /// Lower requantization clamp bound.
    pub lo: i32,
    /// Upper requantization clamp bound (ReLU6 fusion lands here).
    pub hi: i32,
    /// Skip im2col and read the image as the column matrix directly. Only
    /// meaningful (and only honored) for 1×1 stride-1 pad-0 convolutions;
    /// the `edd-ir` bypass pass flips this on lowered graphs.
    pub direct: bool,
}

impl QConvSpec {
    /// Quantizes a float convolution (with BN factors already extracted)
    /// into its compiled spec. `bits` is the Φ-searched weight precision
    /// (≤ 4 packs int4; the engine ceiling is 8), `in_scale`/`out_scale`
    /// are the calibrated activation scales on either side, `relu6` fuses
    /// the activation clamp, and `direct` requests the 1×1 im2col bypass.
    ///
    /// Both the direct [`QConv2d::compile`] path and the `edd-ir` quantize
    /// lowering funnel through this function, so their specs are
    /// bit-identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if weight/bias/BN lengths disagree with the geometry.
    #[must_use]
    pub fn quantize(
        src: &QConvSource<'_>,
        bits: u32,
        in_scale: f32,
        out_scale: f32,
        relu6: bool,
        direct: bool,
    ) -> Self {
        let (out_c, in_c, k) = (src.out_channels, src.in_channels, src.kernel);
        let cols = in_c * k * k;
        assert_eq!(src.w.len(), out_c * cols, "QConvSpec: weight shape");
        let mut folded = src.w.to_vec();
        let mut bias = src
            .bias
            .map_or_else(|| vec![0.0f32; out_c], <[f32]>::to_vec);
        if let Some((mul, add)) = src.bn {
            assert_eq!(mul.len(), out_c, "QConvSpec: BN channel mismatch");
            fold_bn(&mut folded, &mut bias, mul, add, cols);
        }
        let (q, w_scales) = quantize_per_row(&folded, out_c, cols, bits);
        let requant: Vec<Requant> = w_scales
            .iter()
            .map(|&sw| {
                Requant::from_scale(f64::from(in_scale) * f64::from(sw) / f64::from(out_scale))
            })
            .collect();
        let bias_q: Vec<i32> = bias
            .iter()
            .zip(&w_scales)
            .map(|(&b, &sw)| (f64::from(b) / (f64::from(in_scale) * f64::from(sw))).round() as i32)
            .collect();
        let (lo, hi) = clamp_bounds(relu6, out_scale);
        QConvSpec {
            weights: QWeights::new(q, bits),
            bias_q,
            requant,
            in_channels: in_c,
            out_channels: out_c,
            kernel: k,
            stride: src.stride,
            padding: src.padding,
            in_scale,
            out_scale,
            lo,
            hi,
            direct,
        }
    }

    /// True when the geometry admits the 1×1 im2col bypass.
    #[must_use]
    pub fn direct_eligible(&self) -> bool {
        self.kernel == 1 && self.stride == 1 && self.padding == 0
    }
}

/// A compiled quantized 2-D convolution: BN-folded, per-output-channel
/// quantized weights, integer im2col + GEMM execution, fixed-point
/// requantization with an optionally fused ReLU6 clamp.
#[derive(Debug)]
pub struct QConv2d {
    spec: QConvSpec,
    /// Execution form of the weights, built once at compile time: dense
    /// rows zero-padded to the microkernel's k-group of 4 (`[out_c, k4]`).
    /// This is exactly the prepacked-LHS layout of
    /// [`qmatmul_prepacked_into`] *and* a valid dense operand for the
    /// generic kernel at `k = k4` (padded taps multiply zero-padded column
    /// rows), so both selector modes read the same cached panel.
    wq_k4: Vec<i8>,
}

impl QConv2d {
    /// Compiles a float convolution (optionally fused with the batch norm
    /// that follows it) into integer form.
    ///
    /// `bits` is the Φ-searched weight precision (≤ 4 packs int4; the
    /// engine ceiling is 8), `in_scale`/`out_scale` are the calibrated
    /// activation scales on either side, and `relu6` fuses the activation
    /// clamp.
    ///
    /// # Panics
    ///
    /// Panics if BN channel count does not match the convolution.
    #[must_use]
    pub fn compile(
        conv: &Conv2d,
        bn: Option<&BatchNorm2d>,
        bits: u32,
        in_scale: f32,
        out_scale: f32,
        relu6: bool,
    ) -> Self {
        let w = conv.weight().value();
        let shape = w.shape().to_vec();
        let (out_c, in_c, k) = (shape[0], shape[1], shape[2]);
        let bias = conv.bias().map(|b| b.value().data().to_vec());
        let fold = bn.map(bn_fold_factors);
        let direct = k == 1 && conv.stride() == 1 && conv.padding() == 0;
        let spec = QConvSpec::quantize(
            &QConvSource {
                w: w.data(),
                out_channels: out_c,
                in_channels: in_c,
                kernel: k,
                stride: conv.stride(),
                padding: conv.padding(),
                bias: bias.as_deref(),
                bn: fold.as_ref().map(|(m, a)| (m.as_slice(), a.as_slice())),
            },
            bits,
            in_scale,
            out_scale,
            relu6,
            direct,
        );
        Self::from_spec(spec)
    }

    /// Builds the executable layer from a compiled spec (e.g. one decoded
    /// from an `edd-ir` artifact), rebuilding the microkernel-native weight
    /// panel. An ineligible `direct` request is quietly dropped rather than
    /// trusted.
    #[must_use]
    pub fn from_spec(mut spec: QConvSpec) -> Self {
        spec.direct &= spec.direct_eligible();
        let cols = spec.in_channels * spec.kernel * spec.kernel;
        let q = spec.weights.to_dense();
        let mut wq_k4 = vec![0i8; pack::packed_lhs_len(spec.out_channels, cols)];
        pack::pack_lhs_i8(&mut wq_k4, &q, spec.out_channels, cols);
        stats::record_pack_panel_built();
        QConv2d { spec, wq_k4 }
    }

    /// The plain-data compiled form of this layer.
    #[must_use]
    pub fn spec(&self) -> &QConvSpec {
        &self.spec
    }

    /// Bytes of quantized weight storage.
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        self.spec.weights.storage_bytes()
    }

    /// Runs the quantized convolution on an NCHW [`QTensor`].
    ///
    /// # Errors
    ///
    /// Rejects inputs whose shape or scale does not match the compiled
    /// layer.
    pub fn forward(&self, x: &QTensor) -> Result<QTensor> {
        let sp = &self.spec;
        let [b, c, h, w] = checked_nchw(x, sp.in_channels, sp.in_scale, "QConv2d")?;
        let geom = Conv2dGeometry {
            in_channels: c,
            in_h: h,
            in_w: w,
            kernel: sp.kernel,
            stride: sp.stride,
            padding: sp.padding,
        };
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let plane = oh * ow;
        let ckk = c * sp.kernel * sp.kernel;
        let row_len = sp.out_channels * plane;
        let mut out = vec![0i8; b * row_len];
        let mut acc = scratch::alloc_i32(row_len);
        // 1×1 stride-1 convolutions read the image as the column matrix
        // directly (the expand/project/head case). The compile path sets
        // the flag for every eligible shape; graph-lowered specs only carry
        // it once the bypass pass has run.
        let direct = sp.direct;
        let img = c * h * w;
        if select::select_class(sp.out_channels, plane, true).is_some() {
            self.forward_prepacked(x, &mut out, &mut acc, &geom, ckk, plane, direct, b, img);
        } else {
            self.forward_generic(x, &mut out, &mut acc, &geom, ckk, plane, direct, b, img);
        }
        Ok(QTensor {
            data: out,
            shape: vec![b, sp.out_channels, oh, ow],
            scale: sp.out_scale,
        })
    }

    /// Shape-selected path: per-image im2col columns are packed into
    /// microkernel-native B-panels and multiplied against the cached weight
    /// panel by the maddubs qGEMM. With more than one worker thread the
    /// packing of image `i + 1` is double-buffered: it runs as a second
    /// pool task overlapped with the GEMM + requantization of image `i`.
    #[allow(clippy::too_many_arguments)]
    fn forward_prepacked(
        &self,
        x: &QTensor,
        out: &mut [i8],
        acc: &mut [i32],
        geom: &Conv2dGeometry,
        ckk: usize,
        plane: usize,
        direct: bool,
        b: usize,
        img: usize,
    ) {
        let sp = &self.spec;
        let row_len = sp.out_channels * plane;
        let panels_len = pack::packed_rhs_len(ckk, plane);
        let pipeline = b > 1 && pool::num_threads() > 1;
        let mut pan_cur = scratch::alloc_i8(panels_len);
        let mut pan_next = pipeline.then(|| scratch::alloc_i8(panels_len));
        let mut cols = (!direct).then(|| scratch::alloc_i8(ckk * plane));
        let run_gemm = |acc: &mut [i32], out_row: &mut [i8], panels: &[i8]| {
            stats::record_pack_panel_hit();
            qmatmul_prepacked_into(acc, &self.wq_k4, panels, sp.out_channels, ckk, plane);
            add_bias_rows(acc, &sp.bias_q, plane);
            requantize_rows_into(out_row, acc, &sp.requant, plane, sp.lo, sp.hi);
        };
        if b > 0 {
            pack_image_panels(
                &mut pan_cur,
                cols.as_deref_mut(),
                &x.data[..img],
                geom,
                ckk,
                plane,
            );
        }
        for i in 0..b {
            let has_next = i + 1 < b;
            if pipeline && has_next {
                let next_image = &x.data[(i + 1) * img..(i + 2) * img];
                let acc_base = SendMut(acc.as_mut_ptr());
                let out_base = SendMut(out.as_mut_ptr());
                let pan_next_buf = pan_next.as_mut().expect("pipeline has a second panel");
                let pan_next_base = SendMut(pan_next_buf.as_mut_ptr());
                let cols_base = cols.as_deref_mut().map(|c| SendMut(c.as_mut_ptr()));
                let pan_cur_ref: &[i8] = &pan_cur;
                // Task 0 writes acc + this image's output row block; task 1
                // writes the next panel (+ cols scratch). The buffers are
                // disjoint and outlive the run, which blocks until both
                // tasks finish. The nested GEMM pool region runs inline on
                // whichever thread claims task 0.
                pool::run(2, &|t| {
                    if t == 0 {
                        let acc =
                            unsafe { std::slice::from_raw_parts_mut(acc_base.ptr(), row_len) };
                        let out_row = unsafe {
                            std::slice::from_raw_parts_mut(out_base.ptr().add(i * row_len), row_len)
                        };
                        run_gemm(acc, out_row, pan_cur_ref);
                    } else {
                        let dst = unsafe {
                            std::slice::from_raw_parts_mut(pan_next_base.ptr(), panels_len)
                        };
                        let cols = cols_base.as_ref().map(|c| unsafe {
                            std::slice::from_raw_parts_mut(c.ptr(), ckk * plane)
                        });
                        pack_image_panels(dst, cols, next_image, geom, ckk, plane);
                    }
                });
                std::mem::swap(&mut pan_cur, pan_next.as_mut().expect("second panel"));
            } else {
                run_gemm(
                    &mut *acc,
                    &mut out[i * row_len..(i + 1) * row_len],
                    &pan_cur,
                );
                if has_next {
                    let next_image = &x.data[(i + 1) * img..(i + 2) * img];
                    pack_image_panels(
                        &mut pan_cur,
                        cols.as_deref_mut(),
                        next_image,
                        geom,
                        ckk,
                        plane,
                    );
                }
            }
        }
    }

    /// `EDD_GEMM=generic` reference path: the generic blocked qGEMM over
    /// the same cached k4-padded weight rows, with the column matrix
    /// zero-padded to `k4` rows (padding taps are zero on both sides, so
    /// the result is bitwise the unpadded product).
    #[allow(clippy::too_many_arguments)]
    fn forward_generic(
        &self,
        x: &QTensor,
        out: &mut [i8],
        acc: &mut [i32],
        geom: &Conv2dGeometry,
        ckk: usize,
        plane: usize,
        direct: bool,
        b: usize,
        img: usize,
    ) {
        let sp = &self.spec;
        let row_len = sp.out_channels * plane;
        let k4 = pack::padded_k(ckk);
        let mut cols_k4 = (!direct || k4 != ckk).then(|| {
            let mut cols = scratch::alloc_i8(k4 * plane);
            cols[ckk * plane..].fill(0);
            cols
        });
        for i in 0..b {
            let image = &x.data[i * img..(i + 1) * img];
            let colref: &[i8] = match cols_k4.as_deref_mut() {
                None => image,
                Some(cols) => {
                    if direct {
                        cols[..ckk * plane].copy_from_slice(image);
                    } else {
                        qim2col_into(&mut cols[..ckk * plane], image, geom);
                    }
                    cols
                }
            };
            qmatmul_into(acc, &self.wq_k4, colref, sp.out_channels, k4, plane);
            add_bias_rows(acc, &sp.bias_q, plane);
            requantize_rows_into(
                &mut out[i * row_len..(i + 1) * row_len],
                acc,
                &sp.requant,
                plane,
                sp.lo,
                sp.hi,
            );
        }
    }
}

/// Borrowed float-domain source of one depthwise convolution for
/// [`QDwConvSpec::quantize`].
#[derive(Debug, Clone, Copy)]
pub struct QDwConvSource<'a> {
    /// Row-major `[channels, kernel, kernel]` weights.
    pub w: &'a [f32],
    /// Channel count (depthwise: groups == channels).
    pub channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub padding: usize,
    /// Optional per-channel bias.
    pub bias: Option<&'a [f32]>,
    /// Optional `(mul, add)` batch-norm fold factors.
    pub bn: Option<(&'a [f32], &'a [f32])>,
}

/// The plain-data compiled form of a quantized depthwise convolution (see
/// [`QConvSpec`] for the spec/cache split rationale).
#[derive(Debug, Clone)]
pub struct QDwConvSpec {
    /// Quantized per-channel weights (model storage form).
    pub weights: QWeights,
    /// Bias pre-quantized into the i32 accumulator domain.
    pub bias_q: Vec<i32>,
    /// Per-channel fixed-point requantizers.
    pub requant: Vec<Requant>,
    /// Channel count.
    pub channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub padding: usize,
    /// Calibrated input activation scale.
    pub in_scale: f32,
    /// Calibrated output activation scale.
    pub out_scale: f32,
    /// Lower requantization clamp bound.
    pub lo: i32,
    /// Upper requantization clamp bound.
    pub hi: i32,
}

impl QDwConvSpec {
    /// Quantizes a float depthwise convolution into its compiled spec.
    /// Parameters mirror [`QConvSpec::quantize`].
    ///
    /// # Panics
    ///
    /// Panics if weight/bias/BN lengths disagree with the geometry.
    #[must_use]
    pub fn quantize(
        src: &QDwConvSource<'_>,
        bits: u32,
        in_scale: f32,
        out_scale: f32,
        relu6: bool,
    ) -> Self {
        let (ch, k) = (src.channels, src.kernel);
        let taps = k * k;
        assert_eq!(src.w.len(), ch * taps, "QDwConvSpec: weight shape");
        let mut folded = src.w.to_vec();
        let mut bias = src.bias.map_or_else(|| vec![0.0f32; ch], <[f32]>::to_vec);
        if let Some((mul, add)) = src.bn {
            assert_eq!(mul.len(), ch, "QDwConvSpec: BN channel mismatch");
            fold_bn(&mut folded, &mut bias, mul, add, taps);
        }
        let (q, w_scales) = quantize_per_row(&folded, ch, taps, bits);
        let requant: Vec<Requant> = w_scales
            .iter()
            .map(|&sw| {
                Requant::from_scale(f64::from(in_scale) * f64::from(sw) / f64::from(out_scale))
            })
            .collect();
        let bias_q: Vec<i32> = bias
            .iter()
            .zip(&w_scales)
            .map(|(&b, &sw)| (f64::from(b) / (f64::from(in_scale) * f64::from(sw))).round() as i32)
            .collect();
        let (lo, hi) = clamp_bounds(relu6, out_scale);
        QDwConvSpec {
            weights: QWeights::new(q, bits),
            bias_q,
            requant,
            channels: ch,
            kernel: k,
            stride: src.stride,
            padding: src.padding,
            in_scale,
            out_scale,
            lo,
            hi,
        }
    }
}

/// A compiled quantized depthwise convolution: BN-folded per-channel
/// weights, per-channel requantization, fused ReLU6.
#[derive(Debug)]
pub struct QDwConv2d {
    spec: QDwConvSpec,
    /// Dense per-channel taps, materialized once at compile time (int4
    /// weights are unpacked here exactly once, not per forward call).
    taps: Vec<i8>,
}

impl QDwConv2d {
    /// Compiles a float depthwise convolution fused with its batch norm.
    /// Parameters mirror [`QConv2d::compile`].
    ///
    /// # Panics
    ///
    /// Panics if BN channel count does not match the convolution.
    #[must_use]
    pub fn compile(
        dw: &DwConv2d,
        bn: Option<&BatchNorm2d>,
        bits: u32,
        in_scale: f32,
        out_scale: f32,
        relu6: bool,
    ) -> Self {
        let w = dw.weight().value();
        let shape = w.shape().to_vec();
        let (ch, k) = (shape[0], shape[1]);
        let bias = dw.bias().map(|b| b.value().data().to_vec());
        let fold = bn.map(bn_fold_factors);
        let spec = QDwConvSpec::quantize(
            &QDwConvSource {
                w: w.data(),
                channels: ch,
                kernel: k,
                stride: dw.stride(),
                padding: dw.padding(),
                bias: bias.as_deref(),
                bn: fold.as_ref().map(|(m, a)| (m.as_slice(), a.as_slice())),
            },
            bits,
            in_scale,
            out_scale,
            relu6,
        );
        Self::from_spec(spec)
    }

    /// Builds the executable layer from a compiled spec, materializing the
    /// dense tap cache.
    #[must_use]
    pub fn from_spec(spec: QDwConvSpec) -> Self {
        let taps = spec.weights.to_dense();
        stats::record_pack_panel_built();
        QDwConv2d { spec, taps }
    }

    /// The plain-data compiled form of this layer.
    #[must_use]
    pub fn spec(&self) -> &QDwConvSpec {
        &self.spec
    }

    /// Bytes of quantized weight storage.
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        self.spec.weights.storage_bytes()
    }

    /// Runs the quantized depthwise convolution on an NCHW [`QTensor`].
    ///
    /// # Errors
    ///
    /// Rejects inputs whose shape or scale does not match the compiled
    /// layer.
    pub fn forward(&self, x: &QTensor) -> Result<QTensor> {
        let sp = &self.spec;
        let [b, c, h, w] = checked_nchw(x, sp.channels, sp.in_scale, "QDwConv2d")?;
        let geom = Conv2dGeometry {
            in_channels: 1,
            in_h: h,
            in_w: w,
            kernel: sp.kernel,
            stride: sp.stride,
            padding: sp.padding,
        };
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let plane = oh * ow;
        let taps = sp.kernel * sp.kernel;
        let mut out = vec![0i8; b * c * plane];
        // Accumulate every channel of one image, then requantize all rows
        // in a single vectorized pass (one row per channel).
        let mut acc = scratch::alloc_i32(c * plane);
        for i in 0..b {
            for ch in 0..c {
                let image = &x.data[(i * c + ch) * h * w..(i * c + ch + 1) * h * w];
                qdw_plane_into(
                    &mut acc[ch * plane..(ch + 1) * plane],
                    image,
                    &self.taps[ch * taps..(ch + 1) * taps],
                    &geom,
                );
            }
            add_bias_rows(&mut acc, &sp.bias_q, plane);
            requantize_rows_into(
                &mut out[i * c * plane..(i + 1) * c * plane],
                &acc,
                &sp.requant,
                plane,
                sp.lo,
                sp.hi,
            );
        }
        Ok(QTensor {
            data: out,
            shape: vec![b, c, oh, ow],
            scale: sp.out_scale,
        })
    }
}

/// The plain-data compiled form of a quantized linear classifier head (see
/// [`QConvSpec`] for the spec/cache split rationale).
#[derive(Debug, Clone)]
pub struct QLinearSpec {
    /// Quantized `[in, out]` weights (model storage form).
    pub weights: QWeights,
    /// Float bias, added after dequantization.
    pub bias: Vec<f32>,
    /// Per-output-channel weight scales (columns of the `[in, out]` weight).
    pub w_scales: Vec<f32>,
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
    /// Calibrated input activation scale.
    pub in_scale: f32,
}

impl QLinearSpec {
    /// Quantizes a float `[in, out]` linear layer at `bits` weight
    /// precision with per-output-channel scales.
    ///
    /// # Panics
    ///
    /// Panics if weight/bias lengths disagree with the geometry.
    #[must_use]
    pub fn quantize(
        w: &[f32],
        in_f: usize,
        out_f: usize,
        bias: &[f32],
        bits: u32,
        in_scale: f32,
    ) -> Self {
        assert_eq!(w.len(), in_f * out_f, "QLinearSpec: weight shape");
        assert_eq!(bias.len(), out_f, "QLinearSpec: bias shape");
        let qm = qkernel::qmax(bits);
        // Column-major scales: output channel o reads column o.
        let mut w_scales = Vec::with_capacity(out_f);
        for o in 0..out_f {
            let mx = (0..in_f).fold(0.0f32, |m, i| m.max(w[i * out_f + o].abs()));
            w_scales.push(qkernel::scale_for(mx, bits));
        }
        let mut q = vec![0i8; w.len()];
        for (i, (&v, d)) in w.iter().zip(q.iter_mut()).enumerate() {
            let s = w_scales[i % out_f];
            *d = ((v / s).round() as i32).clamp(-qm, qm) as i8;
        }
        QLinearSpec {
            weights: QWeights::new(q, bits),
            bias: bias.to_vec(),
            w_scales,
            in_features: in_f,
            out_features: out_f,
            in_scale,
        }
    }
}

/// A compiled quantized fully-connected classifier head: integer GEMM,
/// float bias, dequantized f32 logits (the network boundary back to real
/// values).
#[derive(Debug)]
pub struct QLinear {
    spec: QLinearSpec,
    /// Cached microkernel-native B-panels of the `[in, out]` weight,
    /// packed once at compile time for the prepacked maddubs qGEMM.
    panels: Vec<i8>,
    /// Dense weight rows zero-padded to `k4 = padded_k(in_features)` rows,
    /// for the `EDD_GEMM=generic` leg (pairs with k4-padded activations).
    wq_rows_k4: Vec<i8>,
}

impl QLinear {
    /// Compiles a float linear layer at `bits` weight precision with
    /// per-output-channel scales (columns of the `[in, out]` weight).
    #[must_use]
    pub fn compile(lin: &Linear, bits: u32, in_scale: f32) -> Self {
        let w = lin.weight().value();
        let shape = w.shape().to_vec();
        let (in_f, out_f) = (shape[0], shape[1]);
        let spec = QLinearSpec::quantize(
            w.data(),
            in_f,
            out_f,
            lin.bias().value().data(),
            bits,
            in_scale,
        );
        Self::from_spec(spec)
    }

    /// Builds the executable layer from a compiled spec, rebuilding both
    /// GEMM-mode weight caches.
    #[must_use]
    pub fn from_spec(spec: QLinearSpec) -> Self {
        let (in_f, out_f) = (spec.in_features, spec.out_features);
        let q = spec.weights.to_dense();
        let mut panels = vec![0i8; pack::packed_rhs_len(in_f, out_f)];
        pack::pack_rhs_i8(&mut panels, &q, in_f, out_f);
        let mut wq_rows_k4 = vec![0i8; pack::padded_k(in_f) * out_f];
        wq_rows_k4[..in_f * out_f].copy_from_slice(&q);
        stats::record_pack_panel_built();
        QLinear {
            spec,
            panels,
            wq_rows_k4,
        }
    }

    /// The plain-data compiled form of this layer.
    #[must_use]
    pub fn spec(&self) -> &QLinearSpec {
        &self.spec
    }

    /// Bytes of quantized weight storage.
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        self.spec.weights.storage_bytes()
    }

    /// Runs the quantized classifier on a `[batch, in_features]`
    /// [`QTensor`], returning float logits `[batch, out_features]`.
    ///
    /// # Errors
    ///
    /// Rejects inputs whose shape or scale does not match the compiled
    /// layer.
    pub fn forward(&self, x: &QTensor) -> Result<Array> {
        let sp = &self.spec;
        if x.shape.len() != 2 || x.shape[1] != sp.in_features {
            return Err(TensorError::InvalidArgument(format!(
                "QLinear: expected [batch, {}], got {:?}",
                sp.in_features, x.shape
            )));
        }
        check_scale(x.scale, sp.in_scale, "QLinear")?;
        let b = x.shape[0];
        let mut acc = scratch::alloc_i32(b * sp.out_features);
        // Both selector modes consume k4-padded activation rows — the
        // prepacked-LHS layout and the generic kernel's dense `[b, k4]`
        // operand are the same bytes.
        let k4 = pack::padded_k(sp.in_features);
        let mut a_k4 = scratch::alloc_i8(pack::packed_lhs_len(b, sp.in_features));
        pack::pack_lhs_i8(&mut a_k4, &x.data, b, sp.in_features);
        stats::record_pack_panel_miss();
        if select::select_class(b, sp.out_features, false).is_some() {
            stats::record_pack_panel_hit();
            qmatmul_prepacked_into(
                &mut acc,
                &a_k4,
                &self.panels,
                b,
                sp.in_features,
                sp.out_features,
            );
        } else {
            qmatmul_into(&mut acc, &a_k4, &self.wq_rows_k4, b, k4, sp.out_features);
        }
        let mut out = vec![0.0f32; b * sp.out_features];
        for (row_out, row_acc) in out
            .chunks_exact_mut(sp.out_features)
            .zip(acc.chunks_exact(sp.out_features))
        {
            for (((d, &a), &sw), &bias) in row_out
                .iter_mut()
                .zip(row_acc)
                .zip(&sp.w_scales)
                .zip(&sp.bias)
            {
                *d = a as f32 * sp.in_scale * sw + bias;
            }
        }
        Array::from_vec(out, &[b, sp.out_features])
    }
}

/// Integer global average pooling: `[b, c, h, w] → [b, c]`, output on the
/// same scale as the input (`q_out = round(Σq / (h·w))`).
///
/// # Errors
///
/// Rejects non-NCHW inputs.
pub fn q_global_avg_pool(x: &QTensor) -> Result<QTensor> {
    if x.shape.len() != 4 {
        return Err(TensorError::InvalidArgument(format!(
            "q_global_avg_pool: expected NCHW, got {:?}",
            x.shape
        )));
    }
    let (b, c, h, w) = (x.shape[0], x.shape[1], x.shape[2], x.shape[3]);
    let plane = h * w;
    let rq = Requant::from_scale(1.0 / plane as f64);
    let mut out = vec![0i8; b * c];
    for (d, chunk) in out.iter_mut().zip(x.data.chunks_exact(plane)) {
        let sum: i32 = chunk.iter().map(|&v| i32::from(v)).sum();
        *d = rq.apply_i8(sum, -ACT_QMAX, ACT_QMAX);
    }
    Ok(QTensor {
        data: out,
        shape: vec![b, c],
        scale: x.scale,
    })
}

/// Calibrated activation scales for one compiled [`QMbConv`] block.
#[derive(Debug, Clone, Copy)]
pub struct MbConvScales {
    /// Scale after the expand conv + BN + ReLU6 (when the block expands).
    pub expand_out: Option<f32>,
    /// Scale after the depthwise conv + BN + ReLU6.
    pub dw_out: f32,
    /// Scale of the block output (after the projection BN and, when the
    /// block has one, the residual add).
    pub block_out: f32,
}

/// A compiled quantized MBConv block: expand → depthwise → project with
/// folded batch norms, fused ReLU6 clamps, and an integer residual add.
#[derive(Debug)]
pub struct QMbConv {
    expand: Option<QConv2d>,
    depthwise: QDwConv2d,
    project: QConv2d,
    /// Rescales the block *input* into the block-output grid for the
    /// residual add (`None` for non-residual blocks).
    residual: Option<Requant>,
    out_scale: f32,
}

impl QMbConv {
    /// Compiles a float MBConv block at `bits` weight precision with
    /// calibrated activation scales.
    #[must_use]
    pub fn compile(mb: &MbConv, bits: u32, in_scale: f32, scales: &MbConvScales) -> Self {
        let expand = mb.expand().map(|(conv, bn)| {
            let s_out = scales.expand_out.expect("expand scale calibrated");
            QConv2d::compile(conv, Some(bn), bits, in_scale, s_out, true)
        });
        let dw_in = scales.expand_out.unwrap_or(in_scale);
        let depthwise = QDwConv2d::compile(
            mb.depthwise(),
            Some(mb.dw_bn()),
            bits,
            dw_in,
            scales.dw_out,
            true,
        );
        let project = QConv2d::compile(
            mb.project(),
            Some(mb.proj_bn()),
            bits,
            scales.dw_out,
            scales.block_out,
            false,
        );
        let residual = mb
            .has_residual()
            .then(|| Requant::from_scale(f64::from(in_scale) / f64::from(scales.block_out)));
        QMbConv {
            expand,
            depthwise,
            project,
            residual,
            out_scale: scales.block_out,
        }
    }

    /// Bytes of quantized weight storage across all stages.
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        self.expand.as_ref().map_or(0, QConv2d::weight_bytes)
            + self.depthwise.weight_bytes()
            + self.project.weight_bytes()
    }

    /// Scale of the block output.
    #[must_use]
    pub fn out_scale(&self) -> f32 {
        self.out_scale
    }

    /// The compiled expand stage (absent for expand-ratio-1 blocks).
    #[must_use]
    pub fn expand(&self) -> Option<&QConv2d> {
        self.expand.as_ref()
    }

    /// The compiled depthwise stage.
    #[must_use]
    pub fn depthwise(&self) -> &QDwConv2d {
        &self.depthwise
    }

    /// The compiled projection stage.
    #[must_use]
    pub fn project(&self) -> &QConv2d {
        &self.project
    }

    /// The residual-input requantizer (block input → block-output grid),
    /// `None` for non-residual blocks.
    #[must_use]
    pub fn residual(&self) -> Option<&Requant> {
        self.residual.as_ref()
    }

    /// Runs the quantized block on an NCHW [`QTensor`].
    ///
    /// # Errors
    ///
    /// Rejects inputs inconsistent with the compiled block.
    pub fn forward(&self, x: &QTensor) -> Result<QTensor> {
        let mut h = match &self.expand {
            Some(e) => e.forward(x)?,
            None => x.clone(),
        };
        h = self.depthwise.forward(&h)?;
        let mut h = self.project.forward(&h)?;
        if let Some(rq) = &self.residual {
            // Both operands live in the block-output grid: the projection
            // was requantized into it, the input is rescaled here.
            for (hq, &xq) in h.data.iter_mut().zip(&x.data) {
                let sum = i32::from(*hq) + rq.apply(i32::from(xq));
                *hq = sum.clamp(-ACT_QMAX, ACT_QMAX) as i8;
            }
        }
        Ok(h)
    }
}

/// Validates an NCHW input against the compiled channel count and scale,
/// returning `[b, c, h, w]`.
fn checked_nchw(x: &QTensor, channels: usize, scale: f32, what: &str) -> Result<[usize; 4]> {
    if x.shape.len() != 4 || x.shape[1] != channels {
        return Err(TensorError::InvalidArgument(format!(
            "{what}: expected [b, {channels}, h, w], got {:?}",
            x.shape
        )));
    }
    check_scale(x.scale, scale, what)?;
    Ok([x.shape[0], x.shape[1], x.shape[2], x.shape[3]])
}

/// The compiled graph fixes every activation scale at calibration time; a
/// mismatched input scale means the caller quantized with the wrong grid.
fn check_scale(got: f32, want: f32, what: &str) -> Result<()> {
    if (got - want).abs() > want.abs() * 1e-5 {
        return Err(TensorError::InvalidArgument(format!(
            "{what}: input scale {got} does not match compiled scale {want}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Module, QuantSpec, QuantizableModule};
    use edd_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Input whose values sit exactly on the activation grid, so the
    /// integer engine and the float oracle see identical inputs.
    fn on_grid_input(shape: &[usize], scale: f32, rng: &mut StdRng) -> Array {
        let n: usize = shape.iter().product();
        let v: Vec<f32> = (0..n)
            .map(|_| f32::from(rng.gen_range(-127i8..=127)) * scale)
            .collect();
        Array::from_vec(v, shape).unwrap()
    }

    /// Fake-quant spec equivalent to the engine's per-tensor symmetric
    /// grid: the engine uses `s = max_abs/qmax`, the fake quantizer uses
    /// `step = range/2^(b-1)`, so `range = s·2^(b-1)` aligns the grids.
    fn matching_spec(w: &Tensor, bits: u32) -> (QuantSpec, f32) {
        let mx = qkernel::max_abs(w.value().data());
        let s = qkernel::scale_for(mx, bits);
        let range = s * (1i32 << (bits - 1)) as f32;
        (
            QuantSpec {
                bits,
                range: Some(range),
            },
            s,
        )
    }

    #[test]
    fn qconv_matches_fake_quant_oracle_within_rounding() {
        let mut rng = StdRng::seed_from_u64(41);
        for bits in [4u32, 8] {
            let conv = Conv2d::new(3, 8, 3, 1, 1, true, &mut rng);
            let in_scale = 0.02f32;
            let x = on_grid_input(&[2, 3, 8, 8], in_scale, &mut rng);
            // Per-tensor fake-quant oracle (per-channel only tightens the
            // engine, so the per-tensor bound still holds).
            let (spec, _) = matching_spec(conv.weight(), bits);
            let oracle = conv
                .forward_quantized(&Tensor::constant(x.clone()), Some(spec))
                .unwrap();
            let out_range = qkernel::max_abs(oracle.value().data());
            let out_scale = qkernel::scale_for(out_range, 8);
            let q = QConv2d::compile_per_tensor_for_tests(&conv, bits, in_scale, out_scale);
            let got = q.forward(&QTensor::quantize(&x, in_scale)).unwrap();
            let got = got.dequantize();
            for (g, o) in got.data().iter().zip(oracle.value().data()) {
                assert!(
                    (g - o).abs() <= out_scale * 0.51 + 1e-5,
                    "bits={bits}: got {g}, oracle {o}, step {out_scale}"
                );
            }
        }
    }

    impl QConv2d {
        /// Test-only compile with per-tensor weight scales, so the engine
        /// grid matches the per-tensor fake-quant oracle exactly.
        fn compile_per_tensor_for_tests(
            conv: &Conv2d,
            bits: u32,
            in_scale: f32,
            out_scale: f32,
        ) -> Self {
            let q = Self::compile(conv, None, bits, in_scale, out_scale, false);
            let mut spec = q.spec().clone();
            let w = conv.weight().value();
            let shape = w.shape().to_vec();
            let qm = qkernel::qmax(bits);
            let s = qkernel::scale_for(qkernel::max_abs(w.data()), bits);
            let mut qw = vec![0i8; w.len()];
            quantize_i8_into(&mut qw, w.data(), s, qm);
            spec.weights = QWeights::new(qw, bits);
            spec.requant = (0..shape[0])
                .map(|_| {
                    Requant::from_scale(f64::from(in_scale) * f64::from(s) / f64::from(out_scale))
                })
                .collect();
            spec.bias_q = conv.bias().map_or_else(
                || vec![0i32; shape[0]],
                |b| {
                    b.value()
                        .data()
                        .iter()
                        .map(|&v| {
                            (f64::from(v) / (f64::from(in_scale) * f64::from(s))).round() as i32
                        })
                        .collect()
                },
            );
            Self::from_spec(spec)
        }
    }

    #[test]
    fn qconv_bn_fold_matches_float_pipeline() {
        let mut rng = StdRng::seed_from_u64(43);
        let conv = Conv2d::same(4, 6, 3, 1, &mut rng);
        let bn = BatchNorm2d::new(6);
        // Push the BN away from identity with a few training steps.
        let warm = Tensor::constant(Array::randn(&[4, 6, 5, 5], 1.0, &mut rng));
        for _ in 0..5 {
            bn.forward(&warm).unwrap();
        }
        bn.set_training(false);
        let in_scale = 0.02;
        let x = on_grid_input(&[1, 4, 6, 6], in_scale, &mut rng);
        let float = bn
            .forward(&conv.forward(&Tensor::constant(x.clone())).unwrap())
            .unwrap();
        let out_range = qkernel::max_abs(float.value().data());
        let out_scale = qkernel::scale_for(out_range, 8);
        let q = QConv2d::compile(&conv, Some(&bn), 8, in_scale, out_scale, false);
        let got = q
            .forward(&QTensor::quantize(&x, in_scale))
            .unwrap()
            .dequantize();
        // 8-bit weights + 8-bit activations: within a few output steps.
        for (g, f) in got.data().iter().zip(float.value().data()) {
            assert!(
                (g - f).abs() <= out_scale * 2.0 + 5e-3,
                "got {g}, float {f}, step {out_scale}"
            );
        }
    }

    #[test]
    fn qdwconv_matches_float_within_steps() {
        let mut rng = StdRng::seed_from_u64(44);
        let dw = DwConv2d::same(5, 3, 1, &mut rng);
        let in_scale = 0.03;
        let x = on_grid_input(&[2, 5, 7, 7], in_scale, &mut rng);
        let float = dw.forward(&Tensor::constant(x.clone())).unwrap().relu6();
        let out_scale = qkernel::scale_for(qkernel::max_abs(float.value().data()), 8);
        let q = QDwConv2d::compile(&dw, None, 8, in_scale, out_scale, true);
        let got = q
            .forward(&QTensor::quantize(&x, in_scale))
            .unwrap()
            .dequantize();
        for (g, f) in got.data().iter().zip(float.value().data()) {
            assert!(
                (g - f).abs() <= out_scale * 2.0 + 5e-3,
                "got {g}, float {f}, step {out_scale}"
            );
        }
    }

    #[test]
    fn qlinear_dequantizes_to_float_logits() {
        let mut rng = StdRng::seed_from_u64(45);
        let lin = Linear::new(12, 4, &mut rng);
        let in_scale = 0.01;
        let x = on_grid_input(&[3, 12], in_scale, &mut rng);
        let float = lin.forward(&Tensor::constant(x.clone())).unwrap();
        let q = QLinear::compile(&lin, 8, in_scale);
        let got = q.forward(&QTensor::quantize(&x, in_scale)).unwrap();
        for (g, f) in got.data().iter().zip(float.value().data()) {
            assert!((g - f).abs() <= 0.02, "got {g}, float {f}");
        }
    }

    #[test]
    fn int4_weights_halve_storage() {
        let mut rng = StdRng::seed_from_u64(46);
        let conv = Conv2d::same(8, 8, 3, 1, &mut rng);
        let q8 = QConv2d::compile(&conv, None, 8, 0.02, 0.02, false);
        let q4 = QConv2d::compile(&conv, None, 4, 0.02, 0.02, false);
        assert_eq!(q8.weight_bytes(), 8 * 8 * 9);
        assert_eq!(q4.weight_bytes(), 8 * 8 * 9 / 2);
    }

    #[test]
    fn qmbconv_residual_add_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(47);
        let mb = MbConv::new(4, 4, 3, 2, 1, &mut rng);
        mb.set_training(false);
        assert!(mb.has_residual());
        let in_scale = 0.05;
        let x = on_grid_input(&[1, 4, 6, 6], in_scale, &mut rng);
        let float = mb.forward(&Tensor::constant(x.clone())).unwrap();
        // Calibrate stage scales from the float pass.
        let scales = calibrate_mbconv_for_tests(&mb, &x);
        let q = QMbConv::compile(&mb, 8, in_scale, &scales);
        let got = q.forward(&QTensor::quantize(&x, in_scale)).unwrap();
        assert_eq!(got.shape, vec![1, 4, 6, 6]);
        let got = got.dequantize();
        let mut worst = 0.0f32;
        for (g, f) in got.data().iter().zip(float.value().data()) {
            worst = worst.max((g - f).abs());
        }
        assert!(
            worst <= scales.block_out * 4.0 + 0.05,
            "worst {worst}, step {}",
            scales.block_out
        );
    }

    fn calibrate_mbconv_for_tests(mb: &MbConv, x: &Array) -> MbConvScales {
        let xt = Tensor::constant(x.clone());
        let mut h = xt.clone();
        let expand_out = mb.expand().map(|(conv, bn)| {
            h = bn.forward_relu6(&conv.forward(&h).unwrap()).unwrap();
            qkernel::scale_for(qkernel::max_abs(h.value().data()), 8)
        });
        h = mb
            .dw_bn()
            .forward_relu6(&mb.depthwise().forward(&h).unwrap())
            .unwrap();
        let dw_out = qkernel::scale_for(qkernel::max_abs(h.value().data()), 8);
        let y = mb.forward(&xt).unwrap();
        let block_out = qkernel::scale_for(qkernel::max_abs(y.value().data()), 8);
        MbConvScales {
            expand_out,
            dw_out,
            block_out,
        }
    }

    #[test]
    fn global_avg_pool_averages_on_same_scale() {
        let x = QTensor {
            data: vec![10, 20, 30, 40, -10, -20, -30, -40],
            shape: vec![1, 2, 2, 2],
            scale: 0.1,
        };
        let y = q_global_avg_pool(&x).unwrap();
        assert_eq!(y.shape, vec![1, 2]);
        assert_eq!(y.data, vec![25, -25]);
        assert_eq!(y.scale, 0.1);
    }

    #[test]
    fn scale_mismatch_is_rejected() {
        let mut rng = StdRng::seed_from_u64(48);
        let conv = Conv2d::same(2, 2, 3, 1, &mut rng);
        let q = QConv2d::compile(&conv, None, 8, 0.02, 0.02, false);
        let x = QTensor {
            data: vec![0; 2 * 4 * 4],
            shape: vec![1, 2, 4, 4],
            scale: 0.5,
        };
        assert!(q.forward(&x).is_err());
    }
}
