//! Squeeze-and-Excitation channel attention (Hu et al., CVPR 2018) — the
//! block MnasNet-A1 attaches to its MBConv stages.

use crate::init::xavier_linear;
use crate::module::Module;
use edd_tensor::{Array, Result, Tensor};
use rand::Rng;

/// Squeeze-and-Excitation: global-average-pools to channel descriptors,
/// passes them through a two-layer bottleneck (`C → C/r → C`) and rescales
/// the input channels by the resulting sigmoid gates.
#[derive(Debug)]
pub struct SqueezeExcite {
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
    channels: usize,
}

impl SqueezeExcite {
    /// Creates an SE block for `channels` channels with reduction ratio
    /// `reduction` (the bottleneck has `max(channels / reduction, 1)`
    /// units).
    #[must_use]
    pub fn new<R: Rng + ?Sized>(channels: usize, reduction: usize, rng: &mut R) -> Self {
        let mid = (channels / reduction.max(1)).max(1);
        SqueezeExcite {
            w1: Tensor::param(xavier_linear(channels, mid, rng)),
            b1: Tensor::param(Array::zeros(&[mid])),
            w2: Tensor::param(xavier_linear(mid, channels, rng)),
            b2: Tensor::param(Array::zeros(&[channels])),
            channels,
        }
    }

    /// Channel count this block was built for.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }
}

impl Module for SqueezeExcite {
    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let shape = x.shape();
        if shape.len() != 4 || shape[1] != self.channels {
            return Err(edd_tensor::TensorError::InvalidShape {
                shape,
                reason: format!("SqueezeExcite expects NCHW with {} channels", self.channels),
            });
        }
        let b = shape[0];
        // Squeeze: [b, c].
        let s = x.global_avg_pool()?;
        // Excite: two-layer bottleneck with swish then sigmoid gate.
        let h = s.matmul(&self.w1)?.add(&self.b1)?.swish();
        let gates = h.matmul(&self.w2)?.add(&self.b2)?.sigmoid();
        // Scale: broadcast [b, c, 1, 1] over the spatial dims.
        let gates = gates.reshape(&[b, self.channels, 1, 1])?;
        x.mul(&gates)
    }

    fn parameters(&self) -> Vec<Tensor> {
        vec![
            self.w1.clone(),
            self.b1.clone(),
            self.w2.clone(),
            self.b2.clone(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preserves_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let se = SqueezeExcite::new(8, 4, &mut rng);
        let x = Tensor::constant(Array::randn(&[2, 8, 5, 5], 1.0, &mut rng));
        let y = se.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![2, 8, 5, 5]);
        assert_eq!(se.channels(), 8);
    }

    #[test]
    fn gates_bound_output_by_input() {
        // Sigmoid gates are in (0, 1): |y| <= |x| elementwise.
        let mut rng = StdRng::seed_from_u64(2);
        let se = SqueezeExcite::new(4, 2, &mut rng);
        let x = Tensor::constant(Array::randn(&[1, 4, 3, 3], 1.0, &mut rng));
        let y = se.forward(&x).unwrap();
        for (xi, yi) in x.value().data().iter().zip(y.value().data()) {
            assert!(yi.abs() <= xi.abs() + 1e-6, "{yi} vs {xi}");
        }
    }

    #[test]
    fn gradients_reach_all_params() {
        let mut rng = StdRng::seed_from_u64(3);
        let se = SqueezeExcite::new(6, 4, &mut rng);
        let x = Tensor::param(Array::randn(&[2, 6, 4, 4], 1.0, &mut rng));
        let y = se.forward(&x).unwrap();
        y.square().sum().backward();
        for (i, p) in se.parameters().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} missing grad");
        }
        assert!(x.grad().is_some());
    }

    #[test]
    fn rejects_wrong_channels() {
        let mut rng = StdRng::seed_from_u64(4);
        let se = SqueezeExcite::new(8, 4, &mut rng);
        let x = Tensor::constant(Array::zeros(&[1, 4, 3, 3]));
        assert!(se.forward(&x).is_err());
    }

    #[test]
    fn bottleneck_reduction_floor() {
        let mut rng = StdRng::seed_from_u64(5);
        // reduction > channels: bottleneck floors at 1 unit.
        let se = SqueezeExcite::new(2, 16, &mut rng);
        let x = Tensor::constant(Array::randn(&[1, 2, 2, 2], 1.0, &mut rng));
        assert!(se.forward(&x).is_ok());
    }
}
