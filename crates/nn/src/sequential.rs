//! Container and functional layers: [`Sequential`], activations, pooling and
//! flatten adapters.

use crate::module::Module;
use edd_tensor::{Result, Tensor};

/// A chain of layers applied in order.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Module>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("len", &self.layers.len())
            .finish()
    }
}

impl Sequential {
    /// Creates an empty chain.
    #[must_use]
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn push(mut self, layer: impl Module + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn add(&mut self, layer: Box<dyn Module>) {
        self.layers.push(layer);
    }

    /// Number of layers in the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward(&h)?;
        }
        Ok(h)
    }

    fn parameters(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(|l| l.parameters()).collect()
    }

    fn set_training(&self, training: bool) {
        for l in &self.layers {
            l.set_training(training);
        }
    }
}

/// Activation function layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `max(x, 0)`.
    Relu,
    /// `min(max(x, 0), 6)`.
    Relu6,
    /// Hyperbolic tangent.
    Tanh,
    /// Swish / SiLU `x · σ(x)`.
    Swish,
}

impl Module for Activation {
    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        Ok(match self {
            Activation::Relu => x.relu(),
            Activation::Relu6 => x.relu6(),
            Activation::Tanh => x.tanh(),
            Activation::Swish => x.swish(),
        })
    }

    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }
}

/// Global average pooling `[b, c, h, w] -> [b, c]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalAvgPool;

impl Module for GlobalAvgPool {
    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        x.global_avg_pool()
    }

    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }
}

/// Average pooling layer with square window and stride.
#[derive(Debug, Clone, Copy)]
pub struct AvgPool2d {
    /// Window size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
}

impl Module for AvgPool2d {
    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        x.avg_pool2d(self.kernel, self.stride)
    }

    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }
}

/// Max pooling layer with square window and stride.
#[derive(Debug, Clone, Copy)]
pub struct MaxPool2d {
    /// Window size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
}

impl Module for MaxPool2d {
    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        x.max_pool2d(self.kernel, self.stride)
    }

    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }
}

/// Flattens `[b, ...] -> [b, prod(rest)]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Flatten;

impl Module for Flatten {
    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let shape = x.shape();
        if shape.is_empty() {
            return Err(edd_tensor::TensorError::InvalidShape {
                shape,
                reason: "flatten requires rank >= 1".into(),
            });
        }
        let b = shape[0];
        let rest: usize = shape[1..].iter().product();
        x.reshape(&[b, rest])
    }

    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::Conv2d;
    use crate::linear::Linear;
    use edd_tensor::Array;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sequential_chains_layers() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = Sequential::new()
            .push(Conv2d::same(3, 8, 3, 2, &mut rng))
            .push(Activation::Relu6)
            .push(GlobalAvgPool)
            .push(Linear::new(8, 5, &mut rng));
        let x = Tensor::constant(Array::randn(&[2, 3, 16, 16], 1.0, &mut rng));
        let y = net.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![2, 5]);
        assert_eq!(net.len(), 4);
        assert!(!net.is_empty());
        assert!(net.num_parameters() > 0);
    }

    #[test]
    fn activations_apply() {
        let x = Tensor::constant(Array::from_vec(vec![-1.0, 7.0], &[2]).unwrap());
        assert_eq!(
            Activation::Relu.forward(&x).unwrap().value().data(),
            &[0.0, 7.0]
        );
        assert_eq!(
            Activation::Relu6.forward(&x).unwrap().value().data(),
            &[0.0, 6.0]
        );
        let t = Activation::Tanh.forward(&x).unwrap();
        assert!(t.value().data()[1] < 1.0);
        let s = Activation::Swish.forward(&x).unwrap();
        assert!(s.value().data()[0] < 0.0 && s.value().data()[0] > -0.5);
    }

    #[test]
    fn flatten_reshapes() {
        let x = Tensor::constant(Array::zeros(&[2, 3, 4, 4]));
        let y = Flatten.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![2, 48]);
    }

    #[test]
    fn pool_layers_forward() {
        let x = Tensor::constant(Array::zeros(&[1, 2, 8, 8]));
        let y = AvgPool2d {
            kernel: 2,
            stride: 2,
        }
        .forward(&x)
        .unwrap();
        assert_eq!(y.shape(), vec![1, 2, 4, 4]);
        let z = MaxPool2d {
            kernel: 2,
            stride: 2,
        }
        .forward(&x)
        .unwrap();
        assert_eq!(z.shape(), vec![1, 2, 4, 4]);
    }

    #[test]
    fn empty_sequential_is_identity() {
        let net = Sequential::new();
        let x = Tensor::constant(Array::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let y = net.forward(&x).unwrap();
        assert_eq!(y.value().data(), &[1.0, 2.0]);
        assert!(net.is_empty());
    }
}
