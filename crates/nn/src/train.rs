//! A minimal training / evaluation loop over `(images, labels)` batches,
//! shared by the final-training stage of the co-search, the model zoo and
//! the benchmark harnesses.

use crate::module::Module;
use edd_runtime::telemetry::{self, Value};
use edd_tensor::optim::Optimizer;
use edd_tensor::{accuracy, top_k_accuracy, Array, Result, Tensor};

/// Emits an `EpochStats` record through the global telemetry sink (no-op
/// when no sink is installed).
fn emit_stats(name: &str, stats: &EpochStats) {
    if telemetry::enabled() {
        telemetry::event(
            name,
            &[
                ("loss", Value::F32(stats.loss)),
                ("top1", Value::F32(stats.top1)),
                ("top5", Value::F32(stats.top5)),
                ("examples", Value::U64(stats.examples as u64)),
            ],
        );
    }
}

/// One minibatch: NCHW images plus integer labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Input images `[b, c, h, w]`.
    pub images: Array,
    /// Ground-truth class per image.
    pub labels: Vec<usize>,
}

/// Aggregate metrics of a pass over a set of batches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean cross-entropy loss.
    pub loss: f32,
    /// Top-1 accuracy in `[0, 1]`.
    pub top1: f32,
    /// Top-5 accuracy in `[0, 1]`.
    pub top5: f32,
    /// Number of examples seen.
    pub examples: usize,
}

/// Runs one optimization epoch of `model` over `batches`.
///
/// The model is switched to training mode. Returns mean loss/accuracy over
/// the epoch.
///
/// # Errors
///
/// Propagates any shape error raised by the model.
pub fn train_epoch(
    model: &dyn Module,
    opt: &mut dyn Optimizer,
    batches: &[Batch],
) -> Result<EpochStats> {
    train_epoch_with(model, opt, batches, 0.0)
}

/// Like [`train_epoch`], with label smoothing `epsilon` on the
/// cross-entropy target (the regularizer typically used when training
/// NAS-derived networks from scratch). `epsilon = 0` is plain
/// cross-entropy.
///
/// # Errors
///
/// Propagates any shape error raised by the model or an invalid `epsilon`.
pub fn train_epoch_with(
    model: &dyn Module,
    opt: &mut dyn Optimizer,
    batches: &[Batch],
    epsilon: f32,
) -> Result<EpochStats> {
    model.set_training(true);
    let _span = telemetry::span("nn.train_epoch");
    let mut loss_sum = 0.0;
    let mut top1_sum = 0.0;
    let mut top5_sum = 0.0;
    let mut n = 0usize;
    for batch in batches {
        opt.zero_grad();
        let x = Tensor::constant(batch.images.clone());
        let logits = model.forward(&x)?;
        let loss = if epsilon > 0.0 {
            logits.cross_entropy_smooth(&batch.labels, epsilon)?
        } else {
            logits.cross_entropy(&batch.labels)?
        };
        loss.backward();
        opt.step();
        // End of step: no scratch buffer may outlive the forward/backward
        // pass that allocated it (reset panics on leaks and reclaims the
        // arena in one block sized to the step's high-water mark).
        edd_tensor::scratch::reset();
        let bsz = batch.labels.len();
        loss_sum += loss.item() * bsz as f32;
        let lv = logits.value_clone();
        top1_sum += accuracy(&lv, &batch.labels) * bsz as f32;
        top5_sum += top_k_accuracy(&lv, &batch.labels, 5) * bsz as f32;
        n += bsz;
    }
    let stats = EpochStats {
        loss: loss_sum / n.max(1) as f32,
        top1: top1_sum / n.max(1) as f32,
        top5: top5_sum / n.max(1) as f32,
        examples: n,
    };
    emit_stats("nn.train_epoch", &stats);
    Ok(stats)
}

/// Evaluates `model` over `batches` without updating parameters.
///
/// The model is switched to evaluation mode.
///
/// # Errors
///
/// Propagates any shape error raised by the model.
pub fn evaluate(model: &dyn Module, batches: &[Batch]) -> Result<EpochStats> {
    model.set_training(false);
    let _span = telemetry::span("nn.evaluate");
    let mut loss_sum = 0.0;
    let mut top1_sum = 0.0;
    let mut top5_sum = 0.0;
    let mut n = 0usize;
    for batch in batches {
        let x = Tensor::constant(batch.images.clone());
        let logits = model.forward(&x)?;
        let loss = logits.cross_entropy(&batch.labels)?;
        let bsz = batch.labels.len();
        loss_sum += loss.item() * bsz as f32;
        let lv = logits.value_clone();
        top1_sum += accuracy(&lv, &batch.labels) * bsz as f32;
        top5_sum += top_k_accuracy(&lv, &batch.labels, 5) * bsz as f32;
        n += bsz;
    }
    let stats = EpochStats {
        loss: loss_sum / n.max(1) as f32,
        top1: top1_sum / n.max(1) as f32,
        top5: top5_sum / n.max(1) as f32,
        examples: n,
    };
    emit_stats("nn.evaluate", &stats);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::sequential::{Flatten, Sequential};
    use edd_tensor::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two linearly-separable blobs as 1x2x2 "images".
    fn toy_batches(rng: &mut StdRng) -> Vec<Batch> {
        use rand::Rng;
        let mut batches = Vec::new();
        for _ in 0..8 {
            let mut images = Vec::new();
            let mut labels = Vec::new();
            for _ in 0..16 {
                let class = rng.gen_range(0..2usize);
                let center = if class == 0 { -1.0 } else { 1.0 };
                for _ in 0..4 {
                    images.push(center + rng.gen_range(-0.3f32..0.3));
                }
                labels.push(class);
            }
            batches.push(Batch {
                images: Array::from_vec(images, &[16, 1, 2, 2]).unwrap(),
                labels,
            });
        }
        batches
    }

    #[test]
    fn label_smoothing_variant_learns_too() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = Sequential::new()
            .push(Flatten)
            .push(Linear::new(4, 2, &mut rng));
        let mut opt = Adam::new(net.parameters(), 0.05);
        let batches = toy_batches(&mut rng);
        for _ in 0..10 {
            train_epoch_with(&net, &mut opt, &batches, 0.1).unwrap();
        }
        let eval = evaluate(&net, &batches).unwrap();
        assert!(eval.top1 > 0.9, "top1 {}", eval.top1);
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = Sequential::new()
            .push(Flatten)
            .push(Linear::new(4, 2, &mut rng));
        let mut opt = Adam::new(net.parameters(), 0.05);
        let batches = toy_batches(&mut rng);
        let first = train_epoch(&net, &mut opt, &batches).unwrap();
        let mut last = first;
        for _ in 0..10 {
            last = train_epoch(&net, &mut opt, &batches).unwrap();
        }
        assert!(last.loss < first.loss, "{} -> {}", first.loss, last.loss);
        let eval = evaluate(&net, &batches).unwrap();
        assert!(eval.top1 > 0.95, "top1 {}", eval.top1);
        assert_eq!(eval.examples, 8 * 16);
        // With 2 classes, top-5 accuracy is trivially 1.
        assert_eq!(eval.top5, 1.0);
    }
}
