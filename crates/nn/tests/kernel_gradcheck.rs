//! Gradient checks of the layer library on top of the blocked kernel
//! layer: `Linear` and a strided, padded `Conv2d` — the two layers whose
//! forward/backward now run entirely through the register-tiled GEMM and
//! its transpose-free variants.

use edd_nn::{Conv2d, Linear, Module};
use edd_tensor::gradcheck::check_gradients;
use edd_tensor::{Array, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn linear_layer_gradients_through_blocked_gemm() {
    let mut rng = StdRng::seed_from_u64(31);
    let lin = Linear::new(9, 5, &mut rng);
    let x = Tensor::param(Array::randn(&[6, 9], 1.0, &mut rng));
    let mut params = lin.parameters();
    params.push(x.clone());
    let report = check_gradients(
        &params,
        move || lin.forward(&x).unwrap().square().sum(),
        1e-2,
        1,
    );
    assert!(
        report.max_rel_error < 2e-2,
        "linear layer rel error {} (param {}, index {})",
        report.max_rel_error,
        report.worst_param,
        report.worst_index
    );
}

#[test]
fn conv_layer_gradients_with_stride_and_padding() {
    let mut rng = StdRng::seed_from_u64(32);
    let conv = Conv2d::new(3, 4, 3, 2, 1, true, &mut rng);
    let x = Tensor::param(Array::randn(&[2, 3, 7, 7], 1.0, &mut rng));
    let mut params = conv.parameters();
    params.push(x.clone());
    let report = check_gradients(
        &params,
        move || conv.forward(&x).unwrap().square().sum(),
        1e-2,
        1,
    );
    assert!(
        report.max_rel_error < 2e-2,
        "conv layer rel error {} (param {}, index {})",
        report.max_rel_error,
        report.worst_param,
        report.worst_index
    );
}
