//! Property-based tests for the layer library: shape algebra, residual
//! invariants, normalization statistics, and quantization monotonicity
//! across randomly drawn layer configurations.

use edd_nn::{
    BatchNorm2d, Conv2d, DwConv2d, MbConv, Module, QuantSpec, QuantizableModule, SepConv,
};
use edd_tensor::{Array, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv_output_shape_formula(
        cin in 1usize..5,
        cout in 1usize..5,
        k in prop::sample::select(vec![1usize, 3, 5]),
        stride in 1usize..3,
        hw in 8usize..17,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let conv = Conv2d::new(cin, cout, k, stride, k / 2, false, &mut rng);
        let x = Tensor::constant(Array::randn(&[2, cin, hw, hw], 1.0, &mut rng));
        let y = conv.forward(&x).unwrap();
        let expect = (hw + 2 * (k / 2) - k) / stride + 1;
        prop_assert_eq!(y.shape(), vec![2, cout, expect, expect]);
    }

    #[test]
    fn dwconv_preserves_channel_count(
        c in 1usize..6,
        k in prop::sample::select(vec![3usize, 5, 7]),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dw = DwConv2d::same(c, k, 1, &mut rng);
        let x = Tensor::constant(Array::randn(&[1, c, 12, 12], 1.0, &mut rng));
        let y = dw.forward(&x).unwrap();
        prop_assert_eq!(y.shape(), vec![1, c, 12, 12]);
    }

    #[test]
    fn mbconv_residual_rule(
        cin in 2usize..6,
        cout in 2usize..6,
        stride in 1usize..3,
        e in prop::sample::select(vec![1usize, 4, 6]),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mb = MbConv::new(cin, cout, 3, e, stride, &mut rng);
        // Residual iff stride 1 and channels match — the MobileNetV2 rule.
        prop_assert_eq!(mb.has_residual(), stride == 1 && cin == cout);
        let x = Tensor::constant(Array::randn(&[1, cin, 8, 8], 1.0, &mut rng));
        let y = mb.forward(&x).unwrap();
        let s = 8usize.div_ceil(stride);
        prop_assert_eq!(y.shape(), vec![1, cout, s, s]);
    }

    #[test]
    fn mbconv_param_count_monotone_in_expansion(
        cin in 2usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m4 = MbConv::new(cin, cin, 3, 4, 1, &mut rng);
        let m6 = MbConv::new(cin, cin, 3, 6, 1, &mut rng);
        prop_assert!(m6.num_parameters() > m4.num_parameters());
    }

    #[test]
    fn quantization_error_monotone_in_bits(
        seed in 0u64..500,
    ) {
        // Output distance to the full-precision forward shrinks as bits
        // grow, for the same weights and input.
        let mut rng = StdRng::seed_from_u64(seed);
        let conv = Conv2d::same(3, 4, 3, 1, &mut rng);
        let x = Tensor::constant(Array::randn(&[1, 3, 8, 8], 1.0, &mut rng));
        let full = conv.forward(&x).unwrap();
        let dist = |bits: u32| -> f32 {
            let q = conv
                .forward_quantized(&x, Some(QuantSpec::bits(bits)))
                .unwrap();
            let qv = q.value_clone();
            full.value()
                .data()
                .iter()
                .zip(qv.data())
                .map(|(a, b)| (a - b).abs())
                .sum()
        };
        let d3 = dist(3);
        let d6 = dist(6);
        let d12 = dist(12);
        prop_assert!(d12 <= d6 + 1e-4, "12-bit {d12} vs 6-bit {d6}");
        prop_assert!(d6 <= d3 + 1e-4, "6-bit {d6} vs 3-bit {d3}");
    }

    #[test]
    fn batchnorm_output_statistics(
        c in 1usize..4,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bn = BatchNorm2d::new(c);
        let x = Tensor::constant(
            Array::randn(&[6, c, 5, 5], 2.0, &mut rng).map(|v| v + 3.0),
        );
        let y = bn.forward(&x).unwrap();
        let v = y.value_clone();
        let mean = v.data().iter().sum::<f32>() / v.len() as f32;
        prop_assert!(mean.abs() < 0.1, "normalized mean {mean}");
    }

    #[test]
    fn sepconv_shape(
        cin in 1usize..5,
        cout in 1usize..5,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sep = SepConv::new(cin, cout, 3, 1, &mut rng);
        let x = Tensor::constant(Array::randn(&[1, cin, 8, 8], 1.0, &mut rng));
        prop_assert_eq!(sep.forward(&x).unwrap().shape(), vec![1, cout, 8, 8]);
    }

    #[test]
    fn all_parameters_receive_gradients(
        e in prop::sample::select(vec![1usize, 4]),
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mb = MbConv::new(3, 3, 3, e, 1, &mut rng);
        let x = Tensor::constant(Array::randn(&[2, 3, 6, 6], 1.0, &mut rng));
        let y = mb.forward(&x).unwrap();
        y.square().sum().backward();
        for (i, p) in mb.parameters().iter().enumerate() {
            prop_assert!(p.grad().is_some(), "param {i} missing grad");
        }
    }
}
