//! Property tests for the integer quantized-inference layers: over random
//! convolution geometries, weight precisions (int8 and bit-packed int4)
//! and seeds, the compiled engine's dequantized output must land within
//! one requantization rounding step of the fake-quant f32 oracle evaluated
//! on the same quantization grids.

use edd_nn::{Conv2d, QConv2d, QTensor};
use edd_tensor::qkernel::{max_abs, qmax, scale_for};
use edd_tensor::{Array, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Input whose values sit exactly on the int8 activation grid, so the
/// engine and the oracle see identical inputs.
fn on_grid_input(shape: &[usize], scale: f32, rng: &mut StdRng) -> Array {
    let n: usize = shape.iter().product();
    let v: Vec<f32> = (0..n)
        .map(|_| f32::from(rng.gen_range(-127i8..=127)) * scale)
        .collect();
    Array::from_vec(v, shape).unwrap()
}

/// Per-output-channel fake quantization of conv weights on exactly the
/// grid `QConv2d::compile` uses (`s_r = max_abs(row)/qmax`). Returns the
/// fake-quantized weights and the largest per-channel scale.
fn fake_quant_per_channel(w: &Array, bits: u32) -> (Array, f32) {
    let shape = w.shape().to_vec();
    let (out_c, cols) = (shape[0], shape[1] * shape[2] * shape[3]);
    let qm = qmax(bits) as f32;
    let mut vals = w.data().to_vec();
    let mut s_max = 0.0f32;
    for r in 0..out_c {
        let row = &mut vals[r * cols..(r + 1) * cols];
        let s = scale_for(max_abs(row), bits);
        s_max = s_max.max(s);
        for v in row.iter_mut() {
            *v = (*v / s).round().clamp(-qm, qm) * s;
        }
    }
    (Array::from_vec(vals, &shape).unwrap(), s_max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn qconv_matches_fake_quant_oracle_within_rounding(
        cin in 1usize..4,
        cout in 1usize..6,
        k in prop::sample::select(vec![1usize, 3]),
        bits in prop::sample::select(vec![4u32, 8]),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let conv = Conv2d::new(cin, cout, k, 1, k / 2, true, &mut rng);
        let in_scale = 0.02f32;
        let x = on_grid_input(&[2, cin, 7, 7], in_scale, &mut rng);

        // Oracle: f32 convolution of the engine's own dequantized input
        // with per-channel fake-quantized weights and the exact bias.
        let xq = QTensor::quantize(&x, in_scale);
        let (w_hat, s_max) = fake_quant_per_channel(&conv.weight().value(), bits);
        let oracle = Tensor::constant(xq.dequantize())
            .conv2d(&Tensor::constant(w_hat), conv.bias(), 1, k / 2)
            .unwrap();
        let oracle = oracle.value_clone();

        let out_scale = scale_for(max_abs(oracle.data()), 8);
        let q = QConv2d::compile(&conv, None, bits, in_scale, out_scale, false);
        let got = q.forward(&xq).unwrap().dequantize();

        // One output rounding step, plus the bias-quantization error
        // (≤ half an accumulator step, s_in·s_w/2) and fixed-point slack.
        let bound = out_scale * 0.51 + 0.5 * in_scale * s_max + 1e-4;
        for (g, o) in got.data().iter().zip(oracle.data()) {
            prop_assert!(
                (g - o).abs() <= bound,
                "bits={}: got {}, oracle {}, step {}", bits, g, o, out_scale
            );
        }
    }

    #[test]
    fn qconv_output_shape_and_scale(
        cin in 1usize..4,
        cout in 1usize..6,
        stride in 1usize..3,
        bits in prop::sample::select(vec![2u32, 4, 6, 8]),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let conv = Conv2d::new(cin, cout, 3, stride, 1, false, &mut rng);
        let (in_scale, out_scale) = (0.03f32, 0.04f32);
        let q = QConv2d::compile(&conv, None, bits, in_scale, out_scale, true);
        let x = on_grid_input(&[1, cin, 9, 9], in_scale, &mut rng);
        let y = q.forward(&QTensor::quantize(&x, in_scale)).unwrap();
        let expect = (9 + 2 - 3) / stride + 1;
        prop_assert_eq!(y.shape, vec![1, cout, expect, expect]);
        prop_assert_eq!(y.scale, out_scale);
        // Fused ReLU6 clamp holds in the integer domain.
        for &v in &y.data {
            prop_assert!(v >= 0, "negative activation {} after fused relu6", v);
        }
    }
}
