//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the integrity
//! check over snapshot payloads.
//!
//! Table-driven, one table built at first use. The algorithm matches the
//! ubiquitous zlib/`crc32fast` definition so snapshots can be verified by
//! external tooling (`python -c "import zlib; zlib.crc32(...)"`).

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `data` (initial value `0xFFFF_FFFF`, final XOR, reflected).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from the zlib implementation.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"checkpoint payload");
        let b = crc32(b"checkpoint paylobd");
        assert_ne!(a, b);
    }
}
