//! Batched inference serving: a model-agnostic [`BatchModel`] trait and an
//! [`InferServer`] wrapper that adds request/latency telemetry.
//!
//! `edd-runtime` sits below the model crates in the workspace graph, so the
//! server is generic over anything that can turn a batch of images into a
//! batch of logits — the integer `QuantizedModel` in `edd-core`
//! implements [`BatchModel`] and is the intended occupant. The server
//! counts requests and images, tracks total and worst-case wall time, and
//! mirrors every request into the global [`telemetry`]
//! sink (`infer.requests` / `infer.images` counters, `infer.latency_us`
//! gauge) so traces line up with search-loop spans.

use crate::telemetry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A model that maps a batch of flat NCHW images to a batch of logits.
pub trait BatchModel {
    /// Error type surfaced by a failed forward pass.
    type Error: std::fmt::Display;

    /// Number of values in one input image (`c·h·w`).
    fn image_len(&self) -> usize;

    /// Number of logits per image.
    fn num_classes(&self) -> usize;

    /// Runs the model on `batch` images packed contiguously in `images`
    /// (`images.len() == batch · image_len()`), returning
    /// `batch · num_classes()` logits.
    ///
    /// # Errors
    ///
    /// Implementation-defined; shape mismatches at minimum.
    fn infer_batch(&self, images: &[f32], batch: usize) -> Result<Vec<f32>, Self::Error>;
}

impl<M: BatchModel + ?Sized> BatchModel for &M {
    type Error = M::Error;

    fn image_len(&self) -> usize {
        M::image_len(self)
    }

    fn num_classes(&self) -> usize {
        M::num_classes(self)
    }

    fn infer_batch(&self, images: &[f32], batch: usize) -> Result<Vec<f32>, Self::Error> {
        M::infer_batch(self, images, batch)
    }
}

impl<M: BatchModel + ?Sized> BatchModel for std::sync::Arc<M> {
    type Error = M::Error;

    fn image_len(&self) -> usize {
        M::image_len(self)
    }

    fn num_classes(&self) -> usize {
        M::num_classes(self)
    }

    fn infer_batch(&self, images: &[f32], batch: usize) -> Result<Vec<f32>, Self::Error> {
        M::infer_batch(self, images, batch)
    }
}

/// Counters accumulated by an [`InferServer`] (atomics: the server is
/// shareable across threads).
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    images: AtomicU64,
    total_latency_us: AtomicU64,
    max_latency_us: AtomicU64,
}

/// Point-in-time copy of an [`InferServer`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferStats {
    /// Batched requests served.
    pub requests: u64,
    /// Total images across all requests.
    pub images: u64,
    /// Summed request wall time in microseconds.
    pub total_latency_us: u64,
    /// Worst single-request wall time in microseconds.
    pub max_latency_us: u64,
}

impl InferStats {
    /// Mean wall time per request in microseconds.
    ///
    /// Empty stats (no requests) report `0.0` — never `NaN` — so the
    /// value is always safe to print or aggregate.
    #[must_use]
    pub fn mean_latency_us(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency_us as f64 / self.requests as f64
        }
    }

    /// Sustained throughput in images per second.
    ///
    /// Empty stats (no images served) report `0.0` — never `NaN` or
    /// `inf`. When images *were* served but the summed wall time rounded
    /// down to 0 µs (sub-microsecond requests), the elapsed time is
    /// clamped to 1 µs so real work never reports zero throughput.
    #[must_use]
    pub fn images_per_sec(&self) -> f64 {
        if self.images == 0 {
            0.0
        } else {
            self.images as f64 * 1e6 / self.total_latency_us.max(1) as f64
        }
    }
}

/// Wraps a [`BatchModel`] with request counting and latency tracking.
#[derive(Debug)]
pub struct InferServer<M> {
    model: M,
    counters: Counters,
}

impl<M: BatchModel> InferServer<M> {
    /// Wraps `model`.
    pub fn new(model: M) -> Self {
        InferServer {
            model,
            counters: Counters::default(),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Serves one batched request, updating counters on success.
    ///
    /// # Errors
    ///
    /// Propagates the model's error; failed requests are not counted.
    pub fn infer(&self, images: &[f32], batch: usize) -> Result<Vec<f32>, M::Error> {
        let start = Instant::now();
        let logits = self.model.infer_batch(images, batch)?;
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters
            .images
            .fetch_add(batch as u64, Ordering::Relaxed);
        self.counters
            .total_latency_us
            .fetch_add(us, Ordering::Relaxed);
        self.counters
            .max_latency_us
            .fetch_max(us, Ordering::Relaxed);
        telemetry::counter("infer.requests", 1);
        telemetry::counter("infer.images", batch as u64);
        telemetry::gauge("infer.latency_us", us);
        Ok(logits)
    }

    /// Snapshot of the accumulated counters.
    pub fn stats(&self) -> InferStats {
        InferStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            images: self.counters.images.load(Ordering::Relaxed),
            total_latency_us: self.counters.total_latency_us.load(Ordering::Relaxed),
            max_latency_us: self.counters.max_latency_us.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy model: logit = mean of the image, replicated per class.
    struct MeanModel {
        classes: usize,
        len: usize,
    }

    impl BatchModel for MeanModel {
        type Error = String;

        fn image_len(&self) -> usize {
            self.len
        }

        fn num_classes(&self) -> usize {
            self.classes
        }

        fn infer_batch(&self, images: &[f32], batch: usize) -> Result<Vec<f32>, String> {
            if images.len() != batch * self.len {
                return Err(format!(
                    "expected {} values, got {}",
                    batch * self.len,
                    images.len()
                ));
            }
            let mut out = Vec::with_capacity(batch * self.classes);
            for img in images.chunks_exact(self.len) {
                let mean = img.iter().sum::<f32>() / self.len as f32;
                out.extend(std::iter::repeat_n(mean, self.classes));
            }
            Ok(out)
        }
    }

    #[test]
    fn serves_batches_and_counts() {
        let server = InferServer::new(MeanModel { classes: 3, len: 4 });
        let logits = server
            .infer(&[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0], 2)
            .unwrap();
        assert_eq!(logits, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        server.infer(&[0.0; 4], 1).unwrap();
        let s = server.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.images, 3);
        assert!(s.max_latency_us <= s.total_latency_us);
        assert!(s.mean_latency_us() >= 0.0);
        assert_eq!(server.model().num_classes(), 3);
        assert_eq!(server.model().image_len(), 4);
    }

    #[test]
    fn failed_requests_are_not_counted() {
        let server = InferServer::new(MeanModel { classes: 2, len: 4 });
        assert!(server.infer(&[0.0; 3], 1).is_err());
        let s = server.stats();
        assert_eq!(s.requests, 0);
        assert_eq!(s.images, 0);
        assert_eq!(s.mean_latency_us(), 0.0);
        assert_eq!(s.images_per_sec(), 0.0);
    }
}
