//! `edd-runtime`: operational plumbing for long-running EDD searches.
//!
//! The bilevel co-search is the longest-running path in this workspace —
//! hours of alternating weight/architecture steps — and this crate gives it
//! the two properties a production search job needs:
//!
//! - **Crash-safe checkpointing** ([`snapshot`]): a versioned,
//!   self-describing, CRC-protected container format with atomic writes
//!   (temp + fsync + rename) and keep-last-K retention. The search loop in
//!   `edd-core` serializes its full state (weights, Θ/Φ/pf, optimizer
//!   moments, RNG, epoch) into this container so an interrupted search
//!   resumes bit-identically.
//! - **Structured telemetry** ([`telemetry`]): counters, gauges, events,
//!   and hierarchical span timers behind a [`telemetry::Sink`] trait, with
//!   a JSONL backend for traces, a CSV backend for legacy history output,
//!   and a no-op backend that keeps disabled instrumentation off the hot
//!   path.
//! - **Batched inference serving** ([`infer`]): a model-agnostic
//!   [`BatchModel`] trait plus an [`InferServer`] wrapper that counts
//!   requests/images and tracks latency, wired into the telemetry sink.
//!   The integer quantized-inference engine in `edd-core` serves through
//!   this.
//! - **Streaming (pulsed) inference** ([`stream`]): a
//!   `push(slice) -> Option<window>` [`StreamModel`] contract for
//!   continuous signals under a bounded memory budget, with a
//!   [`StreamSession`] wrapper feeding `pulse.*` counters and a carried
//!   state-bytes gauge into the telemetry sink. The pulsed executor in
//!   `edd-ir` implements it.
//! - **Multi-tenant dynamic batching** ([`serve`]): an async front end
//!   over [`BatchModel`] — a pure, clock-injected [`serve::Batcher`]
//!   state machine (deterministically testable without threads or wall
//!   time), bounded per-model request queues with
//!   backpressure admission control, per-model worker shards sharing one
//!   immutable `Arc<Model>`, and p50/p95/p99 latency + queue-depth +
//!   batch-occupancy telemetry.
//!
//! The crate is dependency-free (std only) and sits below `edd-core`,
//! `edd-nn`, and the CLI in the workspace graph; `edd-tensor` stays
//! independent of it (kernel hot paths use raw atomics in
//! `edd_tensor::stats`, sampled into gauges by the layers above).

#![warn(missing_docs)]

pub mod crc32;
pub mod infer;
pub mod serve;
pub mod snapshot;
pub mod stream;
pub mod telemetry;

pub use crc32::crc32;
pub use infer::{BatchModel, InferServer, InferStats};
pub use serve::{
    BatchAction, BatchEvent, Batcher, BatcherConfig, FlushReason, LatencySummary, Micros,
    ModelServeStats, RejectReason, ServeConfig, ServeError, Server, Ticket,
};
pub use snapshot::{
    decode_container_as, encode_container_as, latest_snapshot, list_snapshots, prune_snapshots,
    read as read_snapshot, write_atomic, write_atomic_raw, ByteReader, ByteWriter, SectionWriter,
    Sections, SnapshotError,
};
pub use stream::{StreamModel, StreamSession, StreamStats, StreamWindow};
pub use telemetry::{
    CsvSink, Event, EventKind, FanoutSink, Histogram, JsonlSink, NoopSink, Sink, Span, Value,
};
