//! Async multi-tenant dynamic-batching inference service.
//!
//! [`InferServer`](crate::InferServer) is a synchronous, caller-batched
//! entry point: one thread, one model, one `infer` call at a time. This
//! module puts a production front end over the same [`BatchModel`] trait:
//!
//! - **[`Batcher`]** — a *pure, clock-injected* state machine that
//!   coalesces single-image requests into batches. All inputs are explicit
//!   (`tick(now, events) -> actions`); it never reads a clock, never
//!   sleeps, never spawns. That makes every batching decision — batch
//!   composition, deadline flushes, admission rejections and their order —
//!   exactly reproducible by the deterministic simulation suite
//!   (`tests/serve_sim.rs`) with no threads and no wall time.
//! - **[`Server`]** — the threaded shell: one bounded request queue per
//!   model (mutex + condvar), per-model worker *shards* that each own a
//!   clone of a shared immutable `Arc<M>`, and a ticket-based completion
//!   path ([`Ticket::wait`]). Many models are served concurrently; each
//!   model's shards pull flushed batches and run them through
//!   `M::infer_batch`.
//! - **Admission control** — the queue depth is bounded; a request
//!   arriving at a full queue is rejected immediately with
//!   [`ServeError::QueueFull`] (backpressure, never unbounded buffering),
//!   and requests arriving after shutdown began get
//!   [`ServeError::ShuttingDown`].
//! - **Telemetry** — per-model latency percentiles (p50/p95/p99 via
//!   [`Histogram`]), queue-depth peaks, batch occupancy, and flush-reason
//!   counters, mirrored into the global [`telemetry`] sink (`serve.*`
//!   counters and gauges) when one is installed.
//!
//! Determinism: batching changes *which* images share a batch, so serving
//! is only output-deterministic if the model's per-image results do not
//! depend on batch composition. The integer engine (`edd-core`'s
//! `QuantizedModel`) guarantees this — i32 accumulation is exact — and
//! `crates/core/tests/serve_determinism.rs` proves outputs are
//! bitwise-identical across 1-shard and 4-shard servers and against the
//! synchronous path.

use crate::infer::BatchModel;
use crate::telemetry::{self, Histogram};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Microseconds on the injected serve clock (the [`Server`] uses
/// microseconds since its own epoch; the simulation suite uses arbitrary
/// script times).
pub type Micros = u64;

// ---------------------------------------------------------------------------
// Pure batcher state machine
// ---------------------------------------------------------------------------

/// Dynamic-batching policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherConfig {
    /// Largest batch handed to the model; reaching it flushes immediately.
    pub max_batch: usize,
    /// Longest a request may wait in the queue before a deadline flush.
    pub max_delay_us: Micros,
    /// Admission bound: a request arriving with this many already pending
    /// is rejected with [`RejectReason::QueueFull`].
    pub queue_depth: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            max_batch: 32,
            max_delay_us: 1_000,
            queue_depth: 256,
        }
    }
}

/// Why the batcher refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// `queue_depth` requests were already pending.
    QueueFull,
    /// The batcher was draining (shutdown) when the request arrived.
    ShuttingDown,
}

/// Why a batch left the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// `max_batch` requests were pending.
    Full,
    /// The oldest pending request reached its `max_delay_us` deadline.
    Deadline,
    /// Shutdown drain: remaining requests flushed unconditionally.
    Drain,
}

/// Input to one [`Batcher::tick`].
#[derive(Debug, PartialEq, Eq)]
pub enum BatchEvent<T> {
    /// A request arrived at the tick's `now`.
    Arrive(T),
    /// Begin draining: flush everything pending, reject later arrivals.
    Drain,
}

/// Output of one [`Batcher::tick`], in decision order.
#[derive(Debug, PartialEq, Eq)]
pub enum BatchAction<T> {
    /// Run these requests as one batch (FIFO order preserved).
    Flush {
        /// What triggered the flush.
        reason: FlushReason,
        /// The batch, oldest request first, `1..=max_batch` items.
        items: Vec<T>,
    },
    /// Refuse this request; it never entered the queue.
    Reject {
        /// The refused request, returned to the caller.
        item: T,
        /// Why it was refused.
        reason: RejectReason,
    },
}

/// Pure dynamic-batching state machine: a FIFO of pending requests with
/// admission control and per-request deadlines. All time is injected
/// through [`Batcher::tick`]'s `now`; the struct holds no clock, no
/// threads, and no interior mutability, so identical event scripts
/// produce identical action streams.
#[derive(Debug)]
pub struct Batcher<T> {
    config: BatcherConfig,
    /// Pending requests with their flush deadlines. Deadlines are
    /// monotonically non-decreasing back to front (FIFO arrivals, constant
    /// delay), so only the front needs checking.
    queue: VecDeque<(T, Micros)>,
    draining: bool,
}

impl<T> Batcher<T> {
    /// An empty batcher with the given policy. `max_batch` and
    /// `queue_depth` are clamped to at least 1.
    #[must_use]
    pub fn new(config: BatcherConfig) -> Self {
        Batcher {
            config: BatcherConfig {
                max_batch: config.max_batch.max(1),
                queue_depth: config.queue_depth.max(1),
                ..config
            },
            queue: VecDeque::new(),
            draining: false,
        }
    }

    /// The (clamped) policy in effect.
    #[must_use]
    pub fn config(&self) -> BatcherConfig {
        self.config
    }

    /// Number of pending (accepted, not yet flushed) requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no requests are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether a [`BatchEvent::Drain`] has been processed.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Deadline of the oldest pending request: the next time a
    /// [`FlushReason::Deadline`] flush can fire. Drivers sleep until this.
    #[must_use]
    pub fn next_deadline(&self) -> Option<Micros> {
        self.queue.front().map(|(_, d)| *d)
    }

    fn flush(&mut self, reason: FlushReason) -> BatchAction<T> {
        let n = self.queue.len().min(self.config.max_batch);
        let items = self.queue.drain(..n).map(|(item, _)| item).collect();
        BatchAction::Flush { reason, items }
    }

    /// Advances the machine to `now`, applying `events` in order, and
    /// returns every resulting action in decision order.
    ///
    /// Semantics, in order:
    /// 1. Each [`BatchEvent::Arrive`] is admitted (deadline
    ///    `now + max_delay_us`) or rejected — [`RejectReason::QueueFull`]
    ///    if `queue_depth` are already pending,
    ///    [`RejectReason::ShuttingDown`] if draining. Admission that fills
    ///    the batch (`max_batch` pending) flushes immediately
    ///    ([`FlushReason::Full`]).
    /// 2. [`BatchEvent::Drain`] marks the machine draining.
    /// 3. While the oldest pending deadline is `<= now`, pending requests
    ///    flush ([`FlushReason::Deadline`], up to `max_batch` per action —
    ///    younger requests ride along with the expired one).
    /// 4. If draining, everything still pending flushes
    ///    ([`FlushReason::Drain`]).
    ///
    /// Ticks are cheap when idle: no events and no expired deadline means
    /// no actions.
    pub fn tick(
        &mut self,
        now: Micros,
        events: impl IntoIterator<Item = BatchEvent<T>>,
    ) -> Vec<BatchAction<T>> {
        let mut actions = Vec::new();
        for event in events {
            match event {
                BatchEvent::Arrive(item) => {
                    if self.draining {
                        actions.push(BatchAction::Reject {
                            item,
                            reason: RejectReason::ShuttingDown,
                        });
                    } else if self.queue.len() >= self.config.queue_depth {
                        actions.push(BatchAction::Reject {
                            item,
                            reason: RejectReason::QueueFull,
                        });
                    } else {
                        self.queue
                            .push_back((item, now.saturating_add(self.config.max_delay_us)));
                        if self.queue.len() >= self.config.max_batch {
                            actions.push(self.flush(FlushReason::Full));
                        }
                    }
                }
                BatchEvent::Drain => self.draining = true,
            }
        }
        while self.queue.front().is_some_and(|(_, d)| *d <= now) {
            actions.push(self.flush(FlushReason::Deadline));
        }
        while self.draining && !self.queue.is_empty() {
            actions.push(self.flush(FlushReason::Drain));
        }
        actions
    }
}

// ---------------------------------------------------------------------------
// Errors and tickets
// ---------------------------------------------------------------------------

/// Failure surfaced to a serve client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control: the model's queue is at `queue_depth`. Back off
    /// and retry; nothing was enqueued.
    QueueFull,
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The request was malformed (unknown model, wrong image length).
    BadRequest(String),
    /// The model's forward pass failed; the message is the model error.
    Model(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "queue full (backpressure): retry later"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Model(msg) => write!(f, "model error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<RejectReason> for ServeError {
    fn from(r: RejectReason) -> Self {
        match r {
            RejectReason::QueueFull => ServeError::QueueFull,
            RejectReason::ShuttingDown => ServeError::ShuttingDown,
        }
    }
}

/// One-shot completion slot shared by a [`Ticket`] and the worker shard
/// that eventually serves the request.
#[derive(Debug)]
struct Slot {
    result: Mutex<Option<Result<Vec<f32>, ServeError>>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            result: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fulfill(&self, value: Result<Vec<f32>, ServeError>) {
        let mut guard = self
            .result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        debug_assert!(guard.is_none(), "slot fulfilled twice");
        *guard = Some(value);
        self.cv.notify_all();
    }
}

/// Handle to an accepted request; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the request completes, returning its logits
    /// (`num_classes` values) or the error that killed its batch.
    ///
    /// # Errors
    ///
    /// [`ServeError::Model`] if the model's forward pass failed.
    pub fn wait(self) -> Result<Vec<f32>, ServeError> {
        let mut guard = self
            .slot
            .result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self
                .slot
                .cv
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Non-blocking probe: the result if the request already completed.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` (the still-pending ticket) when not yet done.
    pub fn try_take(self) -> Result<Result<Vec<f32>, ServeError>, Ticket> {
        let taken = self
            .slot
            .result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        match taken {
            Some(result) => Ok(result),
            None => Err(self),
        }
    }
}

// ---------------------------------------------------------------------------
// Threaded multi-tenant server
// ---------------------------------------------------------------------------

/// Server-level configuration: batching policy plus shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Per-model dynamic-batching policy.
    pub batcher: BatcherConfig,
    /// Worker threads per model (clamped to at least 1). Shards share one
    /// immutable `Arc<M>`; more shards overlap inference on large batches
    /// but never change outputs (see the determinism suite).
    pub shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batcher: BatcherConfig::default(),
            shards: 1,
        }
    }
}

/// A request queued inside the server: the flattened image, its arrival
/// time (for latency accounting), and the client's completion slot.
#[derive(Debug)]
struct Request {
    image: Vec<f32>,
    enqueued_at: Micros,
    slot: Arc<Slot>,
}

/// Lock-protected per-model queue state.
#[derive(Debug)]
struct QueueState {
    batcher: Batcher<Request>,
    /// Batches flushed by the batcher, awaiting a free shard.
    ready: VecDeque<(FlushReason, Vec<Request>)>,
    shutdown: bool,
}

/// Relaxed per-model counters (hot path: one submit, one batch completion).
#[derive(Debug, Default)]
struct ModelCounters {
    accepted: AtomicU64,
    rejected_full: AtomicU64,
    rejected_shutdown: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_images: AtomicU64,
    full_flushes: AtomicU64,
    deadline_flushes: AtomicU64,
    drain_flushes: AtomicU64,
    queue_peak: AtomicU64,
}

/// Everything the submit path and the worker shards share for one model.
struct ModelShared<M> {
    name: String,
    model: Arc<M>,
    state: Mutex<QueueState>,
    cv: Condvar,
    counters: ModelCounters,
    latency: Histogram,
}

impl<M> std::fmt::Debug for ModelShared<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelShared")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Latency percentile summary (microseconds), from a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Completed-request count the percentiles are over.
    pub count: u64,
    /// Median queue-to-completion latency.
    pub p50_us: u64,
    /// 95th percentile latency.
    pub p95_us: u64,
    /// 99th percentile latency.
    pub p99_us: u64,
    /// Worst observed latency.
    pub max_us: u64,
}

/// Point-in-time statistics for one served model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelServeStats {
    /// Model name given at [`Server::start`].
    pub name: String,
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests rejected by admission control (queue at `queue_depth`).
    pub rejected_full: u64,
    /// Requests rejected because shutdown had begun.
    pub rejected_shutdown: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests that failed inside the model's forward pass.
    pub failed: u64,
    /// Batches run through the model.
    pub batches: u64,
    /// Total images across all batches.
    pub batched_images: u64,
    /// Batches flushed because they reached `max_batch`.
    pub full_flushes: u64,
    /// Batches flushed by the `max_delay_us` deadline.
    pub deadline_flushes: u64,
    /// Batches flushed by the shutdown drain.
    pub drain_flushes: u64,
    /// Highest pending-queue depth observed at admission time.
    pub queue_peak: u64,
    /// Queue-to-completion latency percentiles.
    pub latency: LatencySummary,
}

impl ModelServeStats {
    /// Mean images per batch (batch occupancy); 0 before any batch.
    #[must_use]
    pub fn mean_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_images as f64 / self.batches as f64
        }
    }
}

/// Multi-tenant dynamic-batching server over any [`BatchModel`].
///
/// Each registered model gets its own bounded queue, [`Batcher`], and
/// `shards` worker threads sharing one immutable `Arc<M>`. Clients call
/// [`Server::submit`] (non-blocking admission, returns a [`Ticket`]) or
/// [`Server::infer_one`] (submit + wait). Dropping the server performs a
/// graceful shutdown: intake stops, pending requests drain, workers join.
#[derive(Debug)]
pub struct Server<M: BatchModel + Send + Sync + 'static> {
    models: Vec<Arc<ModelShared<M>>>,
    workers: Vec<JoinHandle<()>>,
    epoch: Instant,
}

impl<M: BatchModel + Send + Sync + 'static> Server<M> {
    /// Starts worker shards for `models` and begins accepting requests.
    /// Models are addressed by their index in `models` (see
    /// [`Server::model_index`] for name lookup).
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty or a worker thread cannot be spawned.
    #[must_use]
    pub fn start(models: Vec<(String, Arc<M>)>, config: ServeConfig) -> Self {
        assert!(!models.is_empty(), "Server::start: no models");
        let epoch = Instant::now();
        let shards = config.shards.max(1);
        let shared: Vec<Arc<ModelShared<M>>> = models
            .into_iter()
            .map(|(name, model)| {
                Arc::new(ModelShared {
                    name,
                    model,
                    state: Mutex::new(QueueState {
                        batcher: Batcher::new(config.batcher),
                        ready: VecDeque::new(),
                        shutdown: false,
                    }),
                    cv: Condvar::new(),
                    counters: ModelCounters::default(),
                    latency: Histogram::new(),
                })
            })
            .collect();
        let mut workers = Vec::with_capacity(shared.len() * shards);
        for (mi, ms) in shared.iter().enumerate() {
            for si in 0..shards {
                let ms = Arc::clone(ms);
                let handle = std::thread::Builder::new()
                    .name(format!("edd-serve-{mi}-{si}"))
                    .spawn(move || worker_loop(&ms, epoch))
                    .expect("spawn serve shard");
                workers.push(handle);
            }
        }
        Server {
            models: shared,
            workers,
            epoch,
        }
    }

    fn now(&self) -> Micros {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Number of registered models.
    #[must_use]
    pub fn num_models(&self) -> usize {
        self.models.len()
    }

    /// Index of the model registered under `name`, if any.
    #[must_use]
    pub fn model_index(&self, name: &str) -> Option<usize> {
        self.models.iter().position(|m| m.name == name)
    }

    /// The shared model at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn model(&self, index: usize) -> &Arc<M> {
        &self.models[index].model
    }

    /// Submits one image to model `model`: non-blocking admission that
    /// either queues the request (returning a [`Ticket`]) or rejects it.
    ///
    /// # Errors
    ///
    /// - [`ServeError::BadRequest`] — unknown model index or wrong image
    ///   length (nothing was enqueued);
    /// - [`ServeError::QueueFull`] — admission control (backpressure);
    /// - [`ServeError::ShuttingDown`] — shutdown already began.
    pub fn submit(&self, model: usize, image: Vec<f32>) -> Result<Ticket, ServeError> {
        let Some(ms) = self.models.get(model) else {
            return Err(ServeError::BadRequest(format!(
                "no model at index {model} ({} registered)",
                self.models.len()
            )));
        };
        let expect = ms.model.image_len();
        if image.len() != expect {
            return Err(ServeError::BadRequest(format!(
                "model {}: expected {expect} image values, got {}",
                ms.name,
                image.len()
            )));
        }
        let now = self.now();
        let slot = Arc::new(Slot::new());
        let request = Request {
            image,
            enqueued_at: now,
            slot: Arc::clone(&slot),
        };
        let mut rejected = None;
        {
            let mut st = ms
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if st.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            let actions = st.batcher.tick(now, [BatchEvent::Arrive(request)]);
            let mut flushed = false;
            for action in actions {
                match action {
                    BatchAction::Flush { reason, items } => {
                        record_flush(ms, reason);
                        st.ready.push_back((reason, items));
                        flushed = true;
                    }
                    BatchAction::Reject { reason, .. } => rejected = Some(reason),
                }
            }
            let depth = st.batcher.len() as u64;
            ms.counters.queue_peak.fetch_max(depth, Ordering::Relaxed);
            // Wake a shard: either a batch is ready, or the pending queue
            // just became non-empty and a parked shard must start a
            // deadline timer for it.
            if flushed || st.batcher.len() == 1 {
                ms.cv.notify_one();
            }
            if telemetry::enabled() {
                telemetry::gauge("serve.queue_depth", depth);
            }
        }
        match rejected {
            Some(reason) => {
                match reason {
                    RejectReason::QueueFull => &ms.counters.rejected_full,
                    RejectReason::ShuttingDown => &ms.counters.rejected_shutdown,
                }
                .fetch_add(1, Ordering::Relaxed);
                telemetry::counter("serve.rejected", 1);
                Err(reason.into())
            }
            None => {
                ms.counters.accepted.fetch_add(1, Ordering::Relaxed);
                telemetry::counter("serve.accepted", 1);
                Ok(Ticket { slot })
            }
        }
    }

    /// Submits one image and blocks for its logits; sugar for
    /// [`Server::submit`] + [`Ticket::wait`].
    ///
    /// # Errors
    ///
    /// Any [`ServeError`] from submission or the model forward pass.
    pub fn infer_one(&self, model: usize, image: Vec<f32>) -> Result<Vec<f32>, ServeError> {
        self.submit(model, image)?.wait()
    }

    /// Point-in-time statistics for the model at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn stats(&self, index: usize) -> ModelServeStats {
        model_stats(&self.models[index])
    }

    /// Statistics for every model, in registration order.
    #[must_use]
    pub fn stats_all(&self) -> Vec<ModelServeStats> {
        self.models.iter().map(|ms| model_stats(ms)).collect()
    }

    /// Stops intake without blocking: marks every model shutting down and
    /// drains pending requests to the shards. Requests submitted after
    /// this call get [`ServeError::ShuttingDown`]; already-accepted ones
    /// still complete. Call [`Server::shutdown`] (or drop the server) to
    /// also join the workers.
    pub fn begin_shutdown(&self) {
        let now = self.now();
        for ms in &self.models {
            let mut st = ms
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st.shutdown = true;
            let actions = st.batcher.tick(now, [BatchEvent::Drain]);
            for action in actions {
                match action {
                    BatchAction::Flush { reason, items } => {
                        record_flush(ms, reason);
                        st.ready.push_back((reason, items));
                    }
                    BatchAction::Reject { item, reason } => {
                        // Unreachable (Drain produces no rejects), but a
                        // dropped request must still resolve its ticket.
                        item.slot.fulfill(Err(reason.into()));
                    }
                }
            }
            ms.cv.notify_all();
        }
    }

    /// Graceful shutdown: stops intake, drains every pending request
    /// through the shards, joins all workers, and returns final per-model
    /// statistics. Every accepted request is completed before this
    /// returns (exactly-once delivery).
    #[must_use]
    pub fn shutdown(mut self) -> Vec<ModelServeStats> {
        self.shutdown_inner();
        let stats = self.stats_all();
        for ms in &self.models {
            telemetry::event(
                "serve.model",
                &[
                    ("model", ms.name.as_str().into()),
                    (
                        "accepted",
                        ms.counters.accepted.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "completed",
                        ms.counters.completed.load(Ordering::Relaxed).into(),
                    ),
                    ("p50_us", ms.latency.percentile(50.0).into()),
                    ("p99_us", ms.latency.percentile(99.0).into()),
                ],
            );
        }
        stats
    }

    fn shutdown_inner(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl<M: BatchModel + Send + Sync + 'static> Drop for Server<M> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn record_flush<M>(ms: &ModelShared<M>, reason: FlushReason) {
    match reason {
        FlushReason::Full => &ms.counters.full_flushes,
        FlushReason::Deadline => &ms.counters.deadline_flushes,
        FlushReason::Drain => &ms.counters.drain_flushes,
    }
    .fetch_add(1, Ordering::Relaxed);
}

fn model_stats<M>(ms: &ModelShared<M>) -> ModelServeStats {
    let c = &ms.counters;
    ModelServeStats {
        name: ms.name.clone(),
        accepted: c.accepted.load(Ordering::Relaxed),
        rejected_full: c.rejected_full.load(Ordering::Relaxed),
        rejected_shutdown: c.rejected_shutdown.load(Ordering::Relaxed),
        completed: c.completed.load(Ordering::Relaxed),
        failed: c.failed.load(Ordering::Relaxed),
        batches: c.batches.load(Ordering::Relaxed),
        batched_images: c.batched_images.load(Ordering::Relaxed),
        full_flushes: c.full_flushes.load(Ordering::Relaxed),
        deadline_flushes: c.deadline_flushes.load(Ordering::Relaxed),
        drain_flushes: c.drain_flushes.load(Ordering::Relaxed),
        queue_peak: c.queue_peak.load(Ordering::Relaxed),
        latency: LatencySummary {
            count: ms.latency.count(),
            p50_us: ms.latency.percentile(50.0),
            p95_us: ms.latency.percentile(95.0),
            p99_us: ms.latency.percentile(99.0),
            max_us: ms.latency.max(),
        },
    }
}

/// One shard: pull ready batches (or flush expired deadlines) and run
/// them through the shared model. Exits when shutdown is set and both the
/// batcher and the ready queue are empty.
fn worker_loop<M: BatchModel + Send + Sync>(ms: &Arc<ModelShared<M>>, epoch: Instant) {
    let now_us = |epoch: Instant| -> Micros {
        u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    };
    loop {
        let batch = {
            let mut st = ms
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(batch) = st.ready.pop_front() {
                    // Hand off: if work remains, another shard should wake.
                    if !st.ready.is_empty() || !st.batcher.is_empty() {
                        ms.cv.notify_one();
                    }
                    break Some(batch);
                }
                let actions = st.batcher.tick(now_us(epoch), std::iter::empty());
                if !actions.is_empty() {
                    for action in actions {
                        if let BatchAction::Flush { reason, items } = action {
                            record_flush(ms, reason);
                            st.ready.push_back((reason, items));
                        }
                    }
                    continue;
                }
                if st.shutdown && st.batcher.is_empty() && st.ready.is_empty() {
                    break None;
                }
                st = match st.batcher.next_deadline() {
                    Some(deadline) => {
                        let wait = Duration::from_micros(deadline.saturating_sub(now_us(epoch)));
                        ms.cv
                            .wait_timeout(st, wait)
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .0
                    }
                    None => ms
                        .cv
                        .wait(st)
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                };
            }
        };
        let Some((_, requests)) = batch else { return };
        run_batch(ms, epoch, requests);
    }
}

/// Runs one flushed batch through the model and fulfills every ticket.
fn run_batch<M: BatchModel + Send + Sync>(
    ms: &Arc<ModelShared<M>>,
    epoch: Instant,
    requests: Vec<Request>,
) {
    let n = requests.len();
    debug_assert!(n > 0, "empty flush");
    let image_len = ms.model.image_len();
    let classes = ms.model.num_classes();
    let mut images = Vec::with_capacity(n * image_len);
    for r in &requests {
        images.extend_from_slice(&r.image);
    }
    ms.counters.batches.fetch_add(1, Ordering::Relaxed);
    ms.counters
        .batched_images
        .fetch_add(n as u64, Ordering::Relaxed);
    if telemetry::enabled() {
        telemetry::counter("serve.batches", 1);
        telemetry::counter("serve.images", n as u64);
        telemetry::gauge("serve.batch_occupancy", n as u64);
    }
    match ms.model.infer_batch(&images, n) {
        Ok(logits) if logits.len() == n * classes => {
            let done_at = u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
            ms.counters.completed.fetch_add(n as u64, Ordering::Relaxed);
            for (i, r) in requests.into_iter().enumerate() {
                ms.latency.record(done_at.saturating_sub(r.enqueued_at));
                r.slot
                    .fulfill(Ok(logits[i * classes..(i + 1) * classes].to_vec()));
            }
        }
        Ok(logits) => {
            let msg = format!(
                "model {} returned {} logits for batch {n} x {classes} classes",
                ms.name,
                logits.len()
            );
            ms.counters.failed.fetch_add(n as u64, Ordering::Relaxed);
            for r in requests {
                r.slot.fulfill(Err(ServeError::Model(msg.clone())));
            }
        }
        Err(e) => {
            let msg = e.to_string();
            ms.counters.failed.fetch_add(n as u64, Ordering::Relaxed);
            telemetry::counter("serve.failed", n as u64);
            for r in requests {
                r.slot.fulfill(Err(ServeError::Model(msg.clone())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Per-image deterministic toy model: logit c of an image is
    /// `sum_i x[i] * (i + 1) + c`, computed independently per image so
    /// outputs never depend on batch composition.
    #[derive(Debug)]
    struct ToyModel {
        len: usize,
        classes: usize,
    }

    impl BatchModel for ToyModel {
        type Error = String;

        fn image_len(&self) -> usize {
            self.len
        }

        fn num_classes(&self) -> usize {
            self.classes
        }

        fn infer_batch(&self, images: &[f32], batch: usize) -> Result<Vec<f32>, String> {
            if images.len() != batch * self.len {
                return Err("bad shape".into());
            }
            let mut out = Vec::with_capacity(batch * self.classes);
            for img in images.chunks_exact(self.len) {
                let mut acc = 0.0f32;
                for (i, &x) in img.iter().enumerate() {
                    acc += x * (i + 1) as f32;
                }
                for c in 0..self.classes {
                    out.push(acc + c as f32);
                }
            }
            Ok(out)
        }
    }

    fn toy_server(shards: usize) -> Server<ToyModel> {
        Server::start(
            vec![("toy".into(), Arc::new(ToyModel { len: 4, classes: 2 }))],
            ServeConfig {
                batcher: BatcherConfig {
                    max_batch: 4,
                    max_delay_us: 200,
                    queue_depth: 64,
                },
                shards,
            },
        )
    }

    #[test]
    fn serves_one_request_end_to_end() {
        let server = toy_server(1);
        let logits = server.infer_one(0, vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        assert_eq!(logits, vec![1.0, 2.0]);
        let stats = server.shutdown().remove(0);
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.latency.count, 1);
    }

    #[test]
    fn rejects_wrong_image_len_and_bad_model_index() {
        let server = toy_server(1);
        assert!(matches!(
            server.submit(0, vec![0.0; 3]),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            server.submit(7, vec![0.0; 4]),
            Err(ServeError::BadRequest(_))
        ));
        assert_eq!(server.stats(0).accepted, 0);
    }

    #[test]
    fn model_lookup_by_name() {
        let server = toy_server(2);
        assert_eq!(server.model_index("toy"), Some(0));
        assert_eq!(server.model_index("nope"), None);
        assert_eq!(server.num_models(), 1);
        assert_eq!(server.model(0).image_len(), 4);
    }

    #[test]
    fn shutdown_is_idempotent_via_drop() {
        let server = toy_server(2);
        let t = server.submit(0, vec![0.5; 4]).unwrap();
        drop(server); // drains + joins; ticket must still resolve
        assert!(t.wait().is_ok());
    }
}
