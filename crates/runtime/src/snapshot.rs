//! Versioned, self-describing, CRC-protected snapshot files with atomic
//! writes and a keep-last-K retention policy.
//!
//! # File layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"EDDSNAP\0"
//! 8       4     format version (u32 LE, currently 1)
//! 12      8     payload length in bytes (u64 LE)
//! 20      4     CRC-32 over the payload (u32 LE)
//! 24      n     payload
//! ```
//!
//! The payload itself is a sequence of named **sections**
//! (`[u16 name_len][name bytes][u64 data_len][data]`), so readers can skip
//! sections they do not understand and future schema versions can add
//! sections without breaking old files. Section *contents* are encoded with
//! [`ByteWriter`]/[`ByteReader`]: fixed-width little-endian integers and
//! `f32` values stored via their IEEE-754 bit patterns, so a round trip is
//! bit-exact (NaN payloads included).
//!
//! # Crash safety
//!
//! [`write_atomic`] writes to a `.tmp` sibling, `fsync`s it, renames it
//! over the destination, then `fsync`s the directory: a crash at any point
//! leaves either the complete old file or the complete new file, never a
//! torn one. Readers verify magic, version, length, and CRC before handing
//! the payload out — every corruption mode (truncation, bit flip, foreign
//! file) surfaces as a [`SnapshotError`], not a panic.

use crate::crc32::crc32;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Leading magic of every snapshot file.
pub const MAGIC: [u8; 8] = *b"EDDSNAP\0";

/// Current snapshot container format version.
pub const FORMAT_VERSION: u32 = 1;

/// Size of the fixed header preceding the payload.
const HEADER_LEN: usize = 8 + 4 + 8 + 4;

/// Refusal threshold for unreasonable payload lengths (a corrupted length
/// field must not trigger a multi-gigabyte allocation).
const MAX_PAYLOAD: u64 = 1 << 32;

/// Everything that can go wrong reading or writing a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's container version is newer than this build understands
    /// (or zero, which no version ever writes).
    UnsupportedVersion(u32),
    /// The file is shorter than its header claims.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// The payload checksum does not match the stored CRC.
    CrcMismatch {
        /// CRC recorded in the header.
        stored: u32,
        /// CRC computed over the payload read from disk.
        computed: u32,
    },
    /// The payload structure is malformed (bad section framing, a field
    /// read past a section end, a count that contradicts the data, …).
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            SnapshotError::Truncated { expected, got } => {
                write!(
                    f,
                    "snapshot truncated: expected {expected} payload bytes, got {got}"
                )
            }
            SnapshotError::CrcMismatch { stored, computed } => write!(
                f,
                "snapshot CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            SnapshotError::Corrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Convenience alias for snapshot results.
pub type Result<T> = std::result::Result<T, SnapshotError>;

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

// ---------------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------------

/// Little-endian byte-stream writer for section contents.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends a length-prefixed `f32` slice.
    pub fn put_f32_slice(&mut self, vs: &[f32]) {
        self.put_u64(vs.len() as u64);
        self.buf.reserve(vs.len() * 4);
        for &v in vs {
            self.put_f32(v);
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends an `i32` via its two's-complement bit pattern.
    pub fn put_i32(&mut self, v: i32) {
        self.put_u32(v as u32);
    }

    /// Appends a length-prefixed raw byte slice.
    pub fn put_bytes(&mut self, vs: &[u8]) {
        self.put_u64(vs.len() as u64);
        self.buf.extend_from_slice(vs);
    }

    /// Appends a length-prefixed `i8` slice (one byte per element).
    pub fn put_i8_slice(&mut self, vs: &[i8]) {
        self.put_u64(vs.len() as u64);
        self.buf.reserve(vs.len());
        for &v in vs {
            self.buf.push(v as u8);
        }
    }

    /// Appends a length-prefixed `i32` slice.
    pub fn put_i32_slice(&mut self, vs: &[i32]) {
        self.put_u64(vs.len() as u64);
        self.buf.reserve(vs.len() * 4);
        for &v in vs {
            self.put_i32(v);
        }
    }
}

/// Little-endian byte-stream reader; every accessor returns an error (never
/// panics) when the stream runs dry.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps `data` for reading from the start.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "field of {n} bytes overruns section ({} left)",
                self.remaining()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and checks it fits a `usize` count bounded by the
    /// bytes remaining (each element occupying at least `elem_size` bytes),
    /// so corrupted counts fail instead of driving huge allocations.
    pub fn get_count(&mut self, elem_size: usize) -> Result<usize> {
        let n = self.get_u64()?;
        let bound = self.remaining() / elem_size.max(1);
        if n as usize > bound {
            return Err(corrupt(format!(
                "count {n} exceeds the {bound} elements the section could hold"
            )));
        }
        Ok(n as usize)
    }

    /// Reads an `f32` from its stored bit pattern.
    pub fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads a length-prefixed `f32` slice written by
    /// [`ByteWriter::put_f32_slice`].
    pub fn get_f32_vec(&mut self) -> Result<Vec<f32>> {
        let n = self.get_count(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f32()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string written by
    /// [`ByteWriter::put_str`].
    pub fn get_str(&mut self) -> Result<String> {
        let n = self.get_count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string is not valid UTF-8"))
    }

    /// Reads an `i32` from its stored bit pattern.
    pub fn get_i32(&mut self) -> Result<i32> {
        Ok(self.get_u32()? as i32)
    }

    /// Reads a length-prefixed raw byte slice written by
    /// [`ByteWriter::put_bytes`].
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.get_count(1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed `i8` slice written by
    /// [`ByteWriter::put_i8_slice`].
    pub fn get_i8_vec(&mut self) -> Result<Vec<i8>> {
        let n = self.get_count(1)?;
        Ok(self.take(n)?.iter().map(|&b| b as i8).collect())
    }

    /// Reads a length-prefixed `i32` slice written by
    /// [`ByteWriter::put_i32_slice`].
    pub fn get_i32_vec(&mut self) -> Result<Vec<i32>> {
        let n = self.get_count(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_i32()?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Sections
// ---------------------------------------------------------------------------

/// Builds a snapshot payload out of named sections.
#[derive(Debug, Default)]
pub struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    /// Creates an empty payload.
    #[must_use]
    pub fn new() -> Self {
        SectionWriter::default()
    }

    /// Appends a section. Names longer than `u16::MAX` bytes are a caller
    /// bug (all names in this workspace are short identifiers).
    ///
    /// # Panics
    ///
    /// Panics if `name` exceeds `u16::MAX` bytes.
    pub fn add(&mut self, name: &str, data: &[u8]) {
        let name_len = u16::try_from(name.len()).expect("section name too long");
        self.buf.extend_from_slice(&name_len.to_le_bytes());
        self.buf.extend_from_slice(name.as_bytes());
        self.buf
            .extend_from_slice(&(data.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(data);
    }

    /// Consumes the writer, returning the payload bytes.
    #[must_use]
    pub fn into_payload(self) -> Vec<u8> {
        self.buf
    }
}

/// Parsed view of a snapshot payload's sections.
#[derive(Debug)]
pub struct Sections<'a> {
    entries: Vec<(&'a str, &'a [u8])>,
}

impl<'a> Sections<'a> {
    /// Parses `payload` into its sections.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] on malformed framing.
    pub fn parse(payload: &'a [u8]) -> Result<Self> {
        let mut entries = Vec::new();
        let mut pos = 0usize;
        while pos < payload.len() {
            if payload.len() - pos < 2 {
                return Err(corrupt("dangling bytes after last section"));
            }
            let name_len = u16::from_le_bytes([payload[pos], payload[pos + 1]]) as usize;
            pos += 2;
            if payload.len() - pos < name_len + 8 {
                return Err(corrupt("section header overruns payload"));
            }
            let name = std::str::from_utf8(&payload[pos..pos + name_len])
                .map_err(|_| corrupt("section name is not valid UTF-8"))?;
            pos += name_len;
            let mut len_bytes = [0u8; 8];
            len_bytes.copy_from_slice(&payload[pos..pos + 8]);
            let data_len = u64::from_le_bytes(len_bytes);
            pos += 8;
            let data_len = usize::try_from(data_len).map_err(|_| corrupt("section too large"))?;
            if payload.len() - pos < data_len {
                return Err(corrupt(format!(
                    "section `{name}` claims {data_len} bytes but only {} remain",
                    payload.len() - pos
                )));
            }
            entries.push((name, &payload[pos..pos + data_len]));
            pos += data_len;
        }
        Ok(Sections { entries })
    }

    /// The data of section `name`, if present (first match wins).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&'a [u8]> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| *d)
    }

    /// Like [`Sections::get`] but a missing section is a corruption error.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] naming the missing section.
    pub fn require(&self, name: &str) -> Result<&'a [u8]> {
        self.get(name)
            .ok_or_else(|| corrupt(format!("required section `{name}` missing")))
    }

    /// Names of all sections, in file order.
    #[must_use]
    pub fn names(&self) -> Vec<&'a str> {
        self.entries.iter().map(|(n, _)| *n).collect()
    }
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

/// Serializes `payload` into the container format (header + CRC) under a
/// caller-chosen magic and version. The snapshot file format uses this with
/// [`MAGIC`]/[`FORMAT_VERSION`]; other artifact kinds (e.g. compiled-model
/// files in `edd-ir`) reuse the same header/CRC layout under their own
/// magic so one set of corruption checks covers every on-disk format.
#[must_use]
pub fn encode_container_as(magic: &[u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Serializes `payload` into the snapshot container format (header + CRC).
#[must_use]
pub fn encode_container(payload: &[u8]) -> Vec<u8> {
    encode_container_as(&MAGIC, FORMAT_VERSION, payload)
}

/// Parses and verifies a container written by [`encode_container_as`] with
/// the given magic, accepting versions `1..=max_version`, and returns the
/// payload.
///
/// # Errors
///
/// Returns the specific [`SnapshotError`] for bad magic, unknown version,
/// truncation, or CRC mismatch.
pub fn decode_container_as(magic: &[u8; 8], max_version: u32, file: &[u8]) -> Result<Vec<u8>> {
    if file.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated {
            expected: HEADER_LEN as u64,
            got: file.len() as u64,
        });
    }
    if file[..8] != magic[..] {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes([file[8], file[9], file[10], file[11]]);
    if version == 0 || version > max_version {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&file[12..20]);
    let payload_len = u64::from_le_bytes(len_bytes);
    if payload_len > MAX_PAYLOAD {
        return Err(corrupt(format!("implausible payload length {payload_len}")));
    }
    let stored_crc = u32::from_le_bytes([file[20], file[21], file[22], file[23]]);
    let body = &file[HEADER_LEN..];
    if (body.len() as u64) != payload_len {
        return Err(SnapshotError::Truncated {
            expected: payload_len,
            got: body.len() as u64,
        });
    }
    let computed = crc32(body);
    if computed != stored_crc {
        return Err(SnapshotError::CrcMismatch {
            stored: stored_crc,
            computed,
        });
    }
    Ok(body.to_vec())
}

/// Parses and verifies a snapshot container, returning the payload.
///
/// # Errors
///
/// Returns the specific [`SnapshotError`] for bad magic, unknown version,
/// truncation, or CRC mismatch.
pub fn decode_container(file: &[u8]) -> Result<Vec<u8>> {
    decode_container_as(&MAGIC, FORMAT_VERSION, file)
}

/// Atomically writes raw `bytes` (already containing whatever framing the
/// caller wants) to `path`: temp file in the same directory, `fsync`,
/// rename, directory `fsync`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_atomic_raw(path: &Path, bytes: &[u8]) -> Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs::create_dir_all(dir)?;
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    // Durability of the rename itself: fsync the containing directory.
    // Failure here is not fatal to correctness (the rename is already
    // atomic), so fall through on platforms/filesystems that refuse it.
    if let Some(dir) = dir {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Atomically writes `payload` (wrapped in the snapshot container format)
/// to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_atomic(path: &Path, payload: &[u8]) -> Result<()> {
    write_atomic_raw(path, &encode_container(payload))
}

/// Reads, verifies, and returns the payload of the snapshot at `path`.
///
/// # Errors
///
/// Propagates I/O errors and every verification failure.
pub fn read(path: &Path) -> Result<Vec<u8>> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode_container(&bytes)
}

// ---------------------------------------------------------------------------
// Retention
// ---------------------------------------------------------------------------

/// The extension snapshots are written with.
pub const SNAPSHOT_EXT: &str = "edds";

/// Lists snapshot files `{prefix}*.edds` in `dir`, sorted by file name
/// ascending (names embed zero-padded epoch numbers, so lexicographic order
/// is chronological order).
///
/// # Errors
///
/// Propagates directory-read errors; a missing directory yields an empty
/// list.
pub fn list_snapshots(dir: &Path, prefix: &str) -> std::io::Result<Vec<PathBuf>> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    for entry in entries {
        let path = entry?.path();
        let is_snap = path.extension().is_some_and(|e| e == SNAPSHOT_EXT)
            && path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(prefix));
        if is_snap {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// The newest snapshot `{prefix}*.edds` in `dir`, if any.
///
/// # Errors
///
/// Propagates directory-read errors.
pub fn latest_snapshot(dir: &Path, prefix: &str) -> std::io::Result<Option<PathBuf>> {
    Ok(list_snapshots(dir, prefix)?.pop())
}

/// Deletes the oldest snapshots beyond the newest `keep`, returning the
/// paths removed. `keep == 0` is treated as 1 (never delete the snapshot
/// just written).
///
/// # Errors
///
/// Propagates directory-read and delete errors.
pub fn prune_snapshots(dir: &Path, prefix: &str, keep: usize) -> std::io::Result<Vec<PathBuf>> {
    let all = list_snapshots(dir, prefix)?;
    let keep = keep.max(1);
    let excess = all.len().saturating_sub(keep);
    let mut removed = Vec::with_capacity(excess);
    for path in &all[..excess] {
        fs::remove_file(path)?;
        removed.push(path.clone());
    }
    Ok(removed)
}

/// Like [`list_snapshots`], but filters by an arbitrary file-name
/// predicate instead of a plain prefix. Needed when several runs share a
/// directory with *overlapping* prefixes (`search-…` vs `search-gpu-…`):
/// a prefix match alone cannot tell one run's snapshots from another's.
///
/// # Errors
///
/// Propagates directory-read errors; a missing directory lists as empty.
pub fn list_snapshots_matching(
    dir: &Path,
    matches: &dyn Fn(&str) -> bool,
) -> std::io::Result<Vec<PathBuf>> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    for entry in entries {
        let path = entry?.path();
        let is_snap = path.extension().is_some_and(|e| e == SNAPSHOT_EXT)
            && path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(matches);
        if is_snap {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Like [`prune_snapshots`], but scoped by a file-name predicate: only
/// files matching it are counted against `keep` or deleted, so co-located
/// snapshot families prune independently.
///
/// # Errors
///
/// Propagates directory-read and delete errors.
pub fn prune_snapshots_matching(
    dir: &Path,
    keep: usize,
    matches: &dyn Fn(&str) -> bool,
) -> std::io::Result<Vec<PathBuf>> {
    let all = list_snapshots_matching(dir, matches)?;
    let keep = keep.max(1);
    let excess = all.len().saturating_sub(keep);
    let mut removed = Vec::with_capacity(excess);
    for path in &all[..excess] {
        fs::remove_file(path)?;
        removed.push(path.clone());
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("edd-runtime-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn container_roundtrip() {
        let payload = b"hello snapshot".to_vec();
        let file = encode_container(&payload);
        assert_eq!(decode_container(&file).unwrap(), payload);
    }

    #[test]
    fn byte_stream_roundtrip_bit_exact() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_f32(f32::from_bits(0x7FC0_1234)); // NaN with payload bits
        w.put_f32_slice(&[0.1, -0.0, f32::INFINITY]);
        w.put_str("Θ/Φ/pf");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_f32().unwrap().to_bits(), 0x7FC0_1234);
        let v = r.get_f32_vec().unwrap();
        assert_eq!(v[0].to_bits(), 0.1f32.to_bits());
        assert_eq!(v[1].to_bits(), (-0.0f32).to_bits());
        assert_eq!(v[2], f32::INFINITY);
        assert_eq!(r.get_str().unwrap(), "Θ/Φ/pf");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn custom_magic_container_roundtrip() {
        const ART: [u8; 8] = *b"EDDTEST\0";
        let payload = b"artifact payload".to_vec();
        let file = encode_container_as(&ART, 3, &payload);
        assert_eq!(decode_container_as(&ART, 3, &file).unwrap(), payload);
        // A snapshot reader must not accept a foreign magic, and vice versa.
        assert!(matches!(
            decode_container(&file),
            Err(SnapshotError::BadMagic)
        ));
        let snap = encode_container(&payload);
        assert!(matches!(
            decode_container_as(&ART, 3, &snap),
            Err(SnapshotError::BadMagic)
        ));
        // Version gate still applies per-format.
        assert!(matches!(
            decode_container_as(&ART, 2, &file),
            Err(SnapshotError::UnsupportedVersion(3))
        ));
    }

    #[test]
    fn raw_slices_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_i32(-123_456_789);
        w.put_bytes(&[0xDE, 0xAD, 0xBE]);
        w.put_i8_slice(&[-128, -1, 0, 1, 127]);
        w.put_i32_slice(&[i32::MIN, -1, 0, i32::MAX]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_i32().unwrap(), -123_456_789);
        assert_eq!(r.get_bytes().unwrap(), vec![0xDE, 0xAD, 0xBE]);
        assert_eq!(r.get_i8_vec().unwrap(), vec![-128, -1, 0, 1, 127]);
        assert_eq!(r.get_i32_vec().unwrap(), vec![i32::MIN, -1, 0, i32::MAX]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_errors_on_overrun() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert!(r.get_u64().is_err());
        // Corrupted count far beyond the data must error, not allocate.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX / 8);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_f32_vec().is_err());
    }

    #[test]
    fn sections_roundtrip_and_lookup() {
        let mut sw = SectionWriter::new();
        sw.add("meta", b"m");
        sw.add("weights", &[1, 2, 3, 4]);
        sw.add("empty", b"");
        let payload = sw.into_payload();
        let s = Sections::parse(&payload).unwrap();
        assert_eq!(s.names(), vec!["meta", "weights", "empty"]);
        assert_eq!(s.get("weights").unwrap(), &[1, 2, 3, 4]);
        assert_eq!(s.get("empty").unwrap(), b"");
        assert!(s.get("absent").is_none());
        assert!(s.require("absent").is_err());
    }

    #[test]
    fn sections_reject_bad_framing() {
        let mut sw = SectionWriter::new();
        sw.add("a", &[9; 16]);
        let mut payload = sw.into_payload();
        payload.truncate(payload.len() - 3);
        assert!(Sections::parse(&payload).is_err());
        assert!(Sections::parse(&[0xFF]).is_err());
    }

    #[test]
    fn decode_rejects_every_header_corruption() {
        let file = encode_container(b"payload bytes here");
        // Magic.
        let mut bad = file.clone();
        bad[0] ^= 0x01;
        assert!(matches!(
            decode_container(&bad),
            Err(SnapshotError::BadMagic)
        ));
        // Version.
        let mut bad = file.clone();
        bad[8] = 0xFF;
        assert!(matches!(
            decode_container(&bad),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
        // Truncation.
        assert!(matches!(
            decode_container(&file[..file.len() - 1]),
            Err(SnapshotError::Truncated { .. })
        ));
        assert!(matches!(
            decode_container(&file[..10]),
            Err(SnapshotError::Truncated { .. })
        ));
        // Payload bit flip.
        let mut bad = file.clone();
        *bad.last_mut().unwrap() ^= 0x80;
        assert!(matches!(
            decode_container(&bad),
            Err(SnapshotError::CrcMismatch { .. })
        ));
        // Stored-CRC bit flip.
        let mut bad = file;
        bad[20] ^= 0x40;
        assert!(matches!(
            decode_container(&bad),
            Err(SnapshotError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn write_atomic_then_read() {
        let dir = temp_dir("atomic");
        let path = dir.join("snap-00000001.edds");
        write_atomic(&path, b"state").unwrap();
        assert_eq!(read(&path).unwrap(), b"state");
        // Overwrite in place.
        write_atomic(&path, b"state2").unwrap();
        assert_eq!(read(&path).unwrap(), b"state2");
        // No temp litter.
        assert_eq!(list_snapshots(&dir, "snap-").unwrap().len(), 1);
        assert!(!dir.join("snap-00000001.edds.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_keeps_last_k() {
        let dir = temp_dir("retention");
        for e in 0..5 {
            write_atomic(&dir.join(format!("snap-{e:08}.edds")), &[e]).unwrap();
        }
        let removed = prune_snapshots(&dir, "snap-", 2).unwrap();
        assert_eq!(removed.len(), 3);
        let left = list_snapshots(&dir, "snap-").unwrap();
        assert_eq!(left.len(), 2);
        assert_eq!(
            latest_snapshot(&dir, "snap-").unwrap().unwrap(),
            dir.join("snap-00000004.edds")
        );
        // keep = 0 never deletes everything.
        let removed = prune_snapshots(&dir, "snap-", 0).unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(list_snapshots(&dir, "snap-").unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_lists_empty() {
        let dir = std::env::temp_dir().join("edd-runtime-test-definitely-absent");
        assert!(list_snapshots(&dir, "snap-").unwrap().is_empty());
        assert!(latest_snapshot(&dir, "snap-").unwrap().is_none());
    }
}
