//! Streaming (pulsed) inference API.
//!
//! Embedded deployments rarely see batch-N classification: the realistic
//! shape is a continuous signal arriving one fixed-size slice at a time,
//! processed under a fixed memory budget. This module defines the
//! contract for that mode — [`StreamModel`], a `push(slice) ->
//! Option<window>` interface over any pulsed executor — plus
//! [`StreamSession`], the instrumented wrapper that feeds `pulse.*`
//! telemetry (push/row/window counters and a carried-state-bytes gauge).
//!
//! The pulsed executor itself lives in `edd-ir` (`PulsedModel`), which
//! implements [`StreamModel`]; this crate only owns the trait so the
//! serving layer and the CLI can stream against any implementation, the
//! same way batch serving goes through [`crate::BatchModel`].

use crate::telemetry;

/// One completed sliding-window classification emitted by a stream.
///
/// Windows are indexed in arrival order; `start_row` is the absolute
/// stream row at which the window began, so `start_row + window_rows - 1`
/// is the row whose arrival completed it (the pulse delay made explicit).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamWindow {
    /// Zero-based index of the window in the stream.
    pub index: u64,
    /// Absolute stream row index of the window's first slice.
    pub start_row: u64,
    /// `[num_classes]` logits, bitwise-equal to the batch engine run on
    /// the same window.
    pub logits: Vec<f32>,
}

impl StreamWindow {
    /// Index of the highest logit (the predicted class).
    #[must_use]
    pub fn argmax(&self) -> usize {
        self.logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map_or(0, |(i, _)| i)
    }
}

/// A model that consumes a signal one fixed-size slice (image row) at a
/// time and emits a [`StreamWindow`] whenever a sliding window completes.
///
/// Contract:
///
/// - `push` accepts exactly [`StreamModel::slice_len`] floats and returns
///   at most one window (window starts are at least one hop apart, and a
///   hop is at least one row, so two windows can never complete on the
///   same pushed row).
/// - Outputs are bitwise-identical to running the batch engine on the
///   same `window_rows`-row windows, whatever `EDD_NUM_THREADS`,
///   `EDD_SIMD`, or `EDD_GEMM` says.
/// - Carried state is bounded: [`StreamModel::state_bytes`] depends on
///   the model geometry and the window/hop sizes, never on how many rows
///   the stream has already delivered.
/// - `save_state`/`restore_state` round-trip the full mid-signal state,
///   so a resumed stream continues bit-for-bit.
pub trait StreamModel {
    /// Error type surfaced by [`StreamModel::push`] and
    /// [`StreamModel::restore_state`].
    type Error: std::fmt::Display;

    /// Floats per pushed slice (channels × width of one input row).
    fn slice_len(&self) -> usize;

    /// Rows per classification window.
    fn window_rows(&self) -> usize;

    /// Rows between consecutive window starts.
    fn hop_rows(&self) -> usize;

    /// Logits per emitted window.
    fn num_classes(&self) -> usize;

    /// Rows of a window that must arrive before its output can exist
    /// (for a window-classifier this is `window_rows - 1`: the pool over
    /// the full window pins the output to the last row).
    fn delay_rows(&self) -> usize;

    /// Feeds one slice; returns the window (if any) completed by it.
    ///
    /// # Errors
    ///
    /// Errors when the slice length is wrong or an internal layer fails.
    fn push(&mut self, slice: &[f32]) -> Result<Option<StreamWindow>, Self::Error>;

    /// Drops all carried state and stream position.
    fn reset(&mut self);

    /// Bytes of carried state currently held (rings, queues, partial
    /// pools) — the number the O(window) memory bound is stated over.
    fn state_bytes(&self) -> usize;

    /// Serializes the full mid-stream state (not the weights).
    fn save_state(&self) -> Vec<u8>;

    /// Restores a state produced by [`StreamModel::save_state`] on a
    /// model built from the same program.
    ///
    /// # Errors
    ///
    /// Errors when the bytes do not decode against this model's geometry.
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), Self::Error>;
}

/// Counters accumulated by a [`StreamSession`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Slices pushed.
    pub pushes: u64,
    /// Windows emitted.
    pub windows: u64,
    /// Largest carried state observed after any push, in bytes.
    pub peak_state_bytes: usize,
}

/// Telemetry-instrumented wrapper around a [`StreamModel`].
///
/// Every push bumps the `pulse.pushes` counter and refreshes the
/// `pulse.state_bytes` gauge; every emitted window bumps `pulse.windows`.
/// The same numbers are kept locally in [`StreamStats`] so tests and the
/// CLI can assert on them without a telemetry sink.
#[derive(Debug)]
pub struct StreamSession<M: StreamModel> {
    model: M,
    stats: StreamStats,
}

impl<M: StreamModel> StreamSession<M> {
    /// Wraps a stream model.
    pub fn new(model: M) -> Self {
        StreamSession {
            model,
            stats: StreamStats::default(),
        }
    }

    /// Feeds one slice through the model, updating counters and gauges.
    ///
    /// # Errors
    ///
    /// Propagates the model's push error.
    pub fn push(&mut self, slice: &[f32]) -> Result<Option<StreamWindow>, M::Error> {
        let out = self.model.push(slice)?;
        self.stats.pushes += 1;
        telemetry::counter("pulse.pushes", 1);
        let state = self.model.state_bytes();
        self.stats.peak_state_bytes = self.stats.peak_state_bytes.max(state);
        telemetry::gauge("pulse.state_bytes", state);
        if let Some(w) = &out {
            self.stats.windows += 1;
            telemetry::counter("pulse.windows", 1);
            telemetry::event(
                "pulse.window",
                &[
                    ("index", telemetry::Value::U64(w.index)),
                    ("start_row", telemetry::Value::U64(w.start_row)),
                    ("state_bytes", telemetry::Value::U64(state as u64)),
                ],
            );
        }
        Ok(out)
    }

    /// Session counters so far.
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the wrapped model (reset, restore).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Unwraps the session.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Serializes the wrapped model's mid-stream state.
    #[must_use]
    pub fn save_state(&self) -> Vec<u8> {
        self.model.save_state()
    }

    /// Restores the wrapped model's mid-stream state.
    ///
    /// # Errors
    ///
    /// Propagates the model's restore error.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), M::Error> {
        self.model.restore_state(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal deterministic stream model: windows of 3 rows, hop 2,
    /// "logits" are the running sums of each pushed slice element.
    struct SumModel {
        rows: Vec<Vec<f32>>,
        t: u64,
        emitted: u64,
    }

    impl SumModel {
        fn new() -> Self {
            SumModel {
                rows: Vec::new(),
                t: 0,
                emitted: 0,
            }
        }
    }

    impl StreamModel for SumModel {
        type Error = String;

        fn slice_len(&self) -> usize {
            2
        }
        fn window_rows(&self) -> usize {
            3
        }
        fn hop_rows(&self) -> usize {
            2
        }
        fn num_classes(&self) -> usize {
            2
        }
        fn delay_rows(&self) -> usize {
            2
        }

        fn push(&mut self, slice: &[f32]) -> Result<Option<StreamWindow>, String> {
            if slice.len() != 2 {
                return Err(format!("expected 2 floats, got {}", slice.len()));
            }
            self.rows.push(slice.to_vec());
            self.t += 1;
            // Keep only what a window can still read (bounded state).
            while self.rows.len() > 3 {
                self.rows.remove(0);
            }
            let start = self.emitted * 2;
            if self.t >= start + 3 {
                let first = self.rows.len() - 3;
                let mut logits = vec![0.0f32; 2];
                for r in &self.rows[first..] {
                    logits[0] += r[0];
                    logits[1] += r[1];
                }
                let w = StreamWindow {
                    index: self.emitted,
                    start_row: start,
                    logits,
                };
                self.emitted += 1;
                return Ok(Some(w));
            }
            Ok(None)
        }

        fn reset(&mut self) {
            self.rows.clear();
            self.t = 0;
            self.emitted = 0;
        }

        fn state_bytes(&self) -> usize {
            self.rows.len() * 2 * 4
        }

        fn save_state(&self) -> Vec<u8> {
            let mut w = crate::ByteWriter::new();
            w.put_u64(self.t);
            w.put_u64(self.emitted);
            w.put_u32(self.rows.len() as u32);
            for r in &self.rows {
                w.put_f32_slice(r);
            }
            w.into_bytes()
        }

        fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
            let mut r = crate::ByteReader::new(bytes);
            self.t = r.get_u64().map_err(|e| e.to_string())?;
            self.emitted = r.get_u64().map_err(|e| e.to_string())?;
            let n = r.get_u32().map_err(|e| e.to_string())? as usize;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(r.get_f32_vec().map_err(|e| e.to_string())?);
            }
            self.rows = rows;
            Ok(())
        }
    }

    #[test]
    fn session_counts_pushes_and_windows() {
        let mut s = StreamSession::new(SumModel::new());
        let mut windows = Vec::new();
        for i in 0..9 {
            let slice = [i as f32, -(i as f32)];
            if let Some(w) = s.push(&slice).unwrap() {
                windows.push(w);
            }
        }
        // Windows start at rows 0, 2, 4, 6 and complete at 2, 4, 6, 8.
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[0].index, 0);
        assert_eq!(windows[1].start_row, 2);
        let st = s.stats();
        assert_eq!(st.pushes, 9);
        assert_eq!(st.windows, 4);
        assert!(st.peak_state_bytes > 0);
        // Bounded: peak never exceeds one window of rows.
        assert!(st.peak_state_bytes <= 3 * 2 * 4);
    }

    #[test]
    fn save_restore_resumes_bitwise() {
        let rows: Vec<[f32; 2]> = (0..11).map(|i| [i as f32 * 0.5, 1.0 - i as f32]).collect();
        let mut full = StreamSession::new(SumModel::new());
        let mut want = Vec::new();
        for r in &rows {
            if let Some(w) = full.push(r).unwrap() {
                want.push(w);
            }
        }
        // Run half, snapshot, restore into a fresh model, run the rest.
        let mut a = StreamSession::new(SumModel::new());
        let mut got = Vec::new();
        for r in &rows[..5] {
            if let Some(w) = a.push(r).unwrap() {
                got.push(w);
            }
        }
        let blob = a.save_state();
        let mut b = StreamSession::new(SumModel::new());
        b.restore_state(&blob).unwrap();
        for r in &rows[5..] {
            if let Some(w) = b.push(r).unwrap() {
                got.push(w);
            }
        }
        assert_eq!(want, got);
    }

    #[test]
    fn push_error_propagates() {
        let mut s = StreamSession::new(SumModel::new());
        assert!(s.push(&[1.0]).is_err());
        assert_eq!(s.stats().pushes, 0);
    }

    #[test]
    fn argmax_picks_largest_logit() {
        let w = StreamWindow {
            index: 0,
            start_row: 0,
            logits: vec![0.25, -1.0, 0.75],
        };
        assert_eq!(w.argmax(), 2);
    }
}
