//! Structured telemetry: counters, gauges, events, and hierarchical span
//! timers, routed through a pluggable [`Sink`].
//!
//! The design goal is that *disabled* telemetry costs nothing measurable on
//! hot paths: the default global sink is [`NoopSink`], whose
//! [`Sink::enabled`] returns `false`, and every emission helper checks that
//! flag before formatting a single field. Span timers skip even the clock
//! read when the sink is disabled.
//!
//! Backends:
//! - [`NoopSink`] — the default; drops everything.
//! - [`JsonlSink`] — one JSON object per line to a file, suitable for
//!   `jq`/pandas post-processing (`--trace-out` in the CLI).
//! - [`CsvSink`] — accumulates one named event stream into CSV rows; used
//!   to keep `history_csv()` output byte-identical while the search loop
//!   emits through the sink API.
//!
//! Event names are `.`-separated (`search.epoch`, `kernel.pool.jobs`);
//! span paths are `/`-separated and nest per thread
//! (`search/epoch/weight_step`).

use std::cell::RefCell;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Percentile histogram
// ---------------------------------------------------------------------------

/// Exact buckets for values below this; log-linear buckets above.
const HIST_LINEAR_MAX: u64 = 4096;
/// Sub-buckets per power of two in the log-linear range.
const HIST_SUB: usize = 16;
/// First exponent of the log-linear range (`2^12 == HIST_LINEAR_MAX`).
const HIST_FIRST_EXP: u32 = 12;
/// Total buckets: 4096 exact + 16 per octave for exponents 12..=63.
const HIST_BUCKETS: usize = HIST_LINEAR_MAX as usize + (64 - HIST_FIRST_EXP as usize) * HIST_SUB;

/// Lock-free fixed-memory value histogram with percentile queries,
/// designed for latency tracking in microseconds.
///
/// Values `< 4096` land in exact 1-unit buckets, so percentiles over
/// typical serve latencies are exact; larger values use log-linear
/// buckets (16 per power of two, ≤ 6.25 % relative error), reported as
/// the bucket's lower bound. Recording is a single relaxed atomic
/// increment, safe from any thread.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(HIST_BUCKETS);
        buckets.resize_with(HIST_BUCKETS, || AtomicU64::new(0));
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < HIST_LINEAR_MAX {
            value as usize
        } else {
            let exp = 63 - value.leading_zeros(); // >= HIST_FIRST_EXP
            let sub = ((value >> (exp - 4)) & 0xF) as usize;
            HIST_LINEAR_MAX as usize + (exp - HIST_FIRST_EXP) as usize * HIST_SUB + sub
        }
    }

    /// Lower bound of the bucket at `index` — the value percentiles report.
    fn bucket_floor(index: usize) -> u64 {
        if index < HIST_LINEAR_MAX as usize {
            index as u64
        } else {
            let rel = index - HIST_LINEAR_MAX as usize;
            let exp = HIST_FIRST_EXP + (rel / HIST_SUB) as u32;
            let sub = (rel % HIST_SUB) as u64;
            (1u64 << exp) + (sub << (exp - 4))
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Largest recorded observation (exact, not bucketed); 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Nearest-rank percentile: the smallest recorded bucket value `v`
    /// such that at least `ceil(p/100 · count)` observations are `<= v`.
    /// Returns 0 when empty. `p` is clamped to `(0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0 * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_floor(i);
            }
        }
        self.max()
    }
}

// ---------------------------------------------------------------------------
// Values and events
// ---------------------------------------------------------------------------

/// A telemetry field value.
///
/// `F32` exists separately from `F64` because the two types *display*
/// differently (`0.1f32 as f64` prints `0.10000000149011612`); sinks that
/// reproduce legacy text output (the history CSV) must format the original
/// width.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Single-precision float (formatted as `f32`).
    F32(f32),
    /// Double-precision float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! value_from {
    ($($ty:ty => $variant:ident via $conv:ty),* $(,)?) => {
        $(impl From<$ty> for Value {
            fn from(v: $ty) -> Self { Value::$variant(v as $conv) }
        })*
    };
}

value_from! {
    u64 => U64 via u64,
    u32 => U64 via u64,
    usize => U64 via u64,
    i64 => I64 via i64,
    i32 => I64 via i64,
    f32 => F32 via f32,
    f64 => F64 via f64,
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// What kind of measurement an [`Event`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Monotonically accumulating count (e.g. jobs dispatched).
    Counter,
    /// Point-in-time level (e.g. arena high-water bytes).
    Gauge,
    /// A structured record with named fields (e.g. one epoch's metrics).
    Event,
    /// A completed timed span; `value` is the duration in microseconds.
    Span,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
            EventKind::Event => "event",
            EventKind::Span => "span",
        }
    }
}

/// One telemetry record, passed by reference to [`Sink::emit`].
#[derive(Debug)]
pub struct Event<'a> {
    /// Record kind.
    pub kind: EventKind,
    /// Dotted name (`search.epoch`) or, for spans, the `/`-joined path.
    pub name: &'a str,
    /// The primary measurement, when the kind has one.
    pub value: Option<Value>,
    /// Additional named fields.
    pub fields: &'a [(&'a str, Value)],
}

// ---------------------------------------------------------------------------
// Sink trait and backends
// ---------------------------------------------------------------------------

/// Destination for telemetry records. Implementations must be cheap to call
/// concurrently (the worker pool and trainers emit from multiple threads).
pub trait Sink: Send + Sync {
    /// Whether emission helpers should bother constructing events at all.
    /// The no-op backend returns `false`, letting instrumented hot paths
    /// skip field formatting entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn emit(&self, event: &Event<'_>);

    /// Flushes buffered output, if any.
    fn flush(&self) {}
}

/// Discards everything; reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&self, _event: &Event<'_>) {}
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn json_value_into(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        // JSON has no NaN/Infinity literals; encode non-finite floats as
        // strings so the line stays parseable.
        Value::F32(x) if !x.is_finite() => {
            let _ = write!(out, "\"{x}\"");
        }
        Value::F32(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) if !x.is_finite() => {
            let _ = write!(out, "\"{x}\"");
        }
        Value::F64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => {
            out.push('"');
            json_escape_into(out, s);
            out.push('"');
        }
    }
}

/// Writes one JSON object per event to a file, e.g.:
///
/// ```json
/// {"ts_us":1234,"kind":"event","name":"search.epoch","epoch":3,"tau":4.1}
/// ```
///
/// `ts_us` is microseconds since the sink was created (monotonic clock),
/// so traces are self-relative and reproducible-run diffs stay small.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
    epoch: Instant,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
            epoch: Instant::now(),
        })
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event<'_>) {
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"ts_us\":{},\"kind\":\"{}\",\"name\":\"",
            self.epoch.elapsed().as_micros(),
            event.kind.as_str()
        );
        json_escape_into(&mut line, event.name);
        line.push('"');
        if let Some(v) = &event.value {
            line.push_str(",\"value\":");
            json_value_into(&mut line, v);
        }
        for (k, v) in event.fields {
            line.push_str(",\"");
            json_escape_into(&mut line, k);
            line.push_str("\":");
            json_value_into(&mut line, v);
        }
        line.push_str("}\n");
        let mut out = self
            .out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = out.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let mut out = self
            .out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = out.flush();
    }
}

/// Accumulates one event stream (`event_name`) into in-memory CSV rows.
///
/// Each matching event contributes one row; each configured column is
/// looked up among the event's fields by name (missing fields render
/// empty). Used as the adapter that keeps the legacy history CSV output
/// byte-identical.
#[derive(Debug)]
pub struct CsvSink {
    event_name: String,
    columns: Vec<String>,
    rows: Mutex<String>,
}

impl CsvSink {
    /// Collects events named `event_name` into rows of `columns`.
    #[must_use]
    pub fn new(event_name: &str, columns: &[&str]) -> Self {
        CsvSink {
            event_name: event_name.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Mutex::new(String::new()),
        }
    }

    /// Header line plus all accumulated rows, `\n`-terminated.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        out.push_str(
            &self
                .rows
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        out
    }
}

impl Sink for CsvSink {
    fn emit(&self, event: &Event<'_>) {
        if event.kind != EventKind::Event || event.name != self.event_name {
            return;
        }
        let mut row = String::with_capacity(64);
        for (i, col) in self.columns.iter().enumerate() {
            if i > 0 {
                row.push(',');
            }
            if let Some((_, v)) = event.fields.iter().find(|(k, _)| k == col) {
                let _ = write!(row, "{v}");
            }
        }
        row.push('\n');
        self.rows
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_str(&row);
    }
}

/// Broadcasts every event to each inner sink; enabled if any inner sink is.
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl FanoutSink {
    /// Fans out to `sinks`.
    #[must_use]
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl std::fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl Sink for FanoutSink {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn emit(&self, event: &Event<'_>) {
        for s in &self.sinks {
            s.emit(event);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

// ---------------------------------------------------------------------------
// Global sink registry
// ---------------------------------------------------------------------------

fn registry() -> &'static RwLock<Arc<dyn Sink>> {
    static REGISTRY: OnceLock<RwLock<Arc<dyn Sink>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Arc::new(NoopSink)))
}

/// Installs `sink` as the process-global telemetry destination.
pub fn set_global(sink: Arc<dyn Sink>) {
    *registry()
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = sink;
}

/// Resets the global sink to [`NoopSink`].
pub fn clear_global() {
    set_global(Arc::new(NoopSink));
}

/// The current global sink.
#[must_use]
pub fn global() -> Arc<dyn Sink> {
    registry()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Whether the global sink is accepting events. Instrumented hot paths
/// check this before building field lists.
#[must_use]
pub fn enabled() -> bool {
    global().enabled()
}

/// Emits a counter increment through the global sink.
pub fn counter(name: &str, delta: u64) {
    let sink = global();
    if sink.enabled() {
        sink.emit(&Event {
            kind: EventKind::Counter,
            name,
            value: Some(Value::U64(delta)),
            fields: &[],
        });
    }
}

/// Emits a gauge level through the global sink.
pub fn gauge(name: &str, value: impl Into<Value>) {
    let sink = global();
    if sink.enabled() {
        sink.emit(&Event {
            kind: EventKind::Gauge,
            name,
            value: Some(value.into()),
            fields: &[],
        });
    }
}

/// Emits a structured event with named fields through the global sink.
pub fn event(name: &str, fields: &[(&str, Value)]) {
    let sink = global();
    if sink.enabled() {
        sink.emit(&Event {
            kind: EventKind::Event,
            name,
            value: None,
            fields,
        });
    }
}

// ---------------------------------------------------------------------------
// Hierarchical span timers
// ---------------------------------------------------------------------------

thread_local! {
    /// Per-thread stack of active span names, joined into `a/b/c` paths.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII timer: measures from construction to drop and emits an
/// [`EventKind::Span`] record whose name is the `/`-joined path of all
/// spans active on this thread (`search/epoch/weight_step`).
///
/// When the global sink is disabled at construction time the span is
/// inert — no clock read, no stack push.
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
}

impl Span {
    /// Opens a span named `name` (a `'static` label, e.g. `"weight_step"`).
    #[must_use]
    pub fn enter(name: &'static str) -> Self {
        if !enabled() {
            return Span { start: None };
        }
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        Span {
            start: Some(Instant::now()),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed_us = start.elapsed().as_micros() as u64;
        let path = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        let sink = global();
        if sink.enabled() {
            sink.emit(&Event {
                kind: EventKind::Span,
                name: &path,
                value: Some(Value::U64(elapsed_us)),
                fields: &[],
            });
        }
    }
}

/// Opens a [`Span`]; sugar for `Span::enter(name)`.
#[must_use]
pub fn span(name: &'static str) -> Span {
    Span::enter(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test sink that records event lines.
    #[derive(Debug, Default)]
    struct RecordingSink {
        lines: Mutex<Vec<String>>,
    }

    impl Sink for RecordingSink {
        fn emit(&self, event: &Event<'_>) {
            let fields: Vec<String> = event
                .fields
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            self.lines.lock().unwrap().push(format!(
                "{}:{}:{}:{}",
                event.kind.as_str(),
                event.name,
                event
                    .value
                    .as_ref()
                    .map(ToString::to_string)
                    .unwrap_or_default(),
                fields.join(",")
            ));
        }
    }

    #[test]
    fn f32_and_f64_display_differently() {
        // The reason Value::F32 exists: formatting width must follow the
        // source type for byte-identical legacy CSV output.
        assert_eq!(Value::F32(0.1).to_string(), "0.1");
        assert_eq!(
            Value::F64(f64::from(0.1f32)).to_string(),
            "0.10000000149011612"
        );
    }

    #[test]
    fn csv_sink_matches_manual_format() {
        let sink = CsvSink::new("search.epoch", &["epoch", "loss", "tau"]);
        sink.emit(&Event {
            kind: EventKind::Event,
            name: "search.epoch",
            value: None,
            fields: &[
                ("epoch", Value::U64(0)),
                ("loss", Value::F32(0.25)),
                ("tau", Value::F32(5.0)),
                ("extra", Value::U64(9)), // not a column: ignored
            ],
        });
        // Wrong name / wrong kind: ignored.
        sink.emit(&Event {
            kind: EventKind::Event,
            name: "other",
            value: None,
            fields: &[("epoch", Value::U64(1))],
        });
        sink.emit(&Event {
            kind: EventKind::Gauge,
            name: "search.epoch",
            value: Some(Value::U64(1)),
            fields: &[],
        });
        assert_eq!(sink.to_csv(), "epoch,loss,tau\n0,0.25,5\n");
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join(format!(
            "edd-runtime-test-{}-trace.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&Event {
            kind: EventKind::Event,
            name: "search.epoch",
            value: None,
            fields: &[
                ("epoch", Value::U64(3)),
                ("msg", Value::Str("quote \" and \\ and \n".into())),
                ("nan", Value::F32(f32::NAN)),
                ("ok", Value::Bool(true)),
            ],
        });
        sink.emit(&Event {
            kind: EventKind::Span,
            name: "search/epoch",
            value: Some(Value::U64(42)),
            fields: &[],
        });
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            // The vendored serde_json has no dynamic Value type, so check
            // the framing directly: one object per line, ts first.
            assert!(line.starts_with("{\"ts_us\":"), "line: {line}");
            assert!(line.ends_with('}'), "line: {line}");
        }
        assert!(lines[0].contains("\"kind\":\"event\""));
        assert!(lines[0].contains("\"name\":\"search.epoch\""));
        assert!(lines[0].contains("\"epoch\":3"));
        // Escaping: quote, backslash, newline.
        assert!(lines[0].contains("\"msg\":\"quote \\\" and \\\\ and \\n\""));
        // Non-finite floats are stringified, keeping the line parseable.
        assert!(lines[0].contains("\"nan\":\"NaN\""));
        assert!(lines[0].contains("\"ok\":true"));
        assert!(lines[1].contains("\"kind\":\"span\""));
        assert!(lines[1].contains("\"name\":\"search/epoch\""));
        assert!(lines[1].contains("\"value\":42"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn spans_nest_into_paths_and_disabled_spans_are_inert() {
        // Global-registry test: runs single-threaded within this test, and
        // other tests here do not rely on the global sink's contents.
        let rec = Arc::new(RecordingSink::default());
        set_global(rec.clone());
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        clear_global();
        {
            // Disabled: must not emit or touch the stack.
            let _ghost = span("ghost");
        }
        let lines = rec.lines.lock().unwrap().clone();
        assert_eq!(lines.len(), 2, "inner then outer");
        assert!(lines[0].starts_with("span:outer/inner:"));
        assert!(lines[1].starts_with("span:outer:"));
        // Re-enable: stack must be balanced (ghost did not leak a frame).
        let rec2 = Arc::new(RecordingSink::default());
        set_global(rec2.clone());
        {
            let _s = span("solo");
        }
        clear_global();
        let lines2 = rec2.lines.lock().unwrap().clone();
        assert_eq!(lines2.len(), 1);
        assert!(lines2[0].starts_with("span:solo:"));
    }

    #[test]
    fn fanout_broadcasts_and_or_enables() {
        let rec = Arc::new(RecordingSink::default());
        let fan = FanoutSink::new(vec![Arc::new(NoopSink), rec.clone()]);
        assert!(fan.enabled());
        fan.emit(&Event {
            kind: EventKind::Counter,
            name: "c",
            value: Some(Value::U64(1)),
            fields: &[],
        });
        assert_eq!(rec.lines.lock().unwrap().len(), 1);
        let all_noop = FanoutSink::new(vec![Arc::new(NoopSink)]);
        assert!(!all_noop.enabled());
    }
}
