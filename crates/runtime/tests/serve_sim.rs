//! Deterministic simulation suite for the dynamic-batching state machine.
//!
//! The [`Batcher`] is pure and clock-injected — `tick(now, events)` is its
//! only input — so these tests drive it through scripted arrival traces
//! (burst, trickle, deadline-straddling, queue-full, drain) and assert the
//! *exact* batch compositions, flush reasons, and rejection ordering. No
//! real time, no sleeps, no threads: the whole suite is a pure function of
//! the scripts and runs in well under a second.

use edd_runtime::serve::{
    BatchAction, BatchEvent, Batcher, BatcherConfig, FlushReason, RejectReason,
};
use proptest::prelude::*;

fn cfg(max_batch: usize, max_delay_us: u64, queue_depth: usize) -> BatcherConfig {
    BatcherConfig {
        max_batch,
        max_delay_us,
        queue_depth,
    }
}

/// Shorthand: tick with a list of arriving request ids.
fn arrive(b: &mut Batcher<usize>, now: u64, ids: &[usize]) -> Vec<BatchAction<usize>> {
    b.tick(now, ids.iter().map(|&i| BatchEvent::Arrive(i)))
}

/// Asserts an action is a flush with exactly `items` for `reason`.
fn assert_flush(action: &BatchAction<usize>, reason: FlushReason, items: &[usize]) {
    match action {
        BatchAction::Flush {
            reason: r,
            items: got,
        } => {
            assert_eq!(*r, reason, "flush reason");
            assert_eq!(got, items, "flush composition");
        }
        BatchAction::Reject { .. } => panic!("expected flush of {items:?}, got {action:?}"),
    }
}

/// Asserts an action rejects exactly `item` for `reason`.
fn assert_reject(action: &BatchAction<usize>, reason: RejectReason, item: usize) {
    match action {
        BatchAction::Reject {
            item: got,
            reason: r,
        } => {
            assert_eq!(*r, reason, "reject reason");
            assert_eq!(*got, item, "rejected item");
        }
        BatchAction::Flush { .. } => panic!("expected reject of {item}, got {action:?}"),
    }
}

#[test]
fn burst_splits_into_full_batches_then_deadline_flushes_the_tail() {
    let mut b = Batcher::new(cfg(4, 250, 64));
    // 10 requests land in one tick at t=0: two Full batches fire
    // immediately, the 2-request tail waits for its deadline.
    let actions = arrive(&mut b, 0, &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    assert_eq!(actions.len(), 2);
    assert_flush(&actions[0], FlushReason::Full, &[0, 1, 2, 3]);
    assert_flush(&actions[1], FlushReason::Full, &[4, 5, 6, 7]);
    assert_eq!(b.len(), 2);
    assert_eq!(b.next_deadline(), Some(250));

    // Nothing happens before the deadline...
    assert!(b.tick(249, std::iter::empty()).is_empty());
    assert_eq!(b.len(), 2);

    // ...and at t=250 the tail flushes as one deadline batch.
    let actions = b.tick(250, std::iter::empty());
    assert_eq!(actions.len(), 1);
    assert_flush(&actions[0], FlushReason::Deadline, &[8, 9]);
    assert!(b.is_empty());
    assert_eq!(b.next_deadline(), None);
}

#[test]
fn trickle_coalesces_under_one_deadline() {
    let mut b = Batcher::new(cfg(8, 250, 64));
    // Arrivals at t=0, 100, 200 — all before request 0's t=250 deadline.
    assert!(arrive(&mut b, 0, &[0]).is_empty());
    assert!(arrive(&mut b, 100, &[1]).is_empty());
    assert!(arrive(&mut b, 200, &[2]).is_empty());
    assert_eq!(b.len(), 3);
    // The deadline is set by the *oldest* request, not the newest.
    assert_eq!(b.next_deadline(), Some(250));
    // All three ride the same deadline flush.
    let actions = b.tick(250, std::iter::empty());
    assert_eq!(actions.len(), 1);
    assert_flush(&actions[0], FlushReason::Deadline, &[0, 1, 2]);
}

#[test]
fn deadline_straddler_rides_along_with_the_expired_request() {
    let mut b = Batcher::new(cfg(8, 250, 64));
    assert!(arrive(&mut b, 0, &[0]).is_empty());
    // Request 1 arrives just before request 0 expires; its own deadline
    // (t=490) is far away, but it rides request 0's flush rather than
    // leaving a 1-request batch behind.
    assert!(arrive(&mut b, 240, &[1]).is_empty());
    let actions = b.tick(250, std::iter::empty());
    assert_eq!(actions.len(), 1);
    assert_flush(&actions[0], FlushReason::Deadline, &[0, 1]);
    assert!(b.is_empty());
}

#[test]
fn arrival_tick_can_both_reject_and_deadline_flush() {
    let mut b = Batcher::new(cfg(8, 100, 2));
    assert!(arrive(&mut b, 0, &[0, 1]).is_empty());
    // At t=100: request 2 arrives while the queue is still full (depth 2),
    // so it is rejected *before* the deadline check flushes 0 and 1 —
    // admission is evaluated at arrival time, in event order.
    let actions = arrive(&mut b, 100, &[2]);
    assert_eq!(actions.len(), 2);
    assert_reject(&actions[0], RejectReason::QueueFull, 2);
    assert_flush(&actions[1], FlushReason::Deadline, &[0, 1]);
}

#[test]
fn queue_full_rejects_in_arrival_order() {
    let mut b = Batcher::new(cfg(10, 1_000, 3));
    // Depth 3, max_batch 10: requests 3 and 4 find the queue full and are
    // rejected in their arrival order; 0-2 stay pending.
    let actions = arrive(&mut b, 0, &[0, 1, 2, 3, 4]);
    assert_eq!(actions.len(), 2);
    assert_reject(&actions[0], RejectReason::QueueFull, 3);
    assert_reject(&actions[1], RejectReason::QueueFull, 4);
    assert_eq!(b.len(), 3);
    // A flush frees capacity: the next arrival is admitted again.
    let actions = b.tick(1_000, std::iter::empty());
    assert_flush(&actions[0], FlushReason::Deadline, &[0, 1, 2]);
    assert!(arrive(&mut b, 1_001, &[5]).is_empty());
    assert_eq!(b.len(), 1);
}

#[test]
fn zero_delay_coalesces_same_tick_arrivals_only() {
    let mut b = Batcher::new(cfg(8, 0, 64));
    // max_delay 0: a same-tick burst still coalesces (deadlines are
    // checked after all events), but nothing lingers past its tick.
    let actions = arrive(&mut b, 5, &[0, 1, 2]);
    assert_eq!(actions.len(), 1);
    assert_flush(&actions[0], FlushReason::Deadline, &[0, 1, 2]);
    assert!(b.is_empty());
}

#[test]
fn drain_flushes_everything_and_rejects_later_arrivals() {
    let mut b = Batcher::new(cfg(2, 10_000, 64));
    let actions = arrive(&mut b, 0, &[0, 1, 2, 3, 4]);
    assert_eq!(actions.len(), 2); // two Full batches, 4 stays pending
    assert_eq!(b.len(), 1);
    assert!(!b.is_draining());

    // Drain: the 1-request tail flushes even though its deadline is far
    // away, and the machine stops admitting.
    let actions = b.tick(1, [BatchEvent::Drain]);
    assert_eq!(actions.len(), 1);
    assert_flush(&actions[0], FlushReason::Drain, &[4]);
    assert!(b.is_draining());
    assert!(b.is_empty());

    let actions = arrive(&mut b, 2, &[5]);
    assert_eq!(actions.len(), 1);
    assert_reject(&actions[0], RejectReason::ShuttingDown, 5);
}

#[test]
fn drain_splits_oversized_backlog_into_max_batch_chunks() {
    // A 5-deep backlog with max_batch 2 drains as 2 + 2 + 1. Use a drain
    // in the same tick as the arrivals so Full never fires first: the
    // Drain event lands before the arrivals are deadline-checked.
    let mut b = Batcher::new(cfg(2, 10_000, 64));
    let events = [
        BatchEvent::Arrive(0),
        BatchEvent::Arrive(1), // triggers a Full flush of [0, 1]
        BatchEvent::Arrive(2),
        BatchEvent::Arrive(3), // triggers a Full flush of [2, 3]
        BatchEvent::Arrive(4),
        BatchEvent::Drain, // flushes the [4] tail
    ];
    let actions = b.tick(0, events);
    assert_eq!(actions.len(), 3);
    assert_flush(&actions[0], FlushReason::Full, &[0, 1]);
    assert_flush(&actions[1], FlushReason::Full, &[2, 3]);
    assert_flush(&actions[2], FlushReason::Drain, &[4]);
    assert!(b.is_empty() && b.is_draining());

    // With max_batch 4 the same backlog drains as one batch.
    let mut b = Batcher::new(cfg(4, 10_000, 64));
    assert!(arrive(&mut b, 0, &[0, 1, 2]).is_empty());
    let actions = b.tick(0, [BatchEvent::Drain]);
    assert_eq!(actions.len(), 1);
    assert_flush(&actions[0], FlushReason::Drain, &[0, 1, 2]);
}

#[test]
fn degenerate_configs_are_clamped() {
    // max_batch 0 and queue_depth 0 clamp to 1 instead of deadlocking.
    let mut b = Batcher::new(cfg(0, 100, 0));
    assert_eq!(b.config().max_batch, 1);
    assert_eq!(b.config().queue_depth, 1);
    let actions = arrive(&mut b, 0, &[0]);
    assert_eq!(actions.len(), 1);
    assert_flush(&actions[0], FlushReason::Full, &[0]);
}

#[test]
fn identical_scripts_produce_identical_action_streams() {
    // Determinism witness: the full action stream of a mixed script is
    // reproducible run to run (the machine holds no hidden state).
    let script = |b: &mut Batcher<usize>| -> Vec<String> {
        let mut log = Vec::new();
        for (now, ids) in [(0u64, vec![0, 1, 2]), (50, vec![3]), (400, vec![4, 5])] {
            for a in b.tick(now, ids.into_iter().map(BatchEvent::Arrive)) {
                log.push(format!("{a:?}"));
            }
        }
        for a in b.tick(500, [BatchEvent::Drain]) {
            log.push(format!("{a:?}"));
        }
        log
    };
    let mut b1 = Batcher::new(cfg(3, 300, 4));
    let mut b2 = Batcher::new(cfg(3, 300, 4));
    assert_eq!(script(&mut b1), script(&mut b2));
}

// ---------------------------------------------------------------------------
// Property tests: conservation, FIFO, and bounds over random traces
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any arrival trace conserves requests (each id ends in exactly one
    /// flush or one reject), flushes in FIFO order, respects `max_batch`,
    /// and only rejects when the queue is at depth.
    #[test]
    fn random_traces_conserve_requests(
        max_batch in 1usize..6,
        max_delay_us in 0u64..500,
        queue_depth in 1usize..12,
        // (time-delta, burst-size) pairs: arrival schedule.
        schedule in prop::collection::vec((0u64..300, 1usize..5), 1..20),
    ) {
        let mut b = Batcher::new(cfg(max_batch, max_delay_us, queue_depth));
        let mut now = 0u64;
        let mut next_id = 0usize;
        let mut flushed: Vec<usize> = Vec::new();
        let mut rejected: Vec<usize> = Vec::new();
        let mut record = |actions: Vec<BatchAction<usize>>| -> Result<(), TestCaseError> {
            for action in actions {
                match action {
                    BatchAction::Flush { items, .. } => {
                        prop_assert!(!items.is_empty(), "empty flush");
                        prop_assert!(items.len() <= max_batch.max(1), "oversized flush");
                        flushed.extend(items);
                    }
                    BatchAction::Reject { item, .. } => rejected.push(item),
                }
            }
            Ok(())
        };
        for (dt, burst) in &schedule {
            now += dt;
            let ids: Vec<usize> = (0..*burst).map(|_| { let i = next_id; next_id += 1; i }).collect();
            let pending_before = b.len();
            let actions = b.tick(now, ids.into_iter().map(BatchEvent::Arrive));
            // Rejects can only happen if the queue could fill during this
            // tick: pending before + burst must exceed capacity.
            let rejects_this_tick = actions.iter()
                .filter(|a| matches!(a, BatchAction::Reject { .. }))
                .count();
            if rejects_this_tick > 0 {
                prop_assert!(
                    pending_before + burst > queue_depth.max(1),
                    "rejected with spare capacity: {pending_before} pending, burst {burst}, depth {queue_depth}"
                );
            }
            record(actions)?;
        }
        // Drain and account for everything.
        record(b.tick(now + 1_000_000, [BatchEvent::Drain]))?;
        prop_assert!(b.is_empty());
        prop_assert_eq!(flushed.len() + rejected.len(), next_id, "requests lost or duplicated");
        // FIFO: flushed ids appear in strictly increasing order.
        for w in flushed.windows(2) {
            prop_assert!(w[0] < w[1], "flush order violated: {} before {}", w[0], w[1]);
        }
        // Exactly-once: no id in both sets, no duplicates.
        let mut all: Vec<usize> = flushed.iter().chain(rejected.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), next_id, "duplicate or missing ids");
    }

    /// Deadline guarantee: after a tick at time `t`, no pending request's
    /// deadline is `<= t` (nothing waits past max_delay).
    #[test]
    fn no_request_overstays_its_deadline(
        max_batch in 1usize..6,
        max_delay_us in 0u64..400,
        schedule in prop::collection::vec(0u64..200, 1..30),
    ) {
        let mut b = Batcher::new(cfg(max_batch, max_delay_us, 1024));
        let mut now = 0u64;
        for (i, dt) in schedule.iter().enumerate() {
            now += dt;
            let _ = b.tick(now, [BatchEvent::Arrive(i)]);
            if let Some(d) = b.next_deadline() {
                prop_assert!(d > now, "pending deadline {d} expired at {now}");
            }
        }
    }
}
