//! Concurrency stress and property tests for the multi-tenant serve path:
//! real threads, real shards, real condvars.
//!
//! Invariants proven here:
//! - **Exactly-once**: every submitted request resolves exactly once —
//!   either rejected at admission or completed with logits; accepted +
//!   rejected == submitted and completed == accepted after shutdown.
//! - **Bitwise equivalence**: whatever batches the dynamic batcher forms,
//!   each response is bit-identical to the same image run through the
//!   synchronous [`InferServer`] path (the toy model is per-image
//!   deterministic, like the integer engine).
//! - **Graceful shutdown**: pending requests are drained, never dropped.
//! - **Property coverage**: the above hold across random
//!   (max_batch, max_delay, queue_depth, shards, arrival pattern).

use edd_runtime::serve::{BatcherConfig, ServeConfig, ServeError, Server};
use edd_runtime::{BatchModel, InferServer};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-image deterministic toy model: logit `c` of an image is
/// `sum_i x[i] * (i + 1) + c * x[0]`, computed in a fixed order per image
/// so results never depend on batch composition — the same property the
/// integer engine's i32 accumulation provides.
#[derive(Debug)]
struct ToyModel {
    len: usize,
    classes: usize,
    /// Batches served (to prove shards actually ran them).
    batches: AtomicU64,
}

impl ToyModel {
    fn new(len: usize, classes: usize) -> Self {
        ToyModel {
            len,
            classes,
            batches: AtomicU64::new(0),
        }
    }
}

impl BatchModel for ToyModel {
    type Error = String;

    fn image_len(&self) -> usize {
        self.len
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn infer_batch(&self, images: &[f32], batch: usize) -> Result<Vec<f32>, String> {
        if images.len() != batch * self.len {
            return Err(format!(
                "expected {} values, got {}",
                batch * self.len,
                images.len()
            ));
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        let mut out = Vec::with_capacity(batch * self.classes);
        for img in images.chunks_exact(self.len) {
            let mut acc = 0.0f32;
            for (i, &x) in img.iter().enumerate() {
                acc += x * (i + 1) as f32;
            }
            for c in 0..self.classes {
                out.push(acc + c as f32 * img[0]);
            }
        }
        Ok(out)
    }
}

/// Deterministic pseudo-random image for (producer, sequence) — cheap
/// integer hashing so producers need no shared RNG.
fn image_for(len: usize, producer: usize, seq: usize) -> Vec<f32> {
    let mut state = (producer as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seq as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2000) as f32 - 1000.0) / 250.0
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn producers_times_models_exactly_once_and_bitwise_matches_sync() {
    const PRODUCERS: usize = 6;
    const PER_PRODUCER: usize = 200;
    const MODELS: usize = 3;

    // Models of different shapes — multi-tenant, one server.
    let models: Vec<Arc<ToyModel>> = (0..MODELS)
        .map(|m| Arc::new(ToyModel::new(4 + 2 * m, 2 + m)))
        .collect();
    let server = Arc::new(Server::start(
        models
            .iter()
            .enumerate()
            .map(|(m, model)| (format!("toy-{m}"), Arc::clone(model)))
            .collect(),
        ServeConfig {
            batcher: BatcherConfig {
                max_batch: 8,
                max_delay_us: 300,
                // Deep enough that this test sees no backpressure: the
                // exactly-once accounting below requires acceptance.
                queue_depth: 4096,
            },
            shards: 3,
        },
    ));

    let handles: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut results = Vec::with_capacity(PER_PRODUCER);
                let mut tickets = Vec::new();
                for seq in 0..PER_PRODUCER {
                    let m = (p + seq) % MODELS;
                    let image = image_for(server.model(m).image_len(), p, seq);
                    let ticket = server.submit(m, image).expect("deep queue never rejects");
                    tickets.push((m, seq, ticket));
                    // Interleave waits to keep many requests in flight.
                    if tickets.len() >= 16 {
                        for (m, seq, t) in tickets.drain(..) {
                            results.push((m, seq, t.wait().expect("toy model never fails")));
                        }
                    }
                }
                for (m, seq, t) in tickets {
                    results.push((m, seq, t.wait().expect("toy model never fails")));
                }
                (p, results)
            })
        })
        .collect();

    let mut all: Vec<(usize, usize, usize, Vec<f32>)> = Vec::new();
    for h in handles {
        let (p, results) = h.join().expect("producer thread");
        for (m, seq, logits) in results {
            all.push((p, m, seq, logits));
        }
    }
    // Exactly-once: every (producer, seq) resolved exactly once.
    assert_eq!(all.len(), PRODUCERS * PER_PRODUCER);

    // Bitwise equivalence against the synchronous path, model by model.
    let sync: Vec<InferServer<&ToyModel>> = models
        .iter()
        .map(|m| InferServer::new(m.as_ref()))
        .collect();
    for (p, m, seq, logits) in &all {
        let image = image_for(models[*m].image_len(), *p, *seq);
        let want = sync[*m].infer(&image, 1).expect("sync reference");
        assert_eq!(
            bits(logits),
            bits(&want),
            "producer {p} seq {seq} model {m}: dynamic batch diverged from sync"
        );
    }

    let stats = server_stats(&server);
    drop(server);
    let (accepted, completed, rejected): (u64, u64, u64) = stats;
    assert_eq!(accepted, (PRODUCERS * PER_PRODUCER) as u64);
    assert_eq!(completed, accepted);
    assert_eq!(rejected, 0);
}

fn server_stats(server: &Server<ToyModel>) -> (u64, u64, u64) {
    let mut accepted = 0;
    let mut completed = 0;
    let mut rejected = 0;
    for s in server.stats_all() {
        accepted += s.accepted;
        completed += s.completed;
        rejected += s.rejected_full + s.rejected_shutdown;
    }
    (accepted, completed, rejected)
}

#[test]
fn graceful_shutdown_drains_every_pending_request() {
    // max_delay far beyond the test duration and max_batch larger than
    // the submission count: nothing can flush on its own. Only the
    // shutdown drain can complete these requests.
    let model = Arc::new(ToyModel::new(4, 2));
    let server = Server::start(
        vec![("toy".into(), Arc::clone(&model))],
        ServeConfig {
            batcher: BatcherConfig {
                max_batch: 1024,
                max_delay_us: 60_000_000,
                queue_depth: 1024,
            },
            shards: 2,
        },
    );
    let tickets: Vec<_> = (0..37)
        .map(|i| server.submit(0, image_for(4, 0, i)).expect("accepted"))
        .collect();
    let stats = server.shutdown().remove(0);
    assert_eq!(stats.accepted, 37);
    assert_eq!(stats.completed, 37, "drain must complete every request");
    assert_eq!(stats.drain_flushes, 1);
    for t in tickets {
        assert!(t.wait().is_ok(), "ticket must resolve after drain");
    }
    assert_eq!(model.batches.load(Ordering::Relaxed), 1);
}

#[test]
fn backpressure_rejects_when_queue_is_full_and_server_recovers() {
    // A model that blocks until released, letting the queue fill
    // deterministically.
    #[derive(Debug)]
    struct GatedModel {
        gate: std::sync::Mutex<bool>,
        cv: std::sync::Condvar,
    }
    impl BatchModel for GatedModel {
        type Error = String;
        fn image_len(&self) -> usize {
            2
        }
        fn num_classes(&self) -> usize {
            1
        }
        fn infer_batch(&self, images: &[f32], batch: usize) -> Result<Vec<f32>, String> {
            let mut open = self.gate.lock().unwrap();
            while !*open {
                open = self.cv.wait(open).unwrap();
            }
            Ok(images
                .chunks_exact(2)
                .take(batch)
                .map(|img| img[0] + img[1])
                .collect())
        }
    }
    let model = Arc::new(GatedModel {
        gate: std::sync::Mutex::new(false),
        cv: std::sync::Condvar::new(),
    });
    // max_batch and max_delay both out of reach: requests can only sit in
    // the pending queue, so depth 2 fills deterministically.
    let server = Server::start(
        vec![("gated".into(), Arc::clone(&model))],
        ServeConfig {
            batcher: BatcherConfig {
                max_batch: 64,
                max_delay_us: 60_000_000,
                queue_depth: 2,
            },
            shards: 1,
        },
    );
    let t0 = server.submit(0, vec![1.0, 2.0]).expect("depth 0 -> accept");
    let t1 = server.submit(0, vec![3.0, 4.0]).expect("depth 1 -> accept");
    // Queue is now at depth 2: admission control must reject.
    assert!(matches!(
        server.submit(0, vec![5.0, 6.0]),
        Err(ServeError::QueueFull)
    ));
    let stats = server.stats(0);
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.rejected_full, 1);
    assert_eq!(stats.queue_peak, 2);
    // Open the gate; shutdown drains the two pending requests.
    {
        let mut open = model.gate.lock().unwrap();
        *open = true;
        model.cv.notify_all();
    }
    let stats = server.shutdown().remove(0);
    assert_eq!(stats.completed, 2);
    assert_eq!(t0.wait().unwrap(), vec![3.0]);
    assert_eq!(t1.wait().unwrap(), vec![7.0]);
}

#[test]
fn submits_after_begin_shutdown_are_rejected_but_pending_complete() {
    let model = Arc::new(ToyModel::new(4, 2));
    let server = Server::start(
        vec![("toy".into(), model)],
        ServeConfig {
            batcher: BatcherConfig {
                max_batch: 1024,
                max_delay_us: 60_000_000,
                queue_depth: 64,
            },
            shards: 1,
        },
    );
    let pending = server.submit(0, image_for(4, 0, 0)).expect("accepted");
    server.begin_shutdown();
    // Intake is closed immediately...
    assert!(matches!(
        server.submit(0, image_for(4, 0, 1)),
        Err(ServeError::ShuttingDown)
    ));
    // ...but the already-accepted request still completes.
    assert!(pending.wait().is_ok());
    let stats = server.shutdown().remove(0);
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.completed, 1);
}

proptest! {
    // Each case spawns real threads; keep the count modest — this still
    // covers ~2.5k served requests across 16 random configurations.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exactly-once + bitwise-vs-sync + drain, across random batching
    /// configs, shard counts, and arrival patterns.
    #[test]
    fn random_configs_preserve_serving_invariants(
        max_batch in 1usize..10,
        max_delay_us in 0u64..2_000,
        queue_depth in 1usize..40,
        shards in 1usize..5,
        producers in 1usize..4,
        per_producer in 1usize..60,
        window in 1usize..20,
    ) {
        let model = Arc::new(ToyModel::new(6, 3));
        let server = Arc::new(Server::start(
            vec![("toy".into(), Arc::clone(&model))],
            ServeConfig {
                batcher: BatcherConfig { max_batch, max_delay_us, queue_depth },
                shards,
            },
        ));
        let handles: Vec<_> = (0..producers).map(|p| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut completed: Vec<(usize, Vec<f32>)> = Vec::new();
                let mut rejected = 0u64;
                let mut tickets = Vec::new();
                for seq in 0..per_producer {
                    match server.submit(0, image_for(6, p, seq)) {
                        Ok(t) => tickets.push((seq, t)),
                        Err(ServeError::QueueFull) => rejected += 1,
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                    if tickets.len() >= window {
                        for (seq, t) in tickets.drain(..) {
                            completed.push((seq, t.wait().expect("model never fails")));
                        }
                    }
                }
                for (seq, t) in tickets {
                    completed.push((seq, t.wait().expect("model never fails")));
                }
                (p, completed, rejected)
            })
        }).collect();

        let mut total_completed = 0u64;
        let mut total_rejected = 0u64;
        let sync = InferServer::new(model.as_ref());
        for h in handles {
            let (p, completed, rejected) = h.join().expect("producer");
            total_rejected += rejected;
            total_completed += completed.len() as u64;
            for (seq, logits) in completed {
                let want = sync.infer(&image_for(6, p, seq), 1).expect("sync");
                prop_assert_eq!(bits(&logits), bits(&want),
                    "producer {} seq {} diverged from sync path", p, seq);
            }
        }
        prop_assert_eq!(
            total_completed + total_rejected,
            (producers * per_producer) as u64,
            "requests lost or duplicated"
        );
        let server = Arc::try_unwrap(server).map_err(|_| TestCaseError::fail("arc"))?;
        let stats = server.shutdown().remove(0);
        prop_assert_eq!(stats.accepted, total_completed);
        prop_assert_eq!(stats.completed, total_completed);
        prop_assert_eq!(stats.rejected_full, total_rejected);
        prop_assert_eq!(stats.failed, 0);
        prop_assert_eq!(stats.batched_images, total_completed);
        // Occupancy can never exceed max_batch.
        prop_assert!(stats.mean_occupancy() <= max_batch.max(1) as f64 + 1e-9);
    }
}
