//! Property tests for the snapshot container: arbitrary payloads survive a
//! disk round trip bit-exactly, and arbitrary single-byte corruption is
//! always *detected* (an error, never a panic, never silent acceptance).

use edd_runtime::snapshot::{self, ByteReader, ByteWriter, SectionWriter, Sections, SnapshotError};
use proptest::prelude::*;
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "edd-runtime-prop-{}-{tag}.edds",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn container_roundtrips_any_payload(payload in prop::collection::vec(0u8..=255, 0..512)) {
        let path = temp_path("roundtrip");
        snapshot::write_atomic(&path, &payload).unwrap();
        let back = snapshot::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        prop_assert_eq!(back, payload);
    }

    #[test]
    fn f32_sections_roundtrip_bit_exact(
        bits in prop::collection::vec(0u32..=u32::MAX, 1..64),
        extra in 0u64..=u64::MAX,
    ) {
        // Arbitrary bit patterns include NaNs with payloads, infinities,
        // and denormals — all must survive save → load unchanged.
        let values: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let mut w = ByteWriter::new();
        w.put_f32_slice(&values);
        w.put_u64(extra);
        let mut sections = SectionWriter::new();
        sections.add("floats", &w.into_bytes());
        let payload = sections.into_payload();

        let path = temp_path("bits");
        snapshot::write_atomic(&path, &payload).unwrap();
        let back = snapshot::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        let parsed = Sections::parse(&back).unwrap();
        let mut r = ByteReader::new(parsed.require("floats").unwrap());
        let got = r.get_f32_vec().unwrap();
        prop_assert_eq!(got.len(), values.len());
        for (g, b) in got.iter().zip(&bits) {
            prop_assert_eq!(g.to_bits(), *b);
        }
        prop_assert_eq!(r.get_u64().unwrap(), extra);
    }

    #[test]
    fn flipped_byte_is_always_detected(
        payload in prop::collection::vec(0u8..=255, 8..128),
        pos_seed in 0usize..=usize::MAX,
        bit in 0u8..8,
    ) {
        let file = snapshot::encode_container(&payload);
        let pos = pos_seed % file.len();
        let mut bad = file;
        bad[pos] ^= 1 << bit;
        // Any single-bit flip anywhere in the file must surface as an
        // error. Which error depends on where it landed (magic, version,
        // length, CRC, payload) — corrupt data must never decode cleanly.
        prop_assert!(snapshot::decode_container(&bad).is_err());
    }

    #[test]
    fn truncation_is_always_detected(
        payload in prop::collection::vec(0u8..=255, 8..128),
        cut_seed in 0usize..=usize::MAX,
    ) {
        let file = snapshot::encode_container(&payload);
        let keep = cut_seed % file.len(); // strictly shorter than full
        prop_assert!(snapshot::decode_container(&file[..keep]).is_err());
    }

    #[test]
    fn reader_never_panics_on_garbage(bytes in prop::collection::vec(0u8..=255, 0..64)) {
        // Exercise every accessor against arbitrary bytes: errors are
        // fine, panics are not.
        let mut r = ByteReader::new(&bytes);
        let _ = r.get_u8();
        let _ = r.get_u32();
        let _ = r.get_f32_vec();
        let _ = r.get_str();
        let _ = r.get_u64();
        let _ = Sections::parse(&bytes);
        prop_assert!(true);
    }
}

#[test]
fn corruption_reports_the_right_error_kinds() {
    let payload = b"realistic checkpoint payload".to_vec();
    let file = snapshot::encode_container(&payload);

    let mut body_flip = file.clone();
    let last = body_flip.len() - 1;
    body_flip[last] ^= 0x01;
    assert!(matches!(
        snapshot::decode_container(&body_flip),
        Err(SnapshotError::CrcMismatch { .. })
    ));

    assert!(matches!(
        snapshot::decode_container(&file[..file.len() - 4]),
        Err(SnapshotError::Truncated { .. })
    ));

    let mut magic_flip = file;
    magic_flip[3] ^= 0x20;
    assert!(matches!(
        snapshot::decode_container(&magic_flip),
        Err(SnapshotError::BadMagic)
    ));
}
