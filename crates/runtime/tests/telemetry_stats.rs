//! Backfill tests for the PR-3/PR-5 runtime surface: the telemetry
//! [`Histogram`] percentile estimator (p50/p95/p99 against known sample
//! sets), counter/CSV sink behavior under concurrent emission, and
//! [`InferStats`] accounting — including the division-by-zero regression
//! on the empty-stats path.

use edd_runtime::telemetry::{self, Event, EventKind, Sink, Value};
use edd_runtime::{CsvSink, Histogram, InferStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Histogram percentiles
// ---------------------------------------------------------------------------

#[test]
fn percentiles_exact_over_known_sample_set() {
    // 1..=100 µs, one observation each: nearest-rank percentiles are the
    // values themselves (all below the exact-bucket cutoff of 4096).
    let h = Histogram::new();
    for v in 1..=100u64 {
        h.record(v);
    }
    assert_eq!(h.count(), 100);
    assert_eq!(h.percentile(50.0), 50);
    assert_eq!(h.percentile(95.0), 95);
    assert_eq!(h.percentile(99.0), 99);
    assert_eq!(h.percentile(100.0), 100);
    assert_eq!(h.max(), 100);
}

#[test]
fn percentiles_follow_the_distribution_not_the_range() {
    // 99 fast requests at 10 µs and one straggler at 3000 µs: p50 and p95
    // sit on the fast mode, p99-at-rank-100... nearest-rank p99 of 100
    // samples is the 99th value (still 10), p100 is the straggler.
    let h = Histogram::new();
    for _ in 0..99 {
        h.record(10);
    }
    h.record(3000);
    assert_eq!(h.percentile(50.0), 10);
    assert_eq!(h.percentile(95.0), 10);
    assert_eq!(h.percentile(99.0), 10);
    assert_eq!(h.percentile(100.0), 3000);
    assert_eq!(h.max(), 3000);
}

#[test]
fn empty_histogram_reports_zero_everywhere() {
    let h = Histogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.percentile(50.0), 0);
    assert_eq!(h.percentile(99.0), 0);
}

#[test]
fn large_values_are_bucketed_within_relative_error() {
    // Above the exact range, log-linear buckets (16 per octave) bound the
    // relative error of the reported lower bound at 1/16 = 6.25 %.
    let h = Histogram::new();
    for v in [5_000u64, 123_456, 1_000_000, 40_000_000] {
        h.record(v);
        let got = h.percentile(100.0);
        assert!(
            got <= v && (v - got) as f64 <= v as f64 / 16.0,
            "value {v} reported as {got}: outside bucket error bound"
        );
    }
    // Exact max is tracked separately from the buckets.
    assert_eq!(h.max(), 40_000_000);
}

#[test]
fn concurrent_recording_loses_nothing() {
    let h = Arc::new(Histogram::new());
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..1000u64 {
                    h.record(t * 1000 + i % 100);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(h.count(), 4000);
    assert!(h.max() >= 3000);
}

// ---------------------------------------------------------------------------
// Sink counters under concurrent emission
// ---------------------------------------------------------------------------

/// Sink that sums counter deltas per name (order-independent, so it is
/// safe to assert under concurrency).
#[derive(Debug, Default)]
struct CountingSink {
    serve: AtomicU64,
    other: AtomicU64,
}

impl Sink for CountingSink {
    fn emit(&self, event: &Event<'_>) {
        if event.kind != EventKind::Counter {
            return;
        }
        let Some(Value::U64(delta)) = &event.value else {
            return;
        };
        if event.name == "test.hits" {
            self.serve.fetch_add(*delta, Ordering::Relaxed);
        } else {
            self.other.fetch_add(*delta, Ordering::Relaxed);
        }
    }
}

#[test]
fn counters_accumulate_across_threads_through_the_global_sink() {
    let sink = Arc::new(CountingSink::default());
    telemetry::set_global(sink.clone());
    let threads: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..250 {
                    telemetry::counter("test.hits", 2);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    telemetry::clear_global();
    assert_eq!(sink.serve.load(Ordering::Relaxed), 4 * 250 * 2);
    // Emissions after clear_global go to the no-op sink, not here.
    telemetry::counter("test.hits", 100);
    assert_eq!(sink.serve.load(Ordering::Relaxed), 4 * 250 * 2);
}

#[test]
fn csv_sink_renders_missing_fields_empty_and_keeps_row_order() {
    let sink = CsvSink::new("serve.model", &["model", "p50_us", "p99_us"]);
    sink.emit(&Event {
        kind: EventKind::Event,
        name: "serve.model",
        value: None,
        fields: &[
            ("model", Value::Str("tiny-a".into())),
            ("p50_us", Value::U64(120)),
            ("p99_us", Value::U64(900)),
        ],
    });
    sink.emit(&Event {
        kind: EventKind::Event,
        name: "serve.model",
        value: None,
        fields: &[("model", Value::Str("tiny-b".into()))], // percentiles missing
    });
    assert_eq!(
        sink.to_csv(),
        "model,p50_us,p99_us\ntiny-a,120,900\ntiny-b,,\n"
    );
}

// ---------------------------------------------------------------------------
// InferStats accounting
// ---------------------------------------------------------------------------

#[test]
fn empty_infer_stats_are_finite_zero_not_nan() {
    // Regression: the empty-stats path must never divide 0/0 into NaN.
    let stats = InferStats {
        requests: 0,
        images: 0,
        total_latency_us: 0,
        max_latency_us: 0,
    };
    assert_eq!(stats.mean_latency_us(), 0.0);
    assert_eq!(stats.images_per_sec(), 0.0);
    assert!(stats.mean_latency_us().is_finite());
    assert!(stats.images_per_sec().is_finite());
}

#[test]
fn sub_microsecond_requests_report_nonzero_throughput() {
    // Regression: requests so fast the summed wall time rounds to 0 µs
    // used to report 0 images/s; elapsed time is clamped to 1 µs instead.
    let stats = InferStats {
        requests: 8,
        images: 64,
        total_latency_us: 0,
        max_latency_us: 0,
    };
    assert_eq!(stats.mean_latency_us(), 0.0);
    let ips = stats.images_per_sec();
    assert!(ips > 0.0 && ips.is_finite(), "got {ips}");
    assert_eq!(ips, 64.0 * 1e6); // 64 images in (clamped) 1 µs
}

#[test]
fn infer_stats_means_match_hand_computation() {
    let stats = InferStats {
        requests: 4,
        images: 10,
        total_latency_us: 2_000,
        max_latency_us: 900,
    };
    assert_eq!(stats.mean_latency_us(), 500.0);
    assert_eq!(stats.images_per_sec(), 10.0 * 1e6 / 2_000.0);
    assert!(stats.max_latency_us as f64 <= stats.total_latency_us as f64);
}
